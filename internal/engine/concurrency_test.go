package engine_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
)

// TestConcurrentInstanceExecution drives many instances from parallel
// goroutines; per-instance locking must keep every instance consistent.
// Run with -race to exercise the synchronization.
func TestConcurrentInstanceExecution(t *testing.T) {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	const n = 24
	insts := make([]*engine.Instance, n)
	for i := range insts {
		inst, err := e.CreateInstance("online_order", 0)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i, inst := range insts {
		wg.Add(1)
		go func(i int, inst *engine.Instance) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			d := sim.NewDriver(rng, e)
			if err := d.RunToCompletion(inst); err != nil {
				errs <- fmt.Errorf("instance %d: %w", i, err)
			}
		}(i, inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i, inst := range insts {
		if !inst.Done() {
			t.Errorf("instance %d not done", i)
		}
	}
	if e.Worklist().Len() != 0 {
		t.Errorf("worklist not drained: %d items", e.Worklist().Len())
	}
}

// TestConcurrentAdHocChanges applies disjoint ad-hoc changes from parallel
// goroutines, one per instance.
func TestConcurrentAdHocChanges(t *testing.T) {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		inst, err := e.CreateInstance("online_order", 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, inst *engine.Instance) {
			defer wg.Done()
			op := &change.SerialInsert{
				Node: &model.Node{ID: fmt.Sprintf("x%d", i), Type: model.NodeActivity, Role: "sales", Template: "x"},
				Pred: "collect_data",
				Succ: "confirm_order",
			}
			if err := change.ApplyAdHoc(inst, op); err != nil {
				errs <- err
			}
		}(i, inst)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, inst := range e.Instances() {
		if !inst.Biased() {
			t.Error("instance missed its bias")
		}
	}
}

func TestSuspendResume(t *testing.T) {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Suspend(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if !inst.Suspended() {
		t.Fatal("instance should be suspended")
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err == nil {
		t.Fatal("user op on suspended instance must fail")
	}
	if err := e.StartActivity(inst.ID(), "get_order", "ann"); err == nil {
		t.Fatal("start on suspended instance must fail")
	}
	// Ad-hoc changes remain possible while suspended.
	if err := change.ApplyAdHoc(inst, &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatalf("ad-hoc change while suspended: %v", err)
	}
	if err := e.Resume(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatalf("after resume: %v", err)
	}
	// Error paths.
	if err := e.Resume(inst.ID()); err == nil {
		t.Fatal("resume of non-suspended instance must fail")
	}
	if err := e.Suspend("nope"); err == nil {
		t.Fatal("suspend of unknown instance must fail")
	}
	if err := e.Resume("nope"); err == nil {
		t.Fatal("resume of unknown instance must fail")
	}
}

// TestOnTheFlyInstanceExecutesEndToEnd exercises the materialize-per-
// access representation through a complete biased run.
func TestOnTheFlyInstanceExecutesEndToEnd(t *testing.T) {
	e := engine.New(sim.Org())
	e.SetStorageStrategy(2) // storage.OnTheFly
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	d := sim.NewDriver(rng, e)
	if err := d.RunToCompletion(inst); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("on-the-fly instance should complete")
	}
	if inst.NodeState("send_brochure") != state.Completed {
		t.Fatal("bias activity should have run")
	}
}
