package durable

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adept2/internal/persist"
)

func TestCommitterConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(j, CommitterOptions{})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := c.Append("op", map[string]int{"w": w, "i": i}); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := persist.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*each {
		t.Fatalf("journal holds %d records, want %d", len(recs), writers*each)
	}
	for i, rec := range recs {
		if rec.Seq != i+1 {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
}

// TestCommitterDurableOnReturn crashes (abandons the committer without
// Close) right after Append returned: the record must already be on disk.
func TestCommitterDurableOnReturn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(j, CommitterOptions{})
	seq, err := c.Append("op", 42)
	if err != nil || seq != 1 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	// No Close, no Flush: simulated crash. The journal file must already
	// hold the record because Append only returns after the group fsync.
	recs, err := persist.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("record not durable at Append return: %+v", recs)
	}
	c.Close()
	j.Close()
}

func TestCommitterErrorBroadcast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(j, CommitterOptions{})
	if _, err := c.Append("op", 1); err != nil {
		t.Fatal(err)
	}
	// Close the backing file out from under the committer: the next flush
	// must fail, the failure must reach the waiting appender, and the
	// committer must stay sticky-broken.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("op", 2); err == nil {
		t.Fatal("append after backing-file failure must error")
	}
	if _, err := c.Append("op", 3); err == nil {
		t.Fatal("committer must stay broken after a flush failure")
	}
	if err := c.Close(); err == nil {
		t.Fatal("Close must report the sticky error")
	}
}

func TestCommitterSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCommitter(j, CommitterOptions{})
	defer j.Close()
	defer c.Close()
	if err := c.Sync(); err != nil { // nothing pending
		t.Fatal(err)
	}
	if _, err := c.Append("op", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := c.Journal().Seq(); got != 1 {
		t.Fatalf("seq = %d", got)
	}
}

// TestCommitterNoLostWakeStress hammers the append/flush handoff: an
// append landing while a flush is in flight must never be forgotten (the
// regression was a pending counter wiped by post-flush bookkeeping,
// stranding its waiter forever).
func TestCommitterNoLostWakeStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := persist.OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	c := NewCommitter(j, CommitterOptions{})
	defer c.Close()

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 2000; i++ {
				if _, err := c.Append("op", i); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	timeout := time.After(60 * time.Second)
	for w := 0; w < 8; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("append stranded: lost wake in the group-commit handoff")
		}
	}
}
