package adept2

import (
	"context"
	"errors"
	"time"

	"adept2/internal/fault"
)

// This file closes the detect→compensate loop of process-level fault
// tolerance. The engine detects exceptions (activity failures, deadline
// expiries) and records them as journaled commands; an ExceptionPolicy
// maps each exception to a compensating reaction (retry with backoff,
// skip via a machine-generated ad-hoc change, or suspend-and-escalate);
// System.Fail and System.SweepDeadlines drive the reactions back through
// the same typed command registry, so every machine-generated change is
// journaled, replayable, and crash-safe.

// ExceptionKind classifies a process-level exception.
type ExceptionKind uint8

const (
	// ActivityFailed: a running activity reported a failure. The attempt
	// was undone (node back to activated, execution purged from the
	// logical history) and its re-offer may be suppressed pending
	// compensation.
	ActivityFailed ExceptionKind = iota
	// DeadlineExpired: a running activity exceeded its armed deadline.
	// The activity keeps running but its work item escalated to the
	// node's escalation role.
	DeadlineExpired
)

var exceptionKindNames = [...]string{"activity-failed", "deadline-expired"}

func (k ExceptionKind) String() string {
	if int(k) < len(exceptionKindNames) {
		return exceptionKindNames[k]
	}
	return "unknown"
}

// Exception is one detected process-level exception, as presented to an
// ExceptionPolicy.
type Exception struct {
	Instance string
	Node     string
	Kind     ExceptionKind
	// Reason is the failure reason reported by the activity (empty for
	// deadline expiries).
	Reason string
	// Failures is the node's consecutive-failure count including the
	// failure being decided (1 on the first failure).
	Failures int
	// Err is the taxonomy form of the exception: an *Error carrying
	// CodeFailed or CodeTimeout, so policies can errors.Is against the
	// ErrFailed/ErrTimeout sentinels.
	Err error
}

// CompensationAction enumerates the reactions a policy can choose.
type CompensationAction uint8

const (
	// ActionNone leaves the exception alone. A failed activity without a
	// suppression window is re-offered immediately; an escalated
	// activity stays with the escalation role.
	ActionNone CompensationAction = iota
	// ActionRetry re-offers the failed activity, after Reaction.Backoff
	// when set (the work item stays suppressed until the backoff
	// elapses and the deadline sweep lifts it).
	ActionRetry
	// ActionSkip deletes the failed activity through a machine-generated
	// ad-hoc change — the paper's instance-level change dimension used
	// as a compensation primitive. Falls back to ActionSuspend when the
	// deletion would not be compliant.
	ActionSkip
	// ActionSuspend suspends the instance for human intervention.
	ActionSuspend
)

var actionNames = [...]string{"none", "retry", "skip", "suspend"}

func (a CompensationAction) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "unknown"
}

// Reaction is a policy's decision for one exception.
type Reaction struct {
	Action CompensationAction
	// Backoff delays the re-offer of an ActionRetry reaction. Zero
	// re-offers immediately.
	Backoff time.Duration
}

// ExceptionPolicy maps detected exceptions to compensating reactions.
// Decide must be deterministic in its argument: it runs on the live
// path only (never during replay — the chosen compensation is journaled
// as its own command), but the sweep may re-present an exception whose
// compensation was lost to a crash, and flapping decisions would then
// oscillate the instance.
type ExceptionPolicy interface {
	Decide(Exception) Reaction
}

// PolicyFunc adapts a function to an ExceptionPolicy.
type PolicyFunc func(Exception) Reaction

// Decide implements ExceptionPolicy.
func (f PolicyFunc) Decide(x Exception) Reaction { return f(x) }

// RetryThenSuspend is the default compensation policy: retry a failed
// activity with exponential backoff (backoff, 2·backoff, 4·backoff, …)
// up to maxRetries attempts, then suspend the instance for human
// intervention. Deadline expiries get ActionNone — the escalation
// re-offer already happened and the activity may still complete.
func RetryThenSuspend(maxRetries int, backoff time.Duration) ExceptionPolicy {
	return PolicyFunc(func(x Exception) Reaction {
		if x.Kind == DeadlineExpired {
			return Reaction{Action: ActionNone}
		}
		if x.Failures <= maxRetries {
			d := backoff
			for i := 1; i < x.Failures; i++ {
				d *= 2
			}
			return Reaction{Action: ActionRetry, Backoff: d}
		}
		return Reaction{Action: ActionSuspend}
	})
}

// WithClock injects the time source used to stamp journal records (start
// times arming deadlines, sweep times). Only the live command path reads
// the clock — every timestamp that matters is stamped onto the journal
// record, so replay is deterministic regardless of the clock. Tests and
// simulations inject a logical clock here.
func WithClock(now func() time.Time) Option {
	return func(c *config) {
		c.nowFn = func() int64 { return now().UnixNano() }
	}
}

// WithExceptionPolicy installs the policy consulted by System.Fail and
// the deadline sweep. Without one, failures re-offer immediately and
// expiries only escalate.
func WithExceptionPolicy(p ExceptionPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithEscalationBothCanAct selects both-can-act escalation semantics:
// when a deadline fires, the work item is offered to the union of the
// escalation role's and the original role's users, instead of the
// escalation role replacing the offer (the default). The knob is part
// of the system's construction — like the storage strategy it applies
// before any recovery replay, so escalations recovered from a journal
// offer to the same user set the original execution did.
func WithEscalationBothCanAct() Option {
	return func(c *config) { c.bothCanAct = true }
}

func exceptionErr(kind ExceptionKind, instID, node, reason string) error {
	if kind == DeadlineExpired {
		return &Error{Code: CodeTimeout, Op: "timeout", Instance: instID,
			Err: fault.Tagf(fault.Timeout, "adept2: %s/%s: deadline expired", instID, node)}
	}
	if reason == "" {
		reason = "activity failed"
	}
	return &Error{Code: CodeFailed, Op: "fail", Instance: instID,
		Err: fault.Tagf(fault.Failed, "adept2: %s/%s: %s", instID, node, reason)}
}

// Fail reports the failure of a running activity and drives the
// installed exception policy's compensation. The policy is consulted
// BEFORE the fail command is submitted so the chosen suppression window
// (retry backoff, pending compensation) rides the journaled fail record
// and replays identically; the compensating command itself (ad-hoc skip,
// suspend) is then submitted as its own journaled command. A crash
// between the two is healed by the next deadline sweep, which re-runs
// the policy over still-open exceptions.
func (s *System) Fail(ctx context.Context, instID, node, user, reason string) error {
	x := Exception{
		Instance: instID,
		Node:     node,
		Kind:     ActivityFailed,
		Reason:   reason,
		Failures: 1,
		Err:      exceptionErr(ActivityFailed, instID, node, reason),
	}
	if inst, ok := s.eng.Instance(instID); ok {
		x.Failures = inst.FailureCount(node) + 1
	}
	r := s.decide(x)
	cmd := &FailActivity{Instance: instID, Node: node, User: user, Reason: reason}
	switch r.Action {
	case ActionRetry:
		if r.Backoff > 0 {
			cmd.RetryAt = s.now() + int64(r.Backoff)
		}
	case ActionSkip, ActionSuspend:
		cmd.Pending = true
	}
	if _, err := s.Submit(ctx, cmd); err != nil {
		return err
	}
	return s.compensate(ctx, x, r)
}

func (s *System) decide(x Exception) Reaction {
	if s.policy == nil {
		return Reaction{Action: ActionNone}
	}
	r := s.policy.Decide(x)
	if m := s.met; m != nil && int(r.Action) < len(m.Exception.Actions) {
		m.Exception.Actions[r.Action].Inc()
	}
	return r
}

// compensate submits the journaled compensating command for a reaction.
// ActionSkip degrades to ActionSuspend when deleting the node would not
// be compliant (e.g. the region already progressed, or the node is
// running after a timeout).
func (s *System) compensate(ctx context.Context, x Exception, r Reaction) error {
	switch r.Action {
	case ActionSkip:
		_, err := s.Submit(ctx, &AdHoc{
			Instance: x.Instance,
			Ops:      []Operation{&DeleteActivity{ID: x.Node}},
		})
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrNotCompliant) && !errors.Is(err, ErrConflict) && !errors.Is(err, ErrInvalid) {
			return err
		}
		fallthrough
	case ActionSuspend:
		_, err := s.Submit(ctx, &Suspend{Instance: x.Instance})
		if err != nil && !errors.Is(err, ErrSuspended) && !errors.Is(err, ErrConflict) {
			return err
		}
	}
	return nil
}

// SweepReport summarizes one deadline sweep.
type SweepReport struct {
	// Timeouts is the number of deadline expiries fired.
	Timeouts int
	// Retries is the number of elapsed retry backoffs lifted.
	Retries int
	// Compensated is the number of policy compensations submitted for
	// still-open exceptions.
	Compensated int
	// Errors collects submit failures that were not raced-moot (an
	// instance completing, suspending, or disappearing between scan and
	// submit is not an error).
	Errors []error
}

// SweepDeadlines is the periodic exception timer: callers invoke it from
// a ticker (or a simulation step) with the current time. Three phases,
// each a scan followed by journaled commands:
//
//  1. every armed deadline at or before now fires a TimeoutActivity
//     (history Timeout event + work-item escalation);
//  2. every elapsed retry backoff lifts its suppression via
//     RetryActivity (the work item re-offers);
//  3. the exception policy re-runs over still-open exceptions —
//     including the timeouts just fired and any failure whose
//     compensation was lost to a crash — and its reactions are
//     submitted as compensating commands.
//
// Scans are deterministic (instance creation order, then node ID), so a
// sweep at a given logical time issues the same command sequence on any
// replica of the state. Commands that lose a race with user activity
// (ErrConflict/ErrNotFound/ErrCompleted/ErrSuspended) are skipped as
// moot; a wedged or canceled store aborts the sweep with the error.
func (s *System) SweepDeadlines(ctx context.Context, now time.Time) (*SweepReport, error) {
	start := time.Now()
	rep, err := s.sweepDeadlines(ctx, now)
	if m := s.met; m != nil {
		m.Exception.Sweeps.Inc()
		m.Exception.SweepNanos.Observe(time.Since(start).Nanoseconds())
		m.Exception.Escalations.Add(int64(rep.Timeouts))
		m.Exception.Compensated.Add(int64(rep.Compensated))
		m.Exception.SweepErrors.Add(int64(len(rep.Errors)))
	}
	return rep, err
}

func (s *System) sweepDeadlines(ctx context.Context, now time.Time) (*SweepReport, error) {
	rep := &SweepReport{}
	nowN := now.UnixNano()
	for _, ex := range s.eng.ExpiredDeadlines(nowN) {
		if _, err := s.Submit(ctx, &TimeoutActivity{Instance: ex.Instance, Node: ex.Node, At: nowN}); err != nil {
			if abort := rep.noteErr(err); abort != nil {
				return rep, abort
			}
			continue
		}
		rep.Timeouts++
	}
	for _, ex := range s.eng.DueRetries(nowN) {
		if _, err := s.Submit(ctx, &RetryActivity{Instance: ex.Instance, Node: ex.Node, At: nowN}); err != nil {
			if abort := rep.noteErr(err); abort != nil {
				return rep, abort
			}
			continue
		}
		rep.Retries++
	}
	if s.policy != nil {
		for _, ox := range s.eng.OpenExceptions() {
			x := Exception{Instance: ox.Instance, Node: ox.Node, Failures: ox.Failures}
			if ox.Timeout {
				x.Kind = DeadlineExpired
			}
			x.Err = exceptionErr(x.Kind, x.Instance, x.Node, "")
			r := s.decide(x)
			switch r.Action {
			case ActionRetry:
				// Only a failed node pending compensation can retry; an
				// escalated activity is still running.
				if ox.Timeout {
					continue
				}
				if _, err := s.Submit(ctx, &RetryActivity{Instance: x.Instance, Node: x.Node, At: nowN}); err != nil {
					if abort := rep.noteErr(err); abort != nil {
						return rep, abort
					}
					continue
				}
				rep.Compensated++
			case ActionSkip, ActionSuspend:
				if err := s.compensate(ctx, x, r); err != nil {
					if abort := rep.noteErr(err); abort != nil {
						return rep, abort
					}
					continue
				}
				rep.Compensated++
			}
		}
	}
	return rep, nil
}

// noteErr classifies a sweep submit error: raced-moot errors are
// dropped, wedge/cancel aborts the sweep, anything else is collected.
func (rep *SweepReport) noteErr(err error) error {
	if errors.Is(err, ErrConflict) || errors.Is(err, ErrNotFound) ||
		errors.Is(err, ErrCompleted) || errors.Is(err, ErrSuspended) {
		return nil
	}
	if errors.Is(err, ErrWedged) || errors.Is(err, ErrCanceled) {
		return err
	}
	rep.Errors = append(rep.Errors, err)
	return nil
}

// OpenExceptions lists the detected-but-uncompensated exceptions of all
// live instances: failed activities whose re-offer is suppressed pending
// compensation, and escalated activities still running past their
// deadline. Ordered by instance creation order, then node ID.
func (s *System) OpenExceptions() []Exception {
	var out []Exception
	for _, ox := range s.eng.OpenExceptions() {
		x := Exception{Instance: ox.Instance, Node: ox.Node, Failures: ox.Failures}
		if ox.Timeout {
			x.Kind = DeadlineExpired
		}
		x.Err = exceptionErr(x.Kind, x.Instance, x.Node, "")
		out = append(out, x)
	}
	return out
}
