package adept2

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"adept2/internal/persist"
)

// This file is the façade's wire plane: the exported choke points the
// networked command plane (internal/rpc) builds on. The command registry
// stays the single source of truth — EncodeCommand and DecodeWireCommand
// expose its codec without exposing the registry itself — and the
// durability watermarks exported here are what lets receipt resolution
// stream across a network hop with the same fsync-coverage semantics as
// the in-process Receipt.

// EncodeCommand serializes a Command into its wire form: the registry op
// name and the JSON args a server-side DecodeWireCommand (or recovery
// replay) decodes back into the identical typed command. The encoding is
// byte-compatible with the journal's record format — Resume encodes as op
// "suspend" with the resume flag, ad-hoc changes and evolutions serialize
// their operations through the change codec. Foreign Command
// implementations are rejected with ErrInvalid, mirroring SubmitAsync.
func EncodeCommand(cmd Command) (op string, args json.RawMessage, err error) {
	c, ok := cmd.(command)
	if !ok {
		return "", nil, &Error{Code: CodeInvalid, Op: cmd.CommandName(),
			Err: fmt.Errorf("adept2: foreign Command implementation %T", cmd)}
	}
	op = c.CommandName()
	var wire any = cmd
	switch t := cmd.(type) {
	case *Resume:
		op, wire = "suspend", suspendArgs{Instance: t.Instance, Resume: true}
	case *Suspend:
		wire = suspendArgs{Instance: t.Instance}
	default:
		if enc, isEnc := cmd.(argsEncoder); isEnc {
			w, encErr := enc.encodeArgs()
			if encErr != nil {
				return "", nil, wrapErr(op, c.target(), encErr)
			}
			wire = w
		}
	}
	blob, err := json.Marshal(wire)
	if err != nil {
		return "", nil, wrapErr(op, c.target(), err)
	}
	return op, blob, nil
}

// DecodeWireCommand resolves a wire (op, args) pair — produced by
// EncodeCommand on a remote client, or read from a journal — to its typed
// Command through the same registry recovery replay uses. Unknown ops and
// malformed args return ErrInvalid.
func DecodeWireCommand(op string, args json.RawMessage) (Command, error) {
	cmd, err := decodeCommand(op, args)
	if err != nil {
		return nil, &Error{Code: CodeInvalid, Op: op, Err: err}
	}
	return cmd, nil
}

// HTTPStatus maps a taxonomy code onto the HTTP status the networked
// command plane answers with. The mapping is total: unknown codes fall
// back to 500 like CodeInternal.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeInvalid:
		return http.StatusBadRequest // 400
	case CodeNotFound:
		return http.StatusNotFound // 404
	case CodeConflict, CodeVersionSkew:
		return http.StatusConflict // 409
	case CodeDenied:
		return http.StatusForbidden // 403
	case CodeSuspended:
		return http.StatusLocked // 423
	case CodeCompleted:
		return http.StatusGone // 410
	case CodeNotCompliant:
		return http.StatusUnprocessableEntity // 422
	case CodeWedged:
		return http.StatusServiceUnavailable // 503
	case CodeCanceled, CodeTimeout:
		return http.StatusRequestTimeout // 408
	case CodeFailed:
		return http.StatusConflict // 409: activity state contradicts the request
	case CodeInternal, CodeUnrecoverable:
		return http.StatusInternalServerError // 500
	default:
		return http.StatusInternalServerError
	}
}

// CodeForHTTPStatus is the client-side fallback mapping for responses
// whose error envelope was lost (proxies, panics): the best-effort code
// for a bare status. It inverts HTTPStatus where the inverse is unique
// and picks the broader class where it is not (409 → CodeConflict).
func CodeForHTTPStatus(status int) Code {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalid
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusForbidden:
		return CodeDenied
	case http.StatusLocked:
		return CodeSuspended
	case http.StatusGone:
		return CodeCompleted
	case http.StatusUnprocessableEntity:
		return CodeNotCompliant
	case http.StatusServiceUnavailable:
		return CodeWedged
	case http.StatusRequestTimeout:
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// NumShards returns the durability layout's shard count: 1 for the
// single-journal (and journal-less) layouts, the WAL's count for sharded
// ones. Wire receipt tokens identify a record by (shard, shard-local
// sequence number), so clients size their watermark tracking from this.
func (s *System) NumShards() int {
	if s.wal != nil {
		return s.wal.Shards()
	}
	return 1
}

// DurableWatermarks returns every shard's durable watermark: the highest
// shard-local sequence number covered by an fsync. A Receipt for (shard,
// seq) is durable exactly when watermark[shard] >= seq — the invariant
// the wire plane's watermark stream carries to remote clients. Layouts
// without group commit are durable on return, so their watermark is the
// journal head.
func (s *System) DurableWatermarks() []int {
	switch {
	case s.wal != nil:
		seqs, depths := s.wal.Seqs(), s.wal.Depths()
		for k := range seqs {
			seqs[k] -= depths[k]
		}
		return seqs
	case s.committer != nil:
		return []int{s.committer.Flushed()}
	case s.journal != nil:
		return []int{s.journal.Seq()}
	default:
		return []int{0}
	}
}

// WaitDurable blocks until shard's durable watermark covers seq, the
// durability pipeline wedges (ErrWedged), or ctx is done (ErrCanceled).
// seq may lie beyond the journal head: the wait then spans the append
// AND its flush, which is what lets a watermark streamer park until the
// next record lands. Durable-on-return layouts poll (their watermark
// advances with every append).
func (s *System) WaitDurable(ctx context.Context, shard, seq int) error {
	const op = "wait_durable"
	n := s.NumShards()
	if shard < 0 || shard >= n {
		return &Error{Code: CodeInvalid, Op: op,
			Err: fmt.Errorf("adept2: shard %d out of range [0,%d)", shard, n)}
	}
	for {
		if s.DurableWatermarks()[shard] >= seq {
			return nil
		}
		var err error
		switch {
		case s.wal != nil:
			err = s.wal.WaitShardSeq(ctx, shard, seq)
		case s.committer != nil:
			err = s.committer.WaitSeq(ctx, seq)
		}
		if err != nil {
			return wrapErr(op, "", err)
		}
		if s.DurableWatermarks()[shard] >= seq {
			return nil
		}
		// Either a durable-on-return layout (no committer to park on) or
		// a committer that settled without covering seq (shutdown
		// straggler): poll instead of spinning.
		select {
		case <-ctx.Done():
			return wrapErr(op, "", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// SyncDurable forces every staged journal record durable (one flush +
// fsync per shard), advancing the watermarks to the journal heads. The
// wire plane calls this on graceful drain so in-flight receipts resolve
// before streams close; it is also a barrier for tests.
func (s *System) SyncDurable() error {
	var err error
	switch {
	case s.wal != nil:
		err = s.wal.Sync()
	case s.committer != nil:
		err = s.committer.Sync()
	}
	return wrapErr("sync", "", err)
}

// WireRecord is one journal record in wire form: the shard-local
// sequence number, the control epoch it was stamped under (0 on the
// control log itself and in single-journal layouts), and the registry op
// + args. DecodeWireCommand turns Op/Args back into the typed command.
type WireRecord struct {
	Seq   int             `json:"seq"`
	Epoch int             `json:"epoch,omitempty"`
	Op    string          `json:"op"`
	Args  json.RawMessage `json:"args"`
}

// ControlLog reads the durable suffix of the control log — shard 0's
// journal in a sharded layout (the epoch-stamping global ordering
// primitive), the whole journal in a single-journal layout — returning
// records with afterSeq < seq <= durable watermark. Staged-but-unflushed
// records are withheld: a tail subscriber must never observe a record a
// crash could still revoke. Journal-less systems return (nil, 0, nil).
// The second result is the watermark the read was gated on, so a tailer
// resumes from max(lastSeen, watermark) without re-scanning.
func (s *System) ControlLog(afterSeq int) ([]WireRecord, int, error) {
	var path string
	switch {
	case s.wal != nil:
		path = s.wal.Journal(0).Path()
	case s.journal != nil:
		path = s.journal.Path()
	default:
		return nil, 0, nil
	}
	wm := s.DurableWatermarks()[0]
	if wm <= afterSeq {
		return nil, wm, nil
	}
	recs, _, err := persist.LoadJournalSuffixFS(s.fsys, path, afterSeq)
	if err != nil {
		return nil, 0, wrapErr("control_log", "", err)
	}
	out := make([]WireRecord, 0, len(recs))
	for _, r := range recs {
		if r.Seq > wm {
			break // staged past the fsync watermark: not durable yet
		}
		out = append(out, WireRecord{Seq: r.Seq, Epoch: r.Epoch, Op: r.Op, Args: r.Args})
	}
	return out, wm, nil
}
