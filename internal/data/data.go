// Package data implements the ADEPT2 data manager: versioned values of
// process data elements. Every write appends a new version tagged with the
// writing activity and event sequence, so reads are reproducible during
// compliance replay and the "missing data after activity deletion" problem
// is decidable from the version history.
package data

import (
	"encoding/json"
	"fmt"
	"sort"

	"adept2/internal/model"
)

// Version is one write of a data element.
type Version struct {
	// Value is the written value (string, int64, bool, or float64).
	Value any `json:"value"`
	// Writer is the activity that wrote the value.
	Writer string `json:"writer"`
	// Seq is the event sequence number of the write.
	Seq int `json:"seq"`
}

// Store holds the versions of all data elements of one instance.
type Store struct {
	versions map[string][]Version
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{versions: make(map[string][]Version)}
}

// Write appends a version for the element.
func (s *Store) Write(elem string, value any, writer string, seq int) {
	s.versions[elem] = append(s.versions[elem], Version{Value: value, Writer: writer, Seq: seq})
}

// Read returns the latest value of the element.
func (s *Store) Read(elem string) (any, bool) {
	vs := s.versions[elem]
	if len(vs) == 0 {
		return nil, false
	}
	return vs[len(vs)-1].Value, true
}

// ReadAt returns the value the element held just before the given event
// sequence — the value an activity starting at seq observed. Compliance
// replay uses it to re-check data availability.
func (s *Store) ReadAt(elem string, seq int) (any, bool) {
	vs := s.versions[elem]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Seq < seq {
			return vs[i].Value, true
		}
	}
	return nil, false
}

// Has reports whether the element has at least one version.
func (s *Store) Has(elem string) bool { return len(s.versions[elem]) > 0 }

// Versions returns the full version history of the element.
func (s *Store) Versions(elem string) []Version { return s.versions[elem] }

// Elements returns all element IDs with at least one version, sorted.
func (s *Store) Elements() []string {
	ids := make([]string, 0, len(s.versions))
	for id := range s.versions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DropWritesBy removes all versions written by the given activity. The
// change framework calls it when an activity whose outputs were never
// consumed is deleted.
func (s *Store) DropWritesBy(writer string) {
	for elem, vs := range s.versions {
		kept := vs[:0]
		for _, v := range vs {
			if v.Writer != writer {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(s.versions, elem)
		} else {
			s.versions[elem] = kept
		}
	}
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := NewStore()
	for elem, vs := range s.versions {
		c.versions[elem] = append([]Version(nil), vs...)
	}
	return c
}

// ApproxBytes estimates the memory held by the store.
func (s *Store) ApproxBytes() int {
	total := 0
	for elem, vs := range s.versions {
		total += len(elem) + 16
		for _, v := range vs {
			total += len(v.Writer) + 32
			if str, ok := v.Value.(string); ok {
				total += len(str)
			}
		}
	}
	return total
}

// MarshalJSON implements json.Marshaler.
func (s *Store) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.versions)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Store) UnmarshalJSON(b []byte) error {
	m := make(map[string][]Version)
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("data: unmarshal store: %w", err)
	}
	// JSON numbers decode as float64; integers are re-normalized lazily by
	// Coerce at the call sites that care about the static type.
	s.versions = m
	return nil
}

// Coerce converts a dynamic value to the element's declared type. It
// accepts the native Go type, the JSON decoding of it, and (for int/float)
// plain int values from call sites.
func Coerce(value any, t model.DataType) (any, error) {
	switch t {
	case model.TypeString:
		if v, ok := value.(string); ok {
			return v, nil
		}
	case model.TypeBool:
		if v, ok := value.(bool); ok {
			return v, nil
		}
	case model.TypeInt:
		switch v := value.(type) {
		case int64:
			return v, nil
		case int:
			return int64(v), nil
		case float64:
			if v == float64(int64(v)) {
				return int64(v), nil
			}
		}
	case model.TypeFloat:
		switch v := value.(type) {
		case float64:
			return v, nil
		case int:
			return float64(v), nil
		case int64:
			return float64(v), nil
		}
	}
	return nil, fmt.Errorf("data: value %v (%T) is not assignable to %s", value, value, t)
}

// AsInt extracts an integer decision value (XOR split routing).
func AsInt(value any) (int, bool) {
	switch v := value.(type) {
	case int64:
		return int(v), true
	case int:
		return v, true
	case float64:
		if v == float64(int64(v)) {
			return int(v), true
		}
	}
	return 0, false
}

// AsBool extracts a boolean decision value (loop repetition).
func AsBool(value any) (bool, bool) {
	v, ok := value.(bool)
	return v, ok
}
