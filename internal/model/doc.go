// Package model defines the ADEPT2 process meta model: block-structured
// process schemas (WSM nets) consisting of activity and gateway nodes,
// control edges, sync edges (cross-branch ordering constraints inside
// parallel blocks), loop edges, and explicit data flow (typed data elements
// connected to activities through read/write data edges).
//
// A Schema is the buildtime artifact. All consumers (the verifier, the
// execution engine, the change framework, the compliance checker) operate
// on the read-only SchemaView interface so that biased instances can
// substitute an overlay view (see internal/storage) without materializing
// a full per-instance schema copy — the hybrid representation of Fig. 2 of
// the ADEPT2 paper.
//
// # Topology index invariants
//
// Every SchemaView exposes a precomputed Topology: per-node adjacency
// slices split by edge type plus derived node lists (auto-executable
// nodes, manual activities). The index obeys the following invariants,
// which the marking evaluator (internal/state), the engine cascade, and
// the compliance replayer rely on:
//
//   - Completeness: Topology().Of(id) is non-nil exactly for the IDs in
//     NodeIDs(), and NodeTopology.Index equals the ID's position there.
//     NodeTopology.Node is the same *Node that Node(id) returns.
//   - Partition: the six edge slices of a node partition InEdges/OutEdges
//     by EdgeType — every incident edge appears in exactly one slice, and
//     the *Edge pointers are shared with Edges() (no copies).
//   - Derived lists: AutoExecutable() holds exactly the nodes with
//     CanAutoExecute() true, ManualActivities() exactly the non-Auto
//     NodeActivity nodes, both in NodeIDs() order.
//   - Coherence: the index is invalidated by every structural mutation
//     (node/edge add, remove, replace). *Schema clears its cache slot on
//     mutation and rebuilds on demand (safe under concurrent readers: the
//     slot is atomic and the build idempotent); the storage overlay
//     rebuilds the index together with its adjacency caches on refresh.
//     A *Topology held across a mutation of its view is stale — re-fetch
//     it instead. Data elements and data edges do not affect the index
//     (the per-activity data-edge map is maintained separately by
//     DataEdgesOf).
//   - Immutability: callers must never mutate the returned slices; one
//     Topology is shared by every concurrent reader of a deployed schema.
//
// # Interning invariants
//
// The Topology doubles as the view's node/edge interner: every node owns a
// dense NodeIdx equal to its position in NodeIDs() (contiguous in
// [0, NumNodes())), every edge a dense EdgeIdx equal to its position in
// Edges(). Consumers that index per-instance state by these indices
// (internal/state.Marking, internal/history.Stats, the compliance
// replayer's scratch) rely on:
//
//   - Index validity window: a NodeIdx/EdgeIdx is meaningful only for the
//     exact *Topology value that assigned it. The window opens when the
//     index is obtained from a Topology and closes when the view's
//     Topology() returns a different pointer — i.e. at the next structural
//     mutation (Schema cache invalidation) or overlay bias refresh.
//     Indices must never be mixed across Topology values, not even for
//     views with identical node sets: only the string IDs are stable
//     identity.
//   - Remap-on-refresh: state keyed by interned indices must be remapped
//     through the string IDs when the topology pointer changes. The
//     marking does this transparently — every view-taking entry point of
//     internal/state compares the bound topology pointer against
//     v.Topology() and translates node states, skip stamps, edge signals,
//     and the pending worklist by identity; states of nodes/edges absent
//     from the new topology are dropped, new ones start in their zero
//     state. history.Stats follows the same rule via Rebind (with an
//     overflow map as a correctness net for deferred rebinds). The
//     overlay's bias refresh path (internal/storage) triggers this by
//     rebuilding its Topology together with its adjacency caches, so a
//     bias that alters the node set re-interns and every bound consumer
//     remaps on next contact.
//   - Order preservation: interned indices order exactly like view order
//     (NodeIdx ascending == NodeIDs order), so sorting activation sets by
//     index reproduces the deterministic schema order the string API
//     promised.
package model
