package verify

import (
	"sort"

	"adept2/internal/graph"
	"adept2/internal/model"
)

// checkDataFlow performs the buildtime data flow analysis: every mandatory
// input parameter (and every gateway decision element) must be *definitely
// written* on every execution path leading to the consumer — the paper's
// "erroneous data flows" / "missing data" guarantee. The analysis is a
// forward must-analysis over the acyclic control-flow graph:
//
//   - a node with a single control predecessor inherits its predecessor's
//     written set;
//   - an AND join takes the union of its branches (all of them execute);
//   - an XOR join takes the intersection (only one executes);
//   - loop bodies execute at least once (ADEPT loops are do-while), so the
//     body's writes are definite after the loop end.
//
// Sync edges additionally transport writes between parallel branches, but
// only when the source is *guaranteed* to execute whenever the target
// does (no XOR block diverges between them beyond the common path).
//
// The same pass emits warnings for racy parallel access: two unordered
// writers of one element (lost update) and unordered writer/reader pairs
// (unstable read).
func checkDataFlow(v model.SchemaView, info *graph.Info, r *Result) {
	order, err := graph.TopoOrder(v, graph.Control)
	if err != nil {
		return // structure errors already reported
	}

	writesOf := make(map[string][]string) // node -> elements written
	for _, de := range v.DataEdges() {
		if de.Access == model.Write {
			writesOf[de.Activity] = append(writesOf[de.Activity], de.Element)
		}
	}

	written := make(map[string]map[string]bool, len(order)) // node -> definitely-written set on entry
	outSet := func(id string) map[string]bool {
		in := written[id]
		ws := writesOf[id]
		if len(ws) == 0 {
			return in
		}
		out := make(map[string]bool, len(in)+len(ws))
		for e := range in {
			out[e] = true
		}
		for _, e := range ws {
			out[e] = true
		}
		return out
	}
	outCache := make(map[string]map[string]bool, len(order))

	for _, id := range order {
		n, _ := v.Node(id)
		preds := model.ControlPreds(v, id)
		var in map[string]bool
		switch {
		case len(preds) == 0:
			in = map[string]bool{}
		case len(preds) == 1:
			in = outCache[preds[0]]
		default:
			if n.Type == model.NodeANDJoin {
				in = make(map[string]bool)
				for _, p := range preds {
					for e := range outCache[p] {
						in[e] = true
					}
				}
			} else {
				// XOR join (and any other multi-pred node): intersection.
				in = make(map[string]bool)
				for e := range outCache[preds[0]] {
					all := true
					for _, p := range preds[1:] {
						if !outCache[p][e] {
							all = false
							break
						}
					}
					if all {
						in[e] = true
					}
				}
			}
		}
		written[id] = in
		outCache[id] = outSet(id)
	}

	// Validate consumers: mandatory reads and gateway decision elements.
	for _, id := range order {
		n, _ := v.Node(id)
		for _, de := range v.DataEdgesOf(id) {
			if de.Access != model.Read || !de.Mandatory {
				continue
			}
			if _, ok := v.DataElement(de.Element); !ok {
				continue // dangling reference reported elsewhere
			}
			if !suppliedAt(v, info, written, id, de.Element) {
				r.add(CodeMissingData, Error, []string{id},
					"activity %q reads element %q (parameter %q) but no writer is guaranteed on every path", id, de.Element, de.Parameter)
			}
		}
		if n.DecisionElement != "" {
			elem, ok := v.DataElement(n.DecisionElement)
			if !ok {
				r.add(CodeDecisionData, Error, []string{id},
					"node %q consults unknown decision element %q", id, n.DecisionElement)
				continue
			}
			if !suppliedAt(v, info, written, id, n.DecisionElement) {
				r.add(CodeMissingData, Error, []string{id},
					"node %q decides on element %q but no writer is guaranteed on every path", id, n.DecisionElement)
			}
			switch n.Type {
			case model.NodeXORSplit:
				if elem.Type != model.TypeInt {
					r.add(CodeDecisionData, Warning, []string{id},
						"xor split %q decision element %q has type %s, expected int", id, elem.ID, elem.Type)
				}
			case model.NodeLoopEnd:
				if elem.Type != model.TypeBool {
					r.add(CodeDecisionData, Warning, []string{id},
						"loop end %q decision element %q has type %s, expected bool", id, elem.ID, elem.Type)
				}
			}
		}
	}

	checkParallelAccess(v, info, r)
}

// suppliedAt reports whether the element is definitely written when the
// node starts: either on every control path (must-analysis) or through a
// guaranteed sync-edge supplier.
func suppliedAt(v model.SchemaView, info *graph.Info, written map[string]map[string]bool, node, elem string) bool {
	if written[node][elem] {
		return true
	}
	for _, src := range model.SyncPreds(v, node) {
		if !writesElement(v, src, elem) {
			continue
		}
		if syncGuaranteed(info, src, node) {
			return true
		}
	}
	return false
}

func writesElement(v model.SchemaView, node, elem string) bool {
	for _, de := range v.DataEdgesOf(node) {
		if de.Access == model.Write && de.Element == elem {
			return true
		}
	}
	return false
}

// syncGuaranteed reports whether the sync source executes whenever the
// target does: beyond the block path shared with the target, the source
// must sit only inside AND branches (never inside an XOR branch the
// target does not share).
func syncGuaranteed(info *graph.Info, src, dst string) bool {
	ps, pd := info.Path(src), info.Path(dst)
	common := 0
	for common < len(ps) && common < len(pd) &&
		ps[common].Block == pd[common].Block && ps[common].Branch == pd[common].Branch {
		common++
	}
	for _, ref := range ps[common:] {
		if ref.Block.Kind == model.NodeXORSplit {
			return false
		}
	}
	return true
}

// checkParallelAccess warns about unsynchronized concurrent access to the
// same data element from different branches of a parallel block.
func checkParallelAccess(v model.SchemaView, info *graph.Info, r *Result) {
	type access struct {
		node  string
		write bool
	}
	byElem := make(map[string][]access)
	for _, de := range v.DataEdges() {
		byElem[de.Element] = append(byElem[de.Element], access{node: de.Activity, write: de.Access == model.Write})
	}
	elems := make([]string, 0, len(byElem))
	for e := range byElem {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	for _, elem := range elems {
		accs := byElem[elem]
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a, b := accs[i], accs[j]
				if !a.write && !b.write {
					continue // two reads never conflict
				}
				blk, _, _, diverge := info.Divergence(a.node, b.node)
				if !diverge || blk.Kind != model.NodeANDSplit {
					continue // ordered, exclusive, or same branch
				}
				// Parallel and potentially racy unless a sync path orders
				// them.
				if graph.HasPath(v, a.node, b.node, graph.ControlAndSync) ||
					graph.HasPath(v, b.node, a.node, graph.ControlAndSync) {
					continue
				}
				nodes := []string{a.node, b.node}
				sort.Strings(nodes)
				if a.write && b.write {
					r.add(CodeLostUpdate, Warning, nodes,
						"activities write element %q in unordered parallel branches (lost update)", elem)
				} else {
					r.add(CodeUnstableRead, Warning, nodes,
						"parallel unordered read/write of element %q (unstable read)", elem)
				}
			}
		}
	}
}
