package adept2_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"adept2"
	"adept2/internal/rpc"
	"adept2/internal/sim"
	"adept2/internal/state"
)

// cmdDriver feeds a random command stream into a System through all
// three submission paths (Submit, SubmitAsync, SubmitBatch), picked at
// random per step. Command rejections are tolerated — a rejected command
// mutates nothing and journals nothing — so the driver can propose
// sloppily and still leave live state and journal in exact agreement.
type cmdDriver struct {
	t        *testing.T
	sys      *adept2.System
	rng      *rand.Rand
	ctx      context.Context
	insts    []string
	receipts []*adept2.Receipt
	applied  int
}

func newCmdDriver(t *testing.T, sys *adept2.System, seed int64) *cmdDriver {
	t.Helper()
	d := &cmdDriver{t: t, sys: sys, rng: rand.New(rand.NewSource(seed)), ctx: context.Background()}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	return d
}

// userFor picks a user holding the node's role ("" for auto/role-less
// nodes, a non-candidate sometimes never — rejections are exercised by
// the random walk anyway via wrong node states).
func (d *cmdDriver) userFor(role string) string {
	if role == "" {
		return ""
	}
	org := d.sys.Org()
	for _, u := range []string{"ann", "bob"} {
		if org.HasRole(u, role) {
			return u
		}
	}
	return "ann"
}

// proposeComplete builds a CompleteActivity for a random activated or
// running node of the instance (nil when it has none).
func (d *cmdDriver) proposeComplete(instID string) adept2.Command {
	inst, ok := d.sys.Instance(instID)
	if !ok {
		return nil
	}
	v := inst.View()
	var ready []string
	for _, id := range v.NodeIDs() {
		if st := inst.NodeState(id); st == state.Activated || st == state.Running {
			ready = append(ready, id)
		}
	}
	if len(ready) == 0 {
		return nil
	}
	node := ready[d.rng.Intn(len(ready))]
	n, _ := v.Node(node)
	var outputs map[string]any
	if node == "get_order" {
		outputs = map[string]any{"out": fmt.Sprintf("o-%d", d.rng.Int())}
	}
	return &adept2.CompleteActivity{Instance: instID, Node: node, User: d.userFor(n.Role), Outputs: outputs}
}

// propose builds the next random command. It may return nil (nothing
// sensible to do this step).
func (d *cmdDriver) propose() adept2.Command {
	pickInst := func() string {
		if len(d.insts) == 0 {
			return ""
		}
		return d.insts[d.rng.Intn(len(d.insts))]
	}
	switch r := d.rng.Intn(100); {
	case r < 20 || len(d.insts) == 0:
		return &adept2.CreateInstance{TypeName: "online_order"}
	case r < 60:
		return d.proposeComplete(pickInst())
	case r < 70:
		return &adept2.Suspend{Instance: pickInst()}
	case r < 80:
		return &adept2.Resume{Instance: pickInst()}
	case r < 88:
		return &adept2.AdHoc{Instance: pickInst(), Ops: sim.OnlineOrderBiasI2()}
	case r < 94:
		return &adept2.Undo{Instance: pickInst()}
	default:
		return &adept2.Evolve{TypeName: "online_order", Ops: sim.OnlineOrderTypeChange()}
	}
}

// note records the outcome of a submission: new instances join the pool,
// rejections are tolerated, unexpected error classes fail the test.
func (d *cmdDriver) note(res any, err error) {
	if err != nil {
		var e *adept2.Error
		if !errors.As(err, &e) {
			d.t.Fatalf("untyped command error: %v", err)
		}
		return
	}
	d.applied++
	if inst, ok := res.(*adept2.Instance); ok {
		d.insts = append(d.insts, inst.ID())
	}
}

// step submits one random command through a random path.
func (d *cmdDriver) step() {
	switch d.rng.Intn(3) {
	case 0: // blocking submit
		cmd := d.propose()
		if cmd == nil {
			return
		}
		d.note(d.sys.Submit(d.ctx, cmd))
	case 1: // pipelined async submit
		cmd := d.propose()
		if cmd == nil {
			return
		}
		r, err := d.sys.SubmitAsync(d.ctx, cmd)
		if err != nil {
			d.note(nil, err)
			return
		}
		d.note(r.Result(), nil)
		d.receipts = append(d.receipts, r)
	case 2: // batch of 1-4 commands
		n := 1 + d.rng.Intn(4)
		var batch []adept2.Command
		for i := 0; i < n; i++ {
			if cmd := d.propose(); cmd != nil {
				batch = append(batch, cmd)
			}
		}
		if len(batch) == 0 {
			return
		}
		results, err := d.sys.SubmitBatch(d.ctx, batch)
		for _, res := range results {
			d.note(res, nil)
		}
		if err != nil {
			d.note(nil, err)
		}
	}
	// Bound the receipt backlog; awaiting is also part of the contract.
	if len(d.receipts) >= 32 {
		d.drain()
	}
}

// drain awaits every outstanding receipt.
func (d *cmdDriver) drain() {
	for _, r := range d.receipts {
		if err := r.Wait(d.ctx); err != nil {
			d.t.Fatalf("receipt: %v", err)
		}
	}
	d.receipts = d.receipts[:0]
}

// TestDifferentialCommandRecovery is the PR 5 acceptance property test:
// random command sequences submitted through Submit, SubmitAsync, and
// SubmitBatch, then a crash (close + reopen from the journal), must
// reproduce the exact live engine state — for the single-journal and the
// sharded layout, with background checkpoints racing the traffic.
func TestDifferentialCommandRecovery(t *testing.T) {
	layouts := []struct {
		name string
		cfg  adept2.CheckpointConfig
	}{
		{"single-journal", adept2.CheckpointConfig{Every: 24, GroupCommit: true}},
		{"sharded-4", adept2.CheckpointConfig{Every: 24, GroupCommit: true, Shards: 4}},
	}
	for _, l := range layouts {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", l.name, seed), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "wal.ndjson")
				sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(l.cfg))
				if err != nil {
					t.Fatal(err)
				}
				d := newCmdDriver(t, sys, seed)
				for i := 0; i < 150; i++ {
					d.step()
				}
				d.drain()
				if d.applied < 50 {
					t.Fatalf("random walk applied only %d commands — driver degenerated", d.applied)
				}
				if err := sys.WaitCheckpoints(); err != nil {
					t.Fatal(err)
				}
				if err := sys.Health(); err != nil {
					t.Fatal(err)
				}
				if err := sys.Close(); err != nil {
					t.Fatal(err)
				}

				got, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(l.cfg))
				if err != nil {
					t.Fatal(err)
				}
				defer got.Close()
				assertSameState(t, sys, got)
			})
		}
	}
}

// TestDifferentialConcurrentAsyncRecovery drives pipelined async
// submissions from several goroutines (disjoint instances, so the
// interleaving commutes), with control commands racing through the
// exclusive barrier, then recovers and compares. Run under -race in CI.
func TestDifferentialConcurrentAsyncRecovery(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.ndjson")
			cfg := adept2.CheckpointConfig{Every: 32, GroupCommit: true, Shards: shards}
			sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Deploy(sim.OnlineOrder()); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			const workers = 6
			ids := make([]string, workers)
			for w := range ids {
				inst, err := sys.CreateInstance("online_order")
				if err != nil {
					t.Fatal(err)
				}
				ids[w] = inst.ID()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var receipts []*adept2.Receipt
					submit := func(cmd adept2.Command) {
						r, err := sys.SubmitAsync(ctx, cmd)
						if err != nil {
							t.Error(err)
							return
						}
						receipts = append(receipts, r)
					}
					submit(&adept2.CompleteActivity{Instance: ids[w], Node: "get_order", User: "ann",
						Outputs: map[string]any{"out": fmt.Sprintf("w%d", w)}})
					for i := 0; i < 24; i++ {
						submit(&adept2.Suspend{Instance: ids[w]})
						submit(&adept2.Resume{Instance: ids[w]})
					}
					for _, r := range receipts {
						if err := r.Wait(ctx); err != nil {
							t.Error(err)
						}
					}
				}(w)
			}
			// Control traffic through the exclusive barrier.
			for i := 0; i < 4; i++ {
				if err := sys.AddUser(&adept2.User{ID: fmt.Sprintf("u%d", i), Roles: []string{"clerk"}}); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			if err := sys.WaitCheckpoints(); err != nil {
				t.Fatal(err)
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			got, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			assertSameState(t, sys, got)
		})
	}
}

// TestDifferentialRemoteLocal drives the identical seeded command
// stream into an in-process system and into a second system behind the
// networked command plane (cycling the remote submission mode across
// sync, async-receipt, and batch), asserting that every step agrees on
// outcome and taxonomy code. The remote system is then drained,
// crashed (closed), and recovered from its journal — its state must
// match the local system exactly: the wire plane neither loses nor
// reorders anything the in-process API would have preserved.
func TestDifferentialRemoteLocal(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			cfg := adept2.CheckpointConfig{Every: 24, GroupCommit: true, Shards: 4}
			local, err := adept2.Open(filepath.Join(t.TempDir(), "local.ndjson"),
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()
			remotePath := filepath.Join(t.TempDir(), "remote.ndjson")
			remote, err := adept2.Open(remotePath,
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
			if err != nil {
				t.Fatal(err)
			}
			srv, err := rpc.NewServer(remote, rpc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cli, err := rpc.Dial(ctx, srv.URL())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			d := newCmdDriver(t, local, seed) // deploys on local
			if _, err := cli.Submit(ctx, &adept2.Deploy{Schema: sim.OnlineOrder()}); err != nil {
				t.Fatal(err)
			}

			var receipts []*rpc.Receipt
			for i := 0; i < 120; i++ {
				cmd := d.propose()
				if cmd == nil {
					continue
				}
				lres, lerr := local.Submit(ctx, cmd)
				d.note(lres, lerr)
				var rerr error
				mode := i % 3
				switch mode {
				case 0:
					_, rerr = cli.Submit(ctx, cmd)
				case 1:
					var rcpt *rpc.Receipt
					rcpt, rerr = cli.SubmitAsync(ctx, cmd)
					if rerr == nil {
						receipts = append(receipts, rcpt)
					}
				case 2:
					_, rerr = cli.SubmitBatch(ctx, []adept2.Command{cmd})
				}
				if (lerr == nil) != (rerr == nil) {
					t.Fatalf("step %d (%s): local err %v, remote err %v", i, cmd.CommandName(), lerr, rerr)
				}
				if lerr != nil && mode != 2 {
					var le, re *adept2.Error
					if !errors.As(lerr, &le) || !errors.As(rerr, &re) || le.Code != re.Code {
						t.Fatalf("step %d (%s): taxonomy diverged across the wire: local %v, remote %v",
							i, cmd.CommandName(), lerr, rerr)
					}
				}
			}
			if d.applied < 40 {
				t.Fatalf("random walk applied only %d commands — driver degenerated", d.applied)
			}
			for _, rcpt := range receipts {
				if err := rcpt.Wait(ctx); err != nil {
					t.Fatalf("remote receipt: %v", err)
				}
			}

			// Drain the wire plane, crash the remote system, recover it.
			if err := srv.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if err := remote.WaitCheckpoints(); err != nil {
				t.Fatal(err)
			}
			if err := remote.Close(); err != nil {
				t.Fatal(err)
			}
			recovered, err := adept2.Open(remotePath,
				adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			assertSameState(t, local, recovered)
		})
	}
}
