// Command quickstart shows the minimal ADEPT2 workflow: model a schema,
// deploy it, drive an instance through its worklist, and apply an ad-hoc
// change while the instance runs.
package main

import (
	"fmt"
	"log"

	"adept2"
)

func main() {
	// 1. Model a small credit-request process.
	b := adept2.NewBuilder("credit_request")
	b.DataElement("amount", adept2.TypeInt)
	receive := b.Activity("receive", "Receive Request", adept2.WithRole("clerk"))
	b.Write("receive", "amount", "amount")
	check := b.Activity("check", "Check Solvency", adept2.WithRole("analyst"))
	b.Read("check", "amount", "amount", true)
	decide := b.Activity("decide", "Decide", adept2.WithRole("manager"))
	schema, err := b.Build(b.Seq(receive, check, decide))
	if err != nil {
		log.Fatalf("build schema: %v", err)
	}

	// 2. Set up the system with an org model and deploy.
	sys := adept2.New()
	for _, u := range []*adept2.User{
		{ID: "ann", Name: "Ann", Roles: []string{"clerk"}},
		{ID: "bob", Name: "Bob", Roles: []string{"analyst"}},
		{ID: "eve", Name: "Eve", Roles: []string{"manager", "analyst"}},
	} {
		if err := sys.Org().AddUser(u); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Deploy(schema); err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Print(adept2.RenderSchema(schema))

	// 3. Create an instance and work through the worklist.
	inst, err := sys.CreateInstance("credit_request")
	if err != nil {
		log.Fatal(err)
	}
	items := sys.WorkItems("ann")
	fmt.Printf("\nann's worklist: %d item(s), first: %s\n", len(items), items[0].Node)
	if err := sys.Claim(items[0].ID, "ann"); err != nil {
		log.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "receive", "ann", map[string]any{"amount": 5000}); err != nil {
		log.Fatal(err)
	}

	// 4. Ad-hoc change: this single request additionally needs a second
	// opinion, inserted between check and decide — only for this instance.
	err = sys.AdHocChange(inst.ID(), &adept2.SerialInsert{
		Node: &adept2.Node{ID: "second_opinion", Name: "Second Opinion", Type: adept2.NodeActivity, Role: "analyst", Template: "second_opinion"},
		Pred: "check",
		Succ: "decide",
	})
	if err != nil {
		log.Fatalf("ad-hoc change: %v", err)
	}
	fmt.Printf("\nafter ad-hoc change (biased=%v):\n", inst.Biased())
	fmt.Print(adept2.RenderInstance(inst))

	// 5. Finish the instance on its individually changed schema.
	for _, step := range []struct{ node, user string }{
		{"check", "bob"},
		{"second_opinion", "eve"},
		{"decide", "eve"},
	} {
		if err := sys.Complete(inst.ID(), step.node, step.user, nil); err != nil {
			log.Fatalf("complete %s: %v", step.node, err)
		}
	}
	fmt.Printf("\ninstance done: %v, history:\n", inst.Done())
	for _, e := range inst.HistoryEvents() {
		fmt.Printf("  %s\n", e)
	}
}
