package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"adept2"
)

// Client is the typed remote face of a System: it mirrors the façade's
// Submit/SubmitAsync/SubmitBatch and read surface over the wire
// protocol. Async receipts resolve against one shared watermark stream
// — the client tracks every shard's durable watermark locally and a
// Receipt for (shard, seq) resolves the moment watermark[shard] >= seq,
// so any number of in-flight receipts cost one server stream. Safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client

	ctx    context.Context // watcher lifetime; Close cancels
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	wm        []int         // per-shard durable watermarks learned
	shardErr  []error       // sticky per-shard wedge from the stream
	changed   chan struct{} // closed + replaced on every update
	watching  bool
	streamErr error // sticky stream loss; cleared by a successful refresh
}

// Dial connects to a Server's base URL (e.g. "http://127.0.0.1:8137"),
// verifying connectivity and learning the shard layout from the
// watermark snapshot. ctx bounds only the handshake.
func Dial(ctx context.Context, base string) (*Client, error) {
	// A dedicated transport sized for pipelined submitters: the default
	// transport keeps only 2 idle connections per host, so concurrent
	// writers past that churn through fresh TCP connections on every
	// request. Size the idle pool to the server's default inflight cap.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 64
	tr.MaxIdleConnsPerHost = 64
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr}}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.changed = make(chan struct{})
	var snap WatermarksSnapshot
	if err := c.get(ctx, "/v1/watermarks?once=1", &snap); err != nil {
		c.cancel()
		return nil, err
	}
	if len(snap.Durable) == 0 {
		c.cancel()
		return nil, &adept2.Error{Code: adept2.CodeInternal, Op: "dial",
			Err: fmt.Errorf("rpc: %s answered an empty watermark snapshot", base)}
	}
	c.wm = snap.Durable
	c.shardErr = make([]error, len(snap.Durable))
	return c, nil
}

// Close ends the watermark watcher and releases connections. Receipts
// still waiting resolve with an error.
func (c *Client) Close() error {
	c.cancel()
	c.wg.Wait()
	c.hc.CloseIdleConnections()
	return nil
}

// Receipt is the remote durability promise of an async submission: the
// mutation is applied and its journal record staged server-side; Wait
// resolves once the record's (shard, seq) token is covered by the
// streamed durable watermark — the same fsync-coverage contract as the
// in-process Receipt.
type Receipt struct {
	c       *Client
	op      string
	shard   int
	seq     int
	result  *ResultSummary
	durable bool

	mu   sync.Mutex
	done bool
	err  error
}

// Shard and Seq are the receipt token: the journal position the
// command's record received.
func (r *Receipt) Shard() int { return r.shard }
func (r *Receipt) Seq() int   { return r.seq }

// Result returns the command's wire-projected result (valid since
// submission; crash-durable only once Wait resolves).
func (r *Receipt) Result() *ResultSummary { return r.result }

// Wait blocks until the record is durable on the server, the remote
// durability pipeline wedges (ErrWedged), the stream is lost without a
// recovery path, or ctx is done (ErrCanceled — the record stays
// submitted, a later Wait can still resolve). Idempotent, safe for
// concurrent use.
func (r *Receipt) Wait(ctx context.Context) error {
	r.mu.Lock()
	if r.done {
		err := r.err
		r.mu.Unlock()
		return err
	}
	durable := r.durable
	r.mu.Unlock()
	var err error
	if !durable {
		err = r.c.awaitDurable(ctx, r.shard, r.seq, r.op)
	}
	if err != nil {
		var ae *adept2.Error
		if errors.As(err, &ae) && ae.Code == adept2.CodeCanceled {
			// Cancellation abandons only this wait, not the outcome.
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.done {
		r.done = true
		r.err = err
	}
	return r.err
}

// awaitDurable parks until the shard's learned watermark covers seq,
// lazily starting the shared watcher. On stream loss it refreshes the
// snapshot once (which both resolves already-durable receipts — e.g.
// after a server drain emitted finals — and restarts the watcher when
// the server is still up); a second loss fails the wait.
func (c *Client) awaitDurable(ctx context.Context, shard, seq int, op string) error {
	refreshed := false
	for {
		c.mu.Lock()
		if shard < 0 || shard >= len(c.wm) {
			c.mu.Unlock()
			return &adept2.Error{Code: adept2.CodeInvalid, Op: op,
				Err: fmt.Errorf("rpc: shard %d out of range [0,%d)", shard, len(c.wm))}
		}
		if c.wm[shard] >= seq {
			c.mu.Unlock()
			return nil
		}
		if serr := c.shardErr[shard]; serr != nil {
			c.mu.Unlock()
			return serr
		}
		streamErr := c.streamErr
		if streamErr == nil {
			c.ensureWatcherLocked()
		}
		ch := c.changed
		c.mu.Unlock()

		if streamErr != nil {
			if refreshed {
				return &adept2.Error{Code: adept2.CodeWedged, Op: op, Applied: true,
					Err: fmt.Errorf("rpc: watermark stream lost: %w", streamErr)}
			}
			refreshed = true
			if err := c.refreshWatermarks(ctx); err != nil {
				return &adept2.Error{Code: adept2.CodeWedged, Op: op, Applied: true,
					Err: fmt.Errorf("rpc: watermark stream lost (%v); refresh: %w", streamErr, err)}
			}
			c.mu.Lock()
			if c.streamErr == streamErr {
				c.streamErr = nil // server reachable again: let the watcher restart
			}
			c.mu.Unlock()
			continue
		}
		select {
		case <-ctx.Done():
			return &adept2.Error{Code: adept2.CodeCanceled, Op: op, Applied: true, Err: ctx.Err()}
		case <-ch:
		}
	}
}

// refreshWatermarks folds one snapshot fetch into the learned
// watermarks.
func (c *Client) refreshWatermarks(ctx context.Context) error {
	var snap WatermarksSnapshot
	if err := c.get(ctx, "/v1/watermarks?once=1", &snap); err != nil {
		return err
	}
	c.mu.Lock()
	for k, wm := range snap.Durable {
		if k < len(c.wm) && wm > c.wm[k] {
			c.wm[k] = wm
		}
	}
	c.bumpLocked()
	c.mu.Unlock()
	return nil
}

// Watch eagerly connects the shared watermark stream (normally the
// first parked Wait starts it lazily). Useful before a window where
// the server might drain: a connected stream is guaranteed to observe
// the drain's final watermarks.
func (c *Client) Watch() {
	c.mu.Lock()
	c.ensureWatcherLocked()
	c.mu.Unlock()
}

// ensureWatcherLocked starts the shared stream watcher if it is not
// running. Callers hold c.mu.
func (c *Client) ensureWatcherLocked() {
	if c.watching {
		return
	}
	c.watching = true
	c.wg.Add(1)
	go c.watch()
}

// watch consumes the server's watermark stream, folding every event
// into the learned watermarks and waking waiters. Stream loss (EOF on
// drain, connection failure) is recorded sticky; waiters fall back to
// one snapshot refresh.
func (c *Client) watch() {
	defer c.wg.Done()
	err := func() error {
		req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, c.base+"/v1/watermarks", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return responseError(resp)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var ev WatermarkEvent
			if err := dec.Decode(&ev); err != nil {
				return err
			}
			c.applyEvent(ev)
		}
	}()
	c.mu.Lock()
	c.watching = false
	c.streamErr = err
	if c.streamErr == nil {
		c.streamErr = io.EOF
	}
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *Client) applyEvent(ev WatermarkEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Shard < 0 || ev.Shard >= len(c.wm) {
		return
	}
	if ev.Err != "" {
		code := adept2.Code(ev.Code)
		if code == "" {
			code = adept2.CodeWedged
		}
		c.shardErr[ev.Shard] = &adept2.Error{Code: code, Op: "wait_durable",
			Applied: true, Err: errors.New(ev.Err)}
	} else if ev.Durable > c.wm[ev.Shard] {
		c.wm[ev.Shard] = ev.Durable
	}
	c.bumpLocked()
}

// bumpLocked wakes every parked waiter. Callers hold c.mu.
func (c *Client) bumpLocked() {
	close(c.changed)
	c.changed = make(chan struct{})
}

// Submit sends one command and blocks until its record is durable
// server-side, mirroring System.Submit across the hop.
func (c *Client) Submit(ctx context.Context, cmd adept2.Command) (*SubmitResult, error) {
	return c.submit(ctx, cmd, "sync")
}

// SubmitAsync sends one command and returns as soon as the server
// applied it and staged its record, handing back a Receipt that
// resolves at fsync coverage — the remote form of the ~10-22x
// pipelining win of in-process SubmitAsync.
func (c *Client) SubmitAsync(ctx context.Context, cmd adept2.Command) (*Receipt, error) {
	res, err := c.submit(ctx, cmd, "async")
	if err != nil {
		return nil, err
	}
	return &Receipt{c: c, op: res.Op, shard: res.Shard, seq: res.Seq,
		result: res.Result, durable: res.Durable}, nil
}

func (c *Client) submit(ctx context.Context, cmd adept2.Command, mode string) (*SubmitResult, error) {
	op, args, err := adept2.EncodeCommand(cmd)
	if err != nil {
		return nil, err
	}
	req := commandRequest{Envelope: Envelope{Op: op, Args: args}, Mode: mode}
	var res SubmitResult
	if err := c.post(ctx, "/v1/commands", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SubmitBatch sends a run of commands that lands as one multi-record
// append, durable when SubmitBatch returns. On error the results hold
// the applied (and durable) prefix and the error carries the server's
// taxonomy envelope, mirroring System.SubmitBatch.
func (c *Client) SubmitBatch(ctx context.Context, cmds []adept2.Command) ([]*ResultSummary, error) {
	req := batchRequest{Commands: make([]Envelope, len(cmds))}
	for i, cmd := range cmds {
		op, args, err := adept2.EncodeCommand(cmd)
		if err != nil {
			return nil, err
		}
		req.Commands[i] = Envelope{Op: op, Args: args}
	}
	var resp BatchResponse
	if err := c.post(ctx, "/v1/batch", req, &resp); err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return resp.Results, resp.Error.Err()
	}
	return resp.Results, nil
}

// Instances fetches one cursor page of instances (empty cursor starts
// from the beginning; next == "" means exhausted).
func (c *Client) Instances(ctx context.Context, cursor string, limit int) (*InstancePage, error) {
	var page InstancePage
	err := c.get(ctx, "/v1/instances?"+pageQuery(cursor, limit).Encode(), &page)
	return &page, err
}

// Instance fetches one instance's detail (ErrNotFound for unknown
// IDs, via the rehydrated envelope).
func (c *Client) Instance(ctx context.Context, id string) (*InstanceDetail, error) {
	var d InstanceDetail
	err := c.get(ctx, "/v1/instances/"+url.PathEscape(id), &d)
	if err != nil {
		return nil, err
	}
	return &d, nil
}

// WorkItems fetches one cursor page of a user's worklist.
func (c *Client) WorkItems(ctx context.Context, user, cursor string, limit int) (*WorkItemPage, error) {
	q := pageQuery(cursor, limit)
	q.Set("user", user)
	var page WorkItemPage
	err := c.get(ctx, "/v1/workitems?"+q.Encode(), &page)
	return &page, err
}

// OpenExceptions fetches the open exception set.
func (c *Client) OpenExceptions(ctx context.Context) ([]ExceptionSummary, error) {
	var list ExceptionList
	if err := c.get(ctx, "/v1/exceptions", &list); err != nil {
		return nil, err
	}
	return list.Exceptions, nil
}

// Health fetches the health summary. A wedged or draining server
// answers 503 but the summary still arrives alongside the error.
func (c *Client) Health(ctx context.Context) (*HealthSummary, error) {
	var sum HealthSummary
	err := c.get(ctx, "/v1/healthz", &sum)
	if sum.Shards != 0 {
		return &sum, err
	}
	return nil, err
}

// Watermarks fetches a one-shot durable-watermark snapshot.
func (c *Client) Watermarks(ctx context.Context) ([]int, error) {
	var snap WatermarksSnapshot
	if err := c.get(ctx, "/v1/watermarks?once=1", &snap); err != nil {
		return nil, err
	}
	return snap.Durable, nil
}

// ControlLog fetches the durable control-log suffix after afterSeq,
// returning the records and the watermark to resume from.
func (c *Client) ControlLog(ctx context.Context, afterSeq int) ([]adept2.WireRecord, int, error) {
	var page ControlLogPage
	if err := c.get(ctx, "/v1/control-log?after="+strconv.Itoa(afterSeq), &page); err != nil {
		return nil, 0, err
	}
	return page.Records, page.Watermark, nil
}

// TailControlLog subscribes to the control-log tail after afterSeq,
// invoking fn for every durable record until ctx is done, the server
// drains (fn has then seen every record the drain made durable), or
// the stream reports an error.
func (c *Client) TailControlLog(ctx context.Context, afterSeq int, fn func(adept2.WireRecord) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/control-log?follow=1&after="+strconv.Itoa(afterSeq), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev ControlLogEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) || ctx.Err() != nil {
				return nil // drain or caller cancel: clean end of tail
			}
			return err
		}
		switch {
		case ev.Err != "":
			code := adept2.Code(ev.Code)
			if code == "" {
				code = adept2.CodeInternal
			}
			return &adept2.Error{Code: code, Op: "control_log", Err: errors.New(ev.Err)}
		case ev.Record != nil:
			if err := fn(*ev.Record); err != nil {
				return err
			}
		case ev.Final:
			return nil
		}
	}
}

func pageQuery(cursor string, limit int) url.Values {
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	return q
}

// get/post run one JSON round-trip, rehydrating error envelopes.
func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		// Best-effort body decode for callers that want it (healthz).
		if out != nil {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			_ = json.Unmarshal(raw, out)
			return wireErrFromBody(raw, resp.StatusCode)
		}
		return responseError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError rehydrates a non-2xx response into the taxonomy error
// the server classified, falling back to the status-derived code when
// the envelope is missing.
func responseError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return wireErrFromBody(raw, resp.StatusCode)
}

func wireErrFromBody(raw []byte, status int) error {
	var body errorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != nil && body.Error.Code != "" {
		return body.Error.Err()
	}
	return &adept2.Error{Code: adept2.CodeForHTTPStatus(status), Op: "rpc",
		Err: fmt.Errorf("rpc: HTTP %d: %s", status, strings.TrimSpace(string(raw)))}
}
