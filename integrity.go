package adept2

import (
	"fmt"

	"adept2/internal/durable"
	"adept2/internal/durable/sharded"
	"adept2/internal/persist"
	"adept2/internal/vfs"
)

const maxSeq = int(^uint(0) >> 1)

// SnapshotCheck reports one snapshot file's offline validation outcome:
// the full Load path — header format, payload length, CRC-32, seq
// cross-checks — ran against it.
type SnapshotCheck struct {
	File string
	Seq  int
	Err  string // "" when the snapshot decodes and checksums cleanly
}

// ShardCheck reports one shard's journal probe and snapshot findings.
// In a single-journal layout there is exactly one, with Shard 0.
type ShardCheck struct {
	Shard    int
	Journal  string
	FirstSeq int
	LastSeq  int
	// TornBytes counts physical bytes past the last intact record — a
	// torn or corrupt tail that Open (or VerifyLayout with repair) will
	// truncate away.
	TornBytes int64
	// OpenTail is set when the final intact record lost its newline
	// terminator (also repairable).
	OpenTail bool
	// Repaired is set when this run truncated the torn tail in place.
	Repaired  bool
	Snapshots []SnapshotCheck
}

// IntegrityReport is the result of VerifyLayout: the offline integrity
// survey of a durability layout. Problems are refusal conditions — a
// normal Open would either fail outright or be unable to recover the
// full history. Warnings are degraded but recoverable findings (torn
// tails, stale snapshots with a valid fallback).
type IntegrityReport struct {
	Sharded bool
	Shards  []ShardCheck
	// Generations is the global manifest's generation count (sharded
	// layouts only); ValidGen indexes the newest generation whose every
	// part validates, -1 when none does.
	Generations int
	ValidGen    int
	Problems    []string
	Warnings    []string
}

// OK reports whether the layout has no refusal conditions.
func (r *IntegrityReport) OK() bool { return len(r.Problems) == 0 }

// VerifyLayout surveys the durability layout rooted at path offline —
// the journals must be closed. It probes every shard journal's tail
// (scanning for sequence gaps and torn trailing bytes), fully validates
// every snapshot file (CRC and seq cross-checks), and, for sharded
// layouts, walks the global manifest's generations to find the newest
// one recovery could actually use. With repair set, torn journal tails
// are truncated in place — the same repair Open performs, made explicit
// so an operator can inspect the layout before restarting a service.
//
// The returned report is never nil; the error covers only I/O failures
// that prevented the survey itself.
func VerifyLayout(path string, repair bool, opts ...Option) (*IntegrityReport, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	fsys := c.fsys()
	rep := &IntegrityReport{ValidGen: -1}

	man, err := sharded.LoadManifestFS(fsys, sharded.ManifestPath(path))
	if err != nil {
		rep.Problems = append(rep.Problems, err.Error())
		return rep, nil
	}
	if man == nil {
		dir := path + ".snapshots"
		if c.ckpt != nil && c.ckpt.Dir != "" {
			dir = c.ckpt.Dir
		}
		sc := checkShard(fsys, 0, path, dir, repair, rep)
		rep.Shards = append(rep.Shards, sc)
		// A compacted journal (records dropped below a snapshot cut) is
		// only recoverable through a snapshot reaching its first record.
		if sc.FirstSeq > 1 && !anyValidAtOrAfter(sc.Snapshots, sc.FirstSeq-1) {
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"journal starts at seq %d but no valid snapshot covers the compacted prefix", sc.FirstSeq))
		}
		return rep, nil
	}

	rep.Sharded = true
	l := shardedLayout(&c, path, man.Shards)
	if stray, err := sharded.StrayShardsFS(fsys, path, man.Shards); err != nil {
		rep.Problems = append(rep.Problems, err.Error())
	} else if len(stray) > 0 {
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"stray shard journals %v past the declared count %d: rerun adeptctl reshard", stray, man.Shards))
	}

	valid := make([]map[string]int, man.Shards) // per shard: file -> seq of valid snapshots
	for k := 0; k < man.Shards; k++ {
		sc := checkShard(fsys, k, l.JournalPath(k), l.SnapDir(k), repair, rep)
		rep.Shards = append(rep.Shards, sc)
		valid[k] = make(map[string]int)
		for _, s := range sc.Snapshots {
			if s.Err == "" {
				valid[k][s.File] = s.Seq
			}
		}
	}

	rep.Generations = len(man.Generations)
	for g := len(man.Generations) - 1; g >= 0; g-- {
		gen := man.Generations[g]
		ok := len(gen.Parts) == man.Shards
		for k := 0; ok && k < man.Shards; k++ {
			seq, present := valid[k][gen.Parts[k].File]
			ok = present && seq == gen.Parts[k].Seq
		}
		if ok {
			rep.ValidGen = g
			break
		}
	}
	switch {
	case rep.Generations > 0 && rep.ValidGen == rep.Generations-1:
		// Newest generation is usable: the fast path.
	case rep.ValidGen >= 0:
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"newest generation does not validate: recovery falls back to generation %d of %d",
			rep.ValidGen+1, rep.Generations))
	default:
		// No usable generation: full merged replay is the only path, and
		// it is refused for shards whose prefix was compacted away or
		// partitioned under a different shard count (reshard floor).
		for k, sc := range rep.Shards {
			floor := 0
			if k < len(man.ReplayFloors) {
				floor = man.ReplayFloors[k]
			}
			switch {
			case sc.FirstSeq > 1:
				rep.Problems = append(rep.Problems, fmt.Sprintf(
					"shard %d: no valid generation and journal starts at seq %d: the compacted prefix is unrecoverable",
					k, sc.FirstSeq))
			case k > 0 && floor > 0 && sc.FirstSeq > 0 && sc.FirstSeq <= floor:
				rep.Problems = append(rep.Problems, fmt.Sprintf(
					"shard %d: no valid generation and records at or below reshard floor %d: full replay is refused",
					k, floor))
			}
		}
		if rep.Generations > 0 && rep.OK() {
			rep.Warnings = append(rep.Warnings,
				"no generation validates: recovery will fall back to full journal replay")
		}
	}
	return rep, nil
}

// checkShard probes one shard's journal tail and validates its snapshot
// store, appending findings to the report.
func checkShard(fsys vfs.FS, k int, jpath, snapDir string, repair bool, rep *IntegrityReport) ShardCheck {
	sc := ShardCheck{Shard: k, Journal: jpath}
	_, tail, err := persist.LoadJournalSuffixFS(fsys, jpath, maxSeq)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("shard %d: %v", k, err))
	} else {
		sc.FirstSeq, sc.LastSeq, sc.OpenTail = tail.FirstSeq, tail.LastSeq, tail.OpenTail
		if st, serr := fsys.Stat(jpath); serr == nil {
			sc.TornBytes = st.Size() - tail.ValidSize
		}
		if sc.TornBytes > 0 || sc.OpenTail {
			if repair {
				// ResumeJournalFS performs exactly the tail repair Open
				// would: truncate past the last intact record, terminate
				// an open tail.
				j, rerr := persist.ResumeJournalFS(fsys, jpath, tail, false)
				if rerr != nil {
					rep.Problems = append(rep.Problems, fmt.Sprintf("shard %d: tail repair: %v", k, rerr))
				} else {
					j.Close()
					sc.Repaired = true
				}
			} else {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf(
					"shard %d: %d torn byte(s) past seq %d (repaired on open, or now with -repair)",
					k, sc.TornBytes, sc.LastSeq))
			}
		}
	}

	if _, err := fsys.Stat(snapDir); err != nil {
		return sc // no snapshot store: nothing to validate
	}
	store, err := durable.OpenStoreFS(fsys, snapDir)
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("shard %d: %v", k, err))
		return sc
	}
	entries, err := store.Entries()
	if err != nil {
		rep.Problems = append(rep.Problems, fmt.Sprintf("shard %d: %v", k, err))
		return sc
	}
	for _, e := range entries {
		chk := SnapshotCheck{File: e.File, Seq: e.Seq}
		if _, lerr := store.Load(e); lerr != nil {
			chk.Err = lerr.Error()
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("shard %d: %v", k, lerr))
		}
		sc.Snapshots = append(sc.Snapshots, chk)
	}
	return sc
}

// anyValidAtOrAfter reports whether a valid snapshot covers seq or later.
func anyValidAtOrAfter(snaps []SnapshotCheck, seq int) bool {
	for _, s := range snaps {
		if s.Err == "" && s.Seq >= seq {
			return true
		}
	}
	return false
}
