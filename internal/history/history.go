// Package history implements the ADEPT2 execution history: the per-
// instance log of start and completion events the compliance criterion
// replays. Reduce computes the *logical* (loop-purged) history — only the
// last iteration of every loop block is retained — which is exactly the
// view the paper's relaxed trace equivalence inspects.
package history

import (
	"encoding/json"
	"fmt"
	"sort"

	"adept2/internal/arena"
	"adept2/internal/bitset"
	"adept2/internal/graph"
	"adept2/internal/model"
)

// Kind distinguishes event types.
type Kind uint8

const (
	// Started records that a node entered execution.
	Started Kind = iota
	// Completed records that a node finished, together with its routing
	// decision and the data it wrote.
	Completed
	// Failed records that a running node's execution failed: the attempt
	// is undone (the node reverts to activated) and — like a superseded
	// loop iteration — purged from the logical history, so compliance
	// judges the instance as if the attempt never ran.
	Failed
	// Timeout records that a running node exceeded its armed deadline.
	// The node keeps running (the work item escalates); Timeout events
	// are audit markers that Reduce drops from the logical history.
	Timeout
)

var kindNames = [...]string{
	Started:   "started",
	Completed: "completed",
	Failed:    "failed",
	Timeout:   "timeout",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one entry of the execution history.
type Event struct {
	// Seq is the instance-wide sequence number (1-based, dense).
	Seq int `json:"seq"`
	// Kind is Started or Completed.
	Kind Kind `json:"kind"`
	// Node is the schema node the event belongs to.
	Node string `json:"node"`
	// User is the acting user (empty for automatic nodes).
	User string `json:"user,omitempty"`
	// Decision is the selection code chosen by a completed XOR split
	// (-1 when not applicable).
	Decision int `json:"decision,omitempty"`
	// Again is true when a completed loop end decided to iterate.
	Again bool `json:"again,omitempty"`
	// Reads holds the parameter values supplied when the node started.
	Reads map[string]any `json:"reads,omitempty"`
	// Writes holds element values written on completion (element -> value).
	Writes map[string]any `json:"writes,omitempty"`
	// Reason carries the failure reason of a Failed event (or the
	// deadline description of a Timeout event).
	Reason string `json:"reason,omitempty"`
	// At is the event's wall-clock timestamp (unix nanos), stamped from
	// the timestamp recorded on the journaled command so replay
	// reproduces it bit-exactly. Zero when the producing command carried
	// no timestamp (automatic cascades, implicit starts, pre-timestamp
	// journals) — duration analytics skip such events.
	At int64 `json:"at,omitempty"`

	// Intern memo: idx is Node's dense index in the topology identified by
	// itopo. ReduceInto fills it lazily, so repeated reductions of the
	// same events against the same topology snapshot (every compliance
	// decision of an instance, each bench iteration) intern each event
	// once instead of once per call. Events are owned by one goroutine at
	// a time (the engine reduces under the instance lock; snapshots are
	// per-caller clones), so the two-word memo needs no synchronization.
	itopo *model.Topology
	idx   model.NodeIdx
}

func (e *Event) String() string {
	switch {
	case e.Kind == Failed:
		return fmt.Sprintf("#%d failed %s (%s)", e.Seq, e.Node, e.Reason)
	case e.Kind == Timeout:
		return fmt.Sprintf("#%d timeout %s", e.Seq, e.Node)
	case e.Kind == Completed && e.Again:
		return fmt.Sprintf("#%d completed %s (again)", e.Seq, e.Node)
	case e.Kind == Completed && e.Decision >= 0:
		return fmt.Sprintf("#%d completed %s (decision %d)", e.Seq, e.Node, e.Decision)
	case e.Kind == Completed:
		return fmt.Sprintf("#%d completed %s", e.Seq, e.Node)
	default:
		return fmt.Sprintf("#%d started %s", e.Seq, e.Node)
	}
}

// Clone returns a deep copy of the event.
func (e *Event) Clone() *Event {
	c := *e
	if e.Reads != nil {
		c.Reads = make(map[string]any, len(e.Reads))
		for k, v := range e.Reads {
			c.Reads[k] = v
		}
	}
	if e.Writes != nil {
		c.Writes = make(map[string]any, len(e.Writes))
		for k, v := range e.Writes {
			c.Writes[k] = v
		}
	}
	return &c
}

// Log is an append-only execution history.
type Log struct {
	events  []*Event
	nextSeq int
}

// NewLog returns an empty history.
func NewLog() *Log { return &Log{nextSeq: 1} }

// Append adds an event, assigning it the next sequence number, and returns
// the event.
func (l *Log) Append(e *Event) *Event {
	e.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, e)
	return e
}

// Events returns the full physical history in order. Callers must not
// mutate the returned slice.
func (l *Log) Events() []*Event { return l.events }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// NextSeq returns the sequence number the next event will receive.
func (l *Log) NextSeq() int { return l.nextSeq }

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	c := &Log{nextSeq: l.nextSeq, events: make([]*Event, len(l.events))}
	for i, e := range l.events {
		c.events[i] = e.Clone()
	}
	return c
}

// ApproxBytes estimates the memory held by the history.
func (l *Log) ApproxBytes() int {
	total := 0
	for _, e := range l.events {
		total += 48 + len(e.Node) + len(e.User) + 32*(len(e.Reads)+len(e.Writes))
	}
	return total
}

// MarshalJSON implements json.Marshaler.
func (l *Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.events)
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Log) UnmarshalJSON(b []byte) error {
	var events []*Event
	if err := json.Unmarshal(b, &events); err != nil {
		return fmt.Errorf("history: unmarshal log: %w", err)
	}
	next := 1
	if n := len(events); n > 0 {
		next = events[n-1].Seq + 1
	}
	l.events = events
	l.nextSeq = next
	return nil
}

// Reduce computes the logical execution history: every loop iteration that
// was superseded by a later one is purged. Concretely, whenever a loop end
// completes with Again=true, all prior events of nodes inside that loop's
// region (including nested loops) are dropped together with the iterating
// completion itself. Failed activity attempts are purged the same way
// (the Failed event and its matching Started both drop), and Timeout
// markers are always dropped. The result is the history of the final
// iteration of every loop, with only work that actually succeeded — the
// paper's loop-tolerant compliance view.
//
// info must be the block analysis of the same schema view the events were
// recorded on.
func Reduce(info *graph.Info, events []*Event) []*Event {
	return ReduceInto(info, events, nil)
}

// ReduceInto is Reduce with a caller-provided result buffer: the reduction
// appends into buf[:0] and returns the (possibly re-grown) slice, so loops
// that reduce many histories (population migration workers) reuse one
// allocation instead of growing a fresh slice per instance.
//
// The reduction is a single backward pass over interned indices: scanning
// from the youngest event, an iterating loop-end completion activates its
// block's region bitset (Block.RegionBits), and every older event whose
// interned node lies in the active union is dropped. Properly nested loop
// blocks make this equivalent to the forward purge-on-Again formulation
// (retained as reduceForward for differential tests): an older Again
// inside an active region is itself dropped, and its region is a subset of
// the active one. Per event the pass costs one intern plus one bit probe —
// no per-purge rescans of the retained slice.
func ReduceInto(info *graph.Info, events []*Event, buf []*Event) []*Event {
	topo := info.Topology()
	if topo == nil {
		return reduceForward(info, events, buf)
	}
	if buf == nil {
		buf = make([]*Event, 0, 16)
	}
	out := buf[:0]
	var active bitset.Set          // lazily sized union of activated region bitsets
	var failedAhead map[string]int // per node: Failed events seen younger, Started not yet matched
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if active != nil {
			n := e.idx
			if e.itopo != topo {
				if j, ok := topo.Idx(e.Node); ok {
					n = j
				} else {
					n = model.InvalidNode
				}
				e.itopo, e.idx = topo, n
			}
			if n != model.InvalidNode && active.Has(int(n)) {
				continue // inside an iterated loop's region: purged
			}
		}
		switch e.Kind {
		case Timeout:
			continue // audit marker: never part of the logical history
		case Failed:
			// A failed attempt is purged like a superseded loop
			// iteration: drop the Failed event and remember to drop the
			// matching (next-older) Started of the same node.
			if failedAhead == nil {
				failedAhead = make(map[string]int)
			}
			failedAhead[e.Node]++
			continue
		case Started:
			if failedAhead[e.Node] > 0 {
				failedAhead[e.Node]--
				continue
			}
		}
		if e.Kind == Completed && e.Again {
			if blk, ok := info.ByJoin(e.Node); ok && blk.Kind == model.NodeLoopStart {
				if active == nil {
					active = bitset.New(topo.NumNodes())
				}
				active.Union(blk.RegionBits())
				continue // the iterating completion itself is purged
			}
		}
		out = append(out, e)
	}
	// The backward pass collected survivors youngest-first; restore order.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}

// reduceForward is the historical forward formulation: purge the retained
// slice whenever a loop end iterates. It remains as the fallback for block
// analyses without a topology snapshot and as the reference for the
// differential test pinning the backward pass.
func reduceForward(info *graph.Info, events []*Event, buf []*Event) []*Event {
	out := buf[:0]
	for _, e := range events {
		switch e.Kind {
		case Timeout:
			continue // audit marker: never part of the logical history
		case Failed:
			// Purge the failed attempt: drop the youngest retained
			// Started of the node together with the Failed event itself.
			for k := len(out) - 1; k >= 0; k-- {
				if out[k].Node == e.Node && out[k].Kind == Started {
					out = append(out[:k], out[k+1:]...)
					break
				}
			}
			continue
		}
		if e.Kind == Completed && e.Again {
			if blk, ok := info.ByJoin(e.Node); ok && blk.Kind == model.NodeLoopStart {
				region := blk.Region()
				kept := out[:0]
				for _, prev := range out {
					if !region[prev.Node] {
						kept = append(kept, prev)
					}
				}
				out = kept
				continue // the iterating completion itself is purged
			}
		}
		out = append(out, e)
	}
	return out
}

// Stats is the per-node execution index an instance maintains alongside
// its physical history. The fast compliance conditions consult it instead
// of scanning the history: "has this node started?", "when did it
// complete?", "which branch did this split choose?" all answer in O(1).
//
// The index is array-backed: when bound to a topology (NewStatsFor /
// Rebind), records live in a dense slice indexed by the interned
// model.NodeIdx. Nodes unknown to the bound topology (e.g. inserted by an
// ad-hoc change before the next rebind) spill into an overflow map, so the
// index stays correct even when a rebind is deferred.
type Stats struct {
	topo     *model.Topology
	recs     []NodeStat // dense by NodeIdx; live iff StartSeq or CompleteSeq > 0
	overflow map[string]*NodeStat
}

// NodeStat is the execution record of one node in the *current* loop
// iteration (stats of purged iterations are removed, mirroring Reduce).
type NodeStat struct {
	// StartSeq is the sequence number of the node's start event (0 if
	// never started).
	StartSeq int
	// CompleteSeq is the sequence number of the node's completion event
	// (0 if not completed).
	CompleteSeq int
	// Decision is the XOR selection code chosen on completion (-1
	// otherwise).
	Decision int
}

func (st *NodeStat) live() bool { return st.StartSeq > 0 || st.CompleteSeq > 0 }

// NewStats returns an empty, unbound index (all records overflow-kept).
func NewStats() *Stats { return &Stats{} }

// NewStatsFor returns an empty index bound to the topology, so records of
// its nodes are array-indexed.
func NewStatsFor(topo *model.Topology) *Stats {
	return &Stats{topo: topo, recs: make([]NodeStat, topo.NumNodes())}
}

// RebindScratch amortizes the dense record-array allocation of stats
// rebinds, mirroring state.RemapScratch: migration workers carve each
// instance's target array out of a block-allocated arena instead of
// allocating per instance. The zero value is ready; not goroutine-safe.
type RebindScratch struct {
	recs []NodeStat
}

// Rebind re-indexes the stats against a new topology (after an ad-hoc
// change, bias refresh, or migration changed the node set): dense and
// overflow records resolvable in the new topology move into the new dense
// array, the rest stay in overflow. Rebinding to the already-bound
// topology is a cheap no-op; a fresh topology with an identical node
// sequence (the on-the-fly strategy re-materializes one per access) only
// swaps the binding.
func (s *Stats) Rebind(topo *model.Topology) { s.RebindPooled(topo, nil) }

// RebindPooled is Rebind drawing the target record array from — and
// releasing the replaced array into — the scratch (nil scratch allocates).
func (s *Stats) RebindPooled(topo *model.Topology, sc *RebindScratch) {
	if s.topo == topo || topo == nil {
		return
	}
	if s.topo != nil && sameNodeSeq(s.topo, topo) {
		s.topo = topo
		return
	}
	var recs []NodeStat
	if sc != nil {
		recs = arena.Carve(&sc.recs, topo.NumNodes())
	} else {
		recs = make([]NodeStat, topo.NumNodes())
	}
	var overflow map[string]*NodeStat
	keep := func(id string, st NodeStat) {
		if i, ok := topo.Idx(id); ok {
			recs[i] = st
			return
		}
		if overflow == nil {
			overflow = make(map[string]*NodeStat)
		}
		cp := st
		overflow[id] = &cp
	}
	for i := range s.recs {
		if s.recs[i].live() {
			keep(s.topo.ID(model.NodeIdx(i)), s.recs[i])
		}
	}
	for id, st := range s.overflow {
		keep(id, *st)
	}
	s.topo, s.recs, s.overflow = topo, recs, overflow
}

// sameNodeSeq reports whether two topologies intern the identical node
// sequence (cheap: clones share ID string backing, so equality
// short-circuits on the data pointer).
func sameNodeSeq(a, b *model.Topology) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for i, n := 0, a.NumNodes(); i < n; i++ {
		if a.ID(model.NodeIdx(i)) != b.ID(model.NodeIdx(i)) {
			return false
		}
	}
	return true
}

// slot returns a writable record for the node, creating the overflow entry
// if the node is unknown to the bound topology.
func (s *Stats) slot(node string) *NodeStat {
	if s.topo != nil {
		if i, ok := s.topo.Idx(node); ok {
			return &s.recs[i]
		}
	}
	st, ok := s.overflow[node]
	if !ok {
		st = &NodeStat{}
		if s.overflow == nil {
			s.overflow = make(map[string]*NodeStat)
		}
		s.overflow[node] = st
	}
	return st
}

// get returns the node's record, or nil if the node never executed in the
// current iteration.
func (s *Stats) get(node string) *NodeStat {
	if s.topo != nil {
		if i, ok := s.topo.Idx(node); ok {
			if s.recs[i].live() {
				return &s.recs[i]
			}
			return nil
		}
	}
	if st, ok := s.overflow[node]; ok && st.live() {
		return st
	}
	return nil
}

// OnStart records a start event.
func (s *Stats) OnStart(node string, seq int) {
	*s.slot(node) = NodeStat{StartSeq: seq, Decision: -1}
}

// OnComplete records a completion event.
func (s *Stats) OnComplete(node string, seq, decision int) {
	st := s.slot(node)
	if !st.live() {
		*st = NodeStat{Decision: -1}
	}
	st.CompleteSeq = seq
	st.Decision = decision
}

// OnFail removes the node's execution record: a failed attempt is not
// part of the logical history (Reduce purges its Started/Failed pair),
// so the fast compliance conditions must forget it the same way.
func (s *Stats) OnFail(node string) {
	if s.topo != nil {
		if i, ok := s.topo.Idx(node); ok {
			s.recs[i] = NodeStat{}
			return
		}
	}
	delete(s.overflow, node)
}

// PurgeRegion removes the stats of all nodes in a loop region, called when
// the loop iterates (mirrors Reduce).
func (s *Stats) PurgeRegion(region map[string]bool) {
	for id := range region {
		if s.topo != nil {
			if i, ok := s.topo.Idx(id); ok {
				s.recs[i] = NodeStat{}
				continue
			}
		}
		delete(s.overflow, id)
	}
}

// Started reports whether the node started in the current iteration.
func (s *Stats) Started(node string) bool {
	st := s.get(node)
	return st != nil && st.StartSeq > 0
}

// StartSeq returns the node's start sequence (0 if not started).
func (s *Stats) StartSeq(node string) int {
	if st := s.get(node); st != nil {
		return st.StartSeq
	}
	return 0
}

// CompleteSeq returns the node's completion sequence (0 if not completed).
func (s *Stats) CompleteSeq(node string) int {
	if st := s.get(node); st != nil {
		return st.CompleteSeq
	}
	return 0
}

// StartedAt is Started for an interned node of topo. When the stats are
// bound to exactly that topology the answer is a single array probe; any
// other binding falls back to the string path (correct, just slower).
func (s *Stats) StartedAt(topo *model.Topology, i model.NodeIdx) bool {
	if s.topo == topo {
		return s.recs[i].StartSeq > 0
	}
	return s.Started(topo.ID(i))
}

// StartSeqAt is StartSeq for an interned node of topo (see StartedAt).
func (s *Stats) StartSeqAt(topo *model.Topology, i model.NodeIdx) int {
	if s.topo == topo {
		return s.recs[i].StartSeq
	}
	return s.StartSeq(topo.ID(i))
}

// CompleteSeqAt is CompleteSeq for an interned node of topo (see
// StartedAt).
func (s *Stats) CompleteSeqAt(topo *model.Topology, i model.NodeIdx) int {
	if s.topo == topo {
		return s.recs[i].CompleteSeq
	}
	return s.CompleteSeq(topo.ID(i))
}

// StatExport is the stable, ID-keyed serialized record of one node's
// execution — the dense index does not survive a topology rebuild, the ID
// does.
type StatExport struct {
	ID          string `json:"id"`
	StartSeq    int    `json:"start,omitempty"`
	CompleteSeq int    `json:"complete,omitempty"`
	Decision    int    `json:"decision"`
}

// Export serializes all live records (dense and overflow), sorted by node
// ID for determinism.
func (s *Stats) Export() []StatExport {
	var out []StatExport
	add := func(id string, st *NodeStat) {
		out = append(out, StatExport{ID: id, StartSeq: st.StartSeq, CompleteSeq: st.CompleteSeq, Decision: st.Decision})
	}
	for i := range s.recs {
		if s.recs[i].live() {
			add(s.topo.ID(model.NodeIdx(i)), &s.recs[i])
		}
	}
	for id, st := range s.overflow {
		if st.live() {
			add(id, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ImportStats rebuilds a stats index bound to topo from exported records.
// Records of nodes unknown to topo land in the overflow map, exactly as a
// live index would keep them across a rebind.
func ImportStats(topo *model.Topology, recs []StatExport) *Stats {
	s := NewStatsFor(topo)
	for _, r := range recs {
		*s.slot(r.ID) = NodeStat{StartSeq: r.StartSeq, CompleteSeq: r.CompleteSeq, Decision: r.Decision}
	}
	return s
}

// Decisions extracts the selection codes of all completed XOR splits,
// keyed by node ID; state.Adapt consumes this to re-derive dead paths.
func (s *Stats) Decisions() map[string]int {
	d := make(map[string]int)
	for i := range s.recs {
		if st := &s.recs[i]; st.CompleteSeq > 0 && st.Decision >= 0 {
			d[s.topo.ID(model.NodeIdx(i))] = st.Decision
		}
	}
	for id, st := range s.overflow {
		if st.CompleteSeq > 0 && st.Decision >= 0 {
			d[id] = st.Decision
		}
	}
	return d
}

// Len returns the number of live records (nodes that executed in the
// current iteration); the storage footprint accounting uses it.
func (s *Stats) Len() int {
	n := 0
	for i := range s.recs {
		if s.recs[i].live() {
			n++
		}
	}
	for _, st := range s.overflow {
		if st.live() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the stats index.
func (s *Stats) Clone() *Stats {
	c := &Stats{topo: s.topo, recs: append([]NodeStat(nil), s.recs...)}
	if len(s.overflow) > 0 {
		c.overflow = make(map[string]*NodeStat, len(s.overflow))
		for id, st := range s.overflow {
			cp := *st
			c.overflow[id] = &cp
		}
	}
	return c
}
