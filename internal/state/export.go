package state

import (
	"fmt"

	"adept2/internal/model"
)

// ExportedNode is the stable serialized state of one node: keyed by node
// ID, not by the dense index, so an export survives topology rebinds
// (snapshots are restored against freshly built topologies whose interning
// order may differ).
type ExportedNode struct {
	ID      string `json:"id"`
	State   uint8  `json:"state"`
	SkipSeq int32  `json:"skipSeq,omitempty"`
}

// ExportedEdge is the stable serialized state of one edge, keyed by the
// edge's (from, to, type) identity.
type ExportedEdge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Type  uint8  `json:"type"`
	State uint8  `json:"state"`
}

// MarkingExport is the topology-independent serialized form of a Marking.
// Only non-default entries are recorded, so exports stay proportional to
// instance progress, not view size. Pending worklist entries (nodes queued
// for re-examination) are included so a marking snapshotted mid-cascade
// replays identically — at command boundaries the list is empty.
type MarkingExport struct {
	Nodes   []ExportedNode `json:"nodes,omitempty"`
	Edges   []ExportedEdge `json:"edges,omitempty"`
	Pending []string       `json:"pending,omitempty"`
}

// Export serializes the marking into its stable, ID-keyed form.
func (m *Marking) Export() *MarkingExport {
	ex := &MarkingExport{}
	for i := range m.nodes {
		if m.nodes[i] == NotActivated && m.skipSeq[i] == 0 {
			continue
		}
		ex.Nodes = append(ex.Nodes, ExportedNode{
			ID:      m.topo.ID(model.NodeIdx(i)),
			State:   uint8(m.nodes[i]),
			SkipSeq: m.skipSeq[i],
		})
	}
	for i := range m.edges {
		if m.edges[i] == NotSignaled {
			continue
		}
		e := m.topo.EdgeAt(model.EdgeIdx(i))
		ex.Edges = append(ex.Edges, ExportedEdge{
			From:  e.From,
			To:    e.To,
			Type:  uint8(e.Type),
			State: uint8(m.edges[i]),
		})
	}
	for _, pi := range m.pending {
		ex.Pending = append(ex.Pending, m.topo.ID(pi))
	}
	return ex
}

// ImportMarking rebuilds a marking from its exported form against the
// given view. Every exported node and edge must exist in the view — a
// mismatch means the snapshot does not belong to this schema and is an
// error, never a silent drop.
func ImportMarking(v model.SchemaView, ex *MarkingExport) (*Marking, error) {
	m := NewMarking(v)
	for _, n := range ex.Nodes {
		i, ok := m.topo.Idx(n.ID)
		if !ok {
			return nil, fmt.Errorf("state: import marking: node %q not in schema", n.ID)
		}
		m.nodes[i] = NodeState(n.State)
		m.skipSeq[i] = n.SkipSeq
	}
	for _, e := range ex.Edges {
		i, ok := m.topo.EdgeIdxOf(model.EdgeKey{From: e.From, To: e.To, Type: model.EdgeType(e.Type)})
		if !ok {
			return nil, fmt.Errorf("state: import marking: edge %s->%s not in schema", e.From, e.To)
		}
		m.edges[i] = EdgeState(e.State)
	}
	for _, id := range ex.Pending {
		i, ok := m.topo.Idx(id)
		if !ok {
			return nil, fmt.Errorf("state: import marking: pending node %q not in schema", id)
		}
		m.markPendingAt(i)
	}
	return m, nil
}
