package vfs

import (
	"errors"
	"io/fs"
	"sync"
	"sync/atomic"
)

// OpKind names one class of filesystem operation for fault scripts.
type OpKind int

// Operation kinds, in the order a schedule is likely to reference them.
const (
	OpOpen OpKind = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpClose
	OpStatFile
	OpRename
	OpRemove
	OpRemoveAll
	OpMkdirAll
	OpReadDir
	OpStat
	OpSyncDir
)

var opKindNames = [...]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpTruncate: "truncate", OpClose: "close", OpStatFile: "fstat",
	OpRename: "rename", OpRemove: "remove", OpRemoveAll: "removeall",
	OpMkdirAll: "mkdirall", OpReadDir: "readdir", OpStat: "stat",
	OpSyncDir: "syncdir",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "op?"
}

// OpRef identifies one intercepted operation: its kind and the path it
// targets (the file's open path for handle operations).
type OpRef struct {
	Kind OpKind
	Path string
}

// Decision is a fault script's verdict for one operation. The zero
// value lets the operation through.
type Decision struct {
	// Err fails the operation with this error (after any TornPrefix
	// bytes were persisted). The injection is per-operation: whether the
	// failure is transient or persistent is the script's choice across
	// subsequent calls.
	Err error
	// TornPrefix, with Err set on a write, persists only the first
	// TornPrefix bytes before failing — a torn write.
	TornPrefix int
	// Crash kills the disk: the inner filesystem (which must implement
	// Crasher) drops all un-synced state, this operation and every later
	// one fail with ErrCrashed. The filesystem is inspected or recovered
	// through the inner FS afterwards.
	Crash bool
}

// Script decides the fate of the n-th operation (1-based global
// counter across files and the FS). It must be safe for concurrent
// calls; the FaultFS serializes them.
type Script func(n int64, op OpRef) Decision

// Crasher is the crash hook an inner filesystem provides (MemFS does).
type Crasher interface{ Crash() }

// ErrInjected is the default injected fault error; scripts may return
// richer errors instead.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed fails every operation after a simulated crash.
var ErrCrashed = errors.New("vfs: simulated crash")

// FaultFS wraps an inner FS and runs every operation through a fault
// script. A nil script passes everything through.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	script  Script
	n       atomic.Int64
	crashed atomic.Bool
}

// NewFaultFS wraps inner with a fault script.
func NewFaultFS(inner FS, script Script) *FaultFS {
	return &FaultFS{inner: inner, script: script}
}

// SetScript replaces the fault schedule (e.g. clearing it before heal).
func (f *FaultFS) SetScript(script Script) {
	f.mu.Lock()
	f.script = script
	f.mu.Unlock()
}

// OpCount returns how many operations have been intercepted so far —
// a profiling run uses it to enumerate the crash sites of a workload.
func (f *FaultFS) OpCount() int64 { return f.n.Load() }

// Crashed reports whether a scripted crash happened.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

// ClearCrash re-arms the FaultFS after the inner filesystem was
// recovered (the crash flag otherwise fails every operation).
func (f *FaultFS) ClearCrash() { f.crashed.Store(false) }

// decide runs the script for one operation and applies crash handling.
// It returns the error the operation must fail with (nil = proceed) and
// the torn-prefix byte count for writes.
func (f *FaultFS) decide(kind OpKind, path string) (error, int) {
	if f.crashed.Load() {
		return &fs.PathError{Op: kind.String(), Path: path, Err: ErrCrashed}, 0
	}
	n := f.n.Add(1)
	f.mu.Lock()
	script := f.script
	f.mu.Unlock()
	if script == nil {
		return nil, 0
	}
	d := script(n, OpRef{Kind: kind, Path: path})
	if d.Crash {
		if c, ok := f.inner.(Crasher); ok {
			c.Crash()
		}
		f.crashed.Store(true)
		return &fs.PathError{Op: kind.String(), Path: path, Err: ErrCrashed}, 0
	}
	if d.Err != nil {
		return &fs.PathError{Op: kind.String(), Path: path, Err: d.Err}, d.TornPrefix
	}
	return nil, 0
}

// FS interface.

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := f.decide(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err, _ := f.decide(OpRename, oldname); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.decide(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	if err, _ := f.decide(OpRemoveAll, path); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.decide(OpMkdirAll, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := f.decide(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err, _ := f.decide(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err, _ := f.decide(OpSyncDir, dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads handle operations through the same script.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err, _ := f.fs.decide(OpRead, f.inner.Name()); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	err, torn := f.fs.decide(OpWrite, f.inner.Name())
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			// Persist the torn prefix through the inner file, then fail:
			// the journal sees a short write it must roll back or repair.
			n, _ = f.inner.Write(p[:torn])
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err, _ := f.fs.decide(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err, _ := f.fs.decide(OpTruncate, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Stat() (fs.FileInfo, error) {
	if err, _ := f.fs.decide(OpStatFile, f.inner.Name()); err != nil {
		return nil, err
	}
	return f.inner.Stat()
}

func (f *faultFile) Close() error {
	// Close is never failed or counted: it performs no I/O the crash
	// model cares about, and failing it would only leak handles.
	return f.inner.Close()
}

func (f *faultFile) Name() string { return f.inner.Name() }

// FailNth returns a script failing exactly the n-th operation with err
// (transient: every other operation passes).
func FailNth(n int64, err error) Script {
	return func(i int64, _ OpRef) Decision {
		if i == n {
			return Decision{Err: err}
		}
		return Decision{}
	}
}

// FailFrom returns a script failing every operation from the n-th on
// that matches kinds (all kinds when empty) — a persistent fault.
func FailFrom(n int64, err error, kinds ...OpKind) Script {
	match := func(k OpKind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, want := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	return func(i int64, op OpRef) Decision {
		if i >= n && match(op.Kind) {
			return Decision{Err: err}
		}
		return Decision{}
	}
}

// CrashAt returns a script crashing the disk at the n-th operation.
func CrashAt(n int64) Script {
	return func(i int64, _ OpRef) Decision {
		return Decision{Crash: i == n}
	}
}
