// Command adeptctl is the interactive face of the ADEPT2 reproduction: it
// replays the paper's demo (Section 3) on the terminal — schema rendering,
// worklists, an ad-hoc instance change, a schema evolution with migration
// report — renders schemas, runs quick migration drills, and administers
// the durability subsystem (journal seeding, checkpoints, compaction).
//
//	adeptctl demo                 # the paper's Fig. 1 / Fig. 3 walkthrough
//	adeptctl schema [-version N]  # render the online-order schema
//	adeptctl drill -n 5000        # migrate a synthetic population
//	adeptctl seed -journal wal    # build a small journaled workload
//	adeptctl snapshot -journal wal# write a checkpoint of the journal state
//	adeptctl compact -journal wal # checkpoint, then drop the covered prefix
//	adeptctl reshard -journal wal -shards 4  # repartition offline
//	adeptctl verify -journal wal  # offline integrity check (-repair fixes tails)
//	adeptctl list -journal wal    # page through instances and worklists
//	adeptctl load -journal wal -mode batch   # drive the Submit API
//	adeptctl serve -journal wal -addr :8137  # expose the command plane over HTTP
//	adeptctl load -remote http://host:8137   # drive a served system remotely
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adept2"
	"adept2/internal/change"
	"adept2/internal/durable"
	"adept2/internal/durable/sharded"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/mining"
	"adept2/internal/monitor"
	"adept2/internal/obs"
	"adept2/internal/persist"
	"adept2/internal/rpc"
	"adept2/internal/sim"
	"adept2/internal/sim/soak"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo()
	case "schema":
		schemaCmd(os.Args[2:])
	case "drill":
		drill(os.Args[2:])
	case "seed":
		seed(os.Args[2:])
	case "snapshot":
		snapshot(os.Args[2:])
	case "compact":
		compact(os.Args[2:])
	case "reshard":
		reshard(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "list":
		list(os.Args[2:])
	case "load":
		load(os.Args[2:])
	case "serve":
		serveCmd(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "mine":
		mine(os.Args[2:])
	case "trace":
		trace(os.Args[2:])
	case "sim":
		simCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: adeptctl demo
       adeptctl schema [-version N]
       adeptctl drill [-n N] [-mode fast|replay]
       adeptctl seed -journal PATH [-n N] [-shards N]
       adeptctl snapshot -journal PATH [-dir DIR]
       adeptctl compact -journal PATH [-dir DIR]
       adeptctl reshard -journal PATH -shards N [-dir DIR]
       adeptctl verify -journal PATH [-dir DIR] [-repair]
       adeptctl list -journal PATH [-user U] [-page N]
       adeptctl list -remote URL [-user U] [-page N]
       adeptctl load -journal PATH [-n N] [-mode sync|async|batch] [-shards N]
       adeptctl load -remote URL [-n N] [-mode sync|async|batch]
       adeptctl serve -journal PATH [-addr ADDR] [-shards N] [-metrics ADDR]
       adeptctl stats -journal PATH [-format text|prom|json] [-serve ADDR]
       adeptctl stats -fetch URL
       adeptctl mine -journal PATH [-format text|json] [-variants N]
       adeptctl mine -fetch URL
       adeptctl trace -journal PATH [-format text|json] [-n N]
       adeptctl trace -fetch URL [-after N] [-format text|json]
       adeptctl sim [-steps N] [-instances N] [-seed N] [-shards N] [-stats] ...`)
	os.Exit(2)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func demo() {
	e := engine.New(sim.Org())
	must(e.Deploy(sim.OnlineOrder()))

	fmt.Println("── deployed process type (version V1) ──")
	fmt.Print(monitor.RenderSchema(sim.OnlineOrder()))

	i1, err := e.CreateInstance("online_order", 0)
	must(err)
	must(sim.AdvanceOnlineOrderToI1(e, i1))

	i2, err := e.CreateInstance("online_order", 0)
	must(err)
	must(e.CompleteActivity(i2.ID(), "get_order", "ann", map[string]any{"out": "order-2"}))
	must(change.ApplyAdHoc(i2, sim.OnlineOrderBiasI2()...))

	i3, err := e.CreateInstance("online_order", 0)
	must(err)
	must(sim.AdvanceOnlineOrderToI3(e, i3))

	fmt.Println("\n── worklists before the type change ──")
	fmt.Print(monitor.SummarizeWorklists(e))

	fmt.Println("\n── committing type change ΔT (send_questions + sync edge) ──")
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
	must(err)
	fmt.Print(monitor.FormatReport(report))

	fmt.Println("\n── instance states after migration ──")
	for _, inst := range []*engine.Instance{i1, i2, i3} {
		fmt.Print(monitor.RenderInstance(inst))
		fmt.Println()
	}
}

func schemaCmd(args []string) {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	version := fs.Int("version", 1, "schema version to render (1 or 2)")
	must(fs.Parse(args))
	s := sim.OnlineOrder()
	if *version >= 2 {
		for _, op := range sim.OnlineOrderTypeChange() {
			must(op.ApplyTo(s))
		}
		s.SetVersion(2)
		s.SetSchemaID("online_order@v2")
	}
	fmt.Print(monitor.RenderSchema(s))
}

func drill(args []string) {
	fs := flag.NewFlagSet("drill", flag.ExitOnError)
	n := fs.Int("n", 5000, "population size")
	mode := fs.String("mode", "fast", "compliance check: fast or replay")
	seed := fs.Int64("seed", 1, "workload seed")
	must(fs.Parse(args))

	e := engine.New(sim.Org())
	must(e.Deploy(sim.OnlineOrder()))
	rng := rand.New(rand.NewSource(*seed))
	_, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(*n))
	must(err)

	opts := evolution.Options{}
	if *mode == "replay" {
		opts.Mode = evolution.ReplayCheck
	}
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), opts)
	must(err)

	fmt.Printf("migrated %d instances in %s (%.1f µs/instance, %s check)\n",
		report.Total(), report.Elapsed,
		float64(report.Elapsed.Microseconds())/float64(report.Total()), opts.Mode)
	for _, o := range evolution.Outcomes() {
		if c := report.Count(o); c > 0 {
			fmt.Printf("  %-20s %d\n", o.String()+":", c)
		}
	}
}

// seed builds a small self-contained journaled workload (users journaled
// too, so recovery needs no out-of-band org model): the quickstart input
// for snapshot/compact smoke runs.
func seed(args []string) {
	fs := flag.NewFlagSet("seed", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file to create (required)")
	n := fs.Int("n", 8, "instances to create")
	shards := fs.Int("shards", 0, "create a sharded layout with N shards (0 = single journal)")
	must(fs.Parse(args))
	if *journal == "" {
		usage()
	}

	var opts []adept2.Option
	if *shards > 1 {
		opts = append(opts, adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1, Shards: *shards}))
	}
	sys, err := adept2.Open(*journal, opts...)
	must(err)
	for _, u := range []*adept2.User{
		{ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales"}},
		{ID: "bob", Name: "Bob", Roles: []string{"warehouse", "finance"}},
	} {
		must(sys.AddUser(u))
	}
	must(sys.Deploy(sim.OnlineOrder()))
	for i := 0; i < *n; i++ {
		inst, err := sys.CreateInstance("online_order")
		must(err)
		must(sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": fmt.Sprintf("order-%d", i)}))
		if i == 0 {
			must(sys.AdHocChange(inst.ID(), sim.OnlineOrderBiasI2()...))
		}
	}
	_, err = sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{})
	must(err)
	seq := sys.JournalSeq()
	must(sys.Close())
	fmt.Printf("seeded %s: %d instances, journal seq %d\n", *journal, *n, seq)
}

// openDurable opens a journal-backed system with checkpointing for the
// admin commands (automatic snapshots off — they snapshot explicitly).
func openDurable(journal, dir string) *adept2.System {
	sys, err := adept2.Open(journal, adept2.WithCheckpointing(adept2.CheckpointConfig{
		Dir:   dir,
		Every: -1,
	}))
	must(err)
	info := sys.Recovery()
	switch {
	case info.FullReplay:
		fmt.Printf("recovered by full replay: %d records\n", info.Replayed)
	default:
		fmt.Printf("recovered from snapshot seq %d + %d-record suffix\n", info.SnapshotSeq, info.Replayed)
	}
	if info.Shards > 1 {
		fmt.Printf("  sharded layout: %d shards", info.Shards)
		for _, sr := range info.PerShard {
			fmt.Printf("  [%d: snap %d +%d]", sr.Shard, sr.SnapshotSeq, sr.Replayed)
		}
		fmt.Println()
	}
	for _, fb := range info.Fallbacks {
		fmt.Printf("  fallback: %s\n", fb)
	}
	return sys
}

// snapshot checkpoints the full state of a journal into the snapshot
// store.
func snapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required)")
	dir := fs.String("dir", "", "snapshot directory (default JOURNAL.snapshots)")
	must(fs.Parse(args))
	if *journal == "" {
		usage()
	}
	sys := openDurable(*journal, *dir)
	file, seq, err := sys.Checkpoint()
	must(err)
	must(sys.Close())
	if info, err := durable.ReadSnapshotInfo(file); err == nil && info.Compressed {
		fmt.Printf("snapshot %s covering journal seq %d (%d B payload, %d B compressed, %.1fx)\n",
			file, seq, info.RawLen, info.StoredLen, float64(info.RawLen)/float64(info.StoredLen))
	} else {
		fmt.Printf("snapshot %s covering journal seq %d\n", file, seq)
	}
}

// compact checkpoints, then rewrites the journal without the records the
// snapshot covers (the journal is closed before the rewrite — compaction
// is an offline operation). On a sharded layout every shard journal is
// compacted against the newest generation.
func compact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required)")
	dir := fs.String("dir", "", "snapshot directory (default JOURNAL.snapshots)")
	must(fs.Parse(args))
	if *journal == "" {
		usage()
	}
	sys := openDurable(*journal, *dir)
	file, seq, err := sys.Checkpoint()
	must(err)
	must(sys.Close())
	if man, merr := sharded.LoadManifest(sharded.ManifestPath(*journal)); merr == nil && man != nil {
		dropped, err := sharded.CompactAll(*journal)
		must(err)
		fmt.Printf("snapshot generation at %s; dropped %d records across %d shard journals\n", file, dropped, man.Shards)
		return
	}
	dropped, err := durable.CompactJournal(*journal, seq)
	must(err)
	fmt.Printf("snapshot %s; dropped %d journal records covered by seq %d\n", file, dropped, seq)
}

// reshard repartitions a durability layout offline: snapshot-all under
// the new instance-to-shard hash, commit the new global manifest, sweep
// the obsolete artifacts.
func reshard(args []string) {
	fs := flag.NewFlagSet("reshard", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required)")
	shards := fs.Int("shards", 0, "target shard count (required)")
	dir := fs.String("dir", "", "snapshot directory root (default sibling directories per shard)")
	must(fs.Parse(args))
	if *journal == "" || *shards < 1 {
		usage()
	}
	var opts []adept2.Option
	if *dir != "" {
		opts = append(opts, adept2.WithCheckpointing(adept2.CheckpointConfig{Dir: *dir}))
	}
	must(adept2.Reshard(*journal, *shards, opts...))
	fmt.Printf("resharded %s to %d shards\n", *journal, *shards)
}

// verify surveys a durability layout offline: journal tail probes per
// shard (sequence gaps, torn trailing bytes), full CRC validation of
// every snapshot, generation walk of the global manifest. Exits 1 on
// refusal conditions — findings a normal open could not recover from.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required)")
	dir := fs.String("dir", "", "snapshot directory root (default sibling directories)")
	repair := fs.Bool("repair", false, "truncate torn journal tails in place")
	must(fs.Parse(args))
	if *journal == "" {
		usage()
	}
	var opts []adept2.Option
	if *dir != "" {
		opts = append(opts, adept2.WithCheckpointing(adept2.CheckpointConfig{Dir: *dir}))
	}
	rep, err := adept2.VerifyLayout(*journal, *repair, opts...)
	must(err)
	if rep.Sharded {
		fmt.Printf("%s: sharded layout, %d shards, %d generation(s)\n", *journal, len(rep.Shards), rep.Generations)
	} else {
		fmt.Printf("%s: single-journal layout\n", *journal)
	}
	for _, sc := range rep.Shards {
		state := "clean"
		switch {
		case sc.Repaired:
			state = fmt.Sprintf("repaired %d torn byte(s)", sc.TornBytes)
		case sc.TornBytes > 0 || sc.OpenTail:
			state = fmt.Sprintf("%d torn byte(s)", sc.TornBytes)
		}
		fmt.Printf("  shard %d: journal seq %d..%d, tail %s\n", sc.Shard, sc.FirstSeq, sc.LastSeq, state)
		for _, s := range sc.Snapshots {
			if s.Err == "" {
				fmt.Printf("    snapshot %s (seq %d) OK\n", s.File, s.Seq)
			} else {
				fmt.Printf("    snapshot %s (seq %d) INVALID: %s\n", s.File, s.Seq, s.Err)
			}
		}
	}
	if rep.Sharded && rep.Generations > 0 {
		if rep.ValidGen >= 0 {
			fmt.Printf("  recoverable from generation %d of %d\n", rep.ValidGen+1, rep.Generations)
		} else {
			fmt.Printf("  no generation validates\n")
		}
	}
	for _, w := range rep.Warnings {
		fmt.Printf("warning: %s\n", w)
	}
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
	if !rep.OK() {
		os.Exit(1)
	}
	fmt.Println("verify: OK")
}

// list pages through the instances (and, with -user, a user's worklist)
// of a journaled system via the cursor read API — the paginated path a
// front end would use instead of copying full slices.
func list(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required unless -remote)")
	user := fs.String("user", "", "also page this user's worklist")
	page := fs.Int("page", 5, "page size")
	remote := fs.String("remote", "", "page a served command plane at URL instead of opening a journal")
	must(fs.Parse(args))
	if *remote != "" {
		listRemote(*remote, *user, *page)
		return
	}
	if *journal == "" {
		usage()
	}
	sys := openDurable(*journal, "")
	defer sys.Close()

	pages, total := 0, 0
	for cursor := ""; ; {
		insts, next := sys.InstancesPage(cursor, *page)
		if len(insts) > 0 {
			pages++
		}
		for _, inst := range insts {
			total++
			state := "running"
			switch {
			case inst.Done():
				state = "completed"
			case inst.Suspended():
				state = "suspended"
			}
			bias := ""
			if inst.Biased() {
				bias = " +bias"
			}
			fmt.Printf("  %s  %s v%d  %s%s\n", inst.ID(), inst.TypeName(), inst.Version(), state, bias)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	fmt.Printf("%d instances in %d pages of %d\n", total, pages, *page)

	if *user != "" {
		n := 0
		for cursor := ""; ; {
			items, next := sys.WorkItemsPage(*user, cursor, *page)
			for _, it := range items {
				n++
				fmt.Printf("  %s  %s/%s (%s, %s)\n", it.ID, it.Instance, it.Node, it.Role, it.State)
			}
			if next == "" {
				break
			}
			cursor = next
		}
		fmt.Printf("%d work items for %s\n", n, *user)
	}
}

// load drives a synthetic workload through the unified command API:
// every instance is created, completed one step, and suspend/resume
// cycled, submitted via Submit (sync), SubmitAsync (pipelined receipts),
// or SubmitBatch, per -mode. The CI smoke uses it to exercise the
// batch/async paths end to end.
func load(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file to create (required unless -remote)")
	n := fs.Int("n", 64, "instances to drive")
	mode := fs.String("mode", "batch", "submission mode: sync, async, or batch")
	shards := fs.Int("shards", 0, "create a sharded layout with N shards")
	remote := fs.String("remote", "", "drive a served command plane at URL instead of opening a journal")
	must(fs.Parse(args))
	if *remote != "" {
		loadRemote(*remote, *n, *mode)
		return
	}
	if *journal == "" {
		usage()
	}
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, Shards: *shards}
	sys, err := adept2.Open(*journal, adept2.WithCheckpointing(cfg))
	must(err)
	ctx := context.Background()

	must(sys.AddUser(&adept2.User{ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales"}}))
	must(sys.Deploy(sim.OnlineOrder()))
	start := time.Now()
	var cmds int
	switch *mode {
	case "sync":
		for i := 0; i < *n; i++ {
			res, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			inst := res.(*adept2.Instance)
			_, err = sys.Submit(ctx, &adept2.CompleteActivity{
				Instance: inst.ID(), Node: "get_order", User: "ann",
				Outputs: map[string]any{"out": fmt.Sprintf("order-%d", i)}})
			must(err)
			cmds += 2
		}
	case "async":
		receipts := make([]*adept2.Receipt, 0, 2*(*n))
		for i := 0; i < *n; i++ {
			r, err := sys.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			inst := r.Result().(*adept2.Instance)
			r2, err := sys.SubmitAsync(ctx, &adept2.CompleteActivity{
				Instance: inst.ID(), Node: "get_order", User: "ann",
				Outputs: map[string]any{"out": fmt.Sprintf("order-%d", i)}})
			must(err)
			receipts = append(receipts, r, r2)
		}
		for _, r := range receipts {
			must(r.Wait(ctx))
		}
		cmds = len(receipts)
	case "batch":
		for i := 0; i < *n; i++ {
			res, err := sys.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			inst := res.(*adept2.Instance)
			batch := []adept2.Command{
				&adept2.CompleteActivity{Instance: inst.ID(), Node: "get_order", User: "ann",
					Outputs: map[string]any{"out": fmt.Sprintf("order-%d", i)}},
				&adept2.Suspend{Instance: inst.ID()},
				&adept2.Resume{Instance: inst.ID()},
			}
			results, err := sys.SubmitBatch(ctx, batch)
			must(err)
			cmds += 1 + len(results)
		}
	default:
		usage()
	}
	elapsed := time.Since(start)
	must(sys.Health())
	seq := sys.JournalSeq()
	must(sys.Close())
	fmt.Printf("%s: %d commands (%s mode) in %s (%.0f cmds/s), journal seq %d\n",
		*journal, cmds, *mode, elapsed.Round(time.Millisecond),
		float64(cmds)/elapsed.Seconds(), seq)
}

// serveCmd exposes a journaled system as a networked command plane:
// open, serve HTTP/JSON on -addr (optionally the stats plane on
// -metrics), block until SIGINT/SIGTERM, then drain — in-flight
// receipts resolve against the final watermarks — and close.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required; created if missing)")
	addr := fs.String("addr", "127.0.0.1:0", "command-plane listen address")
	shards := fs.Int("shards", 0, "create a sharded layout with N shards")
	metrics := fs.String("metrics", "", "also serve /metrics, /metrics.json, /healthz at ADDR")
	must(fs.Parse(args))
	if *journal == "" {
		usage()
	}
	opts := []adept2.Option{adept2.WithCheckpointing(adept2.CheckpointConfig{
		Every: -1, GroupCommit: true, Shards: *shards,
	})}
	if *metrics != "" {
		opts = append(opts, adept2.WithMetricsServer(*metrics))
	}
	sys, err := adept2.Open(*journal, opts...)
	must(err)
	srv, err := rpc.NewServer(sys, rpc.Options{Addr: *addr})
	must(err)
	fmt.Printf("serving command plane at %s\n", srv.URL())
	if *metrics != "" {
		fmt.Printf("serving stats at http://%s/metrics\n", sys.MetricsAddr())
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("draining")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	must(srv.Close(ctx))
	must(sys.Close())
}

// listRemote is list over the wire: the same cursor pagination, served
// by a remote command plane.
func listRemote(url, user string, page int) {
	ctx := context.Background()
	cli, err := rpc.Dial(ctx, url)
	must(err)
	defer cli.Close()
	pages, total := 0, 0
	for cursor := ""; ; {
		pg, err := cli.Instances(ctx, cursor, page)
		must(err)
		if len(pg.Instances) > 0 {
			pages++
		}
		for _, inst := range pg.Instances {
			total++
			state := "running"
			switch {
			case inst.Done:
				state = "completed"
			case inst.Suspended:
				state = "suspended"
			}
			bias := ""
			if inst.Biased {
				bias = " +bias"
			}
			fmt.Printf("  %s  %s v%d  %s%s\n", inst.ID, inst.Type, inst.Version, state, bias)
		}
		if pg.Next == "" {
			break
		}
		cursor = pg.Next
	}
	fmt.Printf("%d instances in %d pages of %d (remote)\n", total, pages, page)

	if user != "" {
		n := 0
		for cursor := ""; ; {
			pg, err := cli.WorkItems(ctx, user, cursor, page)
			must(err)
			for _, it := range pg.Items {
				n++
				fmt.Printf("  %s  %s/%s (%s, %s)\n", it.ID, it.Instance, it.Node, it.Role, it.State)
			}
			if pg.Next == "" {
				break
			}
			cursor = pg.Next
		}
		fmt.Printf("%d work items for %s (remote)\n", n, user)
	}
}

// loadRemote is load over the wire: the same create/complete workload,
// submitted to a served command plane through the typed client in the
// chosen mode. The org user and schema bootstrap travels as commands
// too (tolerating a server that already has the user).
func loadRemote(url string, n int, mode string) {
	ctx := context.Background()
	cli, err := rpc.Dial(ctx, url)
	must(err)
	defer cli.Close()

	if _, err := cli.Submit(ctx, &adept2.AddUser{User: &adept2.User{
		ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales"}}}); err != nil &&
		!errors.Is(err, adept2.ErrConflict) && !errors.Is(err, adept2.ErrInvalid) {
		must(err)
	}
	// A server that already has the schema answers version_skew.
	if _, err := cli.Submit(ctx, &adept2.Deploy{Schema: sim.OnlineOrder()}); err != nil &&
		!errors.Is(err, adept2.ErrConflict) && !errors.Is(err, adept2.ErrVersionSkew) {
		must(err)
	}

	start := time.Now()
	var cmds int
	outputs := func(i int) map[string]any {
		return map[string]any{"out": fmt.Sprintf("order-%d", i)}
	}
	switch mode {
	case "sync":
		for i := 0; i < n; i++ {
			res, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			_, err = cli.Submit(ctx, &adept2.CompleteActivity{
				Instance: res.Result.Instance.ID, Node: "get_order", User: "ann", Outputs: outputs(i)})
			must(err)
			cmds += 2
		}
	case "async":
		receipts := make([]*rpc.Receipt, 0, 2*n)
		for i := 0; i < n; i++ {
			r, err := cli.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			r2, err := cli.SubmitAsync(ctx, &adept2.CompleteActivity{
				Instance: r.Result().Instance.ID, Node: "get_order", User: "ann", Outputs: outputs(i)})
			must(err)
			receipts = append(receipts, r, r2)
		}
		for _, r := range receipts {
			must(r.Wait(ctx))
		}
		cmds = len(receipts)
	case "batch":
		for i := 0; i < n; i++ {
			res, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			must(err)
			id := res.Result.Instance.ID
			results, err := cli.SubmitBatch(ctx, []adept2.Command{
				&adept2.CompleteActivity{Instance: id, Node: "get_order", User: "ann", Outputs: outputs(i)},
				&adept2.Suspend{Instance: id},
				&adept2.Resume{Instance: id},
			})
			must(err)
			cmds += 1 + len(results)
		}
	default:
		usage()
	}
	elapsed := time.Since(start)
	wms, err := cli.Watermarks(ctx)
	must(err)
	sum, err := cli.Health(ctx)
	must(err)
	fmt.Printf("%s: %d commands (%s mode, remote) in %s (%.0f cmds/s), %d shards, watermarks %v, %d instances\n",
		url, cmds, mode, elapsed.Round(time.Millisecond),
		float64(cmds)/elapsed.Seconds(), sum.Shards, wms, sum.Instances)
}

// stats is the operational stats plane on the command line: open a
// journaled store and print its metrics snapshot (text, Prometheus
// exposition, or JSON), serve the live HTTP plane for scrapes, or fetch
// and validate a running system's endpoint (the CI smoke uses -fetch to
// assert the Prometheus text parses and the JSON round-trips).
func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required unless -fetch)")
	format := fs.String("format", "text", "output format: text, prom, or json")
	serve := fs.String("serve", "", "serve /metrics, /metrics.json, /healthz at ADDR and block (\":0\" picks a port)")
	fetch := fs.String("fetch", "", "GET a live endpoint URL and validate its payload instead of opening a journal")
	must(fs.Parse(args))

	if *fetch != "" {
		must(validateEndpoint(*fetch))
		return
	}
	if *journal == "" {
		usage()
	}
	opts := []adept2.Option{adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1})}
	if *serve != "" {
		opts = append(opts, adept2.WithMetricsServer(*serve))
	}
	sys, err := adept2.Open(*journal, opts...)
	must(err)
	defer sys.Close()

	if *serve != "" {
		fmt.Printf("serving stats at http://%s/metrics (also /metrics.json, /healthz)\n", sys.MetricsAddr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		return
	}
	snap := sys.Metrics()
	switch *format {
	case "prom":
		must(obs.WritePrometheus(os.Stdout, snap))
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(snap))
	case "text":
		printStats(snap)
	default:
		usage()
	}
}

// printStats renders the human-readable snapshot view. An offline open
// has no live submit counters — the interesting rows are the recovered
// state, shard heads, and health.
func printStats(snap *obs.Snapshot) {
	fmt.Printf("recovery: replayed=%d fallbacks=%d fullReplays=%d in %s (read %d B of snapshots)\n",
		snap.Recovery.Replayed, snap.Recovery.Fallbacks, snap.Recovery.FullReplays,
		time.Duration(snap.Recovery.Nanos).Round(time.Microsecond), snap.Checkpoint.BytesRead)
	for _, sh := range snap.Shards {
		fmt.Printf("shard %d: seq=%d depth=%d appends=%d wedged=%v\n",
			sh.Shard, sh.Seq, sh.Depth, sh.Appends, sh.Wedged)
	}
	ops := make([]string, 0, len(snap.Ops))
	for op := range snap.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		o := snap.Ops[op]
		fmt.Printf("op %-9s ok=%d batched=%d errors=%v\n", op, o.OK, o.Batched, o.Errors)
	}
	fmt.Printf("engine: instances=%d worklist=%d openExceptions=%d\n",
		snap.Engine.Instances, snap.Engine.WorklistDepth, snap.Engine.OpenExceptions)
	fmt.Printf("exception: failures=%d timeouts=%d retries=%d escalations=%d compensated=%d sweeps=%d\n",
		snap.Exception.Failures, snap.Exception.Timeouts, snap.Exception.Retries,
		snap.Exception.Escalations, snap.Exception.Compensated, snap.Exception.Sweeps)
	fmt.Printf("committer: fsyncs=%d retries=%d wedges=%d heals=%d\n",
		snap.Committer.Fsync.Count, snap.Committer.FlushRetries,
		snap.Committer.Wedges, snap.Committer.Heals)
	fmt.Printf("checkpoint: count=%d failures=%d bytesWritten=%d\n",
		snap.Checkpoint.Count, snap.Checkpoint.Failures, snap.Checkpoint.BytesWritten)
	health := "ok"
	if snap.Health.Wedged {
		health = fmt.Sprintf("WEDGED (shards %v)", snap.Health.WedgedShards)
	}
	fmt.Printf("health: %s cleanupErrs=%d flushRetries=%d\n",
		health, snap.Health.CleanupErrs, snap.Health.FlushRetries)
	if len(snap.Traces) > 0 {
		fmt.Printf("traces: %d sampled spans\n", len(snap.Traces))
	}
}

// requiredFamilies are the metric families the smoke validation insists
// on seeing declared in a Prometheus scrape.
var requiredFamilies = []string{
	"adept2_submit_total",
	"adept2_submit_latency_seconds",
	"adept2_committer_fsync_seconds",
	"adept2_checkpoint_total",
	"adept2_exception_failures_total",
	"adept2_sweep_lag_seconds",
	"adept2_instances",
	"adept2_wedged",
	"adept2_rpc_requests_total",
	"adept2_rpc_request_seconds",
	"adept2_rpc_open_streams",
	"adept2_rpc_stream_events_total",
	"adept2_rpc_decode_errors_total",
}

// validateEndpoint GETs url and validates the payload: a /metrics.json
// endpoint must round-trip through the typed snapshot (strict field
// check), a /metrics endpoint must be well-formed Prometheus text
// declaring every required family, with every sample line parseable.
func validateEndpoint(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: GET %s: %s", url, resp.Status)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var snap obs.Snapshot
		if err := dec.Decode(&snap); err != nil {
			return fmt.Errorf("stats: %s: snapshot JSON does not round-trip: %w", url, err)
		}
		if _, err := json.Marshal(&snap); err != nil {
			return fmt.Errorf("stats: %s: snapshot re-encode: %w", url, err)
		}
		fmt.Printf("stats: %s OK: JSON snapshot round-trips (%d ops, %d shards, %d traces)\n",
			url, len(snap.Ops), len(snap.Shards), len(snap.Traces))
		return nil
	}
	families := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				return fmt.Errorf("stats: %s line %d: malformed comment %q", url, i+1, line)
			}
			if f[1] == "TYPE" {
				families[f[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("stats: %s line %d: no value separator in %q", url, i+1, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			return fmt.Errorf("stats: %s line %d: bad value in %q: %v", url, i+1, line, err)
		}
		name := line[:sp]
		if b := strings.IndexByte(name, '{'); b >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("stats: %s line %d: unterminated labels in %q", url, i+1, line)
			}
			name = name[:b]
		}
		if !strings.HasPrefix(name, "adept2_") {
			return fmt.Errorf("stats: %s line %d: sample %q outside the adept2_ namespace", url, i+1, line)
		}
		samples++
	}
	var missing []string
	for _, f := range requiredFamilies {
		if !families[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("stats: %s: required families missing: %s", url, strings.Join(missing, ", "))
	}
	fmt.Printf("stats: %s OK: %d families, %d samples parse\n", url, len(families), samples)
	return nil
}

// mine runs the process-intelligence scan: open a journaled layout
// (recovering its population), stream every instance history through
// the internal/mining fold, and render the report — variant
// frequencies, hot paths, per-node exception concentration and
// duration quantiles, and drift against the latest deployed schema
// versions. With -fetch it instead GETs a running system's /mine.json
// endpoint and validates the payload decodes strictly (the CI smoke's
// schema pin).
func mine(args []string) {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required unless -fetch)")
	format := fs.String("format", "text", "output format: text or json")
	variants := fs.Int("variants", 0, "variant-table cap (0 = default)")
	fetch := fs.String("fetch", "", "GET a live /mine.json URL and validate its payload")
	must(fs.Parse(args))

	if *fetch != "" {
		must(validateMineEndpoint(*fetch))
		return
	}
	if *journal == "" {
		usage()
	}
	sys := openDurable(*journal, "")
	defer sys.Close()
	rep, err := sys.Mine(context.Background(), adept2.MineOptions{MaxVariants: *variants})
	must(err)
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(rep))
	case "text":
		fmt.Print(rep.Text())
	default:
		usage()
	}
}

// validateMineEndpoint GETs a /mine.json URL and round-trips the body
// through the strict report decoder.
func validateMineEndpoint(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("mine: GET %s: %s", url, resp.Status)
	}
	rep, err := mining.Decode(body)
	if err != nil {
		return fmt.Errorf("mine: %s: %w", url, err)
	}
	fmt.Printf("mine: %s OK: %d instances, %d variants, %d nodes, %d drift rows\n",
		url, rep.Instances, rep.DistinctVariants, len(rep.Nodes), len(rep.Drift))
	return nil
}

// trace surfaces the span plane. Offline (-journal) it synthesizes
// spans straight from the journal records — op, instance, shard, seq,
// and the submit timestamp where the record carries one — because a
// reopened system's live ring is empty (the metric Set installs after
// recovery, and replay records nothing). With -fetch it drains a
// running system's /trace.json export cursor. Both views share the
// obs.Span schema, so the offline miner and the live stream are the
// same shape to consumers.
func trace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (required unless -fetch)")
	format := fs.String("format", "text", "output format: text or json")
	limit := fs.Int("n", 0, "print at most the last N spans (0 = all)")
	fetch := fs.String("fetch", "", "drain a live /trace.json URL instead of reading a journal")
	after := fs.Uint64("after", 0, "with -fetch: drain only spans published after this cursor")
	must(fs.Parse(args))

	var spans []obs.Span
	switch {
	case *fetch != "":
		exp, err := fetchTraces(*fetch, *after)
		must(err)
		spans = exp.Spans
		defer fmt.Printf("next cursor: %d\n", exp.Next)
	case *journal != "":
		var err error
		spans, err = journalSpans(*journal)
		must(err)
	default:
		usage()
	}
	if *limit > 0 && len(spans) > *limit {
		spans = spans[len(spans)-*limit:]
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(spans))
	case "text":
		for _, sp := range spans {
			line := fmt.Sprintf("shard %d seq %-6d %-9s %s", sp.Shard, sp.Seq, sp.Op, sp.Instance)
			if sp.SubmitNanos > 0 {
				line += fmt.Sprintf("  submit=%d", sp.SubmitNanos)
			}
			if sp.AppliedNanos > 0 {
				line += fmt.Sprintf(" applied=+%dns", sp.AppliedNanos-sp.SubmitNanos)
			}
			if sp.DurableNanos > 0 {
				line += fmt.Sprintf(" durable=+%dns", sp.DurableNanos-sp.SubmitNanos)
			}
			if sp.Err != "" {
				line += " err=" + sp.Err
			}
			fmt.Println(line)
		}
		fmt.Printf("%d spans\n", len(spans))
	default:
		usage()
	}
}

// fetchTraces drains a /trace.json endpoint with a strict decode.
func fetchTraces(url string, after uint64) (*obs.TraceExport, error) {
	if after > 0 {
		sep := "?"
		if strings.Contains(url, "?") {
			sep = "&"
		}
		url += fmt.Sprintf("%safter=%d", sep, after)
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace: GET %s: %s", url, resp.Status)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var exp obs.TraceExport
	if err := dec.Decode(&exp); err != nil {
		return nil, fmt.Errorf("trace: %s: export does not round-trip: %w", url, err)
	}
	return &exp, nil
}

// journalSpans synthesizes the offline span view of a layout: one span
// per journal record across every shard, ordered (shard, seq).
func journalSpans(journal string) ([]obs.Span, error) {
	paths := map[int]string{0: journal}
	if man, err := sharded.LoadManifest(sharded.ManifestPath(journal)); err == nil && man != nil {
		lay := sharded.Layout{Base: journal, Shards: man.Shards}
		for k := 0; k < man.Shards; k++ {
			paths[k] = lay.JournalPath(k)
		}
	}
	var spans []obs.Span
	for shard := 0; shard < len(paths); shard++ {
		f, err := os.Open(paths[shard])
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		recs, err := persist.ReadJournal(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			sp := obs.Span{Op: rec.Op, Shard: shard, Seq: rec.Seq}
			var meta struct {
				Instance string `json:"instance"`
				At       int64  `json:"at"`
			}
			if json.Unmarshal(rec.Args, &meta) == nil {
				sp.Instance = meta.Instance
				sp.SubmitNanos = meta.At
			}
			spans = append(spans, sp)
		}
	}
	return spans, nil
}

// simCmd runs the adversarial fault-tolerance soak (internal/sim): random
// activity failures, deadline storms, schema evolutions, injected disk
// faults, crashes, and reopen checks on an in-memory store, asserting the
// soak invariants (no lost work items, no wedged instances, no
// acknowledged-write loss, replay fidelity, liveness).
func simCmd(args []string) {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	def := soak.DefaultConfig()
	steps := fs.Int("steps", def.Steps, "driver steps")
	instances := fs.Int("instances", def.Instances, "target live instances")
	seed := fs.Int64("seed", def.Seed, "scenario seed")
	shards := fs.Int("shards", def.Shards, "journal shards (0/1 = single journal)")
	failProb := fs.Float64("fail", def.FailProb, "per-action activity failure probability")
	storm := fs.Bool("storm", def.DeadlineStorm, "periodic deadline storms")
	evolve := fs.Int("evolve", def.EvolveEvery, "steps between schema evolutions (0 = never)")
	adhoc := fs.Int("adhoc", def.AdHocEvery, "steps between ad-hoc changes (0 = never)")
	faults := fs.Bool("faults", def.DiskFaults, "inject transient disk faults")
	reopen := fs.Int("reopen", def.ReopenEvery, "steps between close→reopen checks (0 = never)")
	crash := fs.Int("crash", def.CrashEvery, "steps between simulated crashes (0 = never)")
	retries := fs.Int("retries", def.MaxRetries, "exception policy retry budget")
	showStats := fs.Bool("stats", false, "print the soak's telemetry summary")
	must(fs.Parse(args))

	cfg := def
	cfg.Steps = *steps
	cfg.Instances = *instances
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.FailProb = *failProb
	cfg.DeadlineStorm = *storm
	cfg.EvolveEvery = *evolve
	cfg.AdHocEvery = *adhoc
	cfg.DiskFaults = *faults
	cfg.ReopenEvery = *reopen
	cfg.CrashEvery = *crash
	cfg.MaxRetries = *retries

	start := time.Now()
	res, err := soak.Run(context.Background(), cfg)
	must(err)
	fmt.Printf("soak passed in %s\n  %s\n", time.Since(start).Round(time.Millisecond), res)
	if *showStats {
		fmt.Printf("telemetry (post-drain session):\n%s\n", res.MetricsSummary)
	}
}
