package adept2_test

import (
	"net/http"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

// TestCodeHTTPStatus pins the taxonomy-to-HTTP mapping the networked
// command plane answers with: every code must map, and the mapping
// must agree with how clients classify the status on the way back.
func TestCodeHTTPStatus(t *testing.T) {
	cases := []struct {
		code   adept2.Code
		status int
	}{
		{adept2.CodeInternal, http.StatusInternalServerError},
		{adept2.CodeInvalid, http.StatusBadRequest},
		{adept2.CodeNotFound, http.StatusNotFound},
		{adept2.CodeConflict, http.StatusConflict},
		{adept2.CodeDenied, http.StatusForbidden},
		{adept2.CodeSuspended, http.StatusLocked},
		{adept2.CodeCompleted, http.StatusGone},
		{adept2.CodeNotCompliant, http.StatusUnprocessableEntity},
		{adept2.CodeVersionSkew, http.StatusConflict},
		{adept2.CodeWedged, http.StatusServiceUnavailable},
		{adept2.CodeUnrecoverable, http.StatusInternalServerError},
		{adept2.CodeCanceled, http.StatusRequestTimeout},
		{adept2.CodeFailed, http.StatusConflict},
		{adept2.CodeTimeout, http.StatusRequestTimeout},
		{adept2.Code("no_such_code"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := tc.code.HTTPStatus(); got != tc.status {
			t.Errorf("%s.HTTPStatus() = %d, want %d", tc.code, got, tc.status)
		}
		// The inverse classifies the status back into the taxonomy; for
		// statuses shared by several codes it picks the broader class,
		// but it must never leave the 4xx/5xx family of the original.
		back := adept2.CodeForHTTPStatus(tc.status)
		if back.HTTPStatus() != tc.status {
			t.Errorf("CodeForHTTPStatus(%d) = %s, which maps to %d", tc.status, back, back.HTTPStatus())
		}
	}
	if got := adept2.CodeForHTTPStatus(http.StatusTeapot); got != adept2.CodeInternal {
		t.Errorf("unknown status classified as %s, want internal", got)
	}
}

// TestEncodeCommandRoundTrip checks the wire codec is the journal
// codec: every registry command round-trips EncodeCommand →
// DecodeWireCommand into an equivalent typed command, including the
// special cases (Resume journals as op "suspend"; ad-hoc and evolve
// serialize through the change codec).
func TestEncodeCommandRoundTrip(t *testing.T) {
	cmds := []adept2.Command{
		&adept2.CreateInstance{TypeName: "online_order"},
		&adept2.StartActivity{Instance: "inst-1", Node: "get_order", User: "ann"},
		&adept2.CompleteActivity{Instance: "inst-1", Node: "get_order", User: "ann",
			Outputs: map[string]any{"out": "o1"}},
		&adept2.Suspend{Instance: "inst-1"},
		&adept2.Resume{Instance: "inst-1"},
		&adept2.Undo{Instance: "inst-1"},
		&adept2.AdHoc{Instance: "inst-1", Ops: sim.OnlineOrderBiasI2()},
		&adept2.Evolve{TypeName: "online_order", Ops: sim.OnlineOrderTypeChange()},
	}
	for _, cmd := range cmds {
		op, args, err := adept2.EncodeCommand(cmd)
		if err != nil {
			t.Fatalf("%T: encode: %v", cmd, err)
		}
		back, err := adept2.DecodeWireCommand(op, args)
		if err != nil {
			t.Fatalf("%T: decode %s %s: %v", cmd, op, args, err)
		}
		if _, isResume := cmd.(*adept2.Resume); isResume {
			if _, ok := back.(*adept2.Resume); !ok {
				t.Fatalf("Resume decoded as %T", back)
			}
			continue
		}
		if want, got := cmd.CommandName(), back.CommandName(); want != got {
			t.Fatalf("%T round-tripped to op %s, want %s", cmd, got, want)
		}
	}

	// Foreign implementations and unknown ops are rejected as invalid.
	if _, _, err := adept2.EncodeCommand(fakeCommand{}); err == nil {
		t.Fatal("foreign command encoded")
	}
	if _, err := adept2.DecodeWireCommand("no_such_op", nil); err == nil {
		t.Fatal("unknown op decoded")
	}
}
