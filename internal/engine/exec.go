package engine

import (
	"fmt"
	"sort"

	"adept2/internal/data"
	"adept2/internal/fault"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
	"adept2/internal/worklist"
)

// CompleteOption customizes activity completion.
type CompleteOption func(*completeOpts)

type completeOpts struct {
	decision    int
	decisionSet bool
	again       bool
	againSet    bool
	at          int64
}

// WithDecision supplies the selection code for completing an XOR split
// manually.
func WithDecision(code int) CompleteOption {
	return func(o *completeOpts) { o.decision = code; o.decisionSet = true }
}

// WithLoopAgain supplies the iteration decision for completing a loop end
// manually.
func WithLoopAgain(again bool) CompleteOption {
	return func(o *completeOpts) { o.again = again; o.againSet = true }
}

// WithCompletedAt stamps the completion timestamp (unix nanos, recorded
// on the journaled complete command so replay reproduces it) onto the
// Completed history event. Zero leaves the event unstamped.
func WithCompletedAt(at int64) CompleteOption {
	return func(o *completeOpts) { o.at = at }
}

// startLocked validates and performs the start of a node. A non-zero at
// (unix nanos, recorded on the journaled start command so replay re-arms
// identically) arms the node's relative deadline.
func (inst *Instance) startLocked(node, user string, at int64) error {
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: start %s/%s: instance is completed", inst.id, node)
	}
	if inst.suspended && user != "" {
		return fault.Tagf(fault.Suspended, "engine: start %s/%s: instance is suspended", inst.id, node)
	}
	v, _, err := inst.viewLocked()
	if err != nil {
		return err
	}
	n, ok := v.Node(node)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: start %s/%s: no such node", inst.id, node)
	}
	if got := inst.marking.Node(node); got != state.Activated {
		return fault.Tagf(fault.Conflict, "engine: start %s/%s: node is %s, not activated", inst.id, node, got)
	}
	if !n.Auto && n.Role != "" {
		if user == "" {
			return fault.Tagf(fault.Denied, "engine: start %s/%s: activity requires a user with role %q", inst.id, node, n.Role)
		}
		if !inst.eng.org.HasRole(user, n.Role) {
			return fault.Tagf(fault.Denied, "engine: start %s/%s: user %q lacks role %q", inst.id, node, user, n.Role)
		}
	}
	reads, err := inst.gatherReadsLocked(v, n)
	if err != nil {
		return err
	}
	if err := inst.marking.Start(node); err != nil {
		return err
	}
	e := inst.hist.Append(&history.Event{Kind: history.Started, Node: node, User: user, Reads: reads, Decision: -1, At: at})
	inst.stats.OnStart(node, e.Seq)
	// A fresh start clears any pending retry/compensation left from a
	// prior failed attempt and arms the activity's deadline.
	delete(inst.retryAt, node)
	delete(inst.compPending, node)
	if at != 0 && n.Deadline > 0 {
		if inst.deadlines == nil {
			inst.deadlines = make(map[string]int64)
		}
		inst.deadlines[node] = at + n.Deadline
	}
	if !n.Auto && n.Type == model.NodeActivity {
		// Best effort: the item exists unless the node was activated by
		// adaptation inside a Mutate (reconciled afterwards).
		_ = inst.eng.wl.MarkStarted(inst.id, node, user)
	}
	return nil
}

// gatherReadsLocked collects the input parameter values of a node and
// enforces mandatory supplies.
func (inst *Instance) gatherReadsLocked(v model.SchemaView, n *model.Node) (map[string]any, error) {
	var reads map[string]any
	for _, de := range v.DataEdgesOf(n.ID) {
		if de.Access != model.Read {
			continue
		}
		val, ok := inst.store.Read(de.Element)
		if !ok {
			if de.Mandatory {
				return nil, fault.Tagf(fault.Invalid, "engine: start %s/%s: mandatory input %q (element %q) has no value", inst.id, n.ID, de.Parameter, de.Element)
			}
			if elem, ok := v.DataElement(de.Element); ok {
				val = elem.Type.ZeroValue()
			}
		}
		if reads == nil {
			reads = make(map[string]any)
		}
		reads[de.Parameter] = val
	}
	return reads, nil
}

// completeEntryLocked is the user-facing completion path: it starts the
// node first when it is merely activated, completes it, and advances the
// instance.
func (inst *Instance) completeEntryLocked(node, user string, outputs map[string]any, opts ...CompleteOption) error {
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: complete %s/%s: instance is completed", inst.id, node)
	}
	if inst.suspended {
		return fault.Tagf(fault.Suspended, "engine: complete %s/%s: instance is suspended", inst.id, node)
	}
	if inst.marking.Node(node) == state.Activated {
		// Implicit start: no deadline is armed — the completion follows
		// immediately, so an expiry could never fire.
		if err := inst.startLocked(node, user, 0); err != nil {
			return err
		}
	}
	var co completeOpts
	for _, o := range opts {
		o(&co)
	}
	if err := inst.completeCoreLocked(node, user, outputs, co); err != nil {
		return err
	}
	return inst.cascadeLocked()
}

// completeCoreLocked performs the completion bookkeeping without running
// the automatic cascade.
func (inst *Instance) completeCoreLocked(node, user string, outputs map[string]any, co completeOpts) error {
	v, blocks, err := inst.viewLocked()
	if err != nil {
		return err
	}
	n, ok := v.Node(node)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: complete %s/%s: no such node", inst.id, node)
	}
	if got := inst.marking.Node(node); got != state.Running {
		return fault.Tagf(fault.Conflict, "engine: complete %s/%s: node is %s, not running", inst.id, node, got)
	}

	// Routing decisions.
	decision := -1
	if n.Type == model.NodeXORSplit {
		decision, err = inst.xorDecisionLocked(v, n, co)
		if err != nil {
			return err
		}
	}
	again := false
	if n.Type == model.NodeLoopEnd {
		again = inst.loopDecisionLocked(n, co)
	}

	// Output parameters -> data element writes.
	writes, err := inst.collectWritesLocked(v, n, outputs)
	if err != nil {
		return err
	}

	e := inst.hist.Append(&history.Event{
		Kind:     history.Completed,
		Node:     node,
		User:     user,
		Decision: decision,
		Again:    again,
		Writes:   writes,
		At:       co.at,
	})
	inst.stats.OnComplete(node, e.Seq, decision)
	for elem, val := range writes {
		inst.store.Write(elem, val, node, e.Seq)
	}

	if n.Type == model.NodeLoopEnd && again {
		blk, ok := blocks.ByJoin(node)
		if !ok {
			return fmt.Errorf("engine: complete %s/%s: loop end has no block", inst.id, node)
		}
		region := blk.Region()
		inst.stats.PurgeRegion(region)
		state.ResetLoop(v, inst.marking, region)
		inst.loopIter[node]++
		inst.clearExceptionLocked(node)
		// Nested loops restart their iteration count.
		for id := range region {
			if id == node {
				continue
			}
			if inner, ok := v.Node(id); ok && inner.Type == model.NodeLoopEnd {
				inst.loopIter[id] = 0
			}
			inst.clearExceptionLocked(id)
			inst.eng.wl.Withdraw(inst.id, id)
		}
		return nil
	}

	if err := inst.marking.Complete(v, node, decision); err != nil {
		return err
	}
	inst.clearExceptionLocked(node)
	inst.eng.wl.Withdraw(inst.id, node)
	return nil
}

// clearExceptionLocked drops all exception bookkeeping of a node — its
// completion (or loop purge) moots armed deadlines, pending retries, and
// accumulated failure counts alike.
func (inst *Instance) clearExceptionLocked(node string) {
	delete(inst.deadlines, node)
	delete(inst.retryAt, node)
	delete(inst.failures, node)
	delete(inst.escalated, node)
	delete(inst.compPending, node)
}

// xorDecisionLocked resolves the selection code of an XOR split from the
// explicit option or the split's decision element. An unmatched code is
// clamped to the lowest outgoing code so the engine stays total; the event
// records the code actually taken.
func (inst *Instance) xorDecisionLocked(v model.SchemaView, n *model.Node, co completeOpts) (int, error) {
	outs := model.OutControlEdges(v, n.ID)
	codes := make([]int, 0, len(outs))
	for _, e := range outs {
		codes = append(codes, e.Code)
	}
	sort.Ints(codes)
	var want int
	switch {
	case co.decisionSet:
		want = co.decision
	case n.DecisionElement != "":
		val, ok := inst.store.Read(n.DecisionElement)
		if !ok {
			return 0, fault.Tagf(fault.Invalid, "engine: complete %s/%s: decision element %q has no value", inst.id, n.ID, n.DecisionElement)
		}
		iv, ok := data.AsInt(val)
		if !ok {
			return 0, fault.Tagf(fault.Invalid, "engine: complete %s/%s: decision element %q holds %v, not an integer", inst.id, n.ID, n.DecisionElement, val)
		}
		want = iv
	default:
		return 0, fault.Tagf(fault.Invalid, "engine: complete %s/%s: xor split needs a decision (WithDecision or decision element)", inst.id, n.ID)
	}
	for _, c := range codes {
		if c == want {
			return want, nil
		}
	}
	return codes[0], nil
}

// loopDecisionLocked resolves the iteration decision of a loop end,
// bounded by MaxIterations.
func (inst *Instance) loopDecisionLocked(n *model.Node, co completeOpts) bool {
	again := false
	switch {
	case co.againSet:
		again = co.again
	case n.DecisionElement != "":
		if val, ok := inst.store.Read(n.DecisionElement); ok {
			if b, ok := data.AsBool(val); ok {
				again = b
			}
		}
	}
	if again && n.MaxIterations > 0 && inst.loopIter[n.ID]+1 >= n.MaxIterations {
		again = false
	}
	return again
}

// collectWritesLocked validates output parameters against the node's write
// data edges and returns element -> value. Manual nodes must supply every
// output parameter; automatic nodes zero-fill missing ones.
func (inst *Instance) collectWritesLocked(v model.SchemaView, n *model.Node, outputs map[string]any) (map[string]any, error) {
	var writes map[string]any
	seen := make(map[string]bool, len(outputs))
	for _, de := range v.DataEdgesOf(n.ID) {
		if de.Access != model.Write {
			continue
		}
		elem, ok := v.DataElement(de.Element)
		if !ok {
			return nil, fmt.Errorf("engine: complete %s/%s: write edge references unknown element %q", inst.id, n.ID, de.Element)
		}
		val, supplied := outputs[de.Parameter]
		if !supplied {
			if !n.Auto {
				return nil, fault.Tagf(fault.Invalid, "engine: complete %s/%s: missing output parameter %q", inst.id, n.ID, de.Parameter)
			}
			val = elem.Type.ZeroValue()
		}
		coerced, err := data.Coerce(val, elem.Type)
		if err != nil {
			return nil, fmt.Errorf("engine: complete %s/%s: parameter %q: %w", inst.id, n.ID, de.Parameter, err)
		}
		if writes == nil {
			writes = make(map[string]any)
		}
		writes[de.Element] = coerced
		seen[de.Parameter] = true
	}
	for p := range outputs {
		if !seen[p] {
			return nil, fault.Tagf(fault.Invalid, "engine: complete %s/%s: unknown output parameter %q", inst.id, n.ID, p)
		}
	}
	return writes, nil
}

// cascadeLocked drives the instance forward: it evaluates the marking,
// executes automatic nodes until none is enabled, detects completion of
// the end node, and reconciles the worklist.
func (inst *Instance) cascadeLocked() error {
	v, _, err := inst.viewLocked()
	if err != nil {
		return err
	}
	topo := v.Topology()
	// The per-instance execution index follows every topology change the
	// cascade observes (cheap no-op while the topology is unchanged).
	inst.stats.Rebind(topo)
	var evalBuf []model.NodeIdx
	for {
		evalBuf = state.EvaluateInto(v, inst.marking, inst.hist.NextSeq(), evalBuf)

		if end := topo.EndIdx(); end != model.InvalidNode && inst.marking.NodeAt(end) == state.Activated {
			inst.marking.SetNodeAt(end, state.Completed)
			inst.done = true
			break
		}

		// Only auto-executable nodes can continue the cascade; the
		// topology index enumerates them without scanning the schema.
		next := model.InvalidNode
		for _, ni := range topo.AutoExecutableIdx() {
			if inst.marking.NodeAt(ni) == state.Activated {
				next = ni
				break
			}
		}
		if next == model.InvalidNode {
			break
		}
		id := topo.ID(next)
		if err := inst.startLocked(id, "", 0); err != nil {
			return err
		}
		if err := inst.completeCoreLocked(id, "", nil, completeOpts{}); err != nil {
			return err
		}
		// A loop reset may have changed nothing visible to Evaluate's
		// fixpoint (states were cleared); loop again from the top.
	}
	inst.syncWorklistLocked()
	return nil
}

// syncWorklistLocked reconciles the instance's work items with its
// marking: activated manual activities get items; items of nodes that are
// no longer activated or running are withdrawn. The whole reconciliation
// is one worklist.BatchUpdate — a single lock acquisition and at most one
// org-model resolution per distinct role.
func (inst *Instance) syncWorklistLocked() {
	v, _, err := inst.viewLocked()
	if err != nil {
		return
	}
	topo := v.Topology()
	inst.reconcileExceptionsLocked()
	var wanted []worklist.Wanted
	for _, id := range topo.ManualActivities() {
		if s := inst.marking.Node(id); s == state.Activated || s == state.Running {
			// A failed activity in its retry backoff (or awaiting a
			// policy compensation) keeps no offer: the re-offer is a
			// journaled Retry command, so replay reproduces the same
			// suppression window.
			if s == state.Activated && (inst.retryAt[id] != 0 || inst.compPending[id]) {
				continue
			}
			wanted = append(wanted, worklist.Wanted{
				Node:    id,
				Role:    topo.Of(id).Node.Role,
				Running: s == state.Running,
			})
		}
	}
	inst.eng.wl.BatchUpdate(inst.id, wanted, inst.eng.org.UsersInRole)
}

// reconcileExceptionsLocked drops exception entries that no longer match
// the node state they describe — a migration, ad-hoc change, undo, or
// loop reset may have moved or deleted the node underneath them. The
// rule is a pure function of the marking, so live execution and command
// replay converge on identical exception state: deadlines and
// escalations belong to running nodes, retry backoffs and pending
// compensations to activated ones, failure counts to either.
func (inst *Instance) reconcileExceptionsLocked() {
	for id := range inst.deadlines {
		if inst.marking.Node(id) != state.Running {
			delete(inst.deadlines, id)
		}
	}
	for id := range inst.escalated {
		if inst.marking.Node(id) != state.Running {
			delete(inst.escalated, id)
		}
	}
	for id := range inst.retryAt {
		if inst.marking.Node(id) != state.Activated {
			delete(inst.retryAt, id)
		}
	}
	for id := range inst.compPending {
		if inst.marking.Node(id) != state.Activated {
			delete(inst.compPending, id)
		}
	}
	for id := range inst.failures {
		if s := inst.marking.Node(id); s != state.Activated && s != state.Running {
			delete(inst.failures, id)
		}
	}
}
