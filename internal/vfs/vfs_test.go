package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readAll re-opens name and reads its full live content.
func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	b, err := ReadFile(fsys, name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

func writeVia(t *testing.T, fsys FS, name, content string, syncFile bool) {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if syncFile {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendContract runs the shared FS behavior over both backends.
func TestBackendContract(t *testing.T) {
	backends := []struct {
		name string
		fsys FS
		root string
	}{
		{"os", OS(), t.TempDir()},
		{"mem", NewMemFS(), "/"},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			p := filepath.Join(b.root, "a.txt")
			writeVia(t, b.fsys, p, "hello", true)
			if got := readAll(t, b.fsys, p); string(got) != "hello" {
				t.Fatalf("content = %q", got)
			}
			st, err := b.fsys.Stat(p)
			if err != nil || st.Size() != 5 || st.IsDir() {
				t.Fatalf("stat: %v %v", st, err)
			}
			if _, err := b.fsys.Stat(filepath.Join(b.root, "absent")); !os.IsNotExist(err) {
				t.Fatalf("stat absent: %v", err)
			}
			if _, err := Open(b.fsys, filepath.Join(b.root, "absent")); !os.IsNotExist(err) {
				t.Fatalf("open absent: %v", err)
			}
			// O_EXCL refuses existing files.
			if _, err := b.fsys.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644); !os.IsExist(err) {
				t.Fatalf("excl: %v", err)
			}
			// Append mode continues at the end.
			f, err := b.fsys.OpenFile(p, os.O_RDWR|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte(" world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(8); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if got := readAll(t, b.fsys, p); string(got) != "hello wo" {
				t.Fatalf("after append+truncate: %q", got)
			}
			// Rename, ReadDir, Remove.
			q := filepath.Join(b.root, "b.txt")
			if err := b.fsys.Rename(p, q); err != nil {
				t.Fatal(err)
			}
			sub := filepath.Join(b.root, "sub")
			if err := b.fsys.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			des, err := b.fsys.ReadDir(b.root)
			if err != nil || len(des) != 2 {
				t.Fatalf("readdir: %v %v", des, err)
			}
			if des[0].Name() != "b.txt" || des[0].IsDir() || des[1].Name() != "sub" || !des[1].IsDir() {
				t.Fatalf("entries: %v %v", des[0], des[1])
			}
			if err := b.fsys.SyncDir(b.root); err != nil {
				t.Fatal(err)
			}
			if err := b.fsys.Remove(q); err != nil {
				t.Fatal(err)
			}
			if err := b.fsys.Remove(q); !os.IsNotExist(err) {
				t.Fatalf("double remove: %v", err)
			}
			// CreateTemp produces distinct names with the pattern's shape.
			t1, err := CreateTemp(b.fsys, b.root, "x.tmp-*")
			if err != nil {
				t.Fatal(err)
			}
			t2, err := CreateTemp(b.fsys, b.root, "x.tmp-*")
			if err != nil {
				t.Fatal(err)
			}
			if t1.Name() == t2.Name() {
				t.Fatalf("temp collision: %s", t1.Name())
			}
			t1.Close()
			t2.Close()
		})
	}
}

func TestMemCrashDiscardsUnsynced(t *testing.T) {
	m := NewMemFS()
	writeVia(t, m, "/synced.txt", "keep", true)
	writeVia(t, m, "/unsynced.txt", "lose", false)

	// Partially synced file: sync "AB", then append "CD" without sync.
	f, err := m.OpenFile("/partial.txt", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("AB"))
	f.Sync()
	f.Write([]byte("CD"))

	m.Crash()

	if _, err := f.Write([]byte("ZZ")); !errors.Is(err, ErrStaleHandle.Err) {
		t.Fatalf("stale handle write: %v", err)
	}
	if got := readAll(t, m, "/synced.txt"); string(got) != "keep" {
		t.Fatalf("synced: %q", got)
	}
	if _, err := Open(m, "/unsynced.txt"); !os.IsNotExist(err) {
		t.Fatalf("unsynced survived: %v", err)
	}
	if got := readAll(t, m, "/partial.txt"); string(got) != "AB" {
		t.Fatalf("partial: %q", got)
	}
}

func TestMemCrashRevertsUnsyncedRename(t *testing.T) {
	m := NewMemFS()
	writeVia(t, m, "/old.txt", "v1", true)
	if err := m.Rename("/old.txt", "/new.txt"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	// No SyncDir: the rename is lost, the old binding revives.
	if _, err := Open(m, "/new.txt"); !os.IsNotExist(err) {
		t.Fatalf("unsynced rename survived: %v", err)
	}
	if got := readAll(t, m, "/old.txt"); string(got) != "v1" {
		t.Fatalf("old binding: %q", got)
	}

	// With SyncDir the rename is durable.
	if err := m.Rename("/old.txt", "/new.txt"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readAll(t, m, "/new.txt"); string(got) != "v1" {
		t.Fatalf("synced rename: %q", got)
	}
	if _, err := Open(m, "/old.txt"); !os.IsNotExist(err) {
		t.Fatalf("old name survived the synced rename: %v", err)
	}
}

func TestMemCrashRevertsUnsyncedRemove(t *testing.T) {
	m := NewMemFS()
	writeVia(t, m, "/doc.txt", "data", true)
	if err := m.Remove("/doc.txt"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readAll(t, m, "/doc.txt"); string(got) != "data" {
		t.Fatalf("unsynced remove must revert: %q", got)
	}
	if err := m.Remove("/doc.txt"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := Open(m, "/doc.txt"); !os.IsNotExist(err) {
		t.Fatalf("synced remove must stick: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, nil)

	// Pass-through with a nil script, counting ops.
	writeVia(t, ff, "/a.txt", "one", true)
	if ff.OpCount() == 0 {
		t.Fatal("operations not counted")
	}

	// Transient failure: exactly the next write fails, the retry works.
	f, err := ff.OpenFile("/a.txt", os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetScript(FailNth(ff.OpCount()+1, ErrInjected))
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("retry after transient: %v", err)
	}

	// Persistent failure: every sync from now on fails.
	ff.SetScript(FailFrom(1, ErrInjected, OpSync))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("persistent sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("persistent sync 2: %v", err)
	}
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("non-matching kind must pass: %v", err)
	}
	f.Close()
}

func TestFaultTornWrite(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, nil)
	f, err := ff.OpenFile("/t.txt", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetScript(func(n int64, op OpRef) Decision {
		if op.Kind == OpWrite {
			return Decision{Err: ErrInjected, TornPrefix: 3}
		}
		return Decision{}
	})
	n, err := f.Write([]byte("ABCDEF"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	ff.SetScript(nil)
	f.Close()
	if got := readAll(t, m, "/t.txt"); string(got) != "ABC" {
		t.Fatalf("torn prefix: %q", got)
	}
}

func TestFaultCrashAt(t *testing.T) {
	m := NewMemFS()
	ff := NewFaultFS(m, nil)
	writeVia(t, ff, "/keep.txt", "durable", true)

	f, err := ff.OpenFile("/keep.txt", os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetScript(CrashAt(ff.OpCount() + 1))
	if _, err := f.Write([]byte(" lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash op: %v", err)
	}
	if !ff.Crashed() {
		t.Fatal("crash flag not set")
	}
	// Everything after the crash fails, whatever the script says.
	ff.SetScript(nil)
	if _, err := Open(ff, "/keep.txt"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	// The inner fs survived with only the durable bytes.
	if got := readAll(t, m, "/keep.txt"); string(got) != "durable" {
		t.Fatalf("post-crash content: %q", got)
	}
	ff.ClearCrash()
	if _, err := Open(ff, "/keep.txt"); err != nil {
		t.Fatalf("after ClearCrash: %v", err)
	}
}

func TestMemReadSequential(t *testing.T) {
	m := NewMemFS()
	writeVia(t, m, "/r.txt", "0123456789", false)
	f, err := Open(m, "/r.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "0123" {
		t.Fatalf("read 1: %q %v", buf[:n], err)
	}
	rest, err := io.ReadAll(f)
	if err != nil || string(rest) != "456789" {
		t.Fatalf("read rest: %q %v", rest, err)
	}
}
