package sharded

import (
	"fmt"
	"runtime"
	"sync"

	"adept2/internal/durable"
	"adept2/internal/engine"
	"adept2/internal/fault"
	"adept2/internal/persist"
)

// fanOut runs job(0..n-1) on min(n, NumCPU) workers. The CPU-bound
// recovery stages (record apply, instance restore) use it instead of
// one-goroutine-per-shard: on a host with fewer cores than shards, extra
// appliers only add lock contention on the engine and worklist — the
// jobs are independent, so any interleaving down to fully serial is a
// valid schedule.
func fanOut(n int, job func(k int) error) error {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if err := job(k); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	idx := make(chan int, n)
	for k := 0; k < n; k++ {
		idx <- k
	}
	close(idx)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				if err := job(k); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}

// ShardState is one shard's recovered inputs: the snapshot state it
// restores from (nil on full replay), the snapshot file name, the decoded
// journal suffix past the snapshot, and the journal's physical tail info
// (fed to ResumeJournal afterwards).
type ShardState struct {
	State *durable.SystemState
	File  string
	Recs  []persist.Record
	Tail  persist.TailInfo
}

// LoadResult aggregates a recovery attempt across all shards.
type LoadResult struct {
	// Gen is the generation every shard restored from (nil = full replay).
	Gen    *Generation
	Shards []ShardState
	// Fallbacks diagnoses generations that were present but rejected.
	Fallbacks []string
}

// Recover rebuilds engine state from a sharded layout: it walks the
// manifest's generations newest-first, loads and validates every shard's
// snapshot and journal suffix in parallel (one goroutine per shard), and
// restores the first generation whose every part is intact into a fresh
// engine obtained from fresh — shard 0 (control state: schemas, users,
// worklist, counter) serially first, then all data shards concurrently.
// A rejected part (torn or corrupt snapshot, failed restore, compacted
// journal the generation cannot bridge) degrades the WHOLE recovery to
// the previous generation: parts of different generations must never mix,
// because a control-log change (e.g. a schema evolution) between two cuts
// would be replayed for some shards and already folded in for others.
// When no generation is usable, recovery falls back to a full merged
// replay — possible only while every shard journal still starts at its
// first record.
//
// Hard refusals (never fallbacks), per shard, mirroring the single-
// journal recovery: a snapshot covering a sequence number past the
// journal tail (the journal lost committed records), a compacted journal
// no usable generation reaches, and — detected during MergeApply — a data
// record referencing a control epoch past the control log's tail.
//
// The returned engine still needs the journal suffixes applied: run
// MergeApply, then Engine.SortInstanceOrder.
func Recover(l Layout, man *Manifest, stores []*durable.SnapshotStore, fresh func() *engine.Engine) (*engine.Engine, *LoadResult, error) {
	if err := CheckStrayShardsFS(l.fs(), l.Base, l.Shards); err != nil {
		return nil, nil, err
	}
	res := &LoadResult{Shards: make([]ShardState, l.Shards)}

	for gi := len(man.Generations) - 1; gi >= 0; gi-- {
		gen := &man.Generations[gi]
		if len(gen.Parts) != l.Shards {
			res.Fallbacks = append(res.Fallbacks, fmt.Sprintf(
				"sharded: generation %d has %d parts for %d shards", gi, len(gen.Parts), l.Shards))
			continue
		}
		states, hardErr, softErrs := loadGeneration(l, gen, stores)
		if hardErr != nil {
			return nil, nil, hardErr
		}
		if len(softErrs) > 0 {
			res.Fallbacks = append(res.Fallbacks, softErrs...)
			continue
		}
		eng := fresh()
		if err := restoreShards(eng, states); err != nil {
			res.Fallbacks = append(res.Fallbacks, err.Error())
			continue
		}
		res.Gen = gen
		res.Shards = states
		return eng, res, nil
	}

	// Full merged replay: decode every shard journal from its first
	// record — impossible once any journal was compacted, and refused
	// for data shards whose journals still reach a reshard floor (those
	// records were partitioned under a different shard count, so one
	// instance's history may span two data shards; only a generation
	// snapshot can recover past that point — see Manifest.ReplayFloors).
	var wg sync.WaitGroup
	errs := make([]error, l.Shards)
	for k := 0; k < l.Shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			recs, tail, err := persist.LoadJournalSuffixFS(l.fs(), l.JournalPath(k), 0)
			if err != nil {
				errs[k] = err
				return
			}
			if tail.FirstSeq > 1 {
				errs[k] = fault.Tagf(fault.Unrecoverable,
					"sharded: shard %d journal starts at seq %d (compacted) and no usable generation reaches seq %d: %v",
					k, tail.FirstSeq, tail.FirstSeq-1, res.Fallbacks)
				return
			}
			if k > 0 && k < len(man.ReplayFloors) && man.ReplayFloors[k] > 0 && tail.FirstSeq > 0 && tail.FirstSeq <= man.ReplayFloors[k] {
				errs[k] = fault.Tagf(fault.Unrecoverable,
					"sharded: shard %d journal reaches back to seq %d, at or before the reshard floor %d, and no usable generation: refusing full replay of mis-partitioned records: %v",
					k, tail.FirstSeq, man.ReplayFloors[k], res.Fallbacks)
				return
			}
			res.Shards[k] = ShardState{Recs: recs, Tail: tail}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return fresh(), res, nil
}

// loadGeneration loads every part of one generation in parallel. It
// returns the per-shard states on success, a hard error for refusal
// conditions, or soft per-part failure messages that make the caller fall
// back to an older generation.
func loadGeneration(l Layout, gen *Generation, stores []*durable.SnapshotStore) ([]ShardState, error, []string) {
	states := make([]ShardState, l.Shards)
	hard := make([]error, l.Shards)
	soft := make([]string, l.Shards)
	var wg sync.WaitGroup
	for k := 0; k < l.Shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			part := gen.Parts[k]
			recs, tail, err := persist.LoadJournalSuffixFS(l.fs(), l.JournalPath(k), part.Seq)
			if err != nil {
				hard[k] = err
				return
			}
			// The journal lost committed records: recovering would forge
			// history. (An empty journal is fine — compaction may have
			// folded every record into the snapshot.)
			if tail.LastSeq > 0 && part.Seq > tail.LastSeq {
				hard[k] = fault.Tagf(fault.Unrecoverable,
					"sharded: shard %d snapshot %s covers seq %d but the journal ends at %d: journal truncated, refusing to recover",
					k, part.File, part.Seq, tail.LastSeq)
				return
			}
			// A compacted shard journal needs this generation to reach its
			// first record; otherwise only an older generation could — and
			// it reaches even less. Soft-fail to keep the diagnosis uniform.
			if tail.FirstSeq > 1 && part.Seq < tail.FirstSeq-1 {
				soft[k] = fmt.Sprintf(
					"sharded: shard %d snapshot %s (seq %d) predates the compacted journal start %d",
					k, part.File, part.Seq, tail.FirstSeq)
				return
			}
			st, err := stores[k].Load(durable.ManifestEntry{File: part.File, Seq: part.Seq})
			if err != nil {
				soft[k] = err.Error()
				return
			}
			if st.Epoch != gen.Epoch {
				soft[k] = fmt.Sprintf(
					"sharded: shard %d snapshot %s records epoch %d, generation says %d",
					k, part.File, st.Epoch, gen.Epoch)
				return
			}
			states[k] = ShardState{State: st, File: part.File, Recs: recs, Tail: tail}
		}(k)
	}
	wg.Wait()
	for _, err := range hard {
		if err != nil {
			return nil, err, nil
		}
	}
	var msgs []string
	for _, m := range soft {
		if m != "" {
			msgs = append(msgs, m)
		}
	}
	if len(msgs) > 0 {
		return nil, nil, msgs
	}
	return states, nil, nil
}

// restoreShards installs one generation's snapshot states into a fresh
// engine: shard 0 first (it carries the schemas every instance
// references, plus users, worklist, and the instance counter), then all
// data shards concurrently — their instance sets are disjoint by the
// shard hash, and RestoreInstance only takes the engine lock for the map
// insert. The caller re-sorts the creation-order index afterwards.
func restoreShards(eng *engine.Engine, states []ShardState) error {
	if err := durable.Restore(eng, states[0].State); err != nil {
		return err
	}
	return fanOut(len(states)-1, func(k int) error {
		return durable.Restore(eng, states[k+1].State)
	})
}

// MergeApply replays the loaded journal suffixes in an order equivalent
// to the original execution: within a shard by sequence number, and
// across shards by the control epoch — a data record stamped with epoch e
// applies after shard-0 record e and before the first control record past
// e. Between two control records every shard's run applies concurrently
// (records of different shards touch disjoint instances and commute), so
// replay parallelism scales with the shard count; each control record is
// a barrier, applied alone.
//
// isControl classifies ops as control-log commands; apply must be safe
// for concurrent calls on data records of different shards. MergeApply
// returns the shard-0 seq of the last control record (the recovered
// epoch) and per-shard applied-record counts. A data record whose epoch
// references a control position past the end of the control log is a
// hard error: the control journal lost committed records.
func MergeApply(res *LoadResult, isControl func(op string) bool, apply func(*persist.Record) error) (lastControl int, perShard []int, err error) {
	n := len(res.Shards)
	pos := make([]int, n)
	perShard = make([]int, n)
	curE := 0
	if res.Gen != nil {
		curE = res.Gen.Epoch
	}
	lastControl = curE

	// runTo applies shard k's records while limit admits them; the two
	// phases per control barrier differ only in the admission rule.
	runTo := func(k int, admit func(*persist.Record) bool) (int, error) {
		applied := 0
		recs := res.Shards[k].Recs
		for pos[k] < len(recs) {
			rec := &recs[pos[k]]
			if !admit(rec) {
				break
			}
			if err := apply(rec); err != nil {
				return applied, err
			}
			pos[k]++
			applied++
		}
		return applied, nil
	}

	dataAdmit := func(rec *persist.Record) bool { return rec.Epoch <= curE }
	parallelPhase := func(admit0 func(*persist.Record) bool) error {
		start := 0
		if admit0 == nil {
			start = 1
		}
		return fanOut(n-start, func(i int) error {
			k := start + i
			admit := dataAdmit
			if k == 0 {
				admit = admit0
			}
			c, err := runTo(k, admit)
			perShard[k] += c
			return err
		})
	}

	for {
		// Phase A: shard 0 up to (not including) its next control record,
		// all data shards up to the current epoch, concurrently.
		if err := parallelPhase(func(rec *persist.Record) bool { return !isControl(rec.Op) }); err != nil {
			return lastControl, perShard, err
		}
		// The epoch cursor may move past non-control stamp values (open- or
		// reshard-time epochs equal to a data record's seq): every shard-0
		// record at or below the last applied seq is in, so stamps up to it
		// are satisfied. Phase B drains the data records that admitted.
		s0 := res.Shards[0].Recs
		if pos[0] > 0 && s0[pos[0]-1].Seq > curE {
			curE = s0[pos[0]-1].Seq
			if err := parallelPhase(nil); err != nil {
				return lastControl, perShard, err
			}
		}
		if pos[0] >= len(s0) {
			break
		}
		// Control barrier: applied alone.
		rec := &s0[pos[0]]
		if err := apply(rec); err != nil {
			return lastControl, perShard, err
		}
		pos[0]++
		perShard[0]++
		curE = rec.Seq
		lastControl = rec.Seq
	}

	for k := 1; k < n; k++ {
		if pos[k] < len(res.Shards[k].Recs) {
			rec := &res.Shards[k].Recs[pos[k]]
			return lastControl, perShard, fault.Tagf(fault.Unrecoverable,
				"sharded: shard %d record %d references control epoch %d beyond the control log tail %d: control journal truncated, refusing to recover",
				k, rec.Seq, rec.Epoch, curE)
		}
	}
	return lastControl, perShard, nil
}
