package adept2_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

// The PR 5 submission benches compare the three paths of the unified
// command API on the same workload — journaled suspend/resume toggles on
// writer-private instances over a group-commit journal:
//
//   - Submit blocks per command until its record is fsync-covered
//     (one durability round-trip per command per writer),
//   - SubmitAsyncPipeline stages commands and awaits receipts in bulk,
//     so one flush covers a writer's whole window,
//   - SubmitBatch applies a window of commands under one barrier and
//     appends them as one multi-record journal write.
//
// Same honest 1-CPU caveat as the PR 4 sharding benches: this host has a
// single virtio flush queue, so the async/batch gains shown here come
// from removing per-command round-trips; multi-queue storage and real
// cores widen the gap further.

// submitBench runs fn across `writers` goroutines, each owning one
// instance, splitting b.N commands between them. extra appends options
// to the standard group-commit configuration.
func submitBench(b *testing.B, writers int, shards int, extra []adept2.Option, fn func(sys *adept2.System, id string, n int)) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, Shards: shards}
	opts := append([]adept2.Option{adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg)}, extra...)
	sys, err := adept2.Open(path, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	ids := make([]string, writers)
	for i := range ids {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = inst.ID()
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for w := 0; w < writers; w++ {
		n := per
		if w == 0 {
			n += b.N - per*writers
		}
		wg.Add(1)
		go func(id string, n int) {
			defer wg.Done()
			fn(sys, id, n)
		}(ids[w], n)
	}
	wg.Wait()
	b.StopTimer()
	if err := sys.Health(); err != nil {
		b.Fatal(err)
	}
}

// toggle returns the i-th command of a writer's suspend/resume cycle.
func toggle(id string, i int) adept2.Command {
	if i%2 == 0 {
		return &adept2.Suspend{Instance: id}
	}
	return &adept2.Resume{Instance: id}
}

// BenchmarkSubmit is the blocking baseline: every command pays a full
// durability round-trip before the next one is issued.
func BenchmarkSubmit(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			submitBench(b, writers, 0, nil, func(sys *adept2.System, id string, n int) {
				ctx := context.Background()
				for i := 0; i < n; i++ {
					if _, err := sys.Submit(ctx, toggle(id, i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkSubmitMetricsOff is the blocking workload again with the
// telemetry plane disabled (WithMetricsDisabled), so the delta against
// BenchmarkSubmit is the whole cost of the instrumented hot path: two
// clock reads plus a handful of uncontended atomics per command.
func BenchmarkSubmitMetricsOff(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			off := []adept2.Option{adept2.WithMetricsDisabled()}
			submitBench(b, writers, 0, off, func(sys *adept2.System, id string, n int) {
				ctx := context.Background()
				for i := 0; i < n; i++ {
					if _, err := sys.Submit(ctx, toggle(id, i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkSubmitAsyncPipeline pipelines appends through receipts: a
// window of 64 commands is staged before the writer awaits their
// durability in bulk, so flushes amortize across the window even at one
// writer.
func BenchmarkSubmitAsyncPipeline(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			submitBench(b, writers, 0, nil, func(sys *adept2.System, id string, n int) {
				ctx := context.Background()
				receipts := make([]*adept2.Receipt, 0, 64)
				drain := func() {
					for _, r := range receipts {
						if err := r.Wait(ctx); err != nil {
							b.Error(err)
							return
						}
					}
					receipts = receipts[:0]
				}
				for i := 0; i < n; i++ {
					r, err := sys.SubmitAsync(ctx, toggle(id, i))
					if err != nil {
						b.Error(err)
						return
					}
					receipts = append(receipts, r)
					if len(receipts) == 64 {
						drain()
					}
				}
				drain()
			})
		})
	}
}

// BenchmarkSubmitBatch applies windows of 64 commands per SubmitBatch
// call: one barrier acquisition and one multi-record append (one
// group-commit wait) per window.
func BenchmarkSubmitBatch(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			submitBench(b, writers, 0, nil, func(sys *adept2.System, id string, n int) {
				ctx := context.Background()
				for i := 0; i < n; {
					win := 64
					if n-i < win {
						win = n - i
					}
					batch := make([]adept2.Command, 0, win)
					for k := 0; k < win; k++ {
						batch = append(batch, toggle(id, i+k))
					}
					if _, err := sys.SubmitBatch(ctx, batch); err != nil {
						b.Error(err)
						return
					}
					i += win
				}
			})
		})
	}
}
