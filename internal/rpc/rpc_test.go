package rpc_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adept2"
	"adept2/internal/rpc"
	"adept2/internal/sim"
)

func openSystem(t *testing.T, cfg adept2.CheckpointConfig) *adept2.System {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func serve(t *testing.T, sys *adept2.System, opts rpc.Options) (*rpc.Server, *rpc.Client) {
	t.Helper()
	srv, err := rpc.NewServer(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	cli, err := rpc.Dial(context.Background(), srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// TestRemoteSubmitModes drives all three submission modes through the
// wire and checks the durable-on-resolution contract of each.
func TestRemoteSubmitModes(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true, Shards: shards})
			_, cli := serve(t, sys, rpc.Options{})
			ctx := context.Background()

			// Sync: durable on return, result carries the instance.
			res, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Durable || res.Result == nil || res.Result.Instance == nil {
				t.Fatalf("sync submit: %+v", res)
			}
			id := res.Result.Instance.ID
			wms, err := cli.Watermarks(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if wms[res.Shard] < res.Seq {
				t.Fatalf("sync receipt (%d,%d) not covered by watermark %d", res.Shard, res.Seq, wms[res.Shard])
			}

			// Async: receipt resolves at fsync coverage via the stream.
			rcpt, err := cli.SubmitAsync(ctx, &adept2.CompleteActivity{
				Instance: id, Node: "get_order", User: "ann",
				Outputs: map[string]any{"out": "o-1"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rcpt.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			if wms, _ := cli.Watermarks(ctx); wms[rcpt.Shard()] < rcpt.Seq() {
				t.Fatalf("resolved receipt (%d,%d) not fsync-covered", rcpt.Shard(), rcpt.Seq())
			}

			// Batch: durable on return, per-command results.
			results, err := cli.SubmitBatch(ctx, []adept2.Command{
				&adept2.CreateInstance{TypeName: "online_order"},
				&adept2.CreateInstance{TypeName: "online_order"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 || results[0].Instance == nil || results[1].Instance == nil {
				t.Fatalf("batch results: %+v", results)
			}

			// The server engine agrees with what the wire reported.
			if inst, ok := sys.Instance(id); !ok || inst.NodeState("get_order").String() == "" {
				t.Fatalf("instance %s missing server-side", id)
			}
		})
	}
}

// TestRemoteReceiptsConcurrentSubmitters fans pipelined async
// submissions out of many goroutines over one client and resolves
// every receipt against the single shared watermark stream.
func TestRemoteReceiptsConcurrentSubmitters(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true, Shards: 4})
	_, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()

	const workers, perWorker = 8, 10
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var receipts []*rpc.Receipt
			for i := 0; i < perWorker; i++ {
				rcpt, err := cli.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
				if err != nil {
					errs <- err
					return
				}
				receipts = append(receipts, rcpt)
			}
			for _, rcpt := range receipts {
				if err := rcpt.Wait(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.Instances()); got != workers*perWorker {
		t.Fatalf("server holds %d instances, want %d", got, workers*perWorker)
	}
}

// TestRemoteErrorTaxonomy exercises the error envelope: errors.Is
// against the taxonomy sentinels must hold across the network hop.
func TestRemoteErrorTaxonomy(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true})
	_, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()

	// Unknown instance → ErrNotFound.
	_, err := cli.Submit(ctx, &adept2.Suspend{Instance: "inst-nope"})
	if !errors.Is(err, adept2.ErrNotFound) {
		t.Fatalf("suspend unknown instance: got %v, want ErrNotFound", err)
	}
	var ae *adept2.Error
	if !errors.As(err, &ae) || ae.Op != "suspend" || ae.Instance != "inst-nope" {
		t.Fatalf("rehydrated envelope lost context: %+v", ae)
	}

	// Unknown type → ErrNotFound; the Instance lookup 404s too.
	if _, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "ghost"}); !errors.Is(err, adept2.ErrNotFound) {
		t.Fatalf("create unknown type: got %v", err)
	}
	if _, err := cli.Instance(ctx, "inst-nope"); !errors.Is(err, adept2.ErrNotFound) {
		t.Fatalf("instance read: got %v", err)
	}

	// Completing a node that is not active → ErrConflict.
	res, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
	if err != nil {
		t.Fatal(err)
	}
	id := res.Result.Instance.ID
	_, err = cli.Submit(ctx, &adept2.CompleteActivity{Instance: id, Node: "ship", User: "ann"})
	if !errors.Is(err, adept2.ErrConflict) && !errors.Is(err, adept2.ErrNotFound) {
		t.Fatalf("complete inactive node: got %v", err)
	}

	// Suspended instance rejects activity commands → ErrSuspended.
	if _, err := cli.Submit(ctx, &adept2.Suspend{Instance: id}); err != nil {
		t.Fatal(err)
	}
	_, err = cli.Submit(ctx, &adept2.CompleteActivity{
		Instance: id, Node: "get_order", User: "ann", Outputs: map[string]any{"out": "o"}})
	if !errors.Is(err, adept2.ErrSuspended) {
		t.Fatalf("complete while suspended: got %v", err)
	}
}

// TestRemoteDecodeErrors checks pre-dispatch rejection and its metric.
func TestRemoteDecodeErrors(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true})
	srv, _ := serve(t, sys, rpc.Options{})

	post := func(body string) int {
		resp, err := http.Post(srv.URL()+"/v1/commands", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb struct {
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("error envelope: %v", err)
		}
		if eb.Error == nil || eb.Error.Code != string(adept2.CodeInvalid) {
			t.Fatalf("want invalid envelope, got %+v", eb.Error)
		}
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", code)
	}
	if code := post(`{"op":"no_such_op","args":{}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d", code)
	}
	snap := sys.Metrics()
	if snap.RPC.DecodeErrors != 2 {
		t.Fatalf("decode errors metric = %d, want 2", snap.RPC.DecodeErrors)
	}
	if ep, ok := snap.RPC.Endpoints["commands"]; !ok || ep.Requests != 2 || ep.Failures != 2 {
		t.Fatalf("commands endpoint family: %+v", snap.RPC.Endpoints)
	}
}

// TestClientCancelMidStream parks a Wait on an unflushed receipt and
// cancels it: ErrCanceled with Applied=true, and a later Wait still
// resolves the same receipt.
func TestClientCancelMidStream(t *testing.T) {
	// A wide flush window keeps records staged well past the probe wait.
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true, FlushWindow: 500 * time.Millisecond, MaxBatch: 1 << 20})
	_, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()

	rcpt, err := cli.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	err = rcpt.Wait(short)
	if !errors.Is(err, adept2.ErrCanceled) {
		t.Fatalf("canceled wait: got %v", err)
	}
	var ae *adept2.Error
	if !errors.As(err, &ae) || !ae.Applied {
		t.Fatalf("canceled wait must report Applied: %+v", ae)
	}

	// The record is still queued; forcing the flush resolves it.
	if err := sys.SyncDurable(); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	if err := rcpt.Wait(wctx); err != nil {
		t.Fatalf("post-sync wait: %v", err)
	}
}

// TestServerDrainResolvesReceipts closes the server while receipts are
// in flight: the drain syncs every staged record and the streams emit
// final watermarks, so every receipt issued before Close resolves nil.
func TestServerDrainResolvesReceipts(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true, Shards: 4, FlushWindow: 500 * time.Millisecond, MaxBatch: 1 << 20})
	srv, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()
	cli.Watch() // connect the watermark stream before the drain

	var receipts []*rpc.Receipt
	for i := 0; i < 12; i++ {
		rcpt, err := cli.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, rcpt)
	}
	// The long flush window guarantees they are still unresolved.
	probe, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	err := receipts[len(receipts)-1].Wait(probe)
	cancel()
	if !errors.Is(err, adept2.ErrCanceled) {
		t.Fatalf("receipt resolved before drain: %v", err)
	}

	done := make(chan error, len(receipts))
	for _, rcpt := range receipts {
		go func(r *rpc.Receipt) {
			wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
			defer wcancel()
			done <- r.Wait(wctx)
		}(rcpt)
	}
	time.Sleep(50 * time.Millisecond) // let the waits park on the stream

	cctx, ccancel := context.WithTimeout(ctx, 10*time.Second)
	defer ccancel()
	if err := srv.Close(cctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for range receipts {
		if err := <-done; err != nil {
			t.Fatalf("receipt across drain: %v", err)
		}
	}

	// Post-drain submissions are rejected with the 503 envelope.
	if _, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"}); err == nil {
		t.Fatal("submit after drain succeeded")
	}
}

// TestRemoteReadEndpoints covers cursor pagination, instance detail,
// worklists, exceptions, and health over the wire.
func TestRemoteReadEndpoints(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true})
	_, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 5; i++ {
		res, err := cli.Submit(ctx, &adept2.CreateInstance{TypeName: "online_order"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.Result.Instance.ID)
	}

	var seen []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		page, err := cli.Instances(ctx, cursor, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range page.Instances {
			seen = append(seen, inst.ID)
		}
		if page.Next == "" {
			break
		}
		cursor = page.Next
	}
	if len(seen) != len(ids) {
		t.Fatalf("paged %d instances, want %d", len(seen), len(ids))
	}

	detail, err := cli.Instance(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if detail.ID != ids[0] || detail.Type != "online_order" {
		t.Fatalf("detail: %+v", detail)
	}

	items, err := cli.WorkItems(ctx, "ann", "", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(items.Items) == 0 {
		t.Fatal("ann has no offered work items")
	}
	for _, it := range items.Items {
		if it.Node != "get_order" || it.State == "" {
			t.Fatalf("work item: %+v", it)
		}
	}

	open, err := cli.OpenExceptions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Fatalf("unexpected open exceptions: %+v", open)
	}

	sum, err := cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Healthy || sum.Shards != 1 || sum.Instances != 5 {
		t.Fatalf("health: %+v", sum)
	}
}

// TestControlLogTail checks the durable-gated suffix read and the
// follow stream: only fsync-covered records arrive, in order, with
// their journaled epochs.
func TestControlLogTail(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true, Shards: 4})
	srv, cli := serve(t, sys, rpc.Options{})
	ctx := context.Background()

	got := make(chan adept2.WireRecord, 64)
	tailCtx, tailCancel := context.WithCancel(ctx)
	defer tailCancel()
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- cli.TailControlLog(tailCtx, 0, func(rec adept2.WireRecord) error {
			got <- rec
			return nil
		})
	}()

	// Control commands land on shard 0 durable-on-return.
	if _, err := cli.Submit(ctx, &adept2.Evolve{TypeName: "online_order", Ops: sim.OnlineOrderTypeChange()}); err != nil {
		t.Fatal(err)
	}

	recs, wm, err := cli.ControlLog(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || wm < recs[len(recs)-1].Seq {
		t.Fatalf("control log read: %d records, watermark %d", len(recs), wm)
	}
	ops := map[string]bool{}
	lastSeq := 0
	for _, r := range recs {
		if r.Seq <= lastSeq {
			t.Fatalf("control log out of order: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		ops[r.Op] = true
		if _, err := adept2.DecodeWireCommand(r.Op, r.Args); err != nil {
			t.Fatalf("record %d (%s) does not decode: %v", r.Seq, r.Op, err)
		}
	}
	if !ops["deploy"] || !ops["evolve"] {
		t.Fatalf("control log misses deploy/evolve: %v", ops)
	}

	// The tail saw the same prefix.
	deadline := time.After(5 * time.Second)
	var tailSeqs []int
	for len(tailSeqs) < len(recs) {
		select {
		case rec := <-got:
			tailSeqs = append(tailSeqs, rec.Seq)
		case <-deadline:
			t.Fatalf("tail delivered %d of %d records", len(tailSeqs), len(recs))
		}
	}
	for i, r := range recs {
		if tailSeqs[i] != r.Seq {
			t.Fatalf("tail order diverged at %d: %v vs %v", i, tailSeqs, recs)
		}
	}
	tailCancel()
	if err := <-tailDone; err != nil {
		t.Fatalf("tail end: %v", err)
	}
	_ = srv
}

// TestStreamBackpressure checks the MaxStreams rejection.
func TestStreamBackpressure(t *testing.T) {
	sys := openSystem(t, adept2.CheckpointConfig{GroupCommit: true})
	srv, _ := serve(t, sys, rpc.Options{MaxStreams: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL()+"/v1/watermarks", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", resp.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil { // stream is live
		t.Fatal(err)
	}

	resp2, err := http.Get(srv.URL() + "/v1/watermarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: %d, want 503", resp2.StatusCode)
	}
	if sys.Metrics().RPC.OpenStreams != 1 {
		t.Fatalf("open streams gauge: %d", sys.Metrics().RPC.OpenStreams)
	}
}
