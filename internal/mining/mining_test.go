package mining

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"

	"adept2/internal/engine"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/obs"
)

// seqSchema builds a three-step sequence and its topology index.
func seqSchema(t *testing.T) *graph.Info {
	t.Helper()
	b := model.NewBuilder("m")
	s, err := b.Build(b.Seq(
		b.Activity("a", "A"), b.Activity("b", "B"), b.Activity("c", "C")))
	if err != nil {
		t.Fatal(err)
	}
	info, err := graph.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// refFingerprint is the string-keyed reference the optimized fold is
// tested against: build the canonical byte key explicitly, hash it with
// the standard library's FNV-1a. Any divergence between the incremental
// fold and this is a fingerprint bug.
func refFingerprint(reduced []*history.Event) uint64 {
	var key []byte
	for _, e := range reduced {
		if e.Kind != history.Completed {
			continue
		}
		key = append(key, e.Node...)
		key = append(key, 0x1f)
		key = binary.LittleEndian.AppendUint64(key, uint64(int64(e.Decision)))
		if e.Again {
			key = append(key, 1)
		} else {
			key = append(key, 0)
		}
		key = append(key, 0x1e)
	}
	h := fnv.New64a()
	_, _ = h.Write(key)
	return h.Sum64()
}

// TestFingerprintMatchesStringReference: the incremental FNV fold must
// equal the reference string-keyed hasher on randomized reduced
// histories — same node IDs, decisions, Again flags, same order.
func TestFingerprintMatchesStringReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := []string{"a", "b", "long-node-name", "x1", ""}
	for trial := 0; trial < 200; trial++ {
		var evs []*history.Event
		for i, n := 0, rng.Intn(12); i < n; i++ {
			kind := history.Completed
			if rng.Intn(4) == 0 {
				kind = history.Started // must be skipped by both
			}
			evs = append(evs, &history.Event{
				Kind:     kind,
				Node:     nodes[rng.Intn(len(nodes))],
				Decision: rng.Intn(5) - 1,
				Again:    rng.Intn(2) == 0,
			})
		}
		if got, want := Fingerprint(evs), refFingerprint(evs); got != want {
			t.Fatalf("trial %d: Fingerprint %016x != reference %016x", trial, got, want)
		}
	}
}

// TestFingerprintDifferential: failed-then-retried attempts and Timeout
// markers must not appear in variant fingerprints. An instance that
// failed twice and timed out on node b, then completed it on retry,
// must fingerprint identically to one that ran clean — the reduction
// purges the exception markers and superseded attempts, and the
// fingerprint only folds Completed events.
func TestFingerprintDifferential(t *testing.T) {
	info := seqSchema(t)

	clean := history.NewLog()
	for _, n := range []string{"a", "b", "c"} {
		clean.Append(&history.Event{Kind: history.Started, Node: n})
		clean.Append(&history.Event{Kind: history.Completed, Node: n})
	}

	dirty := history.NewLog()
	dirty.Append(&history.Event{Kind: history.Started, Node: "a"})
	dirty.Append(&history.Event{Kind: history.Completed, Node: "a"})
	dirty.Append(&history.Event{Kind: history.Started, Node: "b"})
	dirty.Append(&history.Event{Kind: history.Timeout, Node: "b", Reason: "deadline expired"})
	dirty.Append(&history.Event{Kind: history.Failed, Node: "b", Reason: "attempt 1"})
	dirty.Append(&history.Event{Kind: history.Started, Node: "b"})
	dirty.Append(&history.Event{Kind: history.Failed, Node: "b", Reason: "attempt 2"})
	dirty.Append(&history.Event{Kind: history.Started, Node: "b"})
	dirty.Append(&history.Event{Kind: history.Completed, Node: "b"})
	dirty.Append(&history.Event{Kind: history.Started, Node: "c"})
	dirty.Append(&history.Event{Kind: history.Completed, Node: "c"})

	fpClean := Fingerprint(history.Reduce(info, clean.Events()))
	redDirty := history.Reduce(info, dirty.Events())
	fpDirty := Fingerprint(redDirty)
	if fpClean != fpDirty {
		t.Fatalf("fail/timeout/retry leaked into the fingerprint: clean %016x, dirty %016x (reduced: %v)",
			fpClean, fpDirty, redDirty)
	}
	if fpDirty != refFingerprint(redDirty) {
		t.Fatal("optimized fold diverges from the string-keyed reference")
	}

	// Sanity: an actually different path must change the fingerprint.
	short := history.NewLog()
	short.Append(&history.Event{Kind: history.Started, Node: "a"})
	short.Append(&history.Event{Kind: history.Completed, Node: "a"})
	if Fingerprint(history.Reduce(info, short.Events())) == fpClean {
		t.Fatal("distinct paths collapsed to one fingerprint")
	}
}

// view builds a MineView whose reduced history completes the given
// nodes in order.
func view(id, typeName string, version int, nodes ...string) engine.MineView {
	var evs []*history.Event
	for _, n := range nodes {
		evs = append(evs, &history.Event{Kind: history.Completed, Node: n})
	}
	return engine.MineView{ID: id, TypeName: typeName, Version: version, Events: evs, Reduced: evs}
}

// TestMinerDriftClassification: instances below the deployed version
// are stale, instances whose reduced history completes nodes outside
// the deployed node set are foreign, biased instances count as
// non-compliant — and the union feeds the type's NonCompliant row.
func TestMinerDriftClassification(t *testing.T) {
	m := NewMiner(Options{})
	m.Deployed("t", 2, []string{"a", "b"})

	m.Observe(view("i1", "t", 2, "a", "b"), 0) // current, compliant
	m.Observe(view("i2", "t", 1, "a"), 0)      // stale
	m.Observe(view("i3", "t", 2, "a", "zz"), 0) // foreign node
	biased := view("i4", "t", 2, "a", "b")
	biased.Biased = true
	m.Observe(biased, 1) // ad-hoc deviation

	r := m.Report()
	if len(r.Drift) != 1 {
		t.Fatalf("drift rows: %+v", r.Drift)
	}
	d := r.Drift[0]
	if d.Type != "t" || d.LatestVersion != 2 || d.Instances != 4 ||
		d.Current != 3 || d.Stale != 1 || d.Foreign != 1 || d.Biased != 1 ||
		d.NonCompliant != 3 {
		t.Fatalf("drift row: %+v", d)
	}
	if len(d.ForeignNodes) != 1 || d.ForeignNodes[0] != "zz" {
		t.Fatalf("foreign nodes: %v", d.ForeignNodes)
	}
	if len(r.Shards) != 2 || r.Shards[0].Instances != 3 || r.Shards[1].Instances != 1 {
		t.Fatalf("shard stats: %+v", r.Shards)
	}
}

// TestMinerVariantCapOverflow: the variant table is bounded; instances
// past the cap count in VariantOverflow instead of growing the map, and
// repeat observations of an already-tabled variant still aggregate.
func TestMinerVariantCapOverflow(t *testing.T) {
	m := NewMiner(Options{MaxVariants: 2})
	m.Observe(view("i1", "t", 1, "a"), 0)
	m.Observe(view("i2", "t", 1, "a", "b"), 0)
	m.Observe(view("i3", "t", 1, "a", "b", "c"), 0) // over the cap
	m.Observe(view("i4", "t", 1, "a"), 0)           // existing variant: still counted

	r := m.Report()
	if r.DistinctVariants != 2 || r.VariantOverflow != 1 {
		t.Fatalf("variants %d overflow %d, want 2/1", r.DistinctVariants, r.VariantOverflow)
	}
	if r.Variants[0].Count != 2 || len(r.Variants[0].Path) != 1 {
		t.Fatalf("top variant: %+v", r.Variants[0])
	}
}

// TestMinerNodeConcentrationAndDurations: the per-node table counts
// every physical attempt (failures, timeouts, retries survive even
// though the reduction purges them) and observes stamped
// Started→Completed durations into the histogram.
func TestMinerNodeConcentrationAndDurations(t *testing.T) {
	m := NewMiner(Options{})
	evs := []*history.Event{
		{Kind: history.Started, Node: "b", At: 1000},
		{Kind: history.Timeout, Node: "b"},
		{Kind: history.Failed, Node: "b"},
		{Kind: history.Started, Node: "b", At: 5000}, // the retry
		{Kind: history.Completed, Node: "b", At: 8000},
	}
	red := []*history.Event{{Kind: history.Completed, Node: "b", At: 8000}}
	m.Observe(engine.MineView{ID: "i1", TypeName: "t", Version: 1, Events: evs, Reduced: red}, 0)

	r := m.Report()
	if len(r.Nodes) != 1 {
		t.Fatalf("nodes: %+v", r.Nodes)
	}
	n := r.Nodes[0]
	if n.Starts != 2 || n.Completes != 1 || n.Failures != 1 || n.Timeouts != 1 || n.Retries != 1 {
		t.Fatalf("node concentration: %+v", n)
	}
	if n.Durations.Count != 1 || n.Durations.Sum != 3000 {
		t.Fatalf("duration observed %d/%d, want 1 observation summing 3000 (retry start to completion)",
			n.Durations.Count, n.Durations.Sum)
	}
}

// TestQuantile pins the histogram quantile read: ceil-rank bucket walk,
// upper-bound estimates, 0 on empty, -1 in the unbounded tail.
func TestQuantile(t *testing.T) {
	if got := Quantile(obs.HistogramSnapshot{}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile: %d", got)
	}
	// Bounds with 4 buckets, shift 0: 1, 2, 4, +inf. A value v lands in
	// the bucket whose upper bound is the next power of two >= v+1, so
	// 1 → bound-2 bucket, 2 → bound-4 bucket, 4 and up → unbounded tail.
	h := obs.NewHistogram(4, 0)
	for _, v := range []int64{1, 1, 2, 2, 2, 4, 4, 8, 8, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := Quantile(s, 0.20); got != 2 {
		t.Fatalf("p20 = %d, want 2", got)
	}
	if got := Quantile(s, 0.50); got != 4 {
		t.Fatalf("p50 = %d, want 4", got)
	}
	if got := Quantile(s, 0.99); got != -1 {
		t.Fatalf("p99 = %d, want -1 (unbounded tail)", got)
	}
}

// TestReportCodecRoundTrip: Decode is strict (unknown fields rejected)
// and a report survives the JSON round-trip bit-identically enough to
// re-render.
func TestReportCodecRoundTrip(t *testing.T) {
	m := NewMiner(Options{})
	m.Deployed("t", 1, []string{"a", "b"})
	m.Observe(view("i1", "t", 1, "a", "b"), 0)
	r := m.Report()

	data, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Instances != 1 || len(back.Variants) != 1 ||
		back.Variants[0].Fingerprint != r.Variants[0].Fingerprint {
		t.Fatalf("round-trip mangled the report: %+v", back)
	}
	if back.Text() == "" {
		t.Fatal("empty text rendering")
	}
	if _, err := Decode([]byte(`{"instances": 1, "bogus": true}`)); err == nil {
		t.Fatal("Decode accepted an unknown field")
	}
}
