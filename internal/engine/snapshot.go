package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"adept2/internal/data"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
	"adept2/internal/storage"
)

// InstanceSnapshot is the engine-level serialized state of one instance:
// everything needed to rebuild it without replaying its command history.
// Markings and stats are exported in their stable ID-keyed form, so the
// snapshot survives the topology rebuild that deserializing the schema
// implies. The instance bias is opaque to the engine (layering: the change
// package owns the operation codec) — Snapshot hands the recorded ops back
// to the caller, which serializes them into Bias; RestoreInstance receives
// them decoded again.
type InstanceSnapshot struct {
	ID         string           `json:"id"`
	TypeName   string           `json:"type"`
	Version    int              `json:"version"`
	Strategy   storage.Strategy `json:"strategy"`
	Done       bool             `json:"done,omitempty"`
	Suspended  bool             `json:"suspended,omitempty"`
	Migrations int              `json:"migrations,omitempty"`
	LoopIter   map[string]int   `json:"loopIter,omitempty"`
	// Exception state (armed absolute deadlines, retry due times,
	// consecutive-failure counts, escalated nodes, pending policy
	// compensations), all keyed by node ID. Deadlines survive the
	// snapshot verbatim so recovery re-arms them exactly once.
	Deadlines   map[string]int64     `json:"deadlines,omitempty"`
	RetryAt     map[string]int64     `json:"retryAt,omitempty"`
	Failures    map[string]int       `json:"failures,omitempty"`
	Escalated   []string             `json:"escalated,omitempty"`
	CompPending []string             `json:"compPending,omitempty"`
	Marking     *state.MarkingExport `json:"marking"`
	Stats       []history.StatExport `json:"stats,omitempty"`
	History     *history.Log         `json:"history"`
	Store       *data.Store          `json:"data"`
	// Bias is the change.MarshalOps payload of the instance's recorded
	// operations; the engine never interprets it.
	Bias json.RawMessage `json:"bias,omitempty"`
}

// Snapshot exports the instance state under its lock. The recorded bias
// operations are returned separately for the caller to serialize (see
// InstanceSnapshot.Bias).
func (inst *Instance) Snapshot() (*InstanceSnapshot, []BiasOp) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	var li map[string]int
	if len(inst.loopIter) > 0 {
		li = make(map[string]int, len(inst.loopIter))
		for k, v := range inst.loopIter {
			li[k] = v
		}
	}
	return &InstanceSnapshot{
		ID:          inst.id,
		TypeName:    inst.typeName,
		Version:     inst.version,
		Strategy:    inst.strategy,
		Done:        inst.done,
		Suspended:   inst.suspended,
		Migrations:  inst.migrations,
		LoopIter:    li,
		Deadlines:   copyInt64Map(inst.deadlines),
		RetryAt:     copyInt64Map(inst.retryAt),
		Failures:    copyIntMap(inst.failures),
		Escalated:   sortedKeys(inst.escalated),
		CompPending: sortedKeys(inst.compPending),
		Marking:     inst.marking.Export(),
		Stats:       inst.stats.Export(),
		History:     inst.hist.Clone(),
		Store:       inst.store.Clone(),
	}, append([]BiasOp(nil), inst.biasOps...)
}

func copyInt64Map(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	c := make(map[string]int64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyIntMap(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// sortedKeys flattens a string set into a sorted slice, the
// deterministic serialized form of the escalated/pending marks.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RestoreInstance rebuilds an instance from a snapshot: the referenced
// schema version must already be deployed, the decoded bias is re-applied
// to a fresh representation, and markings, stats, history, data, and flags
// are installed verbatim. The worklist is NOT reconciled — callers restore
// worklist items wholesale so pre-crash item IDs survive.
func (e *Engine) RestoreInstance(snap *InstanceSnapshot, bias []BiasOp) error {
	e.mu.Lock()
	s, ok := e.schemas[schemaKey{snap.TypeName, snap.Version}]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("engine: restore %s: no schema %s v%d", snap.ID, snap.TypeName, snap.Version)
	}
	if _, dup := e.insts[snap.ID]; dup {
		e.mu.Unlock()
		return fmt.Errorf("engine: restore %s: instance already exists", snap.ID)
	}
	inst := newInstance(e, snap.ID, s, snap.Strategy)
	e.insts[snap.ID] = inst
	e.orderPos[snap.ID] = len(e.order)
	e.order = append(e.order, snap.ID)
	e.mu.Unlock()

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if len(bias) > 0 {
		if err := (&Mutable{inst: inst}).RebuildBias(bias); err != nil {
			return fmt.Errorf("engine: restore %s: %w", snap.ID, err)
		}
	}
	v, _, err := inst.viewLocked()
	if err != nil {
		return fmt.Errorf("engine: restore %s: %w", snap.ID, err)
	}
	m, err := state.ImportMarking(v, snap.Marking)
	if err != nil {
		return fmt.Errorf("engine: restore %s: %w", snap.ID, err)
	}
	inst.marking = m
	inst.stats = history.ImportStats(v.Topology(), snap.Stats)
	if snap.History != nil {
		inst.hist = snap.History
	}
	if snap.Store != nil {
		inst.store = snap.Store
	}
	if snap.LoopIter != nil {
		inst.loopIter = snap.LoopIter
	}
	inst.deadlines = copyInt64Map(snap.Deadlines)
	inst.retryAt = copyInt64Map(snap.RetryAt)
	inst.failures = copyIntMap(snap.Failures)
	if len(snap.Escalated) > 0 {
		inst.escalated = make(map[string]bool, len(snap.Escalated))
		for _, id := range snap.Escalated {
			inst.escalated[id] = true
		}
	}
	if len(snap.CompPending) > 0 {
		inst.compPending = make(map[string]bool, len(snap.CompPending))
		for _, id := range snap.CompPending {
			inst.compPending[id] = true
		}
	}
	inst.done = snap.Done
	inst.suspended = snap.Suspended
	inst.migrations = snap.Migrations
	inst.version = snap.Version
	return nil
}

// AllSchemas returns every deployed schema, ordered by type name then
// version — the deterministic deploy order a snapshot records.
func (e *Engine) AllSchemas() []*model.Schema {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*model.Schema, 0, len(e.schemas))
	for _, s := range e.schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TypeName() != out[j].TypeName() {
			return out[i].TypeName() < out[j].TypeName()
		}
		return out[i].Version() < out[j].Version()
	})
	return out
}

// InstanceCounter returns the instance-ID counter (the numeric suffix of
// the most recently created instance).
func (e *Engine) InstanceCounter() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nextID
}

// SetInstanceCounter restores the instance-ID counter so instances created
// after recovery continue the pre-crash numbering.
func (e *Engine) SetInstanceCounter(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n > e.nextID {
		e.nextID = n
	}
}

// SortInstanceOrder re-sorts the creation-order index by the numeric
// suffix of engine-assigned IDs (inst-%d; the %06d padding alone would
// misorder lexicographically past a million instances), falling back to
// string order for foreign IDs. Recovery calls this once at the end:
// sharded recovery restores and replays shards concurrently, and even a
// single journal records concurrent creates in append order, not
// engine-apply (ID-assignment) order — either way instances arrive out
// of ID order and the live listing must not depend on which path built
// it.
func (e *Engine) SortInstanceOrder() {
	e.mu.Lock()
	defer e.mu.Unlock()
	num := func(id string) (int, bool) {
		var n int
		if _, err := fmt.Sscanf(id, "inst-%d", &n); err != nil {
			return 0, false
		}
		return n, true
	}
	sort.SliceStable(e.order, func(i, j int) bool {
		ni, oki := num(e.order[i])
		nj, okj := num(e.order[j])
		if oki && okj {
			return ni < nj
		}
		if oki != okj {
			return oki // engine-assigned IDs before foreign ones
		}
		return e.order[i] < e.order[j]
	})
	for i, id := range e.order {
		e.orderPos[id] = i
	}
}
