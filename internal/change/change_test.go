package change_test

import (
	"strings"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
	"adept2/internal/storage"
	"adept2/internal/verify"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return e
}

func freshInstance(t *testing.T, e *engine.Engine) *engine.Instance {
	t.Helper()
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return inst
}

func TestSerialInsertOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	op := &change.SerialInsert{
		Node: &model.Node{ID: "x", Name: "X", Type: model.NodeActivity, Role: "sales", Template: "x"},
		Pred: "compose_order",
		Succ: "pack_goods",
	}
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !s.HasEdge(model.EdgeKey{From: "compose_order", To: "x", Type: model.EdgeControl}) ||
		!s.HasEdge(model.EdgeKey{From: "x", To: "pack_goods", Type: model.EdgeControl}) {
		t.Fatal("rewiring incomplete")
	}
	if s.HasEdge(model.EdgeKey{From: "compose_order", To: "pack_goods", Type: model.EdgeControl}) {
		t.Fatal("old edge not removed")
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	if op.InsertedTemplate() != "x" {
		t.Fatal("InsertedTemplate")
	}
	// Re-applying fails (node exists).
	if err := op.ApplyTo(s); err == nil {
		t.Fatal("duplicate apply must fail")
	}
	// Precheck failures.
	bad := &change.SerialInsert{Node: &model.Node{ID: "y", Type: model.NodeActivity}, Pred: "pack_goods", Succ: "compose_order"}
	if err := bad.Precheck(s); err == nil {
		t.Fatal("no such edge: precheck must fail")
	}
	if err := (&change.SerialInsert{}).Precheck(s); err == nil {
		t.Fatal("empty node: precheck must fail")
	}
}

func TestParallelInsertOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	op := &change.ParallelInsert{
		Node: &model.Node{ID: "x", Name: "X", Type: model.NodeActivity, Role: "sales", Template: "x"},
		From: "collect_data",
		To:   "confirm_order",
	}
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	// The new AND block wraps the region: x runs parallel to
	// collect_data -> confirm_order.
	if _, ok := s.Node("x_psplit"); !ok {
		t.Fatal("split gateway missing")
	}
	if !s.HasEdge(model.EdgeKey{From: "x_psplit", To: "x", Type: model.EdgeControl}) {
		t.Fatal("parallel branch missing")
	}

	// Non-SESE regions are rejected: collect_data..pack_goods spans
	// branches.
	bad := &change.ParallelInsert{
		Node: &model.Node{ID: "y", Type: model.NodeActivity, Role: "sales"},
		From: "collect_data",
		To:   "pack_goods",
	}
	if err := bad.Precheck(sim.OnlineOrder()); err == nil {
		t.Fatal("non-SESE region must be rejected")
	}
	// Start/end regions are rejected.
	bad2 := &change.ParallelInsert{
		Node: &model.Node{ID: "y", Type: model.NodeActivity, Role: "sales"},
		From: "start",
		To:   "get_order",
	}
	if err := bad2.Precheck(sim.OnlineOrder()); err == nil {
		t.Fatal("region including start must be rejected")
	}
}

func TestConditionalInsertOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	if err := s.AddDataElement(&model.DataElement{ID: "flag", Type: model.TypeInt}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDataEdge(&model.DataEdge{Activity: "get_order", Element: "flag", Access: model.Write, Parameter: "flag"}); err != nil {
		t.Fatal(err)
	}
	op := &change.ConditionalInsert{
		Node:            &model.Node{ID: "x", Name: "X", Type: model.NodeActivity, Role: "sales", Template: "x"},
		Pred:            "compose_order",
		Succ:            "pack_goods",
		DecisionElement: "flag",
	}
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	split, ok := s.Node("x_csplit")
	if !ok || split.DecisionElement != "flag" || !split.Auto {
		t.Fatalf("xor split config: %+v", split)
	}
	// Unknown element rejected.
	bad := &change.ConditionalInsert{Node: &model.Node{ID: "y", Type: model.NodeActivity}, Pred: "a", Succ: "b", DecisionElement: "zz"}
	if err := bad.Precheck(sim.OnlineOrder()); err == nil {
		t.Fatal("unknown decision element must fail precheck")
	}
}

func TestDeleteActivityOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	op := &change.DeleteActivity{ID: "pack_goods"}
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if _, ok := s.Node("pack_goods"); ok {
		t.Fatal("node still present")
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	// Deleting gateways or unknown nodes fails.
	if err := (&change.DeleteActivity{ID: "zz"}).Precheck(s); err == nil {
		t.Fatal("unknown node must fail")
	}
	var split string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeANDSplit {
			split = n.ID
		}
	}
	if err := (&change.DeleteActivity{ID: split}).Precheck(s); err == nil {
		t.Fatal("gateway deletion must fail")
	}
	// Deleting a guaranteed data supplier leaves a missing-data schema:
	// callers (ApplyAdHoc / DeriveVersion) verify and reject.
	s2 := sim.OnlineOrder()
	if err := (&change.DeleteActivity{ID: "get_order"}).ApplyTo(s2); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if res := verify.Check(s2); res.OK() {
		t.Fatal("deleting the order writer must break data flow verification")
	}
}

func TestMoveActivityOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	// Move deliver_goods between get_order and the AND split? That would
	// break nothing structurally — but simpler: move collect_data behind
	// confirm_order.
	op := &change.MoveActivity{ID: "collect_data", NewPred: "confirm_order", NewSucc: "and-join_2"}
	// Find the actual join ID.
	var join string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeANDJoin {
			join = n.ID
		}
	}
	op.NewSucc = join
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	if got := model.ControlSuccs(s, "confirm_order"); len(got) != 1 || got[0] != "collect_data" {
		t.Fatalf("collect_data not at new position: %v", got)
	}
	if err := (&change.MoveActivity{ID: "zz", NewPred: "a", NewSucc: "b"}).Precheck(s); err == nil {
		t.Fatal("unknown node must fail")
	}
	if err := (&change.MoveActivity{ID: "confirm_order", NewPred: "confirm_order", NewSucc: join}).Precheck(s); err == nil {
		t.Fatal("self-neighbor must fail")
	}
}

func TestSyncEdgeOps(t *testing.T) {
	s := sim.OnlineOrder()
	ins := &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}
	if err := ins.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("sync edge schema must verify: %v", err)
	}
	if err := ins.Precheck(s); err == nil {
		t.Fatal("duplicate sync edge must fail")
	}
	del := &change.DeleteSyncEdge{From: "collect_data", To: "compose_order"}
	if err := del.ApplyTo(s); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := del.Precheck(s); err == nil {
		t.Fatal("deleting missing sync edge must fail")
	}
}

func TestDataFlowOps(t *testing.T) {
	s := sim.OnlineOrder()
	addElem := &change.AddDataElement{Element: &model.DataElement{ID: "note", Type: model.TypeString}}
	if err := addElem.ApplyTo(s); err != nil {
		t.Fatalf("add element: %v", err)
	}
	if err := addElem.Precheck(s); err == nil {
		t.Fatal("duplicate element must fail")
	}
	addW := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "note", Access: model.Write, Parameter: "note"}}
	if err := addW.ApplyTo(s); err != nil {
		t.Fatalf("add write edge: %v", err)
	}
	addR := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "confirm_order", Element: "note", Access: model.Read, Parameter: "note", Mandatory: true}}
	if err := addR.ApplyTo(s); err != nil {
		t.Fatalf("add read edge: %v", err)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("data flow change must verify: %v", err)
	}
	delW := &change.DeleteDataEdge{Key: model.DataEdgeKey{Activity: "collect_data", Element: "note", Access: model.Write, Parameter: "note"}}
	if err := delW.Precheck(s); err != nil {
		t.Fatalf("delete precheck: %v", err)
	}
	if err := delW.ApplyTo(s); err != nil {
		t.Fatalf("delete write edge: %v", err)
	}
	// Now confirm_order's mandatory read has no supplier.
	if res := verify.Check(s); res.OK() {
		t.Fatal("removing the only writer must break verification")
	}
}

func TestApplyAdHocCreatesBias(t *testing.T) {
	e := newEngine(t)
	inst := freshInstance(t, e)
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o1"}); err != nil {
		t.Fatal(err)
	}
	ops := sim.OnlineOrderBiasI2()
	if err := change.ApplyAdHoc(inst, ops...); err != nil {
		t.Fatalf("ad-hoc change: %v", err)
	}
	if !inst.Biased() || len(inst.BiasOps()) != 2 {
		t.Fatal("bias not recorded")
	}
	v := inst.View()
	if _, ok := v.Node("send_brochure"); !ok {
		t.Fatal("inserted activity missing from view")
	}
	if !v.HasEdge(model.EdgeKey{From: "confirm_order", To: "compose_order", Type: model.EdgeSync}) {
		t.Fatal("bias sync edge missing")
	}
	// The base schema is untouched (hybrid overlay).
	base, _ := e.Schema("online_order", 1)
	if _, ok := base.Node("send_brochure"); ok {
		t.Fatal("bias leaked into the deployed schema")
	}
	// State adaptation: compose_order now waits for confirm_order's sync.
	if got := inst.NodeState("compose_order"); got != state.NotActivated {
		t.Fatalf("compose_order should wait for sync, is %s", got)
	}
	// send_brochure sits after the still-activated collect_data.
	if got := inst.NodeState("send_brochure"); got != state.NotActivated {
		t.Fatalf("send_brochure should be not-activated, is %s", got)
	}
	// The instance still completes.
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if got := inst.NodeState("send_brochure"); got != state.Activated {
		t.Fatalf("send_brochure should be activated now, is %s", got)
	}
	if err := e.CompleteActivity(inst.ID(), "send_brochure", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "compose_order", "bob", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "pack_goods", "bob", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "deliver_goods", "bob", nil); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("biased instance should complete")
	}
}

func TestApplyAdHocRejectsStructuralConflicts(t *testing.T) {
	e := newEngine(t)
	inst := freshInstance(t, e)
	// A sync edge in both directions creates a deadlock cycle.
	if err := change.ApplyAdHoc(inst, &change.InsertSyncEdge{From: "collect_data", To: "compose_order"}); err != nil {
		t.Fatalf("first sync edge: %v", err)
	}
	err := change.ApplyAdHoc(inst, &change.InsertSyncEdge{From: "compose_order", To: "collect_data"})
	var serr *change.StructuralError
	if err == nil {
		t.Fatal("expected structural conflict")
	}
	if !errorsAs(err, &serr) {
		t.Fatalf("expected StructuralError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock explanation: %v", err)
	}
	// Only the first op is recorded.
	if len(inst.BiasOps()) != 1 {
		t.Fatalf("failed change must not be recorded, bias=%v", inst.BiasOps())
	}
}

func TestApplyAdHocRejectsStateConflicts(t *testing.T) {
	e := newEngine(t)
	inst := freshInstance(t, e)
	if err := sim.AdvanceOnlineOrderToI3(e, inst); err != nil {
		t.Fatal(err)
	}
	// pack_goods already completed: inserting before it is a state
	// conflict.
	err := change.ApplyAdHoc(inst, sim.OnlineOrderTypeChange()...)
	var cerr *change.ComplianceError
	if err == nil || !errorsAs(err, &cerr) {
		t.Fatalf("expected ComplianceError, got %v", err)
	}
	if inst.Biased() {
		t.Fatal("rejected change must leave instance unbiased")
	}
	// Deleting a completed activity is equally rejected (collect_data has
	// no data edges, so the conflict is purely state-related).
	err = change.ApplyAdHoc(inst, &change.DeleteActivity{ID: "collect_data"})
	if err == nil || !errorsAs(err, &cerr) {
		t.Fatalf("expected ComplianceError for delete, got %v", err)
	}
}

func TestApplyAdHocOnFinishedInstance(t *testing.T) {
	e := newEngine(t)
	inst := freshInstance(t, e)
	for _, step := range []struct {
		node, user string
		out        map[string]any
	}{
		{"get_order", "ann", map[string]any{"out": "o"}},
		{"collect_data", "ann", nil},
		{"confirm_order", "ann", nil},
		{"compose_order", "bob", nil},
		{"pack_goods", "bob", nil},
		{"deliver_goods", "bob", nil},
	} {
		if err := e.CompleteActivity(inst.ID(), step.node, step.user, step.out); err != nil {
			t.Fatal(err)
		}
	}
	if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err == nil {
		t.Fatal("changing a finished instance must fail")
	}
	if err := change.ApplyAdHoc(inst); err == nil {
		t.Fatal("empty op list must fail")
	}
}

func TestApplyAdHocAcrossStorageStrategies(t *testing.T) {
	for _, strat := range storage.Strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			e := newEngine(t)
			e.SetStorageStrategy(strat)
			inst := freshInstance(t, e)
			if inst.Strategy() != strat {
				t.Fatalf("strategy = %s", inst.Strategy())
			}
			if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
				t.Fatalf("ad-hoc change: %v", err)
			}
			v := inst.View()
			if _, ok := v.Node("send_brochure"); !ok {
				t.Fatal("inserted activity missing")
			}
			// All strategies yield structurally identical views.
			ref := sim.OnlineOrder()
			for _, op := range sim.OnlineOrderBiasI2() {
				if err := op.ApplyTo(ref); err != nil {
					t.Fatal(err)
				}
			}
			if !model.Equal(v, ref) {
				t.Fatalf("%s view differs from reference application", strat)
			}
			fp := inst.Footprint()
			if fp.BiasBytes == 0 {
				t.Fatal("bias footprint should be non-zero")
			}
		})
	}
}

func TestOpsJSONRoundTrip(t *testing.T) {
	ops := []change.Operation{
		&change.SerialInsert{Node: &model.Node{ID: "x", Name: "X", Type: model.NodeActivity, Role: "r", Template: "x"}, Pred: "a", Succ: "b"},
		&change.ParallelInsert{Node: &model.Node{ID: "y", Type: model.NodeActivity}, From: "a", To: "b"},
		&change.ConditionalInsert{Node: &model.Node{ID: "z", Type: model.NodeActivity}, Pred: "a", Succ: "b", DecisionElement: "d"},
		&change.DeleteActivity{ID: "a"},
		&change.MoveActivity{ID: "a", NewPred: "b", NewSucc: "c"},
		&change.InsertSyncEdge{From: "a", To: "b"},
		&change.DeleteSyncEdge{From: "a", To: "b"},
		&change.AddDataElement{Element: &model.DataElement{ID: "d", Type: model.TypeInt}},
		&change.AddDataEdge{Edge: &model.DataEdge{Activity: "a", Element: "d", Access: model.Write, Parameter: "p"}},
		&change.DeleteDataEdge{Key: model.DataEdgeKey{Activity: "a", Element: "d", Access: model.Read, Parameter: "p"}},
	}
	blob, err := change.MarshalOps(ops)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := change.UnmarshalOps(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(ops) {
		t.Fatalf("length mismatch: %d", len(back))
	}
	for i := range ops {
		if ops[i].OpName() != back[i].OpName() || ops[i].String() != back[i].String() {
			t.Fatalf("op %d mismatch: %s vs %s", i, ops[i], back[i])
		}
	}
	if _, err := change.UnmarshalOps([]byte(`[{"op":"bogus","args":{}}]`)); err == nil {
		t.Fatal("unknown op must fail")
	}
	if _, err := change.UnmarshalOps([]byte(`{`)); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestInsertedTemplates(t *testing.T) {
	got := change.InsertedTemplates(sim.OnlineOrderTypeChange())
	if !got["send_questions"] || len(got) != 1 {
		t.Fatalf("InsertedTemplates = %v", got)
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors in many
// places.
func errorsAs(err error, target any) bool {
	switch tgt := target.(type) {
	case **change.StructuralError:
		for err != nil {
			if e, ok := err.(*change.StructuralError); ok {
				*tgt = e
				return true
			}
			err = unwrap(err)
		}
	case **change.ComplianceError:
		for err != nil {
			if e, ok := err.(*change.ComplianceError); ok {
				*tgt = e
				return true
			}
			err = unwrap(err)
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
