package adept2_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"adept2"
	"adept2/internal/persist"
	"adept2/internal/sim"
)

// TestSubmitBatchSemantics: results align with the applied prefix, a
// failing command journals the commands before it, control commands
// interleave with their epoch semantics intact, and the whole batch
// survives recovery.
func TestSubmitBatchSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Mixed batch: data commands around a control command, then a
	// failing command, then one that would have succeeded.
	results, err := sys.SubmitBatch(ctx, []adept2.Command{
		&adept2.CreateInstance{TypeName: "online_order"},                           // 0
		&adept2.CreateInstance{TypeName: "online_order"},                           // 1
		&adept2.AddUser{User: &adept2.User{ID: "carol", Roles: []string{"clerk"}}}, // 2: control
		&adept2.CreateInstance{TypeName: "online_order"},                           // 3
		&adept2.CreateInstance{TypeName: "no_such_type"},                           // 4: fails
		&adept2.CreateInstance{TypeName: "online_order"},                           // never applied
	})
	if !errors.Is(err, adept2.ErrNotFound) {
		t.Fatalf("batch error = %v, want ErrNotFound", err)
	}
	if len(results) != 4 {
		t.Fatalf("results for %d commands, want 4 (applied prefix)", len(results))
	}
	i0 := results[0].(*adept2.Instance)
	if results[2] != nil {
		t.Fatalf("AddUser result = %v, want nil", results[2])
	}
	if _, ok := sys.Org().User("carol"); !ok {
		t.Fatal("control command in batch was not applied")
	}
	if len(sys.Instances()) != 3 {
		t.Fatalf("%d instances, want 3 (the failing create and its successor must not apply)", len(sys.Instances()))
	}

	// Same-instance ordering within one batch run.
	if _, err := sys.SubmitBatch(ctx, []adept2.Command{
		&adept2.CompleteActivity{Instance: i0.ID(), Node: "get_order", User: "ann", Outputs: map[string]any{"out": "b"}},
		&adept2.Suspend{Instance: i0.ID()},
		&adept2.Resume{Instance: i0.ID()},
	}); err != nil {
		t.Fatal(err)
	}

	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything applied (including the batch prefix before the failure)
	// must be durable and replayable.
	got, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameState(t, sys, got)
}

// TestSubmitBatchSingleFsync: on a plain sync journal, a batch of N data
// commands lands as one contiguous multi-record append (N records, one
// fsync — visible as one contiguous seq run).
func TestSubmitBatchSingleFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	before := sys.JournalSeq()
	batch := make([]adept2.Command, 0, 8)
	for i := 0; i < 4; i++ {
		batch = append(batch, &adept2.Suspend{Instance: inst.ID()}, &adept2.Resume{Instance: inst.ID()})
	}
	if _, err := sys.SubmitBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if got := sys.JournalSeq(); got != before+8 {
		t.Fatalf("journal seq %d, want %d", got, before+8)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := persist.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ops := ""
	for _, r := range recs[len(recs)-8:] {
		ops += r.Op + " "
	}
	if ops != "suspend suspend suspend suspend suspend suspend suspend suspend " {
		t.Fatalf("batch wire ops: %s", ops)
	}
}

// TestSubmitAsyncReceiptResolvesDurable: a receipt's Wait returns only
// once the record is fsync-covered — verified by reopening the journal
// from disk after Wait and finding the record.
func TestSubmitAsyncReceiptResolvesDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r, err := sys.SubmitAsync(ctx, &adept2.CreateInstance{TypeName: "online_order"})
	if err != nil {
		t.Fatal(err)
	}
	inst := r.Result().(*adept2.Instance)
	if inst == nil || inst.ID() == "" {
		t.Fatal("async result must be available before durability")
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
	// The record is on disk now, without closing the system.
	recs, err := persist.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range recs {
		if rec.Op == "create" && rec.Seq == r.Seq() {
			found = true
		}
	}
	if !found {
		t.Fatalf("create record seq %d not durable after Wait (journal has %d records)", r.Seq(), len(recs))
	}
}

// TestPaginationMatchesFullListings: walking WorkItemsPage/InstancesPage
// to exhaustion reproduces exactly the unpaginated listings, page sizes
// are honored, and unknown cursors yield empty pages.
func TestPaginationMatchesFullListings(t *testing.T) {
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		if _, err := sys.CreateInstance("online_order"); err != nil {
			t.Fatal(err)
		}
	}

	var pagedInsts []string
	pages := 0
	for cursor := ""; ; {
		page, next := sys.InstancesPage(cursor, 7)
		if len(page) > 7 {
			t.Fatalf("page of %d, limit 7", len(page))
		}
		for _, inst := range page {
			pagedInsts = append(pagedInsts, inst.ID())
		}
		pages++
		if next == "" {
			break
		}
		cursor = next
	}
	all := sys.Instances()
	if len(pagedInsts) != len(all) || pages != 4 {
		t.Fatalf("paged %d instances in %d pages, want %d in 4", len(pagedInsts), pages, len(all))
	}
	for i, inst := range all {
		if pagedInsts[i] != inst.ID() {
			t.Fatalf("page order diverges at %d: %s != %s", i, pagedInsts[i], inst.ID())
		}
	}
	if page, next := sys.InstancesPage("inst-999999", 7); len(page) != 0 || next != "" {
		t.Fatalf("unknown cursor must yield an empty page, got %d/%q", len(page), next)
	}

	var pagedItems []string
	for cursor := ""; ; {
		page, next := sys.WorkItemsPage("ann", cursor, 5)
		if len(page) > 5 {
			t.Fatalf("work item page of %d, limit 5", len(page))
		}
		for _, it := range page {
			pagedItems = append(pagedItems, it.ID)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	full := sys.WorkItems("ann")
	if len(pagedItems) != len(full) {
		t.Fatalf("paged %d work items, full listing has %d", len(pagedItems), len(full))
	}
	for i, it := range full {
		if pagedItems[i] != it.ID {
			t.Fatalf("work item page order diverges at %d: %s != %s", i, pagedItems[i], it.ID)
		}
	}
}

// TestPaginationSurvivesShardedRecovery: cursors are instance IDs, which
// recovery reproduces exactly — a page walk after a sharded reopen sees
// the same creation order.
func TestPaginationSurvivesShardedRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, Shards: 4}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 11; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, inst.ID())
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	var pageWalk []string
	for cursor := ""; ; {
		page, next := got.InstancesPage(cursor, 4)
		for _, inst := range page {
			pageWalk = append(pageWalk, inst.ID())
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if fmt.Sprint(pageWalk) != fmt.Sprint(want) {
		t.Fatalf("page walk after recovery %v, want %v", pageWalk, want)
	}
}
