// Package rollback implements undo of ad-hoc instance changes: the most
// recent bias operation (or the whole bias) is removed again, provided the
// instance has not progressed into the changed region. This extends the
// ICDE 2005 demo towards the change-rollback facility of the ADEPT
// research line (Reichert/Dadam, ADEPTflex): deviations are temporary by
// nature and users must be able to return to the original schema without
// losing work.
//
// Correctness follows the same discipline as forward changes: the reduced
// view (bias minus the undone operations) must verify, and the instance's
// loop-reduced execution history must replay on it. An undo that would
// orphan history entries — e.g. removing an inserted activity that already
// started — is rejected with a state conflict.
package rollback

import (
	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/fault"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/verify"
)

// UndoLast removes the most recent ad-hoc change operation from the
// instance bias. The instance is untouched if the removal is not safe.
func UndoLast(inst *engine.Instance) error {
	return undo(inst, 1)
}

// UndoAll removes the entire instance bias, returning the instance to its
// plain schema version.
func UndoAll(inst *engine.Instance) error {
	return undo(inst, -1)
}

func undo(inst *engine.Instance, count int) error {
	return inst.Mutate(func(mx *engine.Mutable) error {
		if mx.Done() {
			return fault.Tagf(fault.Completed, "rollback: instance %s already completed", inst.ID())
		}
		ops, err := change.AsOperations(mx.BiasOps())
		if err != nil {
			return err
		}
		if len(ops) == 0 {
			return fault.Tagf(fault.Conflict, "rollback: instance %s has no ad-hoc changes", inst.ID())
		}
		keep := 0
		if count > 0 {
			keep = len(ops) - count
			if keep < 0 {
				keep = 0
			}
		}
		rest := ops[:keep]

		// 1. The reduced bias must produce a correct schema.
		trial := mx.Base().Clone()
		trial.SetSchemaID(trial.SchemaID() + "+undo-trial")
		for _, op := range rest {
			if err := op.ApplyTo(trial); err != nil {
				return fault.Tagf(fault.NotCompliant, "rollback: remaining bias does not re-apply: %w", err)
			}
		}
		if res := verify.Check(trial); !res.OK() {
			return fault.Tagf(fault.NotCompliant, "rollback: remaining bias fails verification: %w", res.Err())
		}

		// 2. The execution history must be reproducible without the
		// undone operations (state condition).
		curBlocks, err := mx.Blocks()
		if err != nil {
			return err
		}
		reduced := history.Reduce(curBlocks, mx.History().Events())
		info, err := graph.Analyze(trial)
		if err != nil {
			return err
		}
		if _, err := compliance.Replay(trial, info, reduced); err != nil {
			return fault.Tagf(fault.NotCompliant, "rollback: instance progressed into the change: %w", err)
		}

		// 3. Commit: rebuild the representation from the remaining bias
		// and adapt the marking.
		rebuilt := make([]engine.BiasOp, len(rest))
		for i, op := range rest {
			rebuilt[i] = op
		}
		if err := mx.RebuildBias(rebuilt); err != nil {
			return err
		}
		_, err = mx.AdaptState()
		return err
	})
}
