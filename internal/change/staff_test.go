package change_test

import (
	"testing"

	"adept2/internal/change"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/storage"
	"adept2/internal/verify"
)

func TestUpdateStaffAssignmentOnSchema(t *testing.T) {
	s := sim.OnlineOrder()
	op := &change.UpdateStaffAssignment{Activity: "confirm_order", NewRole: "clerk"}
	if err := op.ApplyTo(s); err != nil {
		t.Fatalf("apply: %v", err)
	}
	n, _ := s.Node("confirm_order")
	if n.Role != "clerk" {
		t.Fatalf("role = %q", n.Role)
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("changed schema must verify: %v", err)
	}
	// Prechecks.
	if err := (&change.UpdateStaffAssignment{Activity: "zz"}).Precheck(s); err == nil {
		t.Fatal("unknown node must fail")
	}
	if err := (&change.UpdateStaffAssignment{Activity: "and-split_1"}).Precheck(s); err == nil {
		t.Fatal("gateway must fail")
	}
}

func TestUpdateStaffAssignmentOnOverlay(t *testing.T) {
	base := sim.OnlineOrder()
	o := storage.NewOverlay(base)
	op := &change.UpdateStaffAssignment{Activity: "confirm_order", NewRole: "clerk"}
	if err := op.ApplyTo(o); err != nil {
		t.Fatalf("apply: %v", err)
	}
	n, _ := o.Node("confirm_order")
	if n.Role != "clerk" {
		t.Fatalf("overlay role = %q", n.Role)
	}
	orig, _ := base.Node("confirm_order")
	if orig.Role != "sales" {
		t.Fatal("base must be untouched")
	}
	// Replacing again updates in place.
	op2 := &change.UpdateStaffAssignment{Activity: "confirm_order", NewRole: "warehouse"}
	if err := op2.ApplyTo(o); err != nil {
		t.Fatal(err)
	}
	n, _ = o.Node("confirm_order")
	if n.Role != "warehouse" {
		t.Fatalf("second replace: %q", n.Role)
	}
	// Node enumeration contains the node exactly once.
	count := 0
	for _, id := range o.NodeIDs() {
		if id == "confirm_order" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("confirm_order enumerated %d times", count)
	}
}

func TestReplaceNodeValidation(t *testing.T) {
	s := sim.OnlineOrder()
	if err := s.ReplaceNode(nil); err == nil {
		t.Fatal("nil node")
	}
	if err := s.ReplaceNode(&model.Node{ID: "zz", Type: model.NodeActivity}); err == nil {
		t.Fatal("unknown node")
	}
	if err := s.ReplaceNode(&model.Node{ID: "confirm_order", Type: model.NodeXORSplit}); err == nil {
		t.Fatal("type change must be rejected")
	}
	o := storage.NewOverlay(sim.OnlineOrder())
	if err := o.ReplaceNode(nil); err == nil {
		t.Fatal("overlay nil node")
	}
	if err := o.ReplaceNode(&model.Node{ID: "zz", Type: model.NodeActivity}); err == nil {
		t.Fatal("overlay unknown node")
	}
	if err := o.ReplaceNode(&model.Node{ID: "confirm_order", Type: model.NodeXORSplit}); err == nil {
		t.Fatal("overlay type change must be rejected")
	}
}

func TestAdHocStaffReassignmentMovesWorkItems(t *testing.T) {
	e := newEngine(t)
	inst := freshInstance(t, e)
	// get_order is offered to clerks (ann, cyn).
	if len(e.WorkItems("ann")) != 1 {
		t.Fatal("setup: ann should see get_order")
	}
	if err := change.ApplyAdHoc(inst, &change.UpdateStaffAssignment{Activity: "get_order", NewRole: "courier"}); err != nil {
		t.Fatalf("reassign: %v", err)
	}
	// The item moved to couriers (bob, dan).
	if len(e.WorkItems("ann")) != 0 {
		t.Fatal("ann should no longer see the item")
	}
	items := e.WorkItems("bob")
	if len(items) != 1 || items[0].Role != "courier" {
		t.Fatalf("bob's worklist = %v", items)
	}
	// And the new role is enforced on start.
	if err := e.StartActivity(inst.ID(), "get_order", "ann"); err == nil {
		t.Fatal("old role must be rejected")
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "bob", map[string]any{"out": "o"}); err != nil {
		t.Fatalf("new role: %v", err)
	}
	// The reassignment is always migration-compliant.
	if err := (&change.UpdateStaffAssignment{Activity: "get_order", NewRole: "x"}).FastCompliance(nil); err != nil {
		t.Fatal("staff reassignment must be state-compliant")
	}
}

func TestStaffAssignmentOpJSON(t *testing.T) {
	ops := []change.Operation{&change.UpdateStaffAssignment{Activity: "a", NewRole: "r"}}
	blob, err := change.MarshalOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	back, err := change.UnmarshalOps(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].String() != ops[0].String() {
		t.Fatalf("round trip: %s", back[0])
	}
}
