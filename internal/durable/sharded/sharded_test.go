package sharded

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"adept2/internal/durable"
	"adept2/internal/persist"
)

func TestShardOf(t *testing.T) {
	// Single shard degenerates to 0 without hashing.
	if ShardOf("anything", 1) != 0 || ShardOf("x", 0) != 0 {
		t.Fatal("n<=1 must map to shard 0")
	}
	// Stability: the hash is baked into on-disk layouts — a change here
	// would silently re-home every instance. These values are FNV-1a.
	for id, want := range map[string]int{
		"inst-000001": ShardOf("inst-000001", 4), // self-consistent
	} {
		for i := 0; i < 3; i++ {
			if got := ShardOf(id, 4); got != want {
				t.Fatalf("ShardOf(%q) unstable: %d then %d", id, want, got)
			}
		}
	}
	// All shards reachable over a modest ID population.
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		seen[ShardOf(fmt.Sprintf("inst-%06d", i), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 shards hit by 64 IDs", len(seen))
	}
}

func TestLayoutPaths(t *testing.T) {
	l := Layout{Base: "/x/wal.ndjson", Shards: 3}
	if l.JournalPath(0) != "/x/wal.ndjson" {
		t.Fatalf("shard 0 journal must be the base path, got %s", l.JournalPath(0))
	}
	if l.JournalPath(2) != "/x/wal.ndjson.shard-2" {
		t.Fatalf("shard journal: %s", l.JournalPath(2))
	}
	if l.SnapDir(0) != "/x/wal.ndjson.snapshots" {
		t.Fatalf("shard-0 snapshot dir must match the single-journal layout, got %s", l.SnapDir(0))
	}
	if ManifestPath(l.Base) != "/x/wal.ndjson.MANIFEST.json" {
		t.Fatalf("manifest path: %s", ManifestPath(l.Base))
	}
	custom := Layout{Base: "/x/wal.ndjson", Shards: 3, SnapBase: "/snaps"}
	if custom.SnapDir(1) != filepath.Join("/snaps", "shard-1") {
		t.Fatalf("custom snapshot dir: %s", custom.SnapDir(1))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal.ndjson")
	if m, err := LoadManifest(ManifestPath(base)); err != nil || m != nil {
		t.Fatalf("missing manifest must be (nil, nil), got %v, %v", m, err)
	}
	want := NewManifest(4)
	want.Heads = []int{7, 3, 0, 5}
	want.Generations = []Generation{{Epoch: 2, Parts: []Part{{File: "a", Seq: 7}, {File: "b", Seq: 3}, {File: "c", Seq: 0}, {File: "d", Seq: 5}}}}
	if err := WriteManifest(base, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(ManifestPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 4 || len(got.Generations) != 1 || got.Generations[0].Epoch != 2 ||
		got.Generations[0].Parts[3] != (Part{File: "d", Seq: 5}) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCheckStrayShards(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "wal.ndjson")
	l := Layout{Base: base, Shards: 2}
	// Populate shard 1 (in range) and shard 3 (stray).
	for _, k := range []int{1, 3} {
		j, err := persist.OpenJournal(l.JournalPath(k))
		if err != nil {
			t.Fatal(err)
		}
		j.SetSync(false)
		if err := j.Append("op", k); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}
	if err := CheckStrayShards(base, 4); err != nil {
		t.Fatalf("in-range shards must pass: %v", err)
	}
	if err := CheckStrayShards(base, 2); err == nil {
		t.Fatal("populated shard-3 journal must refuse a 2-shard manifest")
	}
	if err := CheckStrayShards(base, 3); err == nil {
		t.Fatal("shard-3 is out of range for 3 shards too")
	}
}

// idOnShard finds an instance-style ID hashing onto shard k.
func idOnShard(t *testing.T, k, n int) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("inst-%06d", i)
		if ShardOf(id, n) == k {
			return id
		}
	}
	t.Fatalf("no ID found for shard %d/%d", k, n)
	return ""
}

func openTestWAL(t *testing.T, l Layout, group bool) *WAL {
	t.Helper()
	w, err := OpenWAL(l, make([]persist.TailInfo, l.Shards), group, durable.CommitterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWALRoutingAndEpoch(t *testing.T) {
	l := Layout{Base: filepath.Join(t.TempDir(), "wal.ndjson"), Shards: 3}
	w := openTestWAL(t, l, false)
	for k := 0; k < 3; k++ {
		w.Journal(k).SetSync(false)
	}
	if seq, err := w.AppendControl("deploy", 1); err != nil || seq != 1 {
		t.Fatalf("control append: seq=%d err=%v", seq, err)
	}
	if w.Epoch() != 1 {
		t.Fatalf("epoch after control: %d", w.Epoch())
	}
	id1 := idOnShard(t, 1, 3)
	id2 := idOnShard(t, 2, 3)
	if err := w.AppendData(id1, "complete", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendControl("user", 2); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendData(id2, "complete", 2); err != nil {
		t.Fatal(err)
	}
	if got := w.Seqs(); got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("seqs: %v", got)
	}
	if w.TotalSeq() != 4 {
		t.Fatalf("total: %d", w.TotalSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The data records carry the epoch of the control record preceding
	// them.
	recs, err := persist.LoadJournal(l.JournalPath(1))
	if err != nil || len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("shard-1 records: %+v err=%v", recs, err)
	}
	recs, err = persist.LoadJournal(l.JournalPath(2))
	if err != nil || len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("shard-2 records: %+v err=%v", recs, err)
	}
	// Control records carry no stamp (shard 0's order is total).
	recs, err = persist.LoadJournal(l.Base)
	if err != nil || len(recs) != 2 || recs[0].Epoch != 0 || recs[1].Epoch != 0 {
		t.Fatalf("shard-0 records: %+v err=%v", recs, err)
	}
}

func TestWALHealthSurfacesWedgedCommitter(t *testing.T) {
	l := Layout{Base: filepath.Join(t.TempDir(), "wal.ndjson"), Shards: 2}
	w := openTestWAL(t, l, true)
	if err := w.Health(); err != nil {
		t.Fatalf("fresh WAL must be healthy: %v", err)
	}
	victim := 1
	id := idOnShard(t, victim, 2)
	if err := w.AppendData(id, "op", 1); err != nil {
		t.Fatal(err)
	}
	// Close the backing file out from under shard 1's committer: the next
	// flush fails and the committer wedges sticky.
	if err := w.Journal(victim).Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendData(id, "op", 2); err == nil {
		t.Fatal("append through a dead fd must fail")
	}
	if err := w.Health(); err == nil {
		t.Fatal("Health must surface the wedged shard committer")
	}
	// The other shard keeps working; Health still reports the failure.
	if _, err := w.AppendControl("user", 3); err != nil {
		t.Fatalf("healthy shard must keep accepting: %v", err)
	}
	if err := w.Health(); err == nil {
		t.Fatal("Health must stay sticky")
	}
	w.Close()
}

// mkRecs builds a shard's record queue.
func mkRecs(startSeq int, ops ...string) []persist.Record {
	recs := make([]persist.Record, len(ops))
	for i, op := range ops {
		recs[i] = persist.Record{Seq: startSeq + i, Op: op}
	}
	return recs
}

// TestMergeApplyOrdering drives the wave merge over a synthetic three-
// shard history and asserts the two invariants the replay depends on:
// per-shard sequence order, and every data record applied after the
// control record its epoch references and before the next control
// record.
func TestMergeApplyOrdering(t *testing.T) {
	isControl := func(op string) bool { return op == "ctl" }
	// Shard 0: data(1) ctl(2) data(3) ctl(4) data(5)
	s0 := mkRecs(1, "d", "ctl", "d", "ctl", "d")
	// Shard 1: epochs 0, 2, 2, 4
	s1 := mkRecs(1, "d", "d", "d", "d")
	s1[0].Epoch = 0
	s1[1].Epoch = 2
	s1[2].Epoch = 2
	s1[3].Epoch = 4
	// Shard 2: epochs 2, 4
	s2 := mkRecs(1, "d", "d")
	s2[0].Epoch = 2
	s2[1].Epoch = 4
	res := &LoadResult{Shards: []ShardState{{Recs: s0}, {Recs: s1}, {Recs: s2}}}

	type applied struct {
		shard int
		rec   persist.Record
	}
	var mu sync.Mutex
	var order []applied
	// Identify the source shard by matching the queue the record sits in.
	apply := func(rec *persist.Record) error {
		shard := -1
		for k, ss := range res.Shards {
			for i := range ss.Recs {
				if &ss.Recs[i] == rec {
					shard = k
				}
			}
		}
		mu.Lock()
		order = append(order, applied{shard, *rec})
		mu.Unlock()
		return nil
	}
	lastControl, perShard, err := MergeApply(res, isControl, apply)
	if err != nil {
		t.Fatal(err)
	}
	if lastControl != 4 {
		t.Fatalf("lastControl = %d, want 4", lastControl)
	}
	if perShard[0] != 5 || perShard[1] != 4 || perShard[2] != 2 {
		t.Fatalf("perShard = %v", perShard)
	}

	// Invariant checks over the observed order.
	ctlPos := map[int]int{} // control seq -> position in order
	lastSeq := map[int]int{}
	for pos, a := range order {
		if prev, ok := lastSeq[a.shard]; ok && a.rec.Seq <= prev {
			t.Fatalf("shard %d out of order at position %d: %+v", a.shard, pos, a.rec)
		}
		lastSeq[a.shard] = a.rec.Seq
		if a.shard == 0 && a.rec.Op == "ctl" {
			ctlPos[a.rec.Seq] = pos
		}
	}
	nextCtl := func(afterSeq int) int {
		best := len(order)
		for seq, pos := range ctlPos {
			if seq > afterSeq && pos < best {
				best = pos
			}
		}
		return best
	}
	for pos, a := range order {
		if a.shard == 0 {
			continue
		}
		e := a.rec.Epoch
		if e > 0 {
			cp, ok := ctlPos[e]
			if !ok || pos < cp {
				t.Fatalf("shard %d rec %d (epoch %d) applied before its control record", a.shard, a.rec.Seq, e)
			}
		}
		if pos > nextCtl(e) {
			t.Fatalf("shard %d rec %d (epoch %d) applied after the next control record", a.shard, a.rec.Seq, e)
		}
	}
}

// TestMergeApplyDanglingEpoch: an epoch past the control log's tail is a
// hard error.
func TestMergeApplyDanglingEpoch(t *testing.T) {
	s0 := mkRecs(1, "d")
	s1 := mkRecs(1, "d")
	s1[0].Epoch = 7
	res := &LoadResult{Shards: []ShardState{{Recs: s0}, {Recs: s1}}}
	_, _, err := MergeApply(res, func(op string) bool { return op == "ctl" }, func(*persist.Record) error { return nil })
	if err == nil {
		t.Fatal("dangling epoch must refuse")
	}
}
