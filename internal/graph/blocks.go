package graph

import (
	"fmt"
	"sort"

	"adept2/internal/bitset"
	"adept2/internal/model"
)

// Block describes one matched block of a block-structured schema: the
// split node, its matching join, and the nodes strictly inside, grouped by
// branch.
type Block struct {
	// Split is the node opening the block (AND/XOR split or loop start).
	Split string
	// Join is the matching node closing the block.
	Join string
	// Kind is the node type of the split.
	Kind model.NodeType
	// Branches holds the node sets strictly inside each branch, indexed by
	// the branch's position among the split's outgoing control edges. A
	// loop block has exactly one branch (its body).
	Branches []map[string]bool
	// Inside is the union of all branches (strictly between split and
	// join).
	Inside map[string]bool

	// region caches Inside ∪ {Split, Join}; Analyze precomputes it so the
	// hot consumers of Region (history reduction, loop resets) pay no
	// per-call allocation.
	region map[string]bool
	// regionBits is the interned form of region: a bitset over the
	// analyzed view's NodeIdx space (see Info.Topology). Analyze
	// precomputes it; history reduction tests membership with one bit
	// probe instead of a string-map lookup per event.
	regionBits bitset.Set
}

// Contains reports whether the node lies inside the block, including the
// split and join themselves.
func (b *Block) Contains(id string) bool {
	return id == b.Split || id == b.Join || b.Inside[id]
}

// Region returns the block's node set including split and join. The
// returned map is shared and cached — callers must treat it as read-only.
func (b *Block) Region() map[string]bool {
	if b.region == nil {
		r := make(map[string]bool, len(b.Inside)+2)
		for id := range b.Inside {
			r[id] = true
		}
		r[b.Split] = true
		r[b.Join] = true
		b.region = r
	}
	return b.region
}

// BranchOf returns the index of the branch containing the node, or -1 if
// the node is not strictly inside the block.
func (b *Block) BranchOf(id string) int {
	for i, br := range b.Branches {
		if br[id] {
			return i
		}
	}
	return -1
}

// Info is the result of block-structure analysis of a schema view.
type Info struct {
	blocks  []*Block
	bySplit map[string]*Block
	byJoin  map[string]*Block
	pos     map[string]int // topological position over control edges

	// topo is the topology index of the analyzed view, captured so
	// consumers of the analysis (history reduction) can intern node IDs
	// against the same snapshot the block regions were computed on.
	topo *model.Topology
}

// Topology returns the topology index of the analyzed view. Block region
// bitsets (Block.RegionBits) are expressed in its NodeIdx space.
func (i *Info) Topology() *model.Topology { return i.topo }

// RegionBits returns the block's region as a bitset over the analyzed
// view's NodeIdx space: bit n is set iff the node with NodeIdx n lies in
// Region(). The returned slice is shared and precomputed — callers must
// treat it as read-only.
func (b *Block) RegionBits() bitset.Set { return b.regionBits }

// Analyze matches every split with its join, computes branch membership,
// and checks proper nesting. It fails if the control-edge graph is cyclic,
// a split has no matching join, branches overlap before the join, block
// boundaries are crossed by control edges, or blocks are not properly
// nested. The returned Info is consumed by the verifier (structural
// soundness), the engine (loop-body resets), the change framework
// (region checks for parallel insertion), and the storage layer (minimal
// substitution blocks).
func Analyze(v model.SchemaView) (*Info, error) {
	order, err := TopoOrder(v, Control)
	if err != nil {
		return nil, fmt.Errorf("graph: control flow not acyclic: %w", err)
	}
	pos := make(map[string]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	info := &Info{
		bySplit: make(map[string]*Block),
		byJoin:  make(map[string]*Block),
		pos:     pos,
	}

	loopPairs, err := loopPairs(v)
	if err != nil {
		return nil, err
	}

	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		var b *Block
		switch n.Type {
		case model.NodeANDSplit, model.NodeXORSplit:
			b, err = matchSplit(v, n, pos)
		case model.NodeLoopStart:
			end, ok := loopPairs[id]
			if !ok {
				return nil, fmt.Errorf("graph: loop start %q has no loop edge", id)
			}
			b, err = matchLoop(v, id, end)
		default:
			continue
		}
		if err != nil {
			return nil, err
		}
		info.blocks = append(info.blocks, b)
		info.bySplit[b.Split] = b
		if prev, dup := info.byJoin[b.Join]; dup {
			return nil, fmt.Errorf("graph: join %q closes both %q and %q", b.Join, prev.Split, b.Split)
		}
		info.byJoin[b.Join] = b
	}

	// Every join must be matched by exactly one split.
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		if n.Type.IsJoin() {
			if _, ok := info.byJoin[id]; !ok {
				return nil, fmt.Errorf("graph: join %q has no matching split", id)
			}
		}
	}

	// Precompute every block's region — and its interned bitset — before
	// the Info escapes: the cache fills must not race when migration
	// workers share one Info.
	info.topo = v.Topology()
	for _, b := range info.blocks {
		bits := bitset.New(info.topo.NumNodes())
		for id := range b.Region() {
			if n, ok := info.topo.Idx(id); ok {
				bits.Set(int(n))
			}
		}
		b.regionBits = bits
	}

	if err := checkNesting(info.blocks); err != nil {
		return nil, err
	}

	// Sort blocks by region size ascending so that the first containing
	// block found is the innermost one.
	sort.SliceStable(info.blocks, func(i, j int) bool {
		return len(info.blocks[i].Inside) < len(info.blocks[j].Inside)
	})
	return info, nil
}

func loopPairs(v model.SchemaView) (map[string]string, error) {
	pairs := make(map[string]string)
	for _, e := range v.Edges() {
		if e.Type != model.EdgeLoop {
			continue
		}
		from, _ := v.Node(e.From)
		to, _ := v.Node(e.To)
		if from == nil || to == nil || from.Type != model.NodeLoopEnd || to.Type != model.NodeLoopStart {
			return nil, fmt.Errorf("graph: loop edge %s must run from a loop end to a loop start", e)
		}
		if prev, dup := pairs[e.To]; dup {
			return nil, fmt.Errorf("graph: loop start %q targeted by loop edges from %q and %q", e.To, prev, e.From)
		}
		pairs[e.To] = e.From
	}
	// Every loop end must source exactly one loop edge.
	ends := make(map[string]bool)
	for _, le := range pairs {
		if ends[le] {
			return nil, fmt.Errorf("graph: loop end %q sources multiple loop edges", le)
		}
		ends[le] = true
	}
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		switch n.Type {
		case model.NodeLoopEnd:
			if !ends[id] {
				return nil, fmt.Errorf("graph: loop end %q has no loop edge", id)
			}
		}
	}
	return pairs, nil
}

func matchSplit(v model.SchemaView, split *model.Node, pos map[string]int) (*Block, error) {
	join, _ := split.Type.MatchingJoin()
	outs := model.OutControlEdges(v, split.ID)
	if len(outs) < 2 {
		return nil, fmt.Errorf("graph: split %q has %d outgoing branches, need >=2", split.ID, len(outs))
	}
	if split.Type == model.NodeXORSplit {
		codes := make(map[int]bool, len(outs))
		for _, e := range outs {
			if codes[e.Code] {
				return nil, fmt.Errorf("graph: xor split %q has duplicate selection code %d", split.ID, e.Code)
			}
			codes[e.Code] = true
		}
	}

	// Reach sets per branch, never passing through the split again (the
	// control graph is acyclic, so that cannot happen anyway).
	reach := make([]map[string]bool, len(outs))
	for i, e := range outs {
		reach[i] = Reachable(v, e.To, Control, true)
	}
	// The matching join is the topologically first node common to all
	// branches.
	joinID := ""
	joinPos := -1
	for id := range reach[0] {
		common := true
		for i := 1; i < len(reach); i++ {
			if !reach[i][id] {
				common = false
				break
			}
		}
		if common && (joinPos == -1 || pos[id] < joinPos) {
			joinID, joinPos = id, pos[id]
		}
	}
	if joinID == "" {
		return nil, fmt.Errorf("graph: split %q: branches never rejoin", split.ID)
	}
	jn, _ := v.Node(joinID)
	if jn.Type != join {
		return nil, fmt.Errorf("graph: split %q (%s) rejoins at %q (%s), expected a %s", split.ID, split.Type, joinID, jn.Type, join)
	}

	b := &Block{Split: split.ID, Join: joinID, Kind: split.Type, Inside: make(map[string]bool)}
	for i := range outs {
		branch := make(map[string]bool)
		for id := range reach[i] {
			if pos[id] < joinPos {
				branch[id] = true
			}
		}
		b.Branches = append(b.Branches, branch)
		for id := range branch {
			if b.Inside[id] {
				return nil, fmt.Errorf("graph: split %q: node %q belongs to multiple branches", split.ID, id)
			}
			b.Inside[id] = true
		}
	}
	if err := checkBoundary(v, b); err != nil {
		return nil, err
	}
	return b, nil
}

func matchLoop(v model.SchemaView, start, end string) (*Block, error) {
	fwd := Reachable(v, start, Control, true)
	back := Reachable(v, end, Control, false)
	if !fwd[end] {
		return nil, fmt.Errorf("graph: loop start %q does not reach its loop end %q", start, end)
	}
	body := make(map[string]bool)
	for id := range fwd {
		if back[id] && id != start && id != end {
			body[id] = true
		}
	}
	b := &Block{Split: start, Join: end, Kind: model.NodeLoopStart, Branches: []map[string]bool{body}, Inside: body}
	if err := checkBoundary(v, b); err != nil {
		return nil, err
	}
	return b, nil
}

// checkBoundary verifies the block region is single-entry single-exit with
// respect to control edges: interior nodes connect only within the region.
func checkBoundary(v model.SchemaView, b *Block) error {
	for id := range b.Inside {
		for _, e := range v.InEdges(id) {
			if e.Type != model.EdgeControl {
				continue
			}
			if !b.Inside[e.From] && e.From != b.Split {
				return fmt.Errorf("graph: block %q..%q: control edge %s enters the block from outside", b.Split, b.Join, e)
			}
		}
		for _, e := range v.OutEdges(id) {
			if e.Type != model.EdgeControl {
				continue
			}
			if !b.Inside[e.To] && e.To != b.Join {
				return fmt.Errorf("graph: block %q..%q: control edge %s leaves the block before the join", b.Split, b.Join, e)
			}
		}
	}
	return nil
}

// checkNesting verifies that block regions are pairwise disjoint or
// properly contained in one another.
func checkNesting(blocks []*Block) error {
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			a, b := blocks[i], blocks[j]
			ra, rb := a.Region(), b.Region()
			var shared, aInB, bInA int
			for id := range ra {
				if rb[id] {
					shared++
				}
			}
			if shared == 0 {
				continue
			}
			for id := range ra {
				if rb[id] {
					aInB++
				}
			}
			for id := range rb {
				if ra[id] {
					bInA++
				}
			}
			// Containment: the inner block's region (minus its boundary
			// nodes shared with the outer one) must lie inside the outer.
			if aInB == len(ra) || bInA == len(rb) {
				continue
			}
			return fmt.Errorf("graph: blocks %q..%q and %q..%q overlap without nesting", a.Split, a.Join, b.Split, b.Join)
		}
	}
	return nil
}

// Blocks returns all blocks ordered innermost-first (ascending region
// size).
func (i *Info) Blocks() []*Block { return i.blocks }

// BySplit returns the block opened by the given split node.
func (i *Info) BySplit(split string) (*Block, bool) {
	b, ok := i.bySplit[split]
	return b, ok
}

// ByJoin returns the block closed by the given join node.
func (i *Info) ByJoin(join string) (*Block, bool) {
	b, ok := i.byJoin[join]
	return b, ok
}

// TopoPos returns the topological position of the node over control edges.
func (i *Info) TopoPos(id string) int { return i.pos[id] }

// InnermostContaining returns the smallest block strictly containing the
// node, or nil if the node lies at the top level.
func (i *Info) InnermostContaining(id string) *Block {
	for _, b := range i.blocks { // innermost-first order
		if b.Inside[id] {
			return b
		}
	}
	return nil
}

// BranchRef locates a node within a block: the block and branch index.
type BranchRef struct {
	Block  *Block
	Branch int
}

// Path returns the chain of blocks containing the node, outermost first,
// with the branch index the node occupies in each.
func (i *Info) Path(id string) []BranchRef {
	var path []BranchRef
	for _, b := range i.blocks {
		if b.Inside[id] {
			path = append(path, BranchRef{Block: b, Branch: b.BranchOf(id)})
		}
	}
	// blocks is innermost-first; reverse into outermost-first.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// Divergence finds the innermost block in which two nodes sit on different
// branches. ok is false if no such block exists (the nodes are ordered or
// identical with respect to block structure).
func (i *Info) Divergence(a, b string) (blk *Block, branchA, branchB int, ok bool) {
	pa, pb := i.Path(a), i.Path(b)
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for k := 0; k < n; k++ {
		if pa[k].Block != pb[k].Block {
			break
		}
		if pa[k].Branch != pb[k].Branch {
			blk, branchA, branchB, ok = pa[k].Block, pa[k].Branch, pb[k].Branch, true
			// Keep scanning: a deeper common block with differing branches
			// would be more precise, but block paths diverge at the first
			// differing branch, so this is the innermost one.
			return
		}
	}
	return nil, 0, 0, false
}

// MinimalRegion returns the smallest block whose region contains all the
// given nodes, or nil if only the whole schema does. It computes the
// "minimal substitution block" of the paper's hybrid storage
// representation (Fig. 2).
func (i *Info) MinimalRegion(ids []string) *Block {
	for _, b := range i.blocks { // innermost-first
		all := true
		for _, id := range ids {
			if !b.Contains(id) {
				all = false
				break
			}
		}
		if all {
			return b
		}
	}
	return nil
}
