package engine

import (
	"sort"

	"adept2/internal/fault"
	"adept2/internal/history"
	"adept2/internal/state"
)

// This file implements the process-level exception transitions of the
// ADEPT2 engine: activity failure (the attempt is undone and purged from
// the logical history), deadline expiry (the activity keeps running but
// its work item escalates), and retry (the suppressed work item of a
// failed activity is re-offered). Each transition is driven by its own
// journaled command, so replay rebuilds identical exception state.

// failLocked records that a running node's execution failed. The attempt
// is undone: a Failed event is appended to the physical history, the
// node's execution record is purged from the fast compliance index
// (mirroring Reduce, which drops the Started/Failed pair), and the node
// reverts to activated. retryAt > 0 suppresses the re-offer until that
// time (retry backoff); pending suppresses it until a policy
// compensation lands. Both ride the journaled fail command, so the
// suppression window replays identically.
func (inst *Instance) failLocked(node, user, reason string, retryAt int64, pending bool) error {
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: fail %s/%s: instance is completed", inst.id, node)
	}
	if inst.suspended {
		return fault.Tagf(fault.Suspended, "engine: fail %s/%s: instance is suspended", inst.id, node)
	}
	if _, _, err := inst.viewLocked(); err != nil {
		return err
	}
	if got := inst.marking.Node(node); got != state.Running {
		return fault.Tagf(fault.Conflict, "engine: fail %s/%s: node is %s, not running", inst.id, node, got)
	}
	inst.hist.Append(&history.Event{Kind: history.Failed, Node: node, User: user, Reason: reason, Decision: -1})
	inst.stats.OnFail(node)
	inst.marking.SetNode(node, state.Activated)
	if inst.failures == nil {
		inst.failures = make(map[string]int)
	}
	inst.failures[node]++
	delete(inst.deadlines, node)
	delete(inst.escalated, node)
	if retryAt != 0 {
		if inst.retryAt == nil {
			inst.retryAt = make(map[string]int64)
		}
		inst.retryAt[node] = retryAt
	}
	if pending {
		if inst.compPending == nil {
			inst.compPending = make(map[string]bool)
		}
		inst.compPending[node] = true
	}
	// The failed assignee's in-progress item is stale either way; the
	// sync below re-offers to the role's candidates unless suppressed.
	inst.eng.wl.Withdraw(inst.id, node)
	inst.syncWorklistLocked()
	return nil
}

// timeoutLocked records that a running node exceeded its armed deadline:
// a Timeout event is appended, the deadline disarms (it fires exactly
// once), and the work item escalates — it is withdrawn from the original
// assignee and re-offered to the node's escalation role (its own role
// when none is configured).
func (inst *Instance) timeoutLocked(node string) error {
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: timeout %s/%s: instance is completed", inst.id, node)
	}
	if inst.suspended {
		return fault.Tagf(fault.Suspended, "engine: timeout %s/%s: instance is suspended", inst.id, node)
	}
	v, _, err := inst.viewLocked()
	if err != nil {
		return err
	}
	n, ok := v.Node(node)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: timeout %s/%s: no such node", inst.id, node)
	}
	if got := inst.marking.Node(node); got != state.Running {
		return fault.Tagf(fault.Conflict, "engine: timeout %s/%s: node is %s, not running", inst.id, node, got)
	}
	if _, armed := inst.deadlines[node]; !armed {
		return fault.Tagf(fault.Conflict, "engine: timeout %s/%s: no armed deadline", inst.id, node)
	}
	inst.hist.Append(&history.Event{Kind: history.Timeout, Node: node, Reason: "deadline expired", Decision: -1})
	delete(inst.deadlines, node)
	if inst.escalated == nil {
		inst.escalated = make(map[string]bool)
	}
	inst.escalated[node] = true
	role := n.Escalation
	if role == "" {
		role = n.Role
	}
	users := inst.eng.org.UsersInRole(role)
	if inst.eng.EscalationBothCanAct() && n.Escalation != "" && n.Escalation != n.Role && n.Role != "" {
		// Both-can-act: the original role's candidates stay on the offer
		// alongside the escalation role's (deduplicated — a user holding
		// both roles appears once).
		seen := make(map[string]bool, len(users))
		for _, u := range users {
			seen[u] = true
		}
		for _, u := range inst.eng.org.UsersInRole(n.Role) {
			if !seen[u] {
				users = append(users, u)
			}
		}
	}
	inst.eng.wl.Escalate(inst.id, node, role, users)
	return nil
}

// retryLocked lifts the suppression of a failed node's work item: the
// retry backoff and any pending-compensation mark are cleared and the
// worklist sync re-offers the item.
func (inst *Instance) retryLocked(node string) error {
	if inst.done {
		return fault.Tagf(fault.Completed, "engine: retry %s/%s: instance is completed", inst.id, node)
	}
	if inst.suspended {
		return fault.Tagf(fault.Suspended, "engine: retry %s/%s: instance is suspended", inst.id, node)
	}
	if got := inst.marking.Node(node); got != state.Activated {
		return fault.Tagf(fault.Conflict, "engine: retry %s/%s: node is %s, not activated", inst.id, node, got)
	}
	_, hasBackoff := inst.retryAt[node]
	if !hasBackoff && !inst.compPending[node] {
		return fault.Tagf(fault.Conflict, "engine: retry %s/%s: no suppressed retry pending", inst.id, node)
	}
	delete(inst.retryAt, node)
	delete(inst.compPending, node)
	inst.syncWorklistLocked()
	return nil
}

// FailActivity records a process-level failure of a running activity
// (see failLocked).
func (e *Engine) FailActivity(instID, node, user, reason string, retryAt int64, pending bool) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: fail: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.failLocked(node, user, reason, retryAt, pending)
}

// TimeoutActivity fires the armed deadline of a running activity (see
// timeoutLocked).
func (e *Engine) TimeoutActivity(instID, node string) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: timeout: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.timeoutLocked(node)
}

// RetryActivity re-offers the suppressed work item of a failed activity
// (see retryLocked).
func (e *Engine) RetryActivity(instID, node string) error {
	inst, ok := e.Instance(instID)
	if !ok {
		return fault.Tagf(fault.NotFound, "engine: retry: unknown instance %q", instID)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.retryLocked(node)
}

// Expiry identifies one due exception-timer entry: an armed deadline
// that expired, or a retry backoff that became due.
type Expiry struct {
	Instance string
	Node     string
	// At is the armed deadline (or retry due time) in unix nanos.
	At int64
}

// ExpiredDeadlines scans all live instances for armed deadlines at or
// before now. The result is ordered by instance creation order, then
// node ID — deterministic, so a sweep loop issues the same command
// sequence regardless of map iteration.
func (e *Engine) ExpiredDeadlines(now int64) []Expiry {
	var out []Expiry
	for _, inst := range e.Instances() {
		inst.mu.Lock()
		if !inst.done && !inst.suspended {
			start := len(out)
			for node, dl := range inst.deadlines {
				if dl <= now && inst.marking.Node(node) == state.Running {
					out = append(out, Expiry{Instance: inst.id, Node: node, At: dl})
				}
			}
			sortExpiries(out[start:])
		}
		inst.mu.Unlock()
	}
	return out
}

// DueRetries scans all live instances for retry backoffs due at or
// before now (same ordering guarantees as ExpiredDeadlines).
func (e *Engine) DueRetries(now int64) []Expiry {
	var out []Expiry
	for _, inst := range e.Instances() {
		inst.mu.Lock()
		if !inst.done && !inst.suspended {
			start := len(out)
			for node, at := range inst.retryAt {
				if at <= now && inst.marking.Node(node) == state.Activated {
					out = append(out, Expiry{Instance: inst.id, Node: node, At: at})
				}
			}
			sortExpiries(out[start:])
		}
		inst.mu.Unlock()
	}
	return out
}

func sortExpiries(s []Expiry) {
	sort.Slice(s, func(i, j int) bool { return s[i].Node < s[j].Node })
}

// OpenException describes an exception that has been detected but not
// yet compensated: a failed node awaiting its policy compensation, or a
// running node whose deadline fired (escalated) and which a policy may
// still want to act on.
type OpenException struct {
	Instance string
	Node     string
	// Timeout distinguishes deadline expiries from activity failures.
	Timeout bool
	// Failures is the node's consecutive-failure count.
	Failures int
}

// OpenExceptions scans all live instances for open exceptions, ordered
// by instance creation order then node ID. The sweep re-runs the
// exception policy over them, which heals compensations lost to a crash
// between a fail record and its follow-up command.
func (e *Engine) OpenExceptions() []OpenException {
	var out []OpenException
	for _, inst := range e.Instances() {
		inst.mu.Lock()
		if !inst.done && !inst.suspended {
			start := len(out)
			for node := range inst.compPending {
				if inst.marking.Node(node) == state.Activated {
					out = append(out, OpenException{Instance: inst.id, Node: node, Failures: inst.failures[node]})
				}
			}
			for node := range inst.escalated {
				if inst.marking.Node(node) == state.Running {
					out = append(out, OpenException{Instance: inst.id, Node: node, Timeout: true, Failures: inst.failures[node]})
				}
			}
			sort.Slice(out[start:], func(i, j int) bool {
				a, b := out[start+i], out[start+j]
				if a.Node != b.Node {
					return a.Node < b.Node
				}
				return !a.Timeout && b.Timeout
			})
		}
		inst.mu.Unlock()
	}
	return out
}
