package durable

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"adept2/internal/persist"
)

// BenchmarkGroupCommit compares the append throughput of the serial
// fsync-per-record journal against the group-commit committer under
// concurrent writers: the committer turns N concurrent appends into one
// buffered write + one fsync per batch, so appends/sec scale with
// concurrency instead of being bound by the fsync latency.
func BenchmarkGroupCommit(b *testing.B) {
	args := map[string]any{"instance": "inst-000001", "node": "confirm_order", "user": "ann"}

	b.Run("serial-fsync", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "wal.ndjson")
		j, err := persist.OpenJournal(path)
		if err != nil {
			b.Fatal(err)
		}
		defer j.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := j.Append("complete", args); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("group-writers=%d", writers), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			j, err := persist.OpenJournalBuffered(path)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			c := NewCommitter(j, CommitterOptions{})
			defer c.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / writers
			for w := 0; w < writers; w++ {
				n := per
				if w == 0 {
					n += b.N - per*writers
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := c.Append("complete", args); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}
}
