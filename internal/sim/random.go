package sim

import (
	"fmt"
	"math/rand"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/state"
	"adept2/internal/verify"
)

// SchemaOpts tunes the random schema generator.
type SchemaOpts struct {
	// MaxDepth bounds block nesting.
	MaxDepth int
	// MaxSeq bounds the length of generated sequences.
	MaxSeq int
	// MaxBranch bounds the branch count of parallel/choice blocks.
	MaxBranch int
	// BlockProb is the probability that a fragment becomes a block instead
	// of a single activity (split evenly between parallel, choice, loop).
	BlockProb float64
	// DataElems is the number of generated data elements.
	DataElems int
	// DataProb is the per-activity probability of a mandatory read plus a
	// write on random elements.
	DataProb float64
	// SyncEdges is how many random sync edges the generator attempts to
	// place between parallel branches.
	SyncEdges int
}

// DefaultSchemaOpts returns moderate defaults producing schemas of roughly
// 20-60 nodes.
func DefaultSchemaOpts() SchemaOpts {
	return SchemaOpts{
		MaxDepth:  3,
		MaxSeq:    4,
		MaxBranch: 3,
		BlockProb: 0.45,
		DataElems: 4,
		DataProb:  0.3,
		SyncEdges: 2,
	}
}

// generator carries the state of one random schema construction.
type generator struct {
	rng     *rand.Rand
	b       *model.Builder
	opts    SchemaOpts
	nextAct int
	written []string // elements guaranteed written before the current point
}

// RandomSchema generates a verified block-structured schema. All
// activities are manual with role "worker"; gateway decisions are manual
// too (the Driver supplies them), so the generated schemas always pass the
// buildtime checks by construction.
func RandomSchema(rng *rand.Rand, name string, opts SchemaOpts) *model.Schema {
	g := &generator{rng: rng, b: model.NewBuilder(name), opts: opts}
	for i := 0; i < opts.DataElems; i++ {
		g.b.DataElement(fmt.Sprintf("d%d", i), model.TypeString)
	}
	// A leading writer activity guarantees every element has a value, so
	// random mandatory reads downstream always verify.
	init := g.b.Activity("a0", "a0", model.WithRole("worker"))
	g.nextAct = 1
	for i := 0; i < opts.DataElems; i++ {
		elem := fmt.Sprintf("d%d", i)
		g.b.Write("a0", elem, "out_"+elem)
		g.written = append(g.written, elem)
	}
	root := g.b.Seq(init, g.seq(opts.MaxDepth))
	s, err := g.b.Build(root)
	if err != nil {
		panic(fmt.Sprintf("sim: random schema: %v", err))
	}
	g.addSyncEdges(s)
	if err := verify.Err(s); err != nil {
		panic(fmt.Sprintf("sim: random schema failed verification: %v", err))
	}
	return s
}

func (g *generator) seq(depth int) model.Fragment {
	n := 1 + g.rng.Intn(g.opts.MaxSeq)
	frags := make([]model.Fragment, 0, n)
	for i := 0; i < n; i++ {
		frags = append(frags, g.fragment(depth))
	}
	return g.b.Seq(frags...)
}

func (g *generator) fragment(depth int) model.Fragment {
	if depth <= 0 || g.rng.Float64() >= g.opts.BlockProb {
		return g.activity()
	}
	switch g.rng.Intn(3) {
	case 0: // parallel block
		n := 2 + g.rng.Intn(g.opts.MaxBranch-1)
		branches := make([]model.Fragment, 0, n)
		for i := 0; i < n; i++ {
			branches = append(branches, g.seq(depth-1))
		}
		return g.b.Parallel(branches...)
	case 1: // choice block; reads inside branches stay safe because only
		// guaranteed-written elements are read (see activity).
		n := 2 + g.rng.Intn(g.opts.MaxBranch-1)
		branches := make([]model.Fragment, 0, n)
		for i := 0; i < n; i++ {
			branches = append(branches, g.seq(depth-1))
		}
		return g.b.Choice("", branches...)
	default: // loop block, bounded
		return g.b.Loop(g.seq(depth-1), "", 3)
	}
}

func (g *generator) activity() model.Fragment {
	id := fmt.Sprintf("a%d", g.nextAct)
	g.nextAct++
	frag := g.b.Activity(id, id, model.WithRole("worker"))
	if g.opts.DataElems > 0 && g.rng.Float64() < g.opts.DataProb {
		// Mandatory read of a guaranteed element, write of a random one.
		read := g.written[g.rng.Intn(len(g.written))]
		write := fmt.Sprintf("d%d", g.rng.Intn(g.opts.DataElems))
		g.b.Read(id, read, "in", true)
		g.b.Write(id, write, "out")
	}
	return frag
}

// addSyncEdges tries to add random sync edges between parallel branches,
// keeping only those the verifier accepts.
func (g *generator) addSyncEdges(s *model.Schema) {
	info, err := graph.Analyze(s)
	if err != nil {
		return
	}
	var andBlocks []*graph.Block
	for _, blk := range info.Blocks() {
		if blk.Kind == model.NodeANDSplit {
			andBlocks = append(andBlocks, blk)
		}
	}
	if len(andBlocks) == 0 {
		return
	}
	for attempt := 0; attempt < g.opts.SyncEdges*3; attempt++ {
		blk := andBlocks[g.rng.Intn(len(andBlocks))]
		if len(blk.Branches) < 2 {
			continue
		}
		i := g.rng.Intn(len(blk.Branches))
		j := g.rng.Intn(len(blk.Branches))
		if i == j {
			continue
		}
		from := randomMember(g.rng, blk.Branches[i])
		to := randomMember(g.rng, blk.Branches[j])
		if from == "" || to == "" {
			continue
		}
		e := &model.Edge{From: from, To: to, Type: model.EdgeSync}
		if s.HasEdge(e.Key()) {
			continue
		}
		if err := s.AddEdge(e); err != nil {
			continue
		}
		if res := verify.Check(s); !res.OK() {
			_ = s.RemoveEdge(e.Key())
		}
	}
}

func randomMember(rng *rand.Rand, set map[string]bool) string {
	if len(set) == 0 {
		return ""
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	// Deterministic order before random pick keeps runs reproducible.
	sortStrings(ids)
	return ids[rng.Intn(len(ids))]
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Driver advances instances by completing random enabled work with random
// valid data, standing in for the users of a production deployment.
type Driver struct {
	Rng *rand.Rand
	Eng *engine.Engine
	// LoopAgainProb is the probability a manual loop end iterates.
	LoopAgainProb float64
}

// NewDriver returns a driver with moderate defaults.
func NewDriver(rng *rand.Rand, e *engine.Engine) *Driver {
	return &Driver{Rng: rng, Eng: e, LoopAgainProb: 0.3}
}

// Step completes one random enabled node of the instance. It returns false
// when nothing is enabled (the instance finished or waits on nothing).
func (d *Driver) Step(inst *engine.Instance) (bool, error) {
	if inst.Done() {
		return false, nil
	}
	v := inst.View()
	marking := inst.MarkingSnapshot()
	enabled := marking.NodesInState(state.Activated)
	if len(enabled) == 0 {
		return false, nil
	}
	node := enabled[d.Rng.Intn(len(enabled))]
	n, _ := v.Node(node)

	var opts []engine.CompleteOption
	switch n.Type {
	case model.NodeXORSplit:
		outs := model.OutControlEdges(v, node)
		opts = append(opts, engine.WithDecision(outs[d.Rng.Intn(len(outs))].Code))
	case model.NodeLoopEnd:
		opts = append(opts, engine.WithLoopAgain(d.Rng.Float64() < d.LoopAgainProb))
	}
	outputs := d.randomOutputs(v, node)
	user := d.userFor(n)
	if err := d.Eng.CompleteActivity(inst.ID(), node, user, outputs, opts...); err != nil {
		return false, fmt.Errorf("sim: step %s/%s: %w", inst.ID(), node, err)
	}
	return true, nil
}

// Advance performs up to n random steps.
func (d *Driver) Advance(inst *engine.Instance, n int) error {
	for i := 0; i < n; i++ {
		ok, err := d.Step(inst)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// RunToCompletion drives the instance until it finishes (bounded by a
// generous step budget to catch livelocks in tests).
func (d *Driver) RunToCompletion(inst *engine.Instance) error {
	for i := 0; i < 100000; i++ {
		ok, err := d.Step(inst)
		if err != nil {
			return err
		}
		if !ok {
			if !inst.Done() {
				return fmt.Errorf("sim: instance %s stuck (nothing enabled, not done)", inst.ID())
			}
			return nil
		}
	}
	return fmt.Errorf("sim: instance %s exceeded step budget", inst.ID())
}

func (d *Driver) randomOutputs(v model.SchemaView, node string) map[string]any {
	var out map[string]any
	for _, de := range v.DataEdgesOf(node) {
		if de.Access != model.Write {
			continue
		}
		if out == nil {
			out = make(map[string]any)
		}
		elem, _ := v.DataElement(de.Element)
		switch elem.Type {
		case model.TypeInt:
			out[de.Parameter] = int64(d.Rng.Intn(10))
		case model.TypeBool:
			out[de.Parameter] = d.Rng.Intn(2) == 0
		case model.TypeFloat:
			out[de.Parameter] = d.Rng.Float64()
		default:
			out[de.Parameter] = fmt.Sprintf("v%d", d.Rng.Intn(1000))
		}
	}
	return out
}

func (d *Driver) userFor(n *model.Node) string {
	if n.Role == "" {
		return ""
	}
	users := d.Eng.Org().UsersInRole(n.Role)
	if len(users) == 0 {
		return ""
	}
	return users[d.Rng.Intn(len(users))]
}

// RandomAdHocOps proposes a random ad-hoc change against the given view.
// The proposal is structurally plausible but not guaranteed applicable;
// callers feed it through change.ApplyAdHoc (or the compliance property
// harness) and treat rejections as part of the experiment.
func RandomAdHocOps(rng *rand.Rand, v model.SchemaView, seq int) []change.Operation {
	activities := activityIDs(v)
	if len(activities) == 0 {
		return nil
	}
	pick := func() string { return activities[rng.Intn(len(activities))] }
	newNode := func() *model.Node {
		id := fmt.Sprintf("x%d_%d", seq, rng.Intn(1_000_000))
		return &model.Node{ID: id, Name: id, Type: model.NodeActivity, Role: "worker", Template: "tpl_" + id}
	}
	switch rng.Intn(6) {
	case 0: // serial insert on a random control edge
		edges := controlEdges(v)
		e := edges[rng.Intn(len(edges))]
		return []change.Operation{&change.SerialInsert{Node: newNode(), Pred: e.From, Succ: e.To}}
	case 1: // parallel insert around a single random activity
		a := pick()
		return []change.Operation{&change.ParallelInsert{Node: newNode(), From: a, To: a}}
	case 2: // delete a random activity
		return []change.Operation{&change.DeleteActivity{ID: pick()}}
	case 3: // sync edge between two random activities
		return []change.Operation{&change.InsertSyncEdge{From: pick(), To: pick()}}
	case 4: // staff reassignment
		return []change.Operation{&change.UpdateStaffAssignment{Activity: pick(), NewRole: "worker"}}
	default: // move an activity onto a random control edge
		edges := controlEdges(v)
		e := edges[rng.Intn(len(edges))]
		return []change.Operation{&change.MoveActivity{ID: pick(), NewPred: e.From, NewSucc: e.To}}
	}
}

func activityIDs(v model.SchemaView) []string {
	var ids []string
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		if n.Type == model.NodeActivity && !n.Auto {
			ids = append(ids, id)
		}
	}
	return ids
}

func controlEdges(v model.SchemaView) []*model.Edge {
	var es []*model.Edge
	for _, e := range v.Edges() {
		if e.Type == model.EdgeControl {
			es = append(es, e)
		}
	}
	return es
}
