package org

import "testing"

func demoModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	users := []*User{
		{ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales"}},
		{ID: "bob", Name: "Bob", Roles: []string{"clerk"}},
		{ID: "cyn", Name: "Cyn", Roles: []string{"warehouse"}, Unit: "logistics"},
	}
	for _, u := range users {
		if err := m.AddUser(u); err != nil {
			t.Fatalf("add user: %v", err)
		}
	}
	return m
}

func TestModelLookup(t *testing.T) {
	m := demoModel(t)
	u, ok := m.User("ann")
	if !ok || u.Name != "Ann" {
		t.Fatalf("User(ann) = %+v, %v", u, ok)
	}
	if _, ok := m.User("zz"); ok {
		t.Fatal("unknown user found")
	}
	if got := m.UsersInRole("clerk"); len(got) != 2 || got[0] != "ann" || got[1] != "bob" {
		t.Fatalf("UsersInRole(clerk) = %v", got)
	}
	if got := m.UsersInRole("none"); len(got) != 0 {
		t.Fatalf("UsersInRole(none) = %v", got)
	}
	if !m.HasRole("ann", "sales") || m.HasRole("bob", "sales") || m.HasRole("zz", "clerk") {
		t.Fatal("HasRole broken")
	}
	if got := m.Roles(); len(got) != 3 {
		t.Fatalf("Roles = %v", got)
	}
	if got := m.Users(); len(got) != 3 || got[0] != "ann" {
		t.Fatalf("Users = %v", got)
	}
}

func TestModelErrors(t *testing.T) {
	m := demoModel(t)
	if err := m.AddUser(&User{ID: "ann"}); err == nil {
		t.Fatal("duplicate user must fail")
	}
	if err := m.AddUser(&User{}); err == nil {
		t.Fatal("empty ID must fail")
	}
	if err := m.AddUser(nil); err == nil {
		t.Fatal("nil user must fail")
	}
}

func TestAddUserCopiesInput(t *testing.T) {
	m := NewModel()
	u := &User{ID: "x", Roles: []string{"r"}}
	if err := m.AddUser(u); err != nil {
		t.Fatal(err)
	}
	u.Roles[0] = "mutated"
	if !m.HasRole("x", "r") {
		t.Fatal("model must copy the roles slice")
	}
}
