package sharded

import (
	"context"
	"fmt"
	"sync/atomic"

	"adept2/internal/durable"
	"adept2/internal/persist"
)

// WAL routes journal appends across the shards of a layout: control
// records (schema deploys, users, evolutions) to shard 0, data records to
// the shard their instance hashes onto, stamped with the current epoch.
// Each shard owns its own journal and (with group commit) its own
// committer, so concurrent appends to different shards serialize, encode,
// and fsync independently — the append path scales past a single fsync
// queue.
//
// The epoch is the shard-0 sequence number of the newest *durable*
// control record. The facade serializes control commands against all data
// commands (exclusive snapshot barrier), so by the time the epoch
// advances, every concurrently issued data record carried the previous
// epoch — which is exactly the order recovery re-establishes.
type WAL struct {
	layout Layout
	shards []walShard
	epoch  atomic.Int64
}

type walShard struct {
	j *persist.Journal
	c *durable.Committer // nil without group commit
}

// OpenWAL resumes every shard journal of the layout. tails carries the
// per-shard scan results recovery already established (persist.TailInfo
// per shard; the zero value is fine for journals that do not exist yet).
// With group commit each shard gets its own buffered journal and
// committer; otherwise appends fsync individually — still in parallel
// across shards, since each journal has its own lock and fd.
func OpenWAL(l Layout, tails []persist.TailInfo, group bool, opts durable.CommitterOptions) (*WAL, error) {
	if len(tails) != l.Shards {
		return nil, fmt.Errorf("sharded: open wal: %d tails for %d shards", len(tails), l.Shards)
	}
	w := &WAL{layout: l, shards: make([]walShard, l.Shards)}
	for k := range w.shards {
		j, err := persist.ResumeJournalFS(l.fs(), l.JournalPath(k), tails[k], group)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.shards[k].j = j
		if group {
			w.shards[k].c = durable.NewCommitter(j, opts)
		}
	}
	return w, nil
}

// Shards returns the shard count.
func (w *WAL) Shards() int { return len(w.shards) }

// Journal exposes shard k's journal (read-side accessors and tests).
func (w *WAL) Journal(k int) *persist.Journal { return w.shards[k].j }

// ShardFor returns the shard an instance's records route to.
func (w *WAL) ShardFor(instID string) int { return ShardOf(instID, len(w.shards)) }

// Epoch returns the current control epoch.
func (w *WAL) Epoch() int { return int(w.epoch.Load()) }

// SetEpoch installs the recovered control epoch (the shard-0 sequence
// number of the last control record recovery applied or restored).
func (w *WAL) SetEpoch(e int) { w.epoch.Store(int64(e)) }

// appendShard journals one record on shard k, blocking until durable.
func (w *WAL) appendShard(k int, op string, epoch int, args any) (int, error) {
	sh := &w.shards[k]
	if sh.c != nil {
		return sh.c.AppendEpoch(op, epoch, args)
	}
	return sh.j.AppendRecord(op, epoch, args)
}

// AppendControl journals a control record on shard 0 and advances the
// epoch once the record is durable. The caller must hold the facade's
// exclusive barrier: no data append may be in flight between the engine
// mutation and the epoch advance, or recovery could order a dependent
// data record ahead of this control record.
func (w *WAL) AppendControl(op string, args any) (int, error) {
	seq, err := w.appendShard(0, op, 0, args)
	if err != nil {
		return 0, err
	}
	w.epoch.Store(int64(seq))
	return seq, nil
}

// AppendData journals a data record on the instance's shard, stamped with
// the current epoch. Shard-0 data records carry no stamp — their position
// in the control journal already orders them totally.
func (w *WAL) AppendData(instID, op string, args any) error {
	k := w.ShardFor(instID)
	epoch := 0
	if k != 0 {
		epoch = w.Epoch()
	}
	_, err := w.appendShard(k, op, epoch, args)
	return err
}

// AppendDataAsync journals a data record like AppendData but returns as
// soon as the record is staged in its shard's pipeline: shard and seq
// identify it for WaitShardSeq. durable reports that the record is
// already durable on return (shards without group commit fsync inline,
// so there is nothing left to await).
func (w *WAL) AppendDataAsync(instID, op string, args any) (shard, seq int, durable bool, err error) {
	k := w.ShardFor(instID)
	epoch := 0
	if k != 0 {
		epoch = w.Epoch()
	}
	sh := &w.shards[k]
	if sh.c != nil {
		seq, err := sh.c.AppendAsync(op, epoch, args)
		return k, seq, false, err
	}
	seq, err = sh.j.AppendRecord(op, epoch, args)
	return k, seq, true, err
}

// WaitShardSeq blocks until shard k's record seq is durable (immediately
// nil without group commit — such appends are durable on return).
func (w *WAL) WaitShardSeq(ctx context.Context, k, seq int) error {
	if c := w.shards[k].c; c != nil {
		if err := c.WaitSeq(ctx, seq); err != nil {
			return fmt.Errorf("sharded: shard %d: %w", k, err)
		}
	}
	return nil
}

// DataRecord is one instance-scoped record of an AppendDataMulti batch.
type DataRecord struct {
	Instance string
	Op       string
	Args     any
}

// AppendDataMulti journals a batch of data records: the batch is
// partitioned by shard (relative order within each shard preserved), each
// shard receives its slice as ONE multi-record journal append, and the
// call returns once every touched shard's tail is durable — one fsync (or
// one group-commit wait) per touched shard for the whole batch, instead
// of one per record. Every record is stamped with the current epoch; the
// caller holds the shared command barrier, so no control record can
// interleave with the batch.
func (w *WAL) AppendDataMulti(ctx context.Context, recs []DataRecord) error {
	perShard := make(map[int][]persist.Pending)
	for _, r := range recs {
		k := w.ShardFor(r.Instance)
		epoch := 0
		if k != 0 {
			epoch = w.Epoch()
		}
		perShard[k] = append(perShard[k], persist.Pending{Op: r.Op, Epoch: epoch, Args: r.Args})
	}
	// Stage every shard's slice first (buffered appends are cheap), then
	// await durability — shards flush concurrently instead of in turn.
	type pendingWait struct{ shard, seq int }
	var waits []pendingWait
	for k, pend := range perShard {
		sh := &w.shards[k]
		if sh.c != nil {
			last, err := sh.c.AppendMulti(pend)
			if err != nil {
				return fmt.Errorf("sharded: shard %d: %w", k, err)
			}
			waits = append(waits, pendingWait{k, last})
			continue
		}
		if _, err := sh.j.AppendMulti(pend); err != nil {
			return fmt.Errorf("sharded: shard %d: %w", k, err)
		}
	}
	for _, pw := range waits {
		if err := w.WaitShardSeq(ctx, pw.shard, pw.seq); err != nil {
			return err
		}
	}
	return nil
}

// Seqs returns every shard's last journal sequence number.
func (w *WAL) Seqs() []int {
	out := make([]int, len(w.shards))
	for k := range w.shards {
		if w.shards[k].j != nil {
			out[k] = w.shards[k].j.Seq()
		}
	}
	return out
}

// Depths returns every shard's staged-but-unflushed backlog (journal head
// minus the committer's durable watermark; 0 without group commit, where
// appends are durable on return).
func (w *WAL) Depths() []int {
	out := make([]int, len(w.shards))
	for k := range w.shards {
		sh := &w.shards[k]
		if sh.j != nil && sh.c != nil {
			if d := sh.j.Seq() - sh.c.Flushed(); d > 0 {
				out[k] = d
			}
		}
	}
	return out
}

// TotalSeq sums the shard head sequence numbers — a monotonic growth
// measure the checkpoint trigger compares across cuts.
func (w *WAL) TotalSeq() int {
	total := 0
	for _, s := range w.Seqs() {
		total += s
	}
	return total
}

// Sync makes every previously appended record durable on all shards.
func (w *WAL) Sync() error {
	for k := range w.shards {
		if c := w.shards[k].c; c != nil {
			if err := c.Sync(); err != nil {
				return fmt.Errorf("sharded: shard %d: %w", k, err)
			}
		}
	}
	return nil
}

// Health reports the first wedged shard committer (sticky flush error
// after exhausted retries) without blocking, or nil while all shards are
// healthy. Without group commit there is no asynchronous failure mode to
// surface: append errors reach their callers directly.
func (w *WAL) Health() error {
	for k := range w.shards {
		if c := w.shards[k].c; c != nil {
			if err := c.Err(); err != nil {
				return fmt.Errorf("sharded: shard %d committer wedged: %w", k, err)
			}
		}
	}
	return nil
}

// WedgedShards lists the shards whose committers are wedged (empty while
// healthy) — diagnostic detail behind Health's first-error summary.
func (w *WAL) WedgedShards() []int {
	var out []int
	for k := range w.shards {
		if c := w.shards[k].c; c != nil && c.Err() != nil {
			out = append(out, k)
		}
	}
	return out
}

// Retries sums the flush retries absorbed across all shard committers.
func (w *WAL) Retries() int64 {
	var total int64
	for k := range w.shards {
		if c := w.shards[k].c; c != nil {
			total += c.Retries()
		}
	}
	return total
}

// Heal re-opens and tail-repairs every wedged shard's journal in place
// and re-arms its committer (durable.Committer.Heal): records retained in
// the pending buffers are re-flushed, parked waiters resolve, and the
// shard accepts appends again. Healthy shards are untouched. The first
// failing shard aborts the pass (remaining wedged shards keep their
// sticky error, so Health still reports the system degraded).
func (w *WAL) Heal() error {
	for k := range w.shards {
		if c := w.shards[k].c; c != nil && c.Err() != nil {
			if err := c.Heal(); err != nil {
				return fmt.Errorf("sharded: heal shard %d: %w", k, err)
			}
		}
	}
	return nil
}

// Close drains the committers and closes every shard journal, returning
// the first error.
func (w *WAL) Close() error {
	var firstErr error
	for k := range w.shards {
		if c := w.shards[k].c; c != nil {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for k := range w.shards {
		if j := w.shards[k].j; j != nil {
			if err := j.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
