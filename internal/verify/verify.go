// Package verify implements the ADEPT2 buildtime correctness checks. The
// paper's premise is that dynamic changes are only safe because every
// schema — original, evolved, or ad-hoc modified — satisfies the same
// formal guarantees: structural soundness of the block structure, absence
// of deadlock-causing cycles (control + sync edges), and correct data flow
// (no activity can start with missing mandatory input data).
//
// Check runs all checks on a model.SchemaView, so plain schemas and
// biased-instance overlays are verified by identical code.
package verify

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"adept2/internal/graph"
	"adept2/internal/model"
)

// Code classifies an issue found by the verifier.
type Code string

const (
	// Errors (schema must be rejected).
	CodeNoStart       Code = "no-start"
	CodeNoEnd         Code = "no-end"
	CodeCardinality   Code = "edge-cardinality"
	CodeUnreachable   Code = "unreachable"
	CodeNoExit        Code = "no-path-to-end"
	CodeStructure     Code = "block-structure"
	CodeDeadlockCycle Code = "deadlock-cycle"
	CodeSyncExclusive Code = "sync-exclusive-branches"
	CodeSyncLoop      Code = "sync-crosses-loop"
	CodeSyncEndpoint  Code = "sync-endpoint"
	CodeMissingData   Code = "missing-data"
	CodeDecisionData  Code = "decision-data"

	// Warnings (schema is accepted but flagged).
	CodeSyncRedundant  Code = "sync-redundant"
	CodeLostUpdate     Code = "lost-update"
	CodeUnstableRead   Code = "unstable-read"
	CodeUnassignedRole Code = "unassigned-role"
)

// Severity distinguishes errors from warnings.
type Severity uint8

const (
	Error Severity = iota
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Issue is a single finding.
type Issue struct {
	Code     Code
	Severity Severity
	Message  string
	Nodes    []string
}

func (i Issue) String() string {
	if len(i.Nodes) == 0 {
		return fmt.Sprintf("%s [%s]: %s", i.Severity, i.Code, i.Message)
	}
	return fmt.Sprintf("%s [%s]: %s (nodes %s)", i.Severity, i.Code, i.Message, strings.Join(i.Nodes, ", "))
}

// Result aggregates all findings for one schema view.
type Result struct {
	Issues []Issue

	// Blocks is the block-structure analysis computed during
	// verification; nil if the structure was too broken to analyze.
	Blocks *graph.Info
}

// Errors returns the issues with severity Error.
func (r *Result) Errors() []Issue { return r.filter(Error) }

// Warnings returns the issues with severity Warning.
func (r *Result) Warnings() []Issue { return r.filter(Warning) }

func (r *Result) filter(s Severity) []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == s {
			out = append(out, i)
		}
	}
	return out
}

// OK reports whether the schema passed (warnings allowed).
func (r *Result) OK() bool { return len(r.Errors()) == 0 }

// Err returns nil when the schema passed, or an error summarizing every
// error-severity issue.
func (r *Result) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, is := range errs {
		msgs[i] = is.String()
	}
	return errors.New("verify: " + strings.Join(msgs, "; "))
}

func (r *Result) add(code Code, sev Severity, nodes []string, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{
		Code:     code,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
		Nodes:    nodes,
	})
}

// Check runs all buildtime checks and returns the aggregated result.
func Check(v model.SchemaView) *Result {
	r := &Result{}
	checkCardinalities(v, r)
	checkConnectivity(v, r)

	info, err := graph.Analyze(v)
	if err != nil {
		r.add(CodeStructure, Error, nil, "%v", err)
	} else {
		r.Blocks = info
	}

	checkDeadlockCycles(v, r)
	if r.Blocks != nil {
		checkSyncEdges(v, r.Blocks, r)
		checkDataFlow(v, r.Blocks, r)
	}
	checkRoles(v, r)
	return r
}

// Err is a convenience wrapper: it runs Check and returns Result.Err().
func Err(v model.SchemaView) error {
	return Check(v).Err()
}

// checkCardinalities validates per-node edge counts. In a block-structured
// schema every node type has fixed control-edge cardinalities.
func checkCardinalities(v model.SchemaView, r *Result) {
	if v.StartID() == "" {
		r.add(CodeNoStart, Error, nil, "schema has no start node")
	}
	if v.EndID() == "" {
		r.add(CodeNoEnd, Error, nil, "schema has no end node")
	}
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		inC := len(model.InControlEdges(v, id))
		outC := len(model.OutControlEdges(v, id))
		var inLoop, outLoop int
		for _, e := range v.InEdges(id) {
			if e.Type == model.EdgeLoop {
				inLoop++
			}
			if e.Type == model.EdgeSync && (n.Type == model.NodeStart || n.Type == model.NodeEnd) {
				r.add(CodeSyncEndpoint, Error, []string{id}, "sync edge attached to %s node", n.Type)
			}
		}
		for _, e := range v.OutEdges(id) {
			if e.Type == model.EdgeLoop {
				outLoop++
			}
			if e.Type == model.EdgeSync && (n.Type == model.NodeStart || n.Type == model.NodeEnd) {
				r.add(CodeSyncEndpoint, Error, []string{id}, "sync edge attached to %s node", n.Type)
			}
		}
		bad := func(format string, args ...any) {
			r.add(CodeCardinality, Error, []string{id}, format, args...)
		}
		switch n.Type {
		case model.NodeStart:
			if inC != 0 || outC != 1 {
				bad("start node must have 0 incoming and 1 outgoing control edge, has %d/%d", inC, outC)
			}
		case model.NodeEnd:
			if inC != 1 || outC != 0 {
				bad("end node must have 1 incoming and 0 outgoing control edges, has %d/%d", inC, outC)
			}
		case model.NodeActivity:
			if inC != 1 || outC != 1 {
				bad("activity must have exactly 1 incoming and 1 outgoing control edge, has %d/%d", inC, outC)
			}
		case model.NodeANDSplit, model.NodeXORSplit:
			if inC != 1 || outC < 2 {
				bad("split must have 1 incoming and >=2 outgoing control edges, has %d/%d", inC, outC)
			}
		case model.NodeANDJoin, model.NodeXORJoin:
			if inC < 2 || outC != 1 {
				bad("join must have >=2 incoming and 1 outgoing control edges, has %d/%d", inC, outC)
			}
		case model.NodeLoopStart:
			if inC != 1 || outC != 1 || inLoop != 1 {
				bad("loop start must have 1 incoming control, 1 outgoing control, 1 incoming loop edge, has %d/%d/%d", inC, outC, inLoop)
			}
		case model.NodeLoopEnd:
			if inC != 1 || outC != 1 || outLoop != 1 {
				bad("loop end must have 1 incoming control, 1 outgoing control, 1 outgoing loop edge, has %d/%d/%d", inC, outC, outLoop)
			}
		}
		if n.Type != model.NodeLoopStart && inLoop > 0 {
			bad("%s node must not receive loop edges", n.Type)
		}
		if n.Type != model.NodeLoopEnd && outLoop > 0 {
			bad("%s node must not source loop edges", n.Type)
		}
	}
}

// checkConnectivity validates that every node lies on a path from start to
// end over control edges.
func checkConnectivity(v model.SchemaView, r *Result) {
	start, end := v.StartID(), v.EndID()
	if start == "" || end == "" {
		return
	}
	fromStart := graph.Reachable(v, start, graph.Control, true)
	toEnd := graph.Reachable(v, end, graph.Control, false)
	var unreachable, dead []string
	for _, id := range v.NodeIDs() {
		if !fromStart[id] {
			unreachable = append(unreachable, id)
		}
		if !toEnd[id] {
			dead = append(dead, id)
		}
	}
	sort.Strings(unreachable)
	sort.Strings(dead)
	if len(unreachable) > 0 {
		r.add(CodeUnreachable, Error, unreachable, "nodes not reachable from start")
	}
	if len(dead) > 0 {
		r.add(CodeNoExit, Error, dead, "nodes cannot reach end")
	}
}

// checkDeadlockCycles is the paper's central structural criterion: the
// graph of control and sync edges (loop edges excluded) must be acyclic,
// otherwise instances block each other forever. This is the check that
// rejects instance I2 of Fig. 1 after the type change.
func checkDeadlockCycles(v model.SchemaView, r *Result) {
	if _, err := graph.TopoOrder(v, graph.ControlAndSync); err != nil {
		r.add(CodeDeadlockCycle, Error, nil, "deadlock-causing cycle: %v", err)
	}
}

// checkSyncEdges validates sync-edge placement: sync edges order
// activities of *parallel* branches. A sync edge between exclusive (XOR)
// branches can never fire consistently; one crossing a loop boundary has
// ambiguous per-iteration semantics; one within a single branch is
// redundant (the control flow already orders the nodes).
func checkSyncEdges(v model.SchemaView, info *graph.Info, r *Result) {
	for _, e := range v.Edges() {
		if e.Type != model.EdgeSync {
			continue
		}
		if crossesLoopBoundary(info, e.From, e.To) {
			r.add(CodeSyncLoop, Error, []string{e.From, e.To}, "sync edge %s crosses a loop boundary", e)
			continue
		}
		if blk, _, _, ok := info.Divergence(e.From, e.To); ok {
			if blk.Kind == model.NodeXORSplit {
				r.add(CodeSyncExclusive, Error, []string{e.From, e.To}, "sync edge %s connects exclusive branches of xor block %q..%q", e, blk.Split, blk.Join)
			}
			continue
		}
		// No divergence: the nodes are ordered by control flow already.
		if graph.HasPath(v, e.From, e.To, graph.Control) {
			r.add(CodeSyncRedundant, Warning, []string{e.From, e.To}, "sync edge %s duplicates existing control flow order", e)
		}
		// The opposite direction creates a cycle, reported by the
		// deadlock check.
	}
}

// crossesLoopBoundary reports whether the innermost loop contexts of the
// two nodes differ.
func crossesLoopBoundary(info *graph.Info, a, b string) bool {
	return innermostLoop(info, a) != innermostLoop(info, b)
}

func innermostLoop(info *graph.Info, id string) *graph.Block {
	var loop *graph.Block
	for _, ref := range info.Path(id) {
		if ref.Block.Kind == model.NodeLoopStart {
			loop = ref.Block
		}
	}
	return loop
}

// checkRoles warns about manual activities without staff assignment.
func checkRoles(v model.SchemaView, r *Result) {
	for _, id := range v.NodeIDs() {
		n, _ := v.Node(id)
		if n.Type == model.NodeActivity && !n.Auto && n.Role == "" {
			r.add(CodeUnassignedRole, Warning, []string{id}, "manual activity %q has no staff assignment", id)
		}
	}
}
