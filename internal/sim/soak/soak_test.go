package soak

import (
	"context"
	"reflect"
	"testing"
)

// shortConfig is the CI-sized soak: the full adversarial mix — random
// failures, deadline storms, evolutions, ad-hoc changes, disk-fault
// windows, crashes, and clean reopens — shrunk to finish in about a
// second even under -race.
func shortConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Instances = 8
	cfg.Steps = 800
	cfg.EvolveEvery = 250
	cfg.AdHocEvery = 60
	cfg.ReopenEvery = 270
	cfg.CrashEvery = 330
	return cfg
}

// TestSoakShortAdversarialMix is the deterministic-seed soak CI runs
// under -race: every adversarial path must actually fire, and Run only
// returns a Result when every invariant held throughout (no lost work
// items, no wedged instances, no acknowledged-write loss, exact state
// equality across every reopen, full drain to completion).
func TestSoakShortAdversarialMix(t *testing.T) {
	res, err := Run(context.Background(), shortConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %s", res)
	if res.Finished == 0 || res.Failures == 0 || res.Timeouts == 0 || res.Retries == 0 {
		t.Fatalf("exception paths not exercised: %s", res)
	}
	if res.FaultWindows == 0 || res.Heals == 0 || res.Crashes == 0 || res.Reopens == 0 {
		t.Fatalf("durability paths not exercised: %s", res)
	}
	if res.Evolutions == 0 || res.AdHocs == 0 {
		t.Fatalf("change paths not exercised: %s", res)
	}
}

// TestSoakDeterministicPerSeed: the soak is driven by a seeded PRNG and
// a logical clock, so two runs of the same config must exercise exactly
// the same scenario — every counter identical.
func TestSoakDeterministicPerSeed(t *testing.T) {
	first, err := Run(context.Background(), shortConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), shortConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed diverged:\n  %s\n  %s", first, second)
	}
}

// TestSoakFullMix runs the default-sized scenario (the same one
// `adeptctl sim` runs); skipped under -short.
func TestSoakFullMix(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak skipped in -short mode")
	}
	res, err := Run(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %s", res)
	if res.Skips == 0 || res.Suspends == 0 {
		t.Fatalf("compensation variants not exercised: %s", res)
	}
	if res.WedgedSubmits == 0 {
		t.Fatalf("degraded-mode paths not exercised: %s", res)
	}
}
