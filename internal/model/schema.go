package model

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Schema is a buildtime process schema: the template from which process
// instances are created. It implements SchemaView and MutableView.
//
// A Schema is not safe for concurrent mutation; deployed schemas are
// treated as immutable by convention (the evolution manager clones before
// changing), so concurrent reads are safe.
type Schema struct {
	id       string
	typeName string
	version  int

	nodes     map[string]*Node
	nodeOrder []string

	edges    []*Edge
	edgeSet  map[EdgeKey]*Edge
	outEdges map[string][]*Edge
	inEdges  map[string][]*Edge

	data      map[string]*DataElement
	dataOrder []string

	dataEdges   []*DataEdge
	dataEdgeSet map[DataEdgeKey]*DataEdge
	edgesByAct  map[string][]*DataEdge

	startID string
	endID   string

	// topo caches the topology index. Deployed schemas are immutable by
	// convention but read from many goroutines (e.g. all instances of a
	// version during migration), so the cache slot is atomic: concurrent
	// readers may race to build the index, which is idempotent, and every
	// structural mutation clears the slot. The slot lives behind a plain
	// pointer so Schema values stay assignable (UnmarshalJSON replaces the
	// whole struct).
	topo *atomic.Pointer[Topology]
}

// NewSchema creates an empty schema for the given process type and version.
func NewSchema(id, typeName string, version int) *Schema {
	return &Schema{
		id:          id,
		typeName:    typeName,
		version:     version,
		nodes:       make(map[string]*Node),
		edgeSet:     make(map[EdgeKey]*Edge),
		outEdges:    make(map[string][]*Edge),
		inEdges:     make(map[string][]*Edge),
		data:        make(map[string]*DataElement),
		dataEdgeSet: make(map[DataEdgeKey]*DataEdge),
		edgesByAct:  make(map[string][]*DataEdge),
		topo:        new(atomic.Pointer[Topology]),
	}
}

// SchemaID implements SchemaView.
func (s *Schema) SchemaID() string { return s.id }

// TypeName implements SchemaView.
func (s *Schema) TypeName() string { return s.typeName }

// Version implements SchemaView.
func (s *Schema) Version() int { return s.version }

// SetVersion stamps the schema with a new version number (used by the
// evolution manager when deriving a successor version).
func (s *Schema) SetVersion(v int) { s.version = v }

// SetSchemaID renames the schema (used when cloning into a new version).
func (s *Schema) SetSchemaID(id string) { s.id = id }

// NodeIDs implements SchemaView.
func (s *Schema) NodeIDs() []string { return s.nodeOrder }

// Node implements SchemaView.
func (s *Schema) Node(id string) (*Node, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// Nodes returns all nodes in insertion order.
func (s *Schema) Nodes() []*Node {
	ns := make([]*Node, 0, len(s.nodeOrder))
	for _, id := range s.nodeOrder {
		ns = append(ns, s.nodes[id])
	}
	return ns
}

// NumNodes returns the node count.
func (s *Schema) NumNodes() int { return len(s.nodes) }

// Edges implements SchemaView.
func (s *Schema) Edges() []*Edge { return s.edges }

// OutEdges implements SchemaView.
func (s *Schema) OutEdges(id string) []*Edge { return s.outEdges[id] }

// InEdges implements SchemaView.
func (s *Schema) InEdges(id string) []*Edge { return s.inEdges[id] }

// HasEdge implements SchemaView.
func (s *Schema) HasEdge(k EdgeKey) bool {
	_, ok := s.edgeSet[k]
	return ok
}

// Topology implements SchemaView: it returns the cached topology index,
// building it on first use after a structural mutation.
func (s *Schema) Topology() *Topology {
	if t := s.topo.Load(); t != nil {
		return t
	}
	t := BuildTopology(s)
	s.topo.Store(t)
	return t
}

// invalidateTopology drops the cached topology index; every structural
// mutation calls it.
func (s *Schema) invalidateTopology() { s.topo.Store(nil) }

// StartID implements SchemaView.
func (s *Schema) StartID() string { return s.startID }

// EndID implements SchemaView.
func (s *Schema) EndID() string { return s.endID }

// DataElements implements SchemaView.
func (s *Schema) DataElements() []*DataElement {
	ds := make([]*DataElement, 0, len(s.dataOrder))
	for _, id := range s.dataOrder {
		ds = append(ds, s.data[id])
	}
	return ds
}

// DataElement implements SchemaView.
func (s *Schema) DataElement(id string) (*DataElement, bool) {
	d, ok := s.data[id]
	return d, ok
}

// DataEdges implements SchemaView.
func (s *Schema) DataEdges() []*DataEdge { return s.dataEdges }

// DataEdgesOf implements SchemaView.
func (s *Schema) DataEdgesOf(activity string) []*DataEdge {
	return s.edgesByAct[activity]
}

// AddNode inserts a node. The node ID must be unique within the schema.
func (s *Schema) AddNode(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("model: add node: empty node ID")
	}
	if _, dup := s.nodes[n.ID]; dup {
		return fmt.Errorf("model: add node %q: duplicate ID", n.ID)
	}
	switch n.Type {
	case NodeStart:
		if s.startID != "" {
			return fmt.Errorf("model: add node %q: schema already has start node %q", n.ID, s.startID)
		}
		s.startID = n.ID
	case NodeEnd:
		if s.endID != "" {
			return fmt.Errorf("model: add node %q: schema already has end node %q", n.ID, s.endID)
		}
		s.endID = n.ID
	}
	s.nodes[n.ID] = n
	s.nodeOrder = append(s.nodeOrder, n.ID)
	s.invalidateTopology()
	return nil
}

// ReplaceNode swaps the attributes of an existing node. The node type must
// not change (that would alter the block structure behind the verifier's
// back).
func (s *Schema) ReplaceNode(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("model: replace node: empty node ID")
	}
	old, ok := s.nodes[n.ID]
	if !ok {
		return fmt.Errorf("model: replace node %q: not found", n.ID)
	}
	if old.Type != n.Type {
		return fmt.Errorf("model: replace node %q: type change %s -> %s not allowed", n.ID, old.Type, n.Type)
	}
	s.nodes[n.ID] = n
	s.invalidateTopology()
	return nil
}

// RemoveNode deletes a node. All incident edges and data edges must have
// been removed first; this forces change operations to manage rewiring
// explicitly.
func (s *Schema) RemoveNode(id string) error {
	if _, ok := s.nodes[id]; !ok {
		return fmt.Errorf("model: remove node %q: not found", id)
	}
	if len(s.outEdges[id]) > 0 || len(s.inEdges[id]) > 0 {
		return fmt.Errorf("model: remove node %q: incident edges remain", id)
	}
	if len(s.edgesByAct[id]) > 0 {
		return fmt.Errorf("model: remove node %q: data edges remain", id)
	}
	if s.startID == id {
		s.startID = ""
	}
	if s.endID == id {
		s.endID = ""
	}
	delete(s.nodes, id)
	s.nodeOrder = removeString(s.nodeOrder, id)
	delete(s.outEdges, id)
	delete(s.inEdges, id)
	delete(s.edgesByAct, id)
	s.invalidateTopology()
	return nil
}

// AddEdge inserts an edge. Both endpoints must exist, self-edges are
// rejected, and at most one edge per (from, to, type) key may exist.
func (s *Schema) AddEdge(e *Edge) error {
	if e == nil {
		return fmt.Errorf("model: add edge: nil edge")
	}
	if e.From == e.To {
		return fmt.Errorf("model: add edge %s: self edge", e)
	}
	if _, ok := s.nodes[e.From]; !ok {
		return fmt.Errorf("model: add edge %s: unknown source node %q", e, e.From)
	}
	if _, ok := s.nodes[e.To]; !ok {
		return fmt.Errorf("model: add edge %s: unknown target node %q", e, e.To)
	}
	k := e.Key()
	if _, dup := s.edgeSet[k]; dup {
		return fmt.Errorf("model: add edge %s: duplicate edge", e)
	}
	s.edges = append(s.edges, e)
	s.edgeSet[k] = e
	s.outEdges[e.From] = append(s.outEdges[e.From], e)
	s.inEdges[e.To] = append(s.inEdges[e.To], e)
	s.invalidateTopology()
	return nil
}

// RemoveEdge deletes the edge identified by the key.
func (s *Schema) RemoveEdge(k EdgeKey) error {
	e, ok := s.edgeSet[k]
	if !ok {
		return fmt.Errorf("model: remove edge %s: not found", k)
	}
	delete(s.edgeSet, k)
	s.edges = removeEdge(s.edges, e)
	s.outEdges[e.From] = removeEdge(s.outEdges[e.From], e)
	s.inEdges[e.To] = removeEdge(s.inEdges[e.To], e)
	s.invalidateTopology()
	return nil
}

// AddDataElement inserts a data element with a schema-unique ID.
func (s *Schema) AddDataElement(d *DataElement) error {
	if d == nil || d.ID == "" {
		return fmt.Errorf("model: add data element: empty ID")
	}
	if _, dup := s.data[d.ID]; dup {
		return fmt.Errorf("model: add data element %q: duplicate ID", d.ID)
	}
	s.data[d.ID] = d
	s.dataOrder = append(s.dataOrder, d.ID)
	return nil
}

// RemoveDataElement deletes a data element. All data edges referencing it
// must have been removed first.
func (s *Schema) RemoveDataElement(id string) error {
	if _, ok := s.data[id]; !ok {
		return fmt.Errorf("model: remove data element %q: not found", id)
	}
	for _, de := range s.dataEdges {
		if de.Element == id {
			return fmt.Errorf("model: remove data element %q: data edge %s remains", id, de)
		}
	}
	delete(s.data, id)
	s.dataOrder = removeString(s.dataOrder, id)
	return nil
}

// AddDataEdge inserts a data edge. Activity and element must exist.
func (s *Schema) AddDataEdge(d *DataEdge) error {
	if d == nil {
		return fmt.Errorf("model: add data edge: nil edge")
	}
	if d.Parameter == "" {
		return fmt.Errorf("model: add data edge: empty parameter name")
	}
	if _, ok := s.nodes[d.Activity]; !ok {
		return fmt.Errorf("model: add data edge %s: unknown activity %q", d, d.Activity)
	}
	if _, ok := s.data[d.Element]; !ok {
		return fmt.Errorf("model: add data edge %s: unknown data element %q", d, d.Element)
	}
	k := d.Key()
	if _, dup := s.dataEdgeSet[k]; dup {
		return fmt.Errorf("model: add data edge %s: duplicate edge", d)
	}
	s.dataEdges = append(s.dataEdges, d)
	s.dataEdgeSet[k] = d
	s.edgesByAct[d.Activity] = append(s.edgesByAct[d.Activity], d)
	return nil
}

// RemoveDataEdge deletes the data edge identified by the key.
func (s *Schema) RemoveDataEdge(k DataEdgeKey) error {
	d, ok := s.dataEdgeSet[k]
	if !ok {
		return fmt.Errorf("model: remove data edge %v: not found", k)
	}
	delete(s.dataEdgeSet, k)
	s.dataEdges = removeDataEdge(s.dataEdges, d)
	s.edgesByAct[d.Activity] = removeDataEdge(s.edgesByAct[d.Activity], d)
	return nil
}

// Clone returns a deep copy of the schema. Node, edge, and data structs are
// copied, so mutating the clone never affects the original.
func (s *Schema) Clone() *Schema {
	c := NewSchema(s.id, s.typeName, s.version)
	for _, id := range s.nodeOrder {
		if err := c.AddNode(s.nodes[id].Clone()); err != nil {
			panic(fmt.Sprintf("model: clone node: %v", err))
		}
	}
	for _, e := range s.edges {
		if err := c.AddEdge(e.Clone()); err != nil {
			panic(fmt.Sprintf("model: clone edge: %v", err))
		}
	}
	for _, id := range s.dataOrder {
		if err := c.AddDataElement(s.data[id].Clone()); err != nil {
			panic(fmt.Sprintf("model: clone data element: %v", err))
		}
	}
	for _, de := range s.dataEdges {
		if err := c.AddDataEdge(de.Clone()); err != nil {
			panic(fmt.Sprintf("model: clone data edge: %v", err))
		}
	}
	return c
}

// ApproxBytes estimates the in-memory footprint of the schema. It is used
// by the Fig. 2 storage experiments to compare representations; the
// estimate counts struct sizes and string payloads, not allocator overhead.
func (s *Schema) ApproxBytes() int {
	total := 0
	for _, n := range s.nodes {
		total += nodeApproxBytes(n)
	}
	for _, e := range s.edges {
		total += edgeApproxBytes(e)
	}
	for _, d := range s.data {
		total += 16 + len(d.ID) + len(d.Name)
	}
	for _, de := range s.dataEdges {
		total += 24 + len(de.Activity) + len(de.Element) + len(de.Parameter)
	}
	// Index structures: order slices and adjacency map headers.
	total += 16 * (len(s.nodeOrder) + len(s.dataOrder))
	total += 48 * len(s.nodes) // out/in adjacency slots
	return total
}

func nodeApproxBytes(n *Node) int {
	return 48 + len(n.ID) + len(n.Name) + len(n.Role) + len(n.Template) + len(n.DecisionElement)
}

func edgeApproxBytes(e *Edge) int {
	return 24 + len(e.From) + len(e.To)
}

// Equal reports whether two schemas have identical structure (nodes,
// edges, data elements, data edges), ignoring ID/type/version metadata.
// It is used by tests to validate that the overlay materialization matches
// a directly-changed schema copy.
func Equal(a, b SchemaView) bool {
	an, bn := append([]string(nil), a.NodeIDs()...), append([]string(nil), b.NodeIDs()...)
	if len(an) != len(bn) {
		return false
	}
	sort.Strings(an)
	sort.Strings(bn)
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
		na, _ := a.Node(an[i])
		nb, _ := b.Node(bn[i])
		if *na != *nb {
			return false
		}
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return false
	}
	for _, e := range ae {
		if !b.HasEdge(e.Key()) {
			return false
		}
	}
	ad, bd := a.DataElements(), b.DataElements()
	if len(ad) != len(bd) {
		return false
	}
	for _, d := range ad {
		od, ok := b.DataElement(d.ID)
		if !ok || *od != *d {
			return false
		}
	}
	ade, bde := a.DataEdges(), b.DataEdges()
	if len(ade) != len(bde) {
		return false
	}
	keys := make(map[DataEdgeKey]bool, len(bde))
	for _, de := range bde {
		keys[de.Key()] = true
	}
	for _, de := range ade {
		if !keys[de.Key()] {
			return false
		}
	}
	return true
}

func removeString(ss []string, s string) []string {
	for i, v := range ss {
		if v == s {
			return append(ss[:i], ss[i+1:]...)
		}
	}
	return ss
}

func removeEdge(es []*Edge, e *Edge) []*Edge {
	for i, v := range es {
		if v == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

func removeDataEdge(ds []*DataEdge, d *DataEdge) []*DataEdge {
	for i, v := range ds {
		if v == d {
			return append(ds[:i], ds[i+1:]...)
		}
	}
	return ds
}

var (
	_ SchemaView  = (*Schema)(nil)
	_ MutableView = (*Schema)(nil)
)
