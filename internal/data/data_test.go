package data

import (
	"encoding/json"
	"testing"

	"adept2/internal/model"
)

func TestStoreWriteReadVersions(t *testing.T) {
	s := NewStore()
	if _, ok := s.Read("d"); ok {
		t.Fatal("read of unwritten element must fail")
	}
	s.Write("d", int64(1), "a", 2)
	s.Write("d", int64(2), "b", 5)
	v, ok := s.Read("d")
	if !ok || v != int64(2) {
		t.Fatalf("Read = %v, %v", v, ok)
	}
	if !s.Has("d") || s.Has("x") {
		t.Fatal("Has broken")
	}
	if got := len(s.Versions("d")); got != 2 {
		t.Fatalf("versions = %d", got)
	}
	if got := s.Elements(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("elements = %v", got)
	}
}

func TestStoreReadAt(t *testing.T) {
	s := NewStore()
	s.Write("d", int64(1), "a", 2)
	s.Write("d", int64(2), "b", 5)
	if _, ok := s.ReadAt("d", 2); ok {
		t.Fatal("ReadAt before first write must fail")
	}
	if v, ok := s.ReadAt("d", 3); !ok || v != int64(1) {
		t.Fatalf("ReadAt(3) = %v, %v", v, ok)
	}
	if v, ok := s.ReadAt("d", 100); !ok || v != int64(2) {
		t.Fatalf("ReadAt(100) = %v, %v", v, ok)
	}
}

func TestStoreDropWritesBy(t *testing.T) {
	s := NewStore()
	s.Write("d", int64(1), "a", 2)
	s.Write("d", int64(2), "b", 5)
	s.Write("e", "x", "a", 7)
	s.DropWritesBy("a")
	if v, _ := s.Read("d"); v != int64(2) {
		t.Fatal("b's write should survive")
	}
	if s.Has("e") {
		t.Fatal("element with only a's writes should vanish")
	}
}

func TestStoreCloneAndJSON(t *testing.T) {
	s := NewStore()
	s.Write("d", "hello", "a", 1)
	c := s.Clone()
	c.Write("d", "bye", "b", 2)
	if v, _ := s.Read("d"); v != "hello" {
		t.Fatal("clone leaked")
	}
	if s.ApproxBytes() == 0 {
		t.Fatal("ApproxBytes zero")
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Store
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Read("d"); !ok || v != "hello" {
		t.Fatalf("round trip value = %v, %v", v, ok)
	}
	if err := json.Unmarshal([]byte("["), &back); err == nil {
		t.Fatal("expected error")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		val  any
		tp   model.DataType
		want any
		ok   bool
	}{
		{"x", model.TypeString, "x", true},
		{1, model.TypeString, nil, false},
		{true, model.TypeBool, true, true},
		{"t", model.TypeBool, nil, false},
		{int64(3), model.TypeInt, int64(3), true},
		{3, model.TypeInt, int64(3), true},
		{3.0, model.TypeInt, int64(3), true},
		{3.5, model.TypeInt, nil, false},
		{3.5, model.TypeFloat, 3.5, true},
		{3, model.TypeFloat, 3.0, true},
		{int64(4), model.TypeFloat, 4.0, true},
		{"x", model.TypeFloat, nil, false},
	}
	for _, c := range cases {
		got, err := Coerce(c.val, c.tp)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Coerce(%v, %s) = %v, %v; want %v", c.val, c.tp, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Coerce(%v, %s) should fail", c.val, c.tp)
		}
	}
}

func TestAsIntAsBool(t *testing.T) {
	if v, ok := AsInt(int64(7)); !ok || v != 7 {
		t.Fatal("AsInt int64")
	}
	if v, ok := AsInt(7); !ok || v != 7 {
		t.Fatal("AsInt int")
	}
	if v, ok := AsInt(7.0); !ok || v != 7 {
		t.Fatal("AsInt float")
	}
	if _, ok := AsInt(7.5); ok {
		t.Fatal("AsInt fractional")
	}
	if _, ok := AsInt("7"); ok {
		t.Fatal("AsInt string")
	}
	if v, ok := AsBool(true); !ok || !v {
		t.Fatal("AsBool")
	}
	if _, ok := AsBool(1); ok {
		t.Fatal("AsBool non-bool")
	}
}
