// Command adeptctl is the interactive face of the ADEPT2 reproduction: it
// replays the paper's demo (Section 3) on the terminal — schema rendering,
// worklists, an ad-hoc instance change, a schema evolution with migration
// report — and can render schemas and run quick migration drills.
//
//	adeptctl demo                 # the paper's Fig. 1 / Fig. 3 walkthrough
//	adeptctl schema [-version N]  # render the online-order schema
//	adeptctl drill -n 5000        # migrate a synthetic population
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/monitor"
	"adept2/internal/sim"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo()
	case "schema":
		schemaCmd(os.Args[2:])
	case "drill":
		drill(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adeptctl demo | schema [-version N] | drill [-n N] [-mode fast|replay]")
	os.Exit(2)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func demo() {
	e := engine.New(sim.Org())
	must(e.Deploy(sim.OnlineOrder()))

	fmt.Println("── deployed process type (version V1) ──")
	fmt.Print(monitor.RenderSchema(sim.OnlineOrder()))

	i1, err := e.CreateInstance("online_order", 0)
	must(err)
	must(sim.AdvanceOnlineOrderToI1(e, i1))

	i2, err := e.CreateInstance("online_order", 0)
	must(err)
	must(e.CompleteActivity(i2.ID(), "get_order", "ann", map[string]any{"out": "order-2"}))
	must(change.ApplyAdHoc(i2, sim.OnlineOrderBiasI2()...))

	i3, err := e.CreateInstance("online_order", 0)
	must(err)
	must(sim.AdvanceOnlineOrderToI3(e, i3))

	fmt.Println("\n── worklists before the type change ──")
	fmt.Print(monitor.SummarizeWorklists(e))

	fmt.Println("\n── committing type change ΔT (send_questions + sync edge) ──")
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{})
	must(err)
	fmt.Print(monitor.FormatReport(report))

	fmt.Println("\n── instance states after migration ──")
	for _, inst := range []*engine.Instance{i1, i2, i3} {
		fmt.Print(monitor.RenderInstance(inst))
		fmt.Println()
	}
}

func schemaCmd(args []string) {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	version := fs.Int("version", 1, "schema version to render (1 or 2)")
	must(fs.Parse(args))
	s := sim.OnlineOrder()
	if *version >= 2 {
		for _, op := range sim.OnlineOrderTypeChange() {
			must(op.ApplyTo(s))
		}
		s.SetVersion(2)
		s.SetSchemaID("online_order@v2")
	}
	fmt.Print(monitor.RenderSchema(s))
}

func drill(args []string) {
	fs := flag.NewFlagSet("drill", flag.ExitOnError)
	n := fs.Int("n", 5000, "population size")
	mode := fs.String("mode", "fast", "compliance check: fast or replay")
	seed := fs.Int64("seed", 1, "workload seed")
	must(fs.Parse(args))

	e := engine.New(sim.Org())
	must(e.Deploy(sim.OnlineOrder()))
	rng := rand.New(rand.NewSource(*seed))
	_, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(*n))
	must(err)

	opts := evolution.Options{}
	if *mode == "replay" {
		opts.Mode = evolution.ReplayCheck
	}
	mgr := evolution.NewManager(e)
	report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), opts)
	must(err)

	fmt.Printf("migrated %d instances in %s (%.1f µs/instance, %s check)\n",
		report.Total(), report.Elapsed,
		float64(report.Elapsed.Microseconds())/float64(report.Total()), opts.Mode)
	for _, o := range evolution.Outcomes() {
		if c := report.Count(o); c > 0 {
			fmt.Printf("  %-20s %d\n", o.String()+":", c)
		}
	}
}
