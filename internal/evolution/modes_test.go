package evolution_test

import (
	"math/rand"
	"testing"

	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/sim"
)

// TestCheckModesClassifyIdentically is the migration-level counterpart of
// the op-level fast≡replay property: two identical populations, one
// migrated with the fast conditions and one with full history replay,
// must receive exactly the same per-instance classification.
func TestCheckModesClassifyIdentically(t *testing.T) {
	const n = 400
	build := func() *engine.Engine {
		e := engine.New(sim.Org())
		if err := e.Deploy(sim.OnlineOrder()); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n)); err != nil {
			t.Fatal(err)
		}
		return e
	}

	fastEngine := build()
	replayEngine := build()

	fastReport, err := evolution.NewManager(fastEngine).Evolve(
		"online_order", sim.OnlineOrderTypeChange(), evolution.Options{Mode: evolution.FastCheck})
	if err != nil {
		t.Fatal(err)
	}
	replayReport, err := evolution.NewManager(replayEngine).Evolve(
		"online_order", sim.OnlineOrderTypeChange(), evolution.Options{Mode: evolution.ReplayCheck})
	if err != nil {
		t.Fatal(err)
	}

	if fastReport.Total() != replayReport.Total() {
		t.Fatalf("population mismatch: %d vs %d", fastReport.Total(), replayReport.Total())
	}
	replayByInst := make(map[string]evolution.Outcome, replayReport.Total())
	for _, r := range replayReport.Results {
		replayByInst[r.Instance] = r.Outcome
	}
	var mismatches int
	for _, r := range fastReport.Results {
		if got := replayByInst[r.Instance]; got != r.Outcome {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("instance %s: fast=%s replay=%s (%s)", r.Instance, r.Outcome, got, r.Detail)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d classifications disagree", mismatches, fastReport.Total())
	}
	// Both classified a non-trivial mix.
	if fastReport.Count(evolution.Migrated) == 0 ||
		fastReport.Count(evolution.StateConflict) == 0 ||
		fastReport.Count(evolution.StructuralConflict) == 0 {
		t.Fatalf("degenerate population: %s", summarize(fastReport))
	}
	// And the migrated instances' markings agree pairwise.
	for _, r := range fastReport.Results {
		if r.Outcome != evolution.Migrated {
			continue
		}
		fi, _ := fastEngine.Instance(r.Instance)
		ri, _ := replayEngine.Instance(r.Instance)
		fm, rm := fi.MarkingSnapshot(), ri.MarkingSnapshot()
		for _, id := range fi.View().NodeIDs() {
			if fm.Node(id) != rm.Node(id) {
				t.Fatalf("instance %s node %s: fast-mode state %s, replay-mode state %s",
					r.Instance, id, fm.Node(id), rm.Node(id))
			}
		}
	}
}
