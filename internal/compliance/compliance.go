// Package compliance implements the ADEPT2 compliance criterion for
// dynamic process changes: a running instance may adopt a changed schema
// iff its loop-reduced execution history could have been produced on that
// schema (relaxed trace equivalence — entries for newly inserted automatic
// nodes may be interleaved, entries of deleted nodes must not exist).
//
// Replay is the ground-truth checker: it re-executes the reduced history
// on the target schema view event by event. The event log is interned
// against the target topology once up front, so the per-event loop runs on
// dense node indices — array-indexed marking reads and writes, no
// string-keyed map traffic. The fast path — the per-operation conditions
// of Fig. 1, implemented on each operation in internal/change — answers
// the same question in O(affected nodes) using the instance's marking and
// execution index; CheckFast evaluates it. Property-based tests assert
// that both paths agree.
package compliance

import (
	"fmt"

	"adept2/internal/bitset"
	"adept2/internal/change"
	"adept2/internal/data"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
)

// Error reports why a history is not replayable on a schema view.
type Error struct {
	// Event is the first history event that could not be reproduced (nil
	// when the failure is not event-specific).
	Event *history.Event
	// Reason explains the failure.
	Reason string
}

func (e *Error) Error() string {
	if e.Event != nil {
		return fmt.Sprintf("compliance: event %s: %s", e.Event, e.Reason)
	}
	return "compliance: " + e.Reason
}

// ReplayResult carries the state reconstructed by a successful replay.
type ReplayResult struct {
	// Marking is the instance marking after replaying the full history on
	// the target view — i.e. the adapted state a migrated instance
	// receives.
	Marking *state.Marking
	// Store holds the data versions reconstructed from the history.
	Store *data.Store
	// VirtualFirings counts how many newly inserted automatic nodes had to
	// be interleaved (a measure of how much the change affected the
	// already-passed region).
	VirtualFirings int
}

// Replay checks whether the (reduced) history is reproducible on the
// target view and reconstructs the resulting state. info must be the block
// analysis of the target view.
//
// Newly inserted automatic nodes (no event in the history, auto-executable
// per model.Node.CanAutoExecute) are fired virtually whenever a recorded
// event is blocked on them — the "relaxed" part of the trace equivalence.
// Newly inserted manual activities are never fired virtually: if a
// recorded event depends on one, the instance is not compliant.
func Replay(view model.SchemaView, info *graph.Info, events []*history.Event) (*ReplayResult, error) {
	var r Replayer
	return r.Replay(view, info, events)
}

// Replayer holds the reusable scratch buffers of the replay checker: the
// interned event log, the in-history bitset, the evaluator's activation
// buffer, and the virtual-firing candidate list. The zero value is ready
// to use; reusing one Replayer across many replays (e.g. the per-worker
// loop of a population migration) avoids reallocating the scratch per
// instance. A Replayer is not safe for concurrent use.
type Replayer struct {
	evIdx      []model.NodeIdx
	inHistory  bitset.Set
	evalBuf    []model.NodeIdx
	candidates []model.NodeIdx
}

// replayRun carries the per-replay state shared across events.
type replayRun struct {
	view  model.SchemaView
	topo  *model.Topology
	m     *state.Marking
	store *data.Store
	res   *ReplayResult
	sc    *Replayer
}

// evaluate runs one incremental evaluation pass through the scratch
// activation buffer.
func (r *replayRun) evaluate(seq int) []model.NodeIdx {
	r.sc.evalBuf = state.EvaluateInto(r.view, r.m, seq, r.sc.evalBuf)
	return r.sc.evalBuf
}

// Replay is the scratch-reusing form of the package-level Replay.
func (sc *Replayer) Replay(view model.SchemaView, info *graph.Info, events []*history.Event) (*ReplayResult, error) {
	topo := view.Topology()
	m := state.NewMarking(view)
	m.Init(view)
	store := data.NewStore()

	// Intern the event log once: the per-event loop below never touches a
	// string-keyed map. Missing nodes are detected here but reported at
	// their event's replay position, preserving error ordering.
	sc.evIdx = sc.evIdx[:0]
	if words := bitset.Words(topo.NumNodes()); cap(sc.inHistory) < words {
		sc.inHistory = make(bitset.Set, words)
	} else {
		sc.inHistory = sc.inHistory[:words]
		sc.inHistory.Reset()
	}
	sc.candidates = sc.candidates[:0]
	for _, e := range events {
		idx, ok := topo.Idx(e.Node)
		if !ok {
			idx = model.InvalidNode
		} else {
			sc.inHistory.Set(int(idx))
		}
		sc.evIdx = append(sc.evIdx, idx)
	}

	res := &ReplayResult{Marking: m, Store: store}
	// One shared evaluation scratch serves all replayed events; the
	// virtual-firing candidates are maintained from its activation output
	// instead of rescanning the whole schema per blocked event.
	r := replayRun{view: view, topo: topo, m: m, store: store, res: res, sc: sc}
	r.observe(r.evaluate(0))

	for i, e := range events {
		ni := sc.evIdx[i]
		if ni == model.InvalidNode {
			return nil, &Error{Event: e, Reason: "node no longer exists in the target schema"}
		}
		nt := topo.At(ni)
		n := nt.Node
		switch e.Kind {
		case history.Started:
			for m.NodeAt(ni) != state.Activated {
				if !r.fireVirtual(e.Seq) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s and cannot become activated", m.NodeAt(ni))}
				}
				r.observe(r.evaluate(e.Seq))
			}
			// Mandatory inputs must have been available.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access == model.Read && de.Mandatory && !store.Has(de.Element) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("mandatory input element %q had no value", de.Element)}
				}
			}
			if err := m.StartAt(ni); err != nil {
				return nil, &Error{Event: e, Reason: err.Error()}
			}
		case history.Completed:
			if m.NodeAt(ni) != state.Running {
				return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s, not running", m.NodeAt(ni))}
			}
			// The recorded routing decision must still be possible.
			if n.Type == model.NodeXORSplit {
				found := false
				for _, edge := range nt.OutControl {
					if edge.Code == e.Decision {
						found = true
						break
					}
				}
				if !found {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("selected branch (code %d) no longer exists", e.Decision)}
				}
			}
			// Outputs must exactly cover the write edges of the target
			// schema.
			for _, de := range view.DataEdgesOf(e.Node) {
				if de.Access != model.Write {
					continue
				}
				if _, ok := e.Writes[de.Element]; !ok {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("completion wrote no value for element %q required by the target schema", de.Element)}
				}
			}
			for elem, val := range e.Writes {
				if !writesElement(view, e.Node, elem) {
					return nil, &Error{Event: e, Reason: fmt.Sprintf("recorded write of element %q has no data edge in the target schema", elem)}
				}
				store.Write(elem, val, e.Node, e.Seq)
			}
			if n.Type == model.NodeLoopEnd && e.Again {
				blk, ok := info.ByJoin(e.Node)
				if !ok {
					return nil, &Error{Event: e, Reason: "loop end has no loop block in the target schema"}
				}
				state.ResetLoop(view, m, blk.Region())
			} else {
				if err := m.CompleteAt(ni, e.Decision); err != nil {
					return nil, &Error{Event: e, Reason: err.Error()}
				}
			}
		case history.Failed:
			// Reduce purges failed attempts, so reduced histories never
			// reach this case; raw replays undo the attempt like the
			// live engine did: the node reverts to activated.
			if m.NodeAt(ni) != state.Running {
				return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s, not running", m.NodeAt(ni))}
			}
			m.SetNodeAt(ni, state.Activated)
		case history.Timeout:
			// Audit marker: the node keeps running.
			if m.NodeAt(ni) != state.Running {
				return nil, &Error{Event: e, Reason: fmt.Sprintf("node is %s, not running", m.NodeAt(ni))}
			}
		}
		r.observe(r.evaluate(e.Seq))
	}
	return res, nil
}

// observe folds the newly activated nodes of one evaluation pass into the
// virtual-firing candidate set.
func (r *replayRun) observe(activated []model.NodeIdx) {
	for _, ni := range activated {
		if r.sc.inHistory.Has(int(ni)) {
			continue
		}
		if !r.topo.At(ni).Node.CanAutoExecute() {
			continue
		}
		r.insertCandidate(ni)
	}
}

// insertCandidate inserts the node into the candidate list, keeping it
// sorted by interned index (= view position) so firings stay in
// deterministic schema order.
func (r *replayRun) insertCandidate(ni model.NodeIdx) {
	cs := r.sc.candidates
	pos := len(cs)
	for i, c := range cs {
		if c == ni {
			return
		}
		if c > ni {
			pos = i
			break
		}
	}
	cs = append(cs, 0)
	copy(cs[pos+1:], cs[pos:])
	cs[pos] = ni
	r.sc.candidates = cs
}

// fireVirtual starts and completes one newly inserted automatic node, in
// deterministic schema order. It returns false when no such node is
// enabled.
func (r *replayRun) fireVirtual(seq int) bool {
	cs := r.sc.candidates
	for i := 0; i < len(cs); i++ {
		ni := cs[i]
		if r.m.NodeAt(ni) != state.Activated {
			// Stale candidate (e.g. demoted by a loop reset): drop it.
			cs = append(cs[:i], cs[i+1:]...)
			r.sc.candidates = cs
			i--
			continue
		}
		nt := r.topo.At(ni)
		n := nt.Node
		if err := r.m.StartAt(ni); err != nil {
			continue
		}
		decision := -1
		if n.Type == model.NodeXORSplit {
			decision = virtualDecision(r.store, nt)
		}
		// Virtual completions zero-fill their write edges, mirroring the
		// engine's automatic execution. Virtual loop ends never iterate
		// during replay (decision stays -1).
		for _, de := range r.view.DataEdgesOf(n.ID) {
			if de.Access != model.Write {
				continue
			}
			if elem, ok := r.view.DataElement(de.Element); ok {
				r.store.Write(de.Element, elem.Type.ZeroValue(), n.ID, seq)
			}
		}
		if err := r.m.CompleteAt(ni, decision); err != nil {
			continue
		}
		r.sc.candidates = append(cs[:i], cs[i+1:]...)
		r.res.VirtualFirings++
		return true
	}
	return false
}

// virtualDecision resolves an XOR decision for a virtually fired split:
// the decision element's current value, clamped to the lowest existing
// code — identical to the engine's clamping rule.
func virtualDecision(store *data.Store, nt *model.NodeTopology) int {
	outs := nt.OutControl
	min := outs[0].Code
	for _, e := range outs {
		if e.Code < min {
			min = e.Code
		}
	}
	n := nt.Node
	if n.DecisionElement == "" {
		return min
	}
	val, ok := store.Read(n.DecisionElement)
	if !ok {
		return min
	}
	want, ok := data.AsInt(val)
	if !ok {
		return min
	}
	for _, e := range outs {
		if e.Code == want {
			return want
		}
	}
	return min
}

func writesElement(v model.SchemaView, node, elem string) bool {
	for _, de := range v.DataEdgesOf(node) {
		if de.Access == model.Write && de.Element == elem {
			return true
		}
	}
	return false
}

// CheckFast evaluates the fast per-operation compliance conditions (paper
// Fig. 1) of a change against a running instance. It returns nil when the
// instance may adopt the change.
func CheckFast(ctx *change.Context, ops []change.Operation) error {
	for _, op := range ops {
		if err := op.FastCompliance(ctx); err != nil {
			return err
		}
	}
	return nil
}
