package change

import (
	"fmt"

	"adept2/internal/data"
	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/state"
)

// ---------------------------------------------------------------------------
// SerialInsert
// ---------------------------------------------------------------------------

// SerialInsert inserts an activity between two directly connected nodes:
// the control edge Pred -> Succ is replaced by Pred -> Node -> Succ. This
// is the addActivity(S, act, Preds, Succs) of Fig. 1 with singleton node
// sets.
type SerialInsert struct {
	Node *model.Node
	Pred string
	Succ string
}

// OpName implements Operation.
func (o *SerialInsert) OpName() string { return "serial-insert" }

func (o *SerialInsert) String() string {
	return fmt.Sprintf("serialInsert(%s, %s, %s)", o.Node.ID, o.Pred, o.Succ)
}

// InsertedTemplate implements Operation.
func (o *SerialInsert) InsertedTemplate() string { return o.Node.Template }

// Precheck implements Operation.
func (o *SerialInsert) Precheck(v model.SchemaView) error {
	if o.Node == nil || o.Node.ID == "" {
		return fmt.Errorf("change: serial-insert: empty node")
	}
	if _, dup := v.Node(o.Node.ID); dup {
		return fmt.Errorf("change: serial-insert: node %q already exists", o.Node.ID)
	}
	if !v.HasEdge(model.EdgeKey{From: o.Pred, To: o.Succ, Type: model.EdgeControl}) {
		return fmt.Errorf("change: serial-insert: no control edge %s->%s", o.Pred, o.Succ)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *SerialInsert) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	if err := v.RemoveEdge(model.EdgeKey{From: o.Pred, To: o.Succ, Type: model.EdgeControl}); err != nil {
		return err
	}
	if err := v.AddNode(o.Node.Clone()); err != nil {
		return err
	}
	if err := v.AddEdge(&model.Edge{From: o.Pred, To: o.Node.ID, Type: model.EdgeControl}); err != nil {
		return err
	}
	return v.AddEdge(&model.Edge{From: o.Node.ID, To: o.Succ, Type: model.EdgeControl})
}

// FastCompliance implements Operation: the successor must not have started
// yet — unless the insertion point lies in a skipped region (the inserted
// activity is dead on arrival), or the inserted node is automatic (the
// relaxed trace equivalence lets the engine fire it retroactively, exactly
// as the replay criterion interleaves it virtually).
func (o *SerialInsert) FastCompliance(ctx *Context) error {
	if o.Node.CanAutoExecute() {
		return nil
	}
	succ, ok := ctx.node(o.Succ)
	if !ok || !ctx.startedAt(succ) {
		return nil
	}
	if pred, ok := ctx.node(o.Pred); ok && ctx.stateAt(pred) == state.Skipped {
		return nil
	}
	return stateConflict(o.String(), "successor %q already started", o.Succ)
}

// ---------------------------------------------------------------------------
// ParallelInsert
// ---------------------------------------------------------------------------

// ParallelInsert inserts an activity in parallel to the single-entry
// single-exit region spanned by From..To: a new AND block wraps the region
// and the activity becomes its second branch.
type ParallelInsert struct {
	Node *model.Node
	From string
	To   string
}

// OpName implements Operation.
func (o *ParallelInsert) OpName() string { return "parallel-insert" }

func (o *ParallelInsert) String() string {
	return fmt.Sprintf("parallelInsert(%s, %s..%s)", o.Node.ID, o.From, o.To)
}

// InsertedTemplate implements Operation.
func (o *ParallelInsert) InsertedTemplate() string { return o.Node.Template }

func (o *ParallelInsert) splitID() string { return o.Node.ID + "_psplit" }
func (o *ParallelInsert) joinID() string  { return o.Node.ID + "_pjoin" }

// region computes the SESE region From..To over control edges.
func (o *ParallelInsert) region(v model.SchemaView) (map[string]bool, error) {
	fwd := graph.Reachable(v, o.From, graph.Control, true)
	back := graph.Reachable(v, o.To, graph.Control, false)
	if !fwd[o.To] {
		return nil, fmt.Errorf("change: parallel-insert: %q does not reach %q", o.From, o.To)
	}
	region := make(map[string]bool)
	for id := range fwd {
		if back[id] {
			region[id] = true
		}
	}
	// Single entry (into From) and single exit (out of To).
	for id := range region {
		for _, e := range v.InEdges(id) {
			if e.Type == model.EdgeControl && !region[e.From] && id != o.From {
				return nil, fmt.Errorf("change: parallel-insert: region %s..%s is not SESE (edge %s enters it)", o.From, o.To, e)
			}
		}
		for _, e := range v.OutEdges(id) {
			if e.Type == model.EdgeControl && !region[e.To] && id != o.To {
				return nil, fmt.Errorf("change: parallel-insert: region %s..%s is not SESE (edge %s leaves it)", o.From, o.To, e)
			}
		}
	}
	return region, nil
}

// Precheck implements Operation.
func (o *ParallelInsert) Precheck(v model.SchemaView) error {
	if o.Node == nil || o.Node.ID == "" {
		return fmt.Errorf("change: parallel-insert: empty node")
	}
	for _, id := range []string{o.Node.ID, o.splitID(), o.joinID()} {
		if _, dup := v.Node(id); dup {
			return fmt.Errorf("change: parallel-insert: node %q already exists", id)
		}
	}
	from, ok := v.Node(o.From)
	if !ok {
		return fmt.Errorf("change: parallel-insert: unknown node %q", o.From)
	}
	to, ok := v.Node(o.To)
	if !ok {
		return fmt.Errorf("change: parallel-insert: unknown node %q", o.To)
	}
	if from.Type == model.NodeStart || to.Type == model.NodeEnd {
		return fmt.Errorf("change: parallel-insert: region must not include start or end")
	}
	_, err := o.region(v)
	return err
}

// ApplyTo implements Operation.
func (o *ParallelInsert) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	split := &model.Node{ID: o.splitID(), Name: o.splitID(), Type: model.NodeANDSplit, Auto: true}
	join := &model.Node{ID: o.joinID(), Name: o.joinID(), Type: model.NodeANDJoin, Auto: true}
	if err := v.AddNode(split); err != nil {
		return err
	}
	if err := v.AddNode(join); err != nil {
		return err
	}
	if err := v.AddNode(o.Node.Clone()); err != nil {
		return err
	}
	// Rewire the incoming control edges of From to the split and the
	// outgoing control edges of To to the join.
	for _, e := range append([]*model.Edge(nil), model.InControlEdges(v, o.From)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
		if err := v.AddEdge(&model.Edge{From: e.From, To: split.ID, Type: model.EdgeControl, Code: e.Code}); err != nil {
			return err
		}
	}
	for _, e := range append([]*model.Edge(nil), model.OutControlEdges(v, o.To)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
		if err := v.AddEdge(&model.Edge{From: join.ID, To: e.To, Type: model.EdgeControl, Code: e.Code}); err != nil {
			return err
		}
	}
	for _, e := range []*model.Edge{
		{From: split.ID, To: o.From, Type: model.EdgeControl},
		{From: split.ID, To: o.Node.ID, Type: model.EdgeControl},
		{From: o.Node.ID, To: join.ID, Type: model.EdgeControl},
		{From: o.To, To: join.ID, Type: model.EdgeControl},
	} {
		if err := v.AddEdge(e); err != nil {
			return err
		}
	}
	return nil
}

// FastCompliance implements Operation. The new AND gateways are automatic
// and replay fires them retroactively, so a started region is fine; the
// binding constraint sits *behind* the region: once a control successor of
// To has started, the new AND join must have fired — which requires the
// inserted activity to have run. That is only reproducible when the
// activity is automatic or the region is dead.
func (o *ParallelInsert) FastCompliance(ctx *Context) error {
	if o.Node.CanAutoExecute() {
		return nil
	}
	to, ok := ctx.node(o.To)
	if !ok {
		// Outside the marking's binding: fall back to the view walk.
		for _, s := range model.ControlSuccs(ctx.View, o.To) {
			if ctx.started(s) && ctx.Marking.Node(o.To) != state.Skipped {
				return stateConflict(o.String(), "node %q behind the region already started", s)
			}
		}
		return nil
	}
	topo := ctx.topology()
	nt := topo.At(to)
	for k, ei := range nt.OutControlIdx {
		s := topo.EdgeTarget(ei)
		if s != model.InvalidNode && ctx.startedAt(s) && ctx.stateAt(to) != state.Skipped {
			return stateConflict(o.String(), "node %q behind the region already started", nt.OutControl[k].To)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// ConditionalInsert
// ---------------------------------------------------------------------------

// ConditionalInsert inserts an activity between Pred and Succ guarded by a
// condition: an XOR block whose decision element selects the activity
// (value 1) or an empty path (any other value).
type ConditionalInsert struct {
	Node            *model.Node
	Pred            string
	Succ            string
	DecisionElement string
}

// OpName implements Operation.
func (o *ConditionalInsert) OpName() string { return "conditional-insert" }

func (o *ConditionalInsert) String() string {
	return fmt.Sprintf("conditionalInsert(%s, %s, %s, if %s)", o.Node.ID, o.Pred, o.Succ, o.DecisionElement)
}

// InsertedTemplate implements Operation.
func (o *ConditionalInsert) InsertedTemplate() string { return o.Node.Template }

func (o *ConditionalInsert) splitID() string { return o.Node.ID + "_csplit" }
func (o *ConditionalInsert) joinID() string  { return o.Node.ID + "_cjoin" }
func (o *ConditionalInsert) nopID() string   { return o.Node.ID + "_cnop" }

// Precheck implements Operation.
func (o *ConditionalInsert) Precheck(v model.SchemaView) error {
	if o.Node == nil || o.Node.ID == "" {
		return fmt.Errorf("change: conditional-insert: empty node")
	}
	for _, id := range []string{o.Node.ID, o.splitID(), o.joinID(), o.nopID()} {
		if _, dup := v.Node(id); dup {
			return fmt.Errorf("change: conditional-insert: node %q already exists", id)
		}
	}
	if _, ok := v.DataElement(o.DecisionElement); !ok {
		return fmt.Errorf("change: conditional-insert: unknown decision element %q", o.DecisionElement)
	}
	if !v.HasEdge(model.EdgeKey{From: o.Pred, To: o.Succ, Type: model.EdgeControl}) {
		return fmt.Errorf("change: conditional-insert: no control edge %s->%s", o.Pred, o.Succ)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *ConditionalInsert) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	if err := v.RemoveEdge(model.EdgeKey{From: o.Pred, To: o.Succ, Type: model.EdgeControl}); err != nil {
		return err
	}
	split := &model.Node{ID: o.splitID(), Name: o.splitID(), Type: model.NodeXORSplit, Auto: true, DecisionElement: o.DecisionElement}
	join := &model.Node{ID: o.joinID(), Name: o.joinID(), Type: model.NodeXORJoin, Auto: true}
	nop := &model.Node{ID: o.nopID(), Name: o.nopID(), Type: model.NodeActivity, Auto: true, Template: "nop"}
	for _, n := range []*model.Node{split, join, nop, o.Node.Clone()} {
		if err := v.AddNode(n); err != nil {
			return err
		}
	}
	for _, e := range []*model.Edge{
		{From: o.Pred, To: split.ID, Type: model.EdgeControl},
		{From: split.ID, To: nop.ID, Type: model.EdgeControl, Code: 0},
		{From: split.ID, To: o.Node.ID, Type: model.EdgeControl, Code: 1},
		{From: nop.ID, To: join.ID, Type: model.EdgeControl},
		{From: o.Node.ID, To: join.ID, Type: model.EdgeControl},
		{From: join.ID, To: o.Succ, Type: model.EdgeControl},
	} {
		if err := v.AddEdge(e); err != nil {
			return err
		}
	}
	return nil
}

// FastCompliance implements Operation. The guarding XOR gateways are
// automatic: if the successor already started, replay fires the split
// retroactively with the decision element's value at that moment. The
// history stays reproducible when the decision routes around the new
// activity (code != 1) or the activity itself is automatic.
func (o *ConditionalInsert) FastCompliance(ctx *Context) error {
	if o.Node.CanAutoExecute() {
		return nil
	}
	succ, ok := ctx.node(o.Succ)
	if !ok || !ctx.startedAt(succ) {
		return nil
	}
	if pred, ok := ctx.node(o.Pred); ok && ctx.stateAt(pred) == state.Skipped {
		return nil
	}
	val, ok := ctx.Store.ReadAt(o.DecisionElement, ctx.startSeqAt(succ))
	if !ok {
		return nil // no value: the split clamps to the empty branch (code 0)
	}
	if iv, isInt := data.AsInt(val); !isInt || iv != 1 {
		return nil // decision routes around the inserted activity
	}
	return stateConflict(o.String(), "successor %q already started and the condition selects the inserted activity", o.Succ)
}

// ---------------------------------------------------------------------------
// DeleteActivity
// ---------------------------------------------------------------------------

// DeleteActivity removes an activity and reconnects its neighborhood. Sync
// edges attached to the activity are removed with it; its data edges are
// removed as well (the buildtime data-flow check on the changed schema
// rejects the deletion if a guaranteed supplier disappears).
type DeleteActivity struct {
	ID string
}

// OpName implements Operation.
func (o *DeleteActivity) OpName() string { return "delete-activity" }

func (o *DeleteActivity) String() string { return fmt.Sprintf("deleteActivity(%s)", o.ID) }

// InsertedTemplate implements Operation.
func (o *DeleteActivity) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *DeleteActivity) Precheck(v model.SchemaView) error {
	n, ok := v.Node(o.ID)
	if !ok {
		return fmt.Errorf("change: delete-activity: unknown node %q", o.ID)
	}
	if n.Type != model.NodeActivity {
		return fmt.Errorf("change: delete-activity: %q is a %s, only activities can be deleted", o.ID, n.Type)
	}
	if len(model.InControlEdges(v, o.ID)) != 1 || len(model.OutControlEdges(v, o.ID)) != 1 {
		return fmt.Errorf("change: delete-activity: %q has unexpected control edge cardinality", o.ID)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *DeleteActivity) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	pred := model.ControlPreds(v, o.ID)[0]
	succ := model.ControlSuccs(v, o.ID)[0]
	for _, e := range append([]*model.Edge(nil), v.InEdges(o.ID)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
	}
	for _, e := range append([]*model.Edge(nil), v.OutEdges(o.ID)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
	}
	for _, de := range append([]*model.DataEdge(nil), v.DataEdgesOf(o.ID)...) {
		if err := v.RemoveDataEdge(de.Key()); err != nil {
			return err
		}
	}
	if err := v.RemoveNode(o.ID); err != nil {
		return err
	}
	if v.HasEdge(model.EdgeKey{From: pred, To: succ, Type: model.EdgeControl}) {
		return fmt.Errorf("change: delete-activity: reconnecting %s->%s would duplicate an edge", pred, succ)
	}
	return v.AddEdge(&model.Edge{From: pred, To: succ, Type: model.EdgeControl})
}

// FastCompliance implements Operation: a started activity cannot be
// deleted (its history entries would be orphaned); not-activated,
// activated, and skipped activities can.
func (o *DeleteActivity) FastCompliance(ctx *Context) error {
	if ctx.started(o.ID) {
		return stateConflict(o.String(), "activity %q already started", o.ID)
	}
	return nil
}

// ---------------------------------------------------------------------------
// MoveActivity
// ---------------------------------------------------------------------------

// MoveActivity shifts an activity to a new position: it is detached from
// its current context (like DeleteActivity, keeping data edges) and
// serially re-inserted between NewPred and NewSucc.
type MoveActivity struct {
	ID      string
	NewPred string
	NewSucc string
}

// OpName implements Operation.
func (o *MoveActivity) OpName() string { return "move-activity" }

func (o *MoveActivity) String() string {
	return fmt.Sprintf("moveActivity(%s, %s, %s)", o.ID, o.NewPred, o.NewSucc)
}

// InsertedTemplate implements Operation.
func (o *MoveActivity) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *MoveActivity) Precheck(v model.SchemaView) error {
	n, ok := v.Node(o.ID)
	if !ok {
		return fmt.Errorf("change: move-activity: unknown node %q", o.ID)
	}
	if n.Type != model.NodeActivity {
		return fmt.Errorf("change: move-activity: %q is a %s", o.ID, n.Type)
	}
	if o.ID == o.NewPred || o.ID == o.NewSucc {
		return fmt.Errorf("change: move-activity: %q cannot be its own neighbor", o.ID)
	}
	if len(model.InControlEdges(v, o.ID)) != 1 || len(model.OutControlEdges(v, o.ID)) != 1 {
		return fmt.Errorf("change: move-activity: %q has unexpected control edge cardinality", o.ID)
	}
	if _, ok := v.Node(o.NewPred); !ok {
		return fmt.Errorf("change: move-activity: unknown node %q", o.NewPred)
	}
	if _, ok := v.Node(o.NewSucc); !ok {
		return fmt.Errorf("change: move-activity: unknown node %q", o.NewSucc)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *MoveActivity) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	n, _ := v.Node(o.ID)
	moved := n.Clone()
	pred := model.ControlPreds(v, o.ID)[0]
	succ := model.ControlSuccs(v, o.ID)[0]
	dataEdges := make([]*model.DataEdge, 0, 2)
	for _, de := range v.DataEdgesOf(o.ID) {
		dataEdges = append(dataEdges, de.Clone())
	}
	// Detach.
	for _, e := range append([]*model.Edge(nil), v.InEdges(o.ID)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
	}
	for _, e := range append([]*model.Edge(nil), v.OutEdges(o.ID)...) {
		if err := v.RemoveEdge(e.Key()); err != nil {
			return err
		}
	}
	for _, de := range dataEdges {
		if err := v.RemoveDataEdge(de.Key()); err != nil {
			return err
		}
	}
	if err := v.RemoveNode(o.ID); err != nil {
		return err
	}
	if v.HasEdge(model.EdgeKey{From: pred, To: succ, Type: model.EdgeControl}) {
		return fmt.Errorf("change: move-activity: reconnecting %s->%s would duplicate an edge", pred, succ)
	}
	if err := v.AddEdge(&model.Edge{From: pred, To: succ, Type: model.EdgeControl}); err != nil {
		return err
	}
	// Re-insert.
	ins := &SerialInsert{Node: moved, Pred: o.NewPred, Succ: o.NewSucc}
	if err := ins.ApplyTo(v); err != nil {
		return err
	}
	for _, de := range dataEdges {
		if err := v.AddDataEdge(de); err != nil {
			return err
		}
	}
	return nil
}

// FastCompliance implements Operation. An unstarted activity follows the
// serial-insert condition at its new position. A started activity may
// still be moved when the history remains reproducible at the target: the
// new predecessor completed before the activity started, and the activity
// completed before the new successor started.
func (o *MoveActivity) FastCompliance(ctx *Context) error {
	id, idOK := ctx.node(o.ID)
	pred, predOK := ctx.node(o.NewPred)
	succ, succOK := ctx.node(o.NewSucc)
	var n *model.Node
	if idOK {
		n = ctx.topology().At(id).Node
	} else {
		n, _ = ctx.View.Node(o.ID)
	}
	auto := n != nil && n.CanAutoExecute()
	started := idOK && ctx.startedAt(id)
	if !started {
		if auto {
			return nil
		}
		if !succOK || !ctx.startedAt(succ) {
			return nil
		}
		if predOK && ctx.stateAt(pred) == state.Skipped {
			return nil
		}
		return stateConflict(o.String(), "new successor %q already started", o.NewSucc)
	}
	// Started activity: its recorded events must replay at the new
	// position.
	if !predOK || ctx.stateAt(pred) != state.Completed || ctx.completeSeqAt(pred) > ctx.startSeqAt(id) {
		return stateConflict(o.String(), "activity %q started before new predecessor %q completed", o.ID, o.NewPred)
	}
	if succOK && ctx.startedAt(succ) {
		cs := ctx.completeSeqAt(id)
		if cs == 0 || cs > ctx.startSeqAt(succ) {
			return stateConflict(o.String(), "new successor %q started before activity %q completed", o.NewSucc, o.ID)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// InsertSyncEdge / DeleteSyncEdge
// ---------------------------------------------------------------------------

// InsertSyncEdge adds a synchronization edge between activities of
// parallel branches (the insertSyncEdge of Fig. 1).
type InsertSyncEdge struct {
	From string
	To   string
}

// OpName implements Operation.
func (o *InsertSyncEdge) OpName() string { return "insert-sync-edge" }

func (o *InsertSyncEdge) String() string { return fmt.Sprintf("insertSyncEdge(%s, %s)", o.From, o.To) }

// InsertedTemplate implements Operation.
func (o *InsertSyncEdge) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *InsertSyncEdge) Precheck(v model.SchemaView) error {
	if _, ok := v.Node(o.From); !ok {
		return fmt.Errorf("change: insert-sync-edge: unknown node %q", o.From)
	}
	if _, ok := v.Node(o.To); !ok {
		return fmt.Errorf("change: insert-sync-edge: unknown node %q", o.To)
	}
	if v.HasEdge(model.EdgeKey{From: o.From, To: o.To, Type: model.EdgeSync}) {
		return fmt.Errorf("change: insert-sync-edge: edge %s~>%s already exists", o.From, o.To)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *InsertSyncEdge) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	return v.AddEdge(&model.Edge{From: o.From, To: o.To, Type: model.EdgeSync})
}

// FastCompliance implements Operation: if the target already started, the
// source must have been completed — or definitely skipped — before the
// target started; otherwise the recorded history could not have happened
// under the new constraint.
func (o *InsertSyncEdge) FastCompliance(ctx *Context) error {
	to, ok := ctx.node(o.To)
	if !ok || !ctx.startedAt(to) {
		return nil
	}
	startSeq := ctx.startSeqAt(to)
	if from, ok := ctx.node(o.From); ok {
		switch ctx.stateAt(from) {
		case state.Completed:
			if ctx.completeSeqAt(from) <= startSeq {
				return nil
			}
		case state.Skipped:
			if ctx.Marking.SkipSeqAt(from) <= startSeq {
				return nil
			}
		}
	}
	return stateConflict(o.String(), "target %q started before source %q was finished or skipped", o.To, o.From)
}

// DeleteSyncEdge removes a synchronization edge. Relaxing an ordering
// constraint never invalidates an existing history, so the operation is
// always state-compliant.
type DeleteSyncEdge struct {
	From string
	To   string
}

// OpName implements Operation.
func (o *DeleteSyncEdge) OpName() string { return "delete-sync-edge" }

func (o *DeleteSyncEdge) String() string { return fmt.Sprintf("deleteSyncEdge(%s, %s)", o.From, o.To) }

// InsertedTemplate implements Operation.
func (o *DeleteSyncEdge) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *DeleteSyncEdge) Precheck(v model.SchemaView) error {
	if !v.HasEdge(model.EdgeKey{From: o.From, To: o.To, Type: model.EdgeSync}) {
		return fmt.Errorf("change: delete-sync-edge: no sync edge %s~>%s", o.From, o.To)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *DeleteSyncEdge) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	return v.RemoveEdge(model.EdgeKey{From: o.From, To: o.To, Type: model.EdgeSync})
}

// FastCompliance implements Operation.
func (o *DeleteSyncEdge) FastCompliance(*Context) error { return nil }

// ---------------------------------------------------------------------------
// UpdateStaffAssignment
// ---------------------------------------------------------------------------

// UpdateStaffAssignment changes the role of an activity (an
// attribute-level change). Histories are oblivious to staff assignments,
// so the operation is always state-compliant; open work items are
// re-offered to the new role by the engine's worklist reconciliation.
type UpdateStaffAssignment struct {
	Activity string
	NewRole  string
}

// OpName implements Operation.
func (o *UpdateStaffAssignment) OpName() string { return "update-staff-assignment" }

func (o *UpdateStaffAssignment) String() string {
	return fmt.Sprintf("updateStaffAssignment(%s, %q)", o.Activity, o.NewRole)
}

// InsertedTemplate implements Operation.
func (o *UpdateStaffAssignment) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *UpdateStaffAssignment) Precheck(v model.SchemaView) error {
	n, ok := v.Node(o.Activity)
	if !ok {
		return fmt.Errorf("change: update-staff-assignment: unknown node %q", o.Activity)
	}
	if n.Type != model.NodeActivity {
		return fmt.Errorf("change: update-staff-assignment: %q is a %s", o.Activity, n.Type)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *UpdateStaffAssignment) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	n, _ := v.Node(o.Activity)
	repl := n.Clone()
	repl.Role = o.NewRole
	return v.ReplaceNode(repl)
}

// FastCompliance implements Operation.
func (o *UpdateStaffAssignment) FastCompliance(*Context) error { return nil }

// ---------------------------------------------------------------------------
// Data flow operations
// ---------------------------------------------------------------------------

// AddDataElement declares a new data element.
type AddDataElement struct {
	Element *model.DataElement
}

// OpName implements Operation.
func (o *AddDataElement) OpName() string { return "add-data-element" }

func (o *AddDataElement) String() string { return fmt.Sprintf("addDataElement(%s)", o.Element.ID) }

// InsertedTemplate implements Operation.
func (o *AddDataElement) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *AddDataElement) Precheck(v model.SchemaView) error {
	if o.Element == nil || o.Element.ID == "" {
		return fmt.Errorf("change: add-data-element: empty element")
	}
	if _, dup := v.DataElement(o.Element.ID); dup {
		return fmt.Errorf("change: add-data-element: element %q already exists", o.Element.ID)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *AddDataElement) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	return v.AddDataElement(o.Element.Clone())
}

// FastCompliance implements Operation.
func (o *AddDataElement) FastCompliance(*Context) error { return nil }

// AddDataEdge connects an activity parameter to a data element.
type AddDataEdge struct {
	Edge *model.DataEdge
}

// OpName implements Operation.
func (o *AddDataEdge) OpName() string { return "add-data-edge" }

func (o *AddDataEdge) String() string { return fmt.Sprintf("addDataEdge(%s)", o.Edge) }

// InsertedTemplate implements Operation.
func (o *AddDataEdge) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *AddDataEdge) Precheck(v model.SchemaView) error {
	if o.Edge == nil {
		return fmt.Errorf("change: add-data-edge: nil edge")
	}
	if _, ok := v.Node(o.Edge.Activity); !ok {
		return fmt.Errorf("change: add-data-edge: unknown activity %q", o.Edge.Activity)
	}
	if _, ok := v.DataElement(o.Edge.Element); !ok {
		return fmt.Errorf("change: add-data-edge: unknown element %q", o.Edge.Element)
	}
	return nil
}

// ApplyTo implements Operation.
func (o *AddDataEdge) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	return v.AddDataEdge(o.Edge.Clone())
}

// FastCompliance implements Operation: a write edge requires the activity
// not to have *completed* (its recorded completion wrote no value for the
// new parameter; a merely running activity will supply it on completion);
// a mandatory read edge requires that the element already held a value
// when a started activity started.
func (o *AddDataEdge) FastCompliance(ctx *Context) error {
	act, actOK := ctx.node(o.Edge.Activity)
	if o.Edge.Access == model.Write {
		if actOK && ctx.completeSeqAt(act) > 0 {
			return stateConflict(o.String(), "activity %q already completed without writing the new parameter", o.Edge.Activity)
		}
		return nil
	}
	if !actOK || !ctx.startedAt(act) || !o.Edge.Mandatory {
		return nil
	}
	if _, ok := ctx.Store.ReadAt(o.Edge.Element, ctx.startSeqAt(act)); ok {
		return nil
	}
	return stateConflict(o.String(), "activity %q started before element %q held a value", o.Edge.Activity, o.Edge.Element)
}

// DeleteDataEdge removes a data edge. Removing a write edge of a completed
// activity would orphan its recorded output, so that case is a state
// conflict; read edges can always be removed.
type DeleteDataEdge struct {
	Key model.DataEdgeKey
}

// OpName implements Operation.
func (o *DeleteDataEdge) OpName() string { return "delete-data-edge" }

func (o *DeleteDataEdge) String() string {
	return fmt.Sprintf("deleteDataEdge(%s/%s/%s)", o.Key.Activity, o.Key.Parameter, o.Key.Element)
}

// InsertedTemplate implements Operation.
func (o *DeleteDataEdge) InsertedTemplate() string { return "" }

// Precheck implements Operation.
func (o *DeleteDataEdge) Precheck(v model.SchemaView) error {
	for _, de := range v.DataEdgesOf(o.Key.Activity) {
		if de.Key() == o.Key {
			return nil
		}
	}
	return fmt.Errorf("change: delete-data-edge: no such edge %v", o.Key)
}

// ApplyTo implements Operation.
func (o *DeleteDataEdge) ApplyTo(v model.MutableView) error {
	if err := o.Precheck(v); err != nil {
		return err
	}
	return v.RemoveDataEdge(o.Key)
}

// FastCompliance implements Operation.
func (o *DeleteDataEdge) FastCompliance(ctx *Context) error {
	if o.Key.Access != model.Write {
		return nil
	}
	if i, ok := ctx.node(o.Key.Activity); ok && ctx.completeSeqAt(i) > 0 {
		return stateConflict(o.String(), "activity %q already completed and wrote element %q", o.Key.Activity, o.Key.Element)
	}
	return nil
}
