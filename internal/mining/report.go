package mining

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"adept2/internal/obs"
)

// Report is the frozen result of one mining scan: typed, deterministic
// for a deterministic population (no wall-clock stamps — identical
// journals mine to identical reports), and JSON-stable (Decode refuses
// unknown fields, so the wire format is pinned by tests the same way
// the metrics snapshot is).
type Report struct {
	// Instances is the population size scanned; Done and Biased are the
	// completed and ad-hoc-changed subsets.
	Instances int64 `json:"instances"`
	Done      int64 `json:"done"`
	Biased    int64 `json:"biased"`

	// Shards attributes the scanned instances to their durability
	// shards (sharded.ShardOf), the unit the scanner batches by.
	Shards []ShardStat `json:"shards,omitempty"`

	// Variants is the frequency table, descending; DistinctVariants
	// counts the table before the MaxVariants cap truncated it, and
	// VariantOverflow the instances folded past the cap.
	Variants         []Variant `json:"variants"`
	DistinctVariants int       `json:"distinctVariants"`
	VariantOverflow  int64     `json:"variantOverflow,omitempty"`

	// HotPaths are the TopPaths most frequent variants' node paths.
	HotPaths []Path `json:"hotPaths,omitempty"`

	// Nodes is the per-node traversal/exception/duration table, sorted
	// by node ID; Edges the logical-successor counts, descending.
	Nodes        []Node `json:"nodes"`
	Edges        []Edge `json:"edges,omitempty"`
	EdgeOverflow int64  `json:"edgeOverflow,omitempty"`

	// Drift is the per-type compliance table against the latest
	// deployed versions.
	Drift []TypeDrift `json:"drift,omitempty"`
}

// ShardStat attributes scanned instances to one durability shard.
type ShardStat struct {
	Shard     int   `json:"shard"`
	Instances int64 `json:"instances"`
}

// Variant is one behavioral equivalence class of the population.
type Variant struct {
	Fingerprint  string   `json:"fingerprint"`
	Count        int64    `json:"count"`
	Steps        int      `json:"steps"`
	Type         string   `json:"type"`
	MinVersion   int      `json:"minVersion"`
	MaxVersion   int      `json:"maxVersion"`
	Biased       int64    `json:"biased,omitempty"`
	NonCompliant int64    `json:"nonCompliant,omitempty"`
	Done         int64    `json:"done,omitempty"`
	Path         []string `json:"path,omitempty"`
}

// Path is one hot path: a variant's completed-node sequence.
type Path struct {
	Fingerprint string   `json:"fingerprint"`
	Count       int64    `json:"count"`
	Path        []string `json:"path"`
}

// Node is one node's traversal, exception-concentration, and duration
// aggregate. P50/P90/P99 are duration quantile upper bounds in nanos
// (-1: beyond the histogram's range, 0: no timed observations).
type Node struct {
	Node      string                `json:"node"`
	Starts    int64                 `json:"starts"`
	Completes int64                 `json:"completes"`
	Failures  int64                 `json:"failures,omitempty"`
	Timeouts  int64                 `json:"timeouts,omitempty"`
	Retries   int64                 `json:"retries,omitempty"`
	Durations obs.HistogramSnapshot `json:"durations"`
	P50       int64                 `json:"p50,omitempty"`
	P90       int64                 `json:"p90,omitempty"`
	P99       int64                 `json:"p99,omitempty"`
}

// Edge is one logical-successor traversal count.
type Edge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int64  `json:"count"`
}

// TypeDrift is one process type's compliance split against its latest
// deployed version.
type TypeDrift struct {
	Type          string   `json:"type"`
	LatestVersion int      `json:"latestVersion"`
	Instances     int64    `json:"instances"`
	Current       int64    `json:"current"`
	Stale         int64    `json:"stale,omitempty"`
	Biased        int64    `json:"biased,omitempty"`
	Foreign       int64    `json:"foreign,omitempty"`
	NonCompliant  int64    `json:"nonCompliant,omitempty"`
	ForeignNodes  []string `json:"foreignNodes,omitempty"`
}

func fpString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// Encode serializes a report as indented JSON — the codec's write half,
// shared by /mine.json and `adeptctl mine -format json`.
func Encode(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Decode parses a JSON report strictly: unknown fields are an error, so
// endpoint and CLI consumers notice schema drift instead of silently
// dropping data (the same contract as the metrics snapshot).
func Decode(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("mining: report does not round-trip: %w", err)
	}
	return &r, nil
}

// Text renders the report for terminals: population summary, variant
// table, hot paths, per-node concentration with duration quantiles,
// and the drift table.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "population: %d instances (%d done, %d biased)", r.Instances, r.Done, r.Biased)
	if len(r.Shards) > 1 {
		b.WriteString(" across shards")
		for _, s := range r.Shards {
			fmt.Fprintf(&b, " [%d: %d]", s.Shard, s.Instances)
		}
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "variants: %d distinct", r.DistinctVariants)
	if r.VariantOverflow > 0 {
		fmt.Fprintf(&b, " (+%d instances past the table cap)", r.VariantOverflow)
	}
	b.WriteByte('\n')
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "  %s  x%-6d %s v%d", v.Fingerprint, v.Count, v.Type, v.MinVersion)
		if v.MaxVersion != v.MinVersion {
			fmt.Fprintf(&b, "-v%d", v.MaxVersion)
		}
		fmt.Fprintf(&b, "  %d steps", v.Steps)
		if v.NonCompliant > 0 {
			fmt.Fprintf(&b, "  DRIFT %d", v.NonCompliant)
		}
		b.WriteByte('\n')
	}

	if len(r.HotPaths) > 0 {
		b.WriteString("hot paths:\n")
		for _, p := range r.HotPaths {
			fmt.Fprintf(&b, "  x%-6d %s\n", p.Count, strings.Join(p.Path, " > "))
		}
	}

	b.WriteString("nodes:\n")
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "  %-16s starts=%d completes=%d", n.Node, n.Starts, n.Completes)
		if n.Failures > 0 {
			fmt.Fprintf(&b, " failures=%d", n.Failures)
		}
		if n.Timeouts > 0 {
			fmt.Fprintf(&b, " timeouts=%d", n.Timeouts)
		}
		if n.Retries > 0 {
			fmt.Fprintf(&b, " retries=%d", n.Retries)
		}
		if n.Durations.Count > 0 {
			fmt.Fprintf(&b, " p50=%s p90=%s p99=%s",
				quantileText(n.P50), quantileText(n.P90), quantileText(n.P99))
		}
		b.WriteByte('\n')
	}

	if len(r.Edges) > 0 {
		b.WriteString("edges:\n")
		for _, e := range r.Edges {
			fmt.Fprintf(&b, "  %-16s > %-16s x%d\n", e.From, e.To, e.Count)
		}
	}

	if len(r.Drift) > 0 {
		b.WriteString("drift:\n")
		for _, d := range r.Drift {
			fmt.Fprintf(&b, "  %s (latest v%d): %d instances, %d current, %d stale, %d biased, %d foreign, %d non-compliant",
				d.Type, d.LatestVersion, d.Instances, d.Current, d.Stale, d.Biased, d.Foreign, d.NonCompliant)
			if len(d.ForeignNodes) > 0 {
				fmt.Fprintf(&b, " (foreign nodes: %s)", strings.Join(d.ForeignNodes, ", "))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func quantileText(v int64) string {
	switch {
	case v < 0:
		return ">range"
	case v == 0:
		return "-"
	default:
		return time.Duration(v).String()
	}
}
