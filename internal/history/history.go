// Package history implements the ADEPT2 execution history: the per-
// instance log of start and completion events the compliance criterion
// replays. Reduce computes the *logical* (loop-purged) history — only the
// last iteration of every loop block is retained — which is exactly the
// view the paper's relaxed trace equivalence inspects.
package history

import (
	"encoding/json"
	"fmt"

	"adept2/internal/graph"
	"adept2/internal/model"
)

// Kind distinguishes event types.
type Kind uint8

const (
	// Started records that a node entered execution.
	Started Kind = iota
	// Completed records that a node finished, together with its routing
	// decision and the data it wrote.
	Completed
)

func (k Kind) String() string {
	if k == Completed {
		return "completed"
	}
	return "started"
}

// Event is one entry of the execution history.
type Event struct {
	// Seq is the instance-wide sequence number (1-based, dense).
	Seq int `json:"seq"`
	// Kind is Started or Completed.
	Kind Kind `json:"kind"`
	// Node is the schema node the event belongs to.
	Node string `json:"node"`
	// User is the acting user (empty for automatic nodes).
	User string `json:"user,omitempty"`
	// Decision is the selection code chosen by a completed XOR split
	// (-1 when not applicable).
	Decision int `json:"decision,omitempty"`
	// Again is true when a completed loop end decided to iterate.
	Again bool `json:"again,omitempty"`
	// Reads holds the parameter values supplied when the node started.
	Reads map[string]any `json:"reads,omitempty"`
	// Writes holds element values written on completion (element -> value).
	Writes map[string]any `json:"writes,omitempty"`
}

func (e *Event) String() string {
	switch {
	case e.Kind == Completed && e.Again:
		return fmt.Sprintf("#%d completed %s (again)", e.Seq, e.Node)
	case e.Kind == Completed && e.Decision >= 0:
		return fmt.Sprintf("#%d completed %s (decision %d)", e.Seq, e.Node, e.Decision)
	case e.Kind == Completed:
		return fmt.Sprintf("#%d completed %s", e.Seq, e.Node)
	default:
		return fmt.Sprintf("#%d started %s", e.Seq, e.Node)
	}
}

// Clone returns a deep copy of the event.
func (e *Event) Clone() *Event {
	c := *e
	if e.Reads != nil {
		c.Reads = make(map[string]any, len(e.Reads))
		for k, v := range e.Reads {
			c.Reads[k] = v
		}
	}
	if e.Writes != nil {
		c.Writes = make(map[string]any, len(e.Writes))
		for k, v := range e.Writes {
			c.Writes[k] = v
		}
	}
	return &c
}

// Log is an append-only execution history.
type Log struct {
	events  []*Event
	nextSeq int
}

// NewLog returns an empty history.
func NewLog() *Log { return &Log{nextSeq: 1} }

// Append adds an event, assigning it the next sequence number, and returns
// the event.
func (l *Log) Append(e *Event) *Event {
	e.Seq = l.nextSeq
	l.nextSeq++
	l.events = append(l.events, e)
	return e
}

// Events returns the full physical history in order. Callers must not
// mutate the returned slice.
func (l *Log) Events() []*Event { return l.events }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// NextSeq returns the sequence number the next event will receive.
func (l *Log) NextSeq() int { return l.nextSeq }

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	c := &Log{nextSeq: l.nextSeq, events: make([]*Event, len(l.events))}
	for i, e := range l.events {
		c.events[i] = e.Clone()
	}
	return c
}

// ApproxBytes estimates the memory held by the history.
func (l *Log) ApproxBytes() int {
	total := 0
	for _, e := range l.events {
		total += 48 + len(e.Node) + len(e.User) + 32*(len(e.Reads)+len(e.Writes))
	}
	return total
}

// MarshalJSON implements json.Marshaler.
func (l *Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.events)
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Log) UnmarshalJSON(b []byte) error {
	var events []*Event
	if err := json.Unmarshal(b, &events); err != nil {
		return fmt.Errorf("history: unmarshal log: %w", err)
	}
	next := 1
	if n := len(events); n > 0 {
		next = events[n-1].Seq + 1
	}
	l.events = events
	l.nextSeq = next
	return nil
}

// Reduce computes the logical execution history: every loop iteration that
// was superseded by a later one is purged. Concretely, whenever a loop end
// completes with Again=true, all prior events of nodes inside that loop's
// region (including nested loops) are dropped together with the iterating
// completion itself. The result is the history of the final iteration of
// every loop — the paper's loop-tolerant compliance view.
//
// The retained slice is grown on demand: loop-heavy histories reduce to a
// few events, so pre-sizing to the physical history length would allocate
// orders of magnitude too much. Purges trim the retained slice in place,
// which keeps it — and therefore every rescan — bounded by the live
// (unpurged) event count rather than the history length.
//
// info must be the block analysis of the same schema view the events were
// recorded on.
func Reduce(info *graph.Info, events []*Event) []*Event {
	var out []*Event
	for _, e := range events {
		if e.Kind == Completed && e.Again {
			if blk, ok := info.ByJoin(e.Node); ok && blk.Kind == model.NodeLoopStart {
				region := blk.Region()
				kept := out[:0]
				for _, prev := range out {
					if !region[prev.Node] {
						kept = append(kept, prev)
					}
				}
				out = kept
				continue // the iterating completion itself is purged
			}
		}
		out = append(out, e)
	}
	return out
}

// Stats is the per-node execution index an instance maintains alongside
// its physical history. The fast compliance conditions consult it instead
// of scanning the history: "has this node started?", "when did it
// complete?", "which branch did this split choose?" all answer in O(1).
type Stats map[string]*NodeStat

// NodeStat is the execution record of one node in the *current* loop
// iteration (stats of purged iterations are removed, mirroring Reduce).
type NodeStat struct {
	// StartSeq is the sequence number of the node's start event (0 if
	// never started).
	StartSeq int
	// CompleteSeq is the sequence number of the node's completion event
	// (0 if not completed).
	CompleteSeq int
	// Decision is the XOR selection code chosen on completion (-1
	// otherwise).
	Decision int
}

// NewStats returns an empty index.
func NewStats() Stats { return make(Stats) }

// OnStart records a start event.
func (s Stats) OnStart(node string, seq int) {
	s[node] = &NodeStat{StartSeq: seq, Decision: -1}
}

// OnComplete records a completion event.
func (s Stats) OnComplete(node string, seq, decision int) {
	st, ok := s[node]
	if !ok {
		st = &NodeStat{Decision: -1}
		s[node] = st
	}
	st.CompleteSeq = seq
	st.Decision = decision
}

// PurgeRegion removes the stats of all nodes in a loop region, called when
// the loop iterates (mirrors Reduce).
func (s Stats) PurgeRegion(region map[string]bool) {
	for id := range region {
		delete(s, id)
	}
}

// Started reports whether the node started in the current iteration.
func (s Stats) Started(node string) bool {
	st, ok := s[node]
	return ok && st.StartSeq > 0
}

// StartSeq returns the node's start sequence (0 if not started).
func (s Stats) StartSeq(node string) int {
	if st, ok := s[node]; ok {
		return st.StartSeq
	}
	return 0
}

// CompleteSeq returns the node's completion sequence (0 if not completed).
func (s Stats) CompleteSeq(node string) int {
	if st, ok := s[node]; ok {
		return st.CompleteSeq
	}
	return 0
}

// Decisions extracts the selection codes of all completed XOR splits,
// keyed by node ID; state.Adapt consumes this to re-derive dead paths.
func (s Stats) Decisions() map[string]int {
	d := make(map[string]int)
	for id, st := range s {
		if st.CompleteSeq > 0 && st.Decision >= 0 {
			d[id] = st.Decision
		}
	}
	return d
}

// Clone returns a deep copy of the stats index.
func (s Stats) Clone() Stats {
	c := make(Stats, len(s))
	for id, st := range s {
		cp := *st
		c[id] = &cp
	}
	return c
}
