// Package model defines the ADEPT2 process meta model: block-structured
// process schemas (WSM nets) consisting of activity and gateway nodes,
// control edges, sync edges (cross-branch ordering constraints inside
// parallel blocks), loop edges, and explicit data flow (typed data elements
// connected to activities through read/write data edges).
//
// A Schema is the buildtime artifact. All consumers (the verifier, the
// execution engine, the change framework, the compliance checker) operate
// on the read-only SchemaView interface so that biased instances can
// substitute an overlay view (see internal/storage) without materializing
// a full per-instance schema copy — the hybrid representation of Fig. 2 of
// the ADEPT2 paper.
//
// # Topology index invariants
//
// Every SchemaView exposes a precomputed Topology: per-node adjacency
// slices split by edge type plus derived node lists (auto-executable
// nodes, manual activities). The index obeys the following invariants,
// which the marking evaluator (internal/state), the engine cascade, and
// the compliance replayer rely on:
//
//   - Completeness: Topology().Of(id) is non-nil exactly for the IDs in
//     NodeIDs(), and NodeTopology.Index equals the ID's position there.
//     NodeTopology.Node is the same *Node that Node(id) returns.
//   - Partition: the six edge slices of a node partition InEdges/OutEdges
//     by EdgeType — every incident edge appears in exactly one slice, and
//     the *Edge pointers are shared with Edges() (no copies).
//   - Derived lists: AutoExecutable() holds exactly the nodes with
//     CanAutoExecute() true, ManualActivities() exactly the non-Auto
//     NodeActivity nodes, both in NodeIDs() order.
//   - Coherence: the index is invalidated by every structural mutation
//     (node/edge add, remove, replace). *Schema clears its cache slot on
//     mutation and rebuilds on demand (safe under concurrent readers: the
//     slot is atomic and the build idempotent); the storage overlay
//     rebuilds the index together with its adjacency caches on refresh.
//     A *Topology held across a mutation of its view is stale — re-fetch
//     it instead. Data elements and data edges do not affect the index
//     (the per-activity data-edge map is maintained separately by
//     DataEdgesOf).
//   - Immutability: callers must never mutate the returned slices; one
//     Topology is shared by every concurrent reader of a deployed schema.
package model
