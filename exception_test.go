package adept2_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"adept2"
	"adept2/internal/history"
	"adept2/internal/sim"
)

// testClock is an injectable logical clock: time only moves when a test
// advances it, so every deadline and backoff assertion is exact.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time              { return c.t }
func (c *testClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func (c *testClock) after(d time.Duration) int64 { return c.t.Add(d).UnixNano() }

// repairSchema is the three-step process the exception tests run:
//
//	start → triage(clerk) → fix(clerk, deadline 2m, escalates to sales) → wrap(clerk) → end
func repairSchema(t *testing.T) *adept2.Schema {
	t.Helper()
	b := adept2.NewBuilder("repair")
	triage := b.Activity("triage", "Triage", adept2.WithRole("clerk"))
	fix := b.Activity("fix", "Fix", adept2.WithRole("clerk"),
		adept2.WithDeadline(2*time.Minute), adept2.WithEscalation("sales"))
	wrap := b.Activity("wrap", "Wrap", adept2.WithRole("clerk"))
	s, err := b.Build(b.Seq(triage, fix, wrap))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func openRepair(t *testing.T, path string, clk *testClock, policy adept2.ExceptionPolicy) *adept2.System {
	t.Helper()
	opts := []adept2.Option{
		adept2.WithOrg(sim.Org()),
		adept2.WithClock(clk.Now),
		adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1}),
	}
	if policy != nil {
		opts = append(opts, adept2.WithExceptionPolicy(policy))
	}
	sys, err := adept2.Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// startFix deploys the schema, creates an instance, and brings it to
// "fix running under ann". Returns the instance ID.
func startFix(t *testing.T, sys *adept2.System) string {
	t.Helper()
	if err := sys.Deploy(repairSchema(t)); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("repair")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "triage", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(inst.ID(), "fix", "ann"); err != nil {
		t.Fatal(err)
	}
	return inst.ID()
}

func hasItem(sys *adept2.System, user, inst, node string) bool {
	for _, it := range sys.WorkItems(user) {
		if it.Instance == inst && it.Node == node {
			return true
		}
	}
	return false
}

func countEvents(inst *adept2.Instance, kind history.Kind) int {
	n := 0
	for _, e := range inst.HistoryEvents() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestFailRetryBackoffLifecycle walks the full retry compensation loop:
// Fail suppresses the re-offer for the policy's backoff (stamped from
// the injected clock onto the journaled record), an early sweep leaves
// it suppressed, the on-time sweep lifts it, the backoff doubles on the
// next failure, and a successful completion clears the failure counter.
func TestFailRetryBackoffLifecycle(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	sys := openRepair(t, filepath.Join(t.TempDir(), "wal"), clk,
		adept2.RetryThenSuspend(3, time.Minute))
	defer sys.Close()
	id := startFix(t, sys)
	inst, _ := sys.Instance(id)

	if err := sys.Fail(ctx, id, "fix", "ann", "printer on fire"); err != nil {
		t.Fatal(err)
	}
	if got := inst.FailureCount("fix"); got != 1 {
		t.Fatalf("failure count after first fail: %d", got)
	}
	if _, armed := inst.Deadline("fix"); armed {
		t.Fatal("failing the activity must disarm its deadline")
	}
	due, ok := inst.RetryDue("fix")
	if !ok || due != clk.after(time.Minute) {
		t.Fatalf("retry due %d (%v), want %d", due, ok, clk.after(time.Minute))
	}
	if hasItem(sys, "ann", id, "fix") || hasItem(sys, "cyn", id, "fix") {
		t.Fatal("failed activity re-offered during its backoff window")
	}

	// A sweep before the backoff elapses must not lift the suppression.
	clk.advance(30 * time.Second)
	rep, err := sys.SweepDeadlines(ctx, clk.Now())
	if err != nil || rep.Retries != 0 {
		t.Fatalf("early sweep: %v, retries %d", err, rep.Retries)
	}
	if hasItem(sys, "ann", id, "fix") {
		t.Fatal("early sweep re-offered a suppressed item")
	}

	// Past the backoff, the sweep re-offers the work item.
	clk.advance(31 * time.Second)
	rep, err = sys.SweepDeadlines(ctx, clk.Now())
	if err != nil || rep.Retries != 1 {
		t.Fatalf("due sweep: %v, retries %d", err, rep.Retries)
	}
	if !hasItem(sys, "ann", id, "fix") {
		t.Fatal("due sweep did not re-offer the failed activity")
	}

	// The second failure doubles the backoff.
	if err := sys.Start(id, "fix", "ann"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Fail(ctx, id, "fix", "ann", "printer still on fire"); err != nil {
		t.Fatal(err)
	}
	if got := inst.FailureCount("fix"); got != 2 {
		t.Fatalf("failure count after second fail: %d", got)
	}
	if due, _ := inst.RetryDue("fix"); due != clk.after(2*time.Minute) {
		t.Fatalf("second backoff %d, want doubled %d", due, clk.after(2*time.Minute))
	}

	clk.advance(2*time.Minute + time.Second)
	if rep, err = sys.SweepDeadlines(ctx, clk.Now()); err != nil || rep.Retries != 1 {
		t.Fatalf("second due sweep: %v, retries %d", err, rep.Retries)
	}
	if err := sys.Start(id, "fix", "cyn"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(id, "fix", "cyn", nil); err != nil {
		t.Fatal(err)
	}
	if got := inst.FailureCount("fix"); got != 0 {
		t.Fatalf("completion must clear the failure count, got %d", got)
	}
	if got := countEvents(inst, history.Failed); got != 2 {
		t.Fatalf("physical history records %d Failed events, want 2", got)
	}
	if err := sys.Complete(id, "wrap", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("instance did not finish after the retry loop")
	}
}

// TestFailSkipCompensation: an ActionSkip policy compensates a failure
// by deleting the activity through a machine-generated ad-hoc change —
// the node leaves the instance view and the successor activates.
func TestFailSkipCompensation(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	skip := adept2.PolicyFunc(func(adept2.Exception) adept2.Reaction {
		return adept2.Reaction{Action: adept2.ActionSkip}
	})
	sys := openRepair(t, filepath.Join(t.TempDir(), "wal"), clk, skip)
	defer sys.Close()
	id := startFix(t, sys)
	inst, _ := sys.Instance(id)

	if err := sys.Fail(ctx, id, "fix", "ann", "unfixable"); err != nil {
		t.Fatal(err)
	}
	if _, still := inst.View().Node("fix"); still {
		t.Fatal("skip compensation left the failed node in the view")
	}
	if !inst.Biased() {
		t.Fatal("the machine-generated skip must register as an instance bias")
	}
	if !hasItem(sys, "ann", id, "wrap") {
		t.Fatal("successor not offered after the skip")
	}
	if err := sys.Complete(id, "wrap", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("instance did not finish after the skip")
	}
}

// TestFailSuspendThenAdminRecovers: an ActionSuspend policy freezes the
// instance for human intervention; the administrator resumes it,
// releases the pending compensation via RetryActivity, and the process
// runs to completion.
func TestFailSuspendThenAdminRecovers(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	susp := adept2.PolicyFunc(func(adept2.Exception) adept2.Reaction {
		return adept2.Reaction{Action: adept2.ActionSuspend}
	})
	sys := openRepair(t, filepath.Join(t.TempDir(), "wal"), clk, susp)
	defer sys.Close()
	id := startFix(t, sys)
	inst, _ := sys.Instance(id)

	if err := sys.Fail(ctx, id, "fix", "ann", "needs a human"); err != nil {
		t.Fatal(err)
	}
	if !inst.Suspended() {
		t.Fatal("suspend compensation did not suspend the instance")
	}
	if !inst.PendingCompensation("fix") {
		t.Fatal("failed node not marked pending compensation")
	}
	if hasItem(sys, "ann", id, "fix") {
		t.Fatal("suppressed item offered while suspended")
	}

	if err := sys.Resume(id); err != nil {
		t.Fatal(err)
	}
	// Resuming alone does not lift the suppression: the pending mark
	// survives until an explicit retry releases it.
	if x := sys.OpenExceptions(); len(x) != 1 || x[0].Node != "fix" {
		t.Fatalf("open exceptions after resume: %+v", x)
	}
	if _, err := sys.Submit(ctx, &adept2.RetryActivity{Instance: id, Node: "fix"}); err != nil {
		t.Fatal(err)
	}
	if inst.PendingCompensation("fix") {
		t.Fatal("retry did not clear the pending compensation")
	}
	if !hasItem(sys, "ann", id, "fix") {
		t.Fatal("item not re-offered after the admin retry")
	}
	for _, step := range []string{"fix", "wrap"} {
		if err := sys.Complete(id, step, "ann", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !inst.Done() {
		t.Fatal("instance did not finish after admin recovery")
	}
}

// TestDeadlineEscalationSurvivesRecovery is the satellite-3 acceptance
// test: an armed deadline survives a snapshot+recovery round-trip, the
// sweep fires it exactly once (Timeout event + escalation to the
// configured role), and after a second recovery — replaying the fired
// timeout from the journal suffix — it never fires again.
func TestDeadlineEscalationSurvivesRecovery(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	path := filepath.Join(t.TempDir(), "wal")
	sys := openRepair(t, path, clk, nil)
	id := startFix(t, sys)
	inst, _ := sys.Instance(id)

	armedUntil := clk.after(2 * time.Minute)
	if dl, ok := inst.Deadline("fix"); !ok || dl != armedUntil {
		t.Fatalf("deadline armed at %d (%v), want %d", dl, ok, armedUntil)
	}

	// Snapshot round-trip: the armed deadline must come back from the
	// checkpoint, not the clock.
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Second) // recovery never reads the clock
	sys = openRepair(t, path, clk, nil)
	if info := sys.Recovery(); info.FullReplay || info.SnapshotSeq == 0 {
		t.Fatalf("recovery bypassed the snapshot: %+v", info)
	}
	inst, _ = sys.Instance(id)
	if dl, ok := inst.Deadline("fix"); !ok || dl != armedUntil {
		t.Fatalf("deadline lost in recovery: %d (%v), want %d", dl, ok, armedUntil)
	}

	// Before expiry: nothing fires.
	rep, err := sys.SweepDeadlines(ctx, clk.Now())
	if err != nil || rep.Timeouts != 0 {
		t.Fatalf("pre-expiry sweep: %v, timeouts %d", err, rep.Timeouts)
	}
	// Past expiry: exactly one Timeout, escalated to sales (dan holds
	// sales but not clerk, so the escalation is visible in his list).
	clk.advance(3 * time.Minute)
	if hasItem(sys, "dan", id, "fix") {
		t.Fatal("non-clerk saw the item before escalation")
	}
	rep, err = sys.SweepDeadlines(ctx, clk.Now())
	if err != nil || rep.Timeouts != 1 {
		t.Fatalf("expiry sweep: %v, timeouts %d", err, rep.Timeouts)
	}
	if !inst.Escalated("fix") {
		t.Fatal("node not marked escalated")
	}
	if !hasItem(sys, "dan", id, "fix") {
		t.Fatal("item not escalated to the sales role")
	}
	if got := countEvents(inst, history.Timeout); got != 1 {
		t.Fatalf("%d Timeout events, want 1", got)
	}
	// Exactly once: a later sweep must not re-fire the spent deadline.
	clk.advance(time.Minute)
	if rep, err = sys.SweepDeadlines(ctx, clk.Now()); err != nil || rep.Timeouts != 0 {
		t.Fatalf("post-fire sweep: %v, timeouts %d", err, rep.Timeouts)
	}

	// Second recovery replays the fired timeout from the journal suffix:
	// still escalated, still exactly one event, still no re-fire.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys = openRepair(t, path, clk, nil)
	defer sys.Close()
	inst, _ = sys.Instance(id)
	if !inst.Escalated("fix") {
		t.Fatal("escalation lost in recovery")
	}
	if got := countEvents(inst, history.Timeout); got != 1 {
		t.Fatalf("replay produced %d Timeout events, want 1", got)
	}
	if _, armed := inst.Deadline("fix"); armed {
		t.Fatal("spent deadline re-armed by replay")
	}
	if !hasItem(sys, "dan", id, "fix") {
		t.Fatal("escalated item lost in recovery")
	}
	clk.advance(time.Hour)
	if rep, err := sys.SweepDeadlines(ctx, clk.Now()); err != nil || rep.Timeouts != 0 {
		t.Fatalf("sweep after replay double-fired: %v, timeouts %d", err, rep.Timeouts)
	}
	// The escalation assignee finishes the work.
	if err := sys.Complete(id, "fix", "dan", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(id, "wrap", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if !inst.Done() {
		t.Fatal("instance did not finish after escalation")
	}
}

// TestRetryBackoffSurvivesRecovery: a pending retry backoff — stamped
// onto the journaled fail record from the injected clock — re-arms
// deterministically on recovery and the sweep lifts it exactly once.
func TestRetryBackoffSurvivesRecovery(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	path := filepath.Join(t.TempDir(), "wal")
	policy := adept2.RetryThenSuspend(3, time.Minute)
	sys := openRepair(t, path, clk, policy)
	id := startFix(t, sys)

	if err := sys.Fail(ctx, id, "fix", "ann", "transient"); err != nil {
		t.Fatal(err)
	}
	inst, _ := sys.Instance(id)
	due, _ := inst.RetryDue("fix")

	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys = openRepair(t, path, clk, policy)
	defer sys.Close()
	inst, _ = sys.Instance(id)
	if got, ok := inst.RetryDue("fix"); !ok || got != due {
		t.Fatalf("retry backoff lost in recovery: %d (%v), want %d", got, ok, due)
	}
	if hasItem(sys, "ann", id, "fix") {
		t.Fatal("recovery re-offered a suppressed item")
	}
	clk.advance(2 * time.Minute)
	rep, err := sys.SweepDeadlines(ctx, clk.Now())
	if err != nil || rep.Retries != 1 {
		t.Fatalf("sweep after recovery: %v, retries %d", err, rep.Retries)
	}
	if rep, err = sys.SweepDeadlines(ctx, clk.Now()); err != nil || rep.Retries != 0 {
		t.Fatalf("second sweep re-lifted: %v, retries %d", err, rep.Retries)
	}
	if !hasItem(sys, "ann", id, "fix") {
		t.Fatal("item not re-offered after recovered backoff elapsed")
	}
}

// TestFailErrorTaxonomy pins the exception error surface: failing a
// node that is not running is a typed conflict, and the Exception
// presented to the policy carries an ErrFailed-tagged error.
func TestFailErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	clk := newTestClock()
	var seen []adept2.Exception
	rec := adept2.PolicyFunc(func(x adept2.Exception) adept2.Reaction {
		seen = append(seen, x)
		return adept2.Reaction{Action: adept2.ActionNone}
	})
	sys := openRepair(t, filepath.Join(t.TempDir(), "wal"), clk, rec)
	defer sys.Close()
	id := startFix(t, sys)

	if err := sys.Fail(ctx, id, "wrap", "ann", "not even running"); !errors.Is(err, adept2.ErrConflict) {
		t.Fatalf("failing a non-running node: %v, want conflict", err)
	}
	if err := sys.Fail(ctx, id, "fix", "ann", "boom"); err != nil {
		t.Fatal(err)
	}
	// The rejected Fail consulted the policy too (decide-before-submit),
	// so two exceptions were presented; only the second was journaled.
	if len(seen) != 2 {
		t.Fatalf("policy consulted %d times, want 2", len(seen))
	}
	x := seen[1]
	if x.Kind != adept2.ActivityFailed || x.Node != "fix" || x.Failures != 1 {
		t.Fatalf("exception presented to policy: %+v", x)
	}
	if x.Err == nil || fmt.Sprint(x.Err) == "" {
		t.Fatal("exception lacks its taxonomy error")
	}
}

// TestEscalationBothCanAct pins the both-can-act escalation policy knob
// and its recovery round-trip. The repair schema escalates fix (role
// clerk = {ann, cyn}) to sales = {ann, dan}. Under the default policy
// the escalation offer *replaces* the original role, so cyn loses sight
// of the item; under WithEscalationBothCanAct the offer is the union of
// both roles and cyn keeps it. The knob is construction-time state, so
// a journal replayed through a both-can-act system must rebuild the
// union offer — cyn's item has to survive close/reopen.
func TestEscalationBothCanAct(t *testing.T) {
	ctx := context.Background()

	openBoth := func(path string, clk *testClock) *adept2.System {
		t.Helper()
		sys, err := adept2.Open(path,
			adept2.WithOrg(sim.Org()),
			adept2.WithClock(clk.Now),
			adept2.WithCheckpointing(adept2.CheckpointConfig{Every: -1}),
			adept2.WithEscalationBothCanAct(),
		)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	expire := func(sys *adept2.System, clk *testClock) string {
		t.Helper()
		id := startFix(t, sys)
		clk.advance(3 * time.Minute)
		rep, err := sys.SweepDeadlines(ctx, clk.Now())
		if err != nil || rep.Timeouts != 1 {
			t.Fatalf("sweep: %v, timeouts %d", err, rep.Timeouts)
		}
		return id
	}

	t.Run("default-replaces", func(t *testing.T) {
		clk := newTestClock()
		sys := openRepair(t, filepath.Join(t.TempDir(), "wal"), clk, nil)
		defer sys.Close()
		id := expire(sys, clk)
		if !hasItem(sys, "dan", id, "fix") {
			t.Fatal("escalation role not offered")
		}
		if hasItem(sys, "cyn", id, "fix") {
			t.Fatal("default escalation must replace the original role: cyn (clerk, not sales) still sees the item")
		}
	})

	t.Run("union-survives-recovery", func(t *testing.T) {
		clk := newTestClock()
		path := filepath.Join(t.TempDir(), "wal")
		sys := openBoth(path, clk)
		id := expire(sys, clk)
		for _, u := range []string{"ann", "cyn", "dan"} {
			if !hasItem(sys, u, id, "fix") {
				t.Fatalf("both-can-act: %s not offered the escalated item", u)
			}
		}
		if hasItem(sys, "bob", id, "fix") {
			t.Fatal("both-can-act leaked the item outside clerk ∪ sales")
		}

		// Recovery replays the journaled timeout through a system built
		// with the same knob: the union offer must be reconstructed.
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		sys = openBoth(path, clk)
		defer sys.Close()
		inst, _ := sys.Instance(id)
		if !inst.Escalated("fix") {
			t.Fatal("escalation lost in recovery")
		}
		for _, u := range []string{"ann", "cyn", "dan"} {
			if !hasItem(sys, u, id, "fix") {
				t.Fatalf("both-can-act after recovery: %s lost the escalated item", u)
			}
		}
		// The escalated offer is actionable, not cosmetic: cyn — visible
		// only under both-can-act — completes the still-running activity.
		if err := sys.Complete(id, "fix", "cyn", nil); err != nil {
			t.Fatal(err)
		}
	})
}
