// Package arena provides the block-carve allocation pooling the dense
// remap paths share: loops that hand a fresh fixed-size array to each of
// many consumers (marking remaps, stats rebinds during migration) carve
// the arrays out of block allocations instead of paying one make per
// consumer.
package arena

// Carve returns a zeroed full-capacity chunk of n elements, refilling the
// arena with a block sized for ~16 such chunks when it runs dry. Chunks
// are handed off for good — the arena only moves forward — so the make's
// zeroing suffices and no ownership tracking is needed.
func Carve[T any](arena *[]T, n int) []T {
	if len(*arena) < n {
		*arena = make([]T, 16*n)
	}
	s := (*arena)[:n:n]
	*arena = (*arena)[n:]
	return s
}
