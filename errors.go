package adept2

import (
	"context"
	"errors"

	"adept2/internal/fault"
)

// Code classifies a command failure. Every error returned by the façade's
// mutation API (Submit, SubmitAsync, SubmitBatch, and the method wrappers
// over them) carries exactly one code; errors.Is against the Err*
// sentinels matches by code, so callers branch on the class without
// parsing messages.
type Code string

const (
	// CodeInternal covers unclassified failures: I/O errors, corruption,
	// bugs. Retrying without intervention is unlikely to help.
	CodeInternal Code = "internal"
	// CodeInvalid marks malformed or unsatisfiable commands (bad
	// arguments, missing mandatory inputs, unknown change operations).
	CodeInvalid Code = "invalid"
	// CodeNotFound marks commands naming unknown entities (instances,
	// schemas, nodes, process types, work items, users).
	CodeNotFound Code = "not_found"
	// CodeConflict marks commands contradicting current state (duplicate
	// IDs, a node not in the required state, resuming a running
	// instance).
	CodeConflict Code = "conflict"
	// CodeDenied marks authorization failures (role mismatches, claiming
	// a work item without being a candidate).
	CodeDenied Code = "denied"
	// CodeSuspended marks user operations refused because the instance is
	// suspended (Resume it first).
	CodeSuspended Code = "suspended"
	// CodeCompleted marks operations refused because the instance already
	// finished.
	CodeCompleted Code = "completed"
	// CodeNotCompliant marks change refusals by the ADEPT2 correctness
	// criterion: structural conflicts, violated state conditions, undo
	// past progress.
	CodeNotCompliant Code = "not_compliant"
	// CodeVersionSkew marks version-ordering violations: deploying a
	// stale schema version, opening a layout with a conflicting shard
	// count (reshard offline instead).
	CodeVersionSkew Code = "version_skew"
	// CodeWedged marks a stuck durability pipeline: a shard committer
	// with a sticky fsync failure or a persistently failing background
	// checkpoint (surfaced by Health and by receipts).
	CodeWedged Code = "wedged"
	// CodeUnrecoverable marks Open refusing to rebuild state from damaged
	// durability artifacts (truncated journals, compacted journals
	// without a bridging snapshot, dangling epochs).
	CodeUnrecoverable Code = "unrecoverable"
	// CodeCanceled marks a context cancellation. For Submit and
	// Receipt.Wait the command may still have been applied and journaled
	// — only the durability wait was abandoned.
	CodeCanceled Code = "canceled"
	// CodeFailed marks a process-level activity failure: the exception a
	// FailActivity command records, surfaced on Exception.Err so policies
	// and observers can branch with errors.Is(err, ErrFailed).
	CodeFailed Code = "failed"
	// CodeTimeout marks a deadline expiry: a running activity exceeded
	// its armed deadline and was escalated.
	CodeTimeout Code = "timeout"
)

// Error is the typed failure of a command: the class, the command that
// failed, and (for instance-scoped commands) the instance it targeted.
// Error renders the underlying message unchanged and unwraps to it, so
// message matching and errors.Is against deeper causes keep working;
// errors.Is against the Err* sentinels matches the Code.
type Error struct {
	// Code is the failure class.
	Code Code
	// Op names the command that failed (its CommandName), or the façade
	// entry point for non-command failures ("open", "claim", "health").
	Op string
	// Instance is the targeted instance ID, when the command had one.
	Instance string
	// Applied reports that the command's engine mutation DID happen
	// despite the error: journaling failed after the apply, or a
	// durability wait was abandoned/wedged. The in-memory state changed
	// while durability is in doubt — callers reconcile instead of
	// retrying blindly.
	Applied bool
	// Result carries the applied command's result when Applied (e.g. the
	// *MigrationReport of an Evolve), so the outcome of the mutation is
	// not lost with the error. Ignored by Is matching.
	Result any
	// Err is the underlying cause.
	Err error
}

// Error renders the underlying message (unchanged from pre-taxonomy
// releases); a bare sentinel renders its code.
func (e *Error) Error() string {
	if e.Err != nil {
		return e.Err.Error()
	}
	return "adept2: " + string(e.Code)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches another *Error treating its zero fields as wildcards, so
// errors.Is(err, ErrNotFound) matches any not-found failure while
// errors.Is(err, &Error{Code: CodeNotFound, Instance: "inst-000001"})
// narrows to one instance.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return (t.Code == "" || t.Code == e.Code) &&
		(t.Op == "" || t.Op == e.Op) &&
		(t.Instance == "" || t.Instance == e.Instance)
}

// Sentinels for errors.Is, one per Code.
var (
	ErrInternal      = &Error{Code: CodeInternal}
	ErrInvalid       = &Error{Code: CodeInvalid}
	ErrNotFound      = &Error{Code: CodeNotFound}
	ErrConflict      = &Error{Code: CodeConflict}
	ErrDenied        = &Error{Code: CodeDenied}
	ErrSuspended     = &Error{Code: CodeSuspended}
	ErrCompleted     = &Error{Code: CodeCompleted}
	ErrNotCompliant  = &Error{Code: CodeNotCompliant}
	ErrVersionSkew   = &Error{Code: CodeVersionSkew}
	ErrWedged        = &Error{Code: CodeWedged}
	ErrUnrecoverable = &Error{Code: CodeUnrecoverable}
	ErrCanceled      = &Error{Code: CodeCanceled}
	ErrFailed        = &Error{Code: CodeFailed}
	ErrTimeout       = &Error{Code: CodeTimeout}
)

// kindCodes maps the internal fault classification onto the public codes.
var kindCodes = map[fault.Kind]Code{
	fault.Internal:      CodeInternal,
	fault.Invalid:       CodeInvalid,
	fault.NotFound:      CodeNotFound,
	fault.Conflict:      CodeConflict,
	fault.Denied:        CodeDenied,
	fault.Suspended:     CodeSuspended,
	fault.Completed:     CodeCompleted,
	fault.NotCompliant:  CodeNotCompliant,
	fault.VersionSkew:   CodeVersionSkew,
	fault.Unrecoverable: CodeUnrecoverable,
	fault.Failed:        CodeFailed,
	fault.Timeout:       CodeTimeout,
}

// wrapErr classifies an internal error at the façade boundary. An error
// that already carries a taxonomy code passes through unchanged; context
// cancellations map to CodeCanceled; everything else takes the code of
// its fault kind (CodeInternal when untagged).
func wrapErr(op, instance string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	code := kindCodes[fault.KindOf(err)]
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = CodeCanceled
	}
	return &Error{Code: code, Op: op, Instance: instance, Err: err}
}
