// Package monitor renders schemas, instance markings, and migration
// reports as text — the ADEPT2 demo's monitoring component (Fig. 3 of the
// paper), re-imagined for terminals instead of a GUI.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/state"
)

// RenderSchema renders the schema as a topologically ordered node listing
// with edges and data flow.
func RenderSchema(v model.SchemaView) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s (type %s, version %d)\n", v.SchemaID(), v.TypeName(), v.Version())
	order, err := graph.TopoOrder(v, graph.Control)
	if err != nil {
		order = v.NodeIDs()
	}
	for _, id := range order {
		n, _ := v.Node(id)
		var attrs []string
		if n.Role != "" {
			attrs = append(attrs, "role="+n.Role)
		}
		if n.Auto {
			attrs = append(attrs, "auto")
		}
		if n.DecisionElement != "" {
			attrs = append(attrs, "decides-on="+n.DecisionElement)
		}
		attr := ""
		if len(attrs) > 0 {
			attr = " [" + strings.Join(attrs, ", ") + "]"
		}
		fmt.Fprintf(&b, "  %-12s %s%s\n", n.Type, id, attr)
		for _, e := range v.OutEdges(id) {
			switch e.Type {
			case model.EdgeControl:
				if n.Type == model.NodeXORSplit {
					fmt.Fprintf(&b, "      --%d--> %s\n", e.Code, e.To)
				} else {
					fmt.Fprintf(&b, "      -----> %s\n", e.To)
				}
			case model.EdgeSync:
				fmt.Fprintf(&b, "      ~sync~> %s\n", e.To)
			case model.EdgeLoop:
				fmt.Fprintf(&b, "      =loop=> %s\n", e.To)
			}
		}
	}
	if des := v.DataEdges(); len(des) > 0 {
		b.WriteString("  data flow:\n")
		for _, de := range des {
			fmt.Fprintf(&b, "      %s\n", de)
		}
	}
	return b.String()
}

// RenderInstance renders the marking of an instance: one line per node
// with a non-default state, plus progress statistics.
func RenderInstance(inst *engine.Instance) string {
	var b strings.Builder
	v := inst.View()
	m := inst.MarkingSnapshot()
	status := "running"
	if inst.Done() {
		status = "completed"
	}
	bias := ""
	if inst.Biased() {
		ops := inst.BiasOps()
		strs := make([]string, len(ops))
		for i, op := range ops {
			strs[i] = op.String()
		}
		bias = " biased{" + strings.Join(strs, "; ") + "}"
	}
	fmt.Fprintf(&b, "instance %s on %s v%d (%s)%s\n", inst.ID(), inst.TypeName(), inst.Version(), status, bias)
	order, err := graph.TopoOrder(v, graph.Control)
	if err != nil {
		order = v.NodeIDs()
	}
	for _, id := range order {
		if s := m.Node(id); s != state.NotActivated {
			fmt.Fprintf(&b, "  %-20s %s\n", id, s)
		}
	}
	return b.String()
}

// FormatReport renders a migration report in the shape of the paper's
// Fig. 3 window: a summary followed by per-instance rows with conflict
// details for the instances that stay behind.
func FormatReport(r *evolution.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "migration report: %s v%d -> v%d (%s check, %s)\n",
		r.TypeName, r.FromVersion, r.ToVersion, r.Options.Mode, r.Options.Adapt)
	fmt.Fprintf(&b, "  instances considered: %d, elapsed: %s\n", r.Total(), r.Elapsed.Round(1000))
	for _, o := range evolution.Outcomes() {
		if n := r.Count(o); n > 0 {
			fmt.Fprintf(&b, "  %-20s %d\n", o.String()+":", n)
		}
	}
	b.WriteString("  ----\n")
	for _, res := range r.Results {
		line := fmt.Sprintf("  %-12s %-20s", res.Instance, res.Outcome)
		if res.Biased {
			line += " (ad-hoc modified)"
		}
		if res.Detail != "" {
			line += " " + res.Detail
		}
		b.WriteString(strings.TrimRight(line, " ") + "\n")
	}
	return b.String()
}

// Row is one line of a results table emitted by the experiment harness.
type Row struct {
	Label  string
	Values []string
}

// WriteTable renders rows as an aligned text table with a header.
func WriteTable(w io.Writer, headers []string, rows []Row) {
	widths := make([]int, len(headers)+1)
	for _, r := range rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, vx := range r.Values {
			if i+1 < len(widths) && len(vx) > widths[i+1] {
				widths[i+1] = len(vx)
			}
		}
	}
	for i, h := range headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	var line []string
	for i, h := range headers {
		line = append(line, pad(h, widths[i]))
	}
	fmt.Fprintln(w, strings.Join(line, "  "))
	for _, r := range rows {
		cells := []string{pad(r.Label, widths[0])}
		for i, vx := range r.Values {
			cw := 0
			if i+1 < len(widths) {
				cw = widths[i+1]
			}
			cells = append(cells, pad(vx, cw))
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV emits rows as CSV (for plotting the experiment outputs).
func WriteCSV(w io.Writer, headers []string, rows []Row) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(append([]string{r.Label}, r.Values...), ","))
	}
}

// SummarizeWorklists renders the worklists of all users, sorted.
func SummarizeWorklists(e *engine.Engine) string {
	var b strings.Builder
	users := e.Org().Users()
	sort.Strings(users)
	for _, u := range users {
		items := e.WorkItems(u)
		if len(items) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", u)
		for _, it := range items {
			fmt.Fprintf(&b, "  [%s] %s/%s (%s, role %s)\n", it.ID, it.Instance, it.Node, it.State, it.Role)
		}
	}
	if b.Len() == 0 {
		return "no work items\n"
	}
	return b.String()
}
