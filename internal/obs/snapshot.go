package obs

import "sort"

// Snapshot is the typed, JSON-ready point-in-time copy of a system's
// metrics. Set.Snapshot fills the families the Set owns; the facade
// completes the parts only it can see (engine gauges, shard depths,
// health, snapshot-store byte counters, the trace dump) before handing
// it out through System.Metrics and the HTTP endpoints.
type Snapshot struct {
	Ops        map[string]OpSnapshot `json:"ops"`
	Batch      BatchSnapshot         `json:"batch"`
	Shards     []ShardSnapshot       `json:"shards,omitempty"`
	Committer  CommitterSnapshot     `json:"committer"`
	Checkpoint CheckpointSnapshot    `json:"checkpoint"`
	Recovery   RecoverySnapshot      `json:"recovery"`
	Exception  ExceptionSnapshot     `json:"exception"`
	RPC        RPCSnapshot           `json:"rpc"`
	Engine     EngineSnapshot        `json:"engine"`
	Health     HealthSnapshot        `json:"health"`
	Traces     []Span                `json:"traces,omitempty"`
}

// OpSnapshot is one command op's outcome family.
type OpSnapshot struct {
	// OK counts successful applications (singular + batched); Batched
	// is the subset applied inside SubmitBatch runs, so
	// OK-Batched == Latency.Count.
	OK      int64             `json:"ok"`
	Batched int64             `json:"batched,omitempty"`
	Errors  map[string]int64  `json:"errors,omitempty"`
	Latency HistogramSnapshot `json:"latency"`
}

// BatchSnapshot is the SubmitBatch family.
type BatchSnapshot struct {
	Size  HistogramSnapshot `json:"size"`
	Nanos HistogramSnapshot `json:"nanos"`
}

// ShardSnapshot is one durability shard's live view.
type ShardSnapshot struct {
	Shard int `json:"shard"`
	// Appends counts live-path records staged on this shard since the
	// Set was installed (replay records never count).
	Appends int64 `json:"appends"`
	// Seq is the shard journal's head sequence number; Depth is the
	// staged-but-unflushed backlog (Seq - flushed).
	Seq    int  `json:"seq"`
	Depth  int  `json:"depth"`
	Wedged bool `json:"wedged,omitempty"`
}

// CommitterSnapshot is the group-commit pipeline family (aggregated
// across shard committers).
type CommitterSnapshot struct {
	Fsync        HistogramSnapshot `json:"fsync"`
	BatchRecords HistogramSnapshot `json:"batchRecords"`
	FlushRetries int64             `json:"flushRetries"`
	Wedges       int64             `json:"wedges"`
	Heals        int64             `json:"heals"`
}

// CheckpointSnapshot covers snapshot writes and the stores' byte
// counters.
type CheckpointSnapshot struct {
	Count        int64             `json:"count"`
	Failures     int64             `json:"failures"`
	Nanos        HistogramSnapshot `json:"nanos"`
	BytesWritten int64             `json:"bytesWritten"`
	BytesRead    int64             `json:"bytesRead"`
}

// RecoverySnapshot describes the Open-time recovery that preceded this
// Set's installation.
type RecoverySnapshot struct {
	Count       int64 `json:"count"`
	Nanos       int64 `json:"nanos"`
	Replayed    int64 `json:"replayed"`
	Fallbacks   int64 `json:"fallbacks"`
	FullReplays int64 `json:"fullReplays"`
}

// ExceptionSnapshot is the fault-tolerance loop family. Failures,
// Timeouts, and Retries are the ok counts of the fail/timeout/retry
// ops (filled by the facade from the outcome matrix).
type ExceptionSnapshot struct {
	Failures      int64             `json:"failures"`
	Timeouts      int64             `json:"timeouts"`
	Retries       int64             `json:"retries"`
	Escalations   int64             `json:"escalations"`
	Actions       map[string]int64  `json:"actions,omitempty"`
	Compensated   int64             `json:"compensated"`
	Sweeps        int64             `json:"sweeps"`
	SweepErrors   int64             `json:"sweepErrors"`
	SweepNanos    HistogramSnapshot `json:"sweepNanos"`
	SweepLagNanos int64             `json:"sweepLagNanos"`
}

// RPCSnapshot is the networked command plane's family. Endpoints holds
// only endpoints that served at least one request, keeping systems
// without an RPC server small.
type RPCSnapshot struct {
	Endpoints    map[string]RPCEndpointSnapshot `json:"endpoints,omitempty"`
	OpenStreams  int64                          `json:"openStreams"`
	StreamEvents int64                          `json:"streamEvents"`
	DecodeErrors int64                          `json:"decodeErrors"`
}

// RPCEndpointSnapshot is one wire endpoint's request family.
type RPCEndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Failures int64             `json:"failures,omitempty"`
	Latency  HistogramSnapshot `json:"latency"`
}

// EngineSnapshot is the engine's instantaneous gauges (facade-filled).
type EngineSnapshot struct {
	Instances      int `json:"instances"`
	WorklistDepth  int `json:"worklistDepth"`
	OpenExceptions int `json:"openExceptions"`
}

// HealthSnapshot folds HealthInfo into the scrapeable plane
// (facade-filled).
type HealthSnapshot struct {
	Wedged        bool   `json:"wedged"`
	WedgedShards  []int  `json:"wedgedShards,omitempty"`
	CheckpointErr string `json:"checkpointErr,omitempty"`
	CleanupErrs   int64  `json:"cleanupErrs"`
	FlushRetries  int64  `json:"flushRetries"`
}

// Snapshot copies the Set-owned families. A nil Set snapshots empty
// (but non-nil maps, so consumers need no guards).
func (s *Set) Snapshot() *Snapshot {
	snap := &Snapshot{Ops: map[string]OpSnapshot{}}
	if s == nil {
		return snap
	}
	for i, op := range s.Ops {
		o := OpSnapshot{
			OK:      s.outcomes[i*len(s.Codes)].Load(),
			Batched: s.batched[i].Load(),
			Latency: s.SubmitLatency[i].Snapshot(),
		}
		for c := 1; c < len(s.Codes); c++ {
			if n := s.outcomes[i*len(s.Codes)+c].Load(); n > 0 {
				if o.Errors == nil {
					o.Errors = map[string]int64{}
				}
				o.Errors[s.Codes[c]] = n
			}
		}
		if o.OK == 0 && o.Errors == nil {
			continue // never submitted: keep the snapshot small
		}
		snap.Ops[op] = o
	}
	snap.Batch = BatchSnapshot{Size: s.BatchSize.Snapshot(), Nanos: s.BatchNanos.Snapshot()}
	snap.Shards = make([]ShardSnapshot, len(s.shardAppends))
	for k := range s.shardAppends {
		snap.Shards[k] = ShardSnapshot{Shard: k, Appends: s.shardAppends[k].Load()}
	}
	snap.Committer = CommitterSnapshot{
		Fsync:        s.Committer.FsyncNanos.Snapshot(),
		BatchRecords: s.Committer.BatchRecords.Snapshot(),
		FlushRetries: s.Committer.FlushRetries.Load(),
		Wedges:       s.Committer.Wedges.Load(),
		Heals:        s.Committer.Heals.Load(),
	}
	snap.Checkpoint = CheckpointSnapshot{
		Count:    s.Checkpoint.Count.Load(),
		Failures: s.Checkpoint.Failures.Load(),
		Nanos:    s.Checkpoint.Nanos.Snapshot(),
	}
	snap.Recovery = RecoverySnapshot{
		Count:       s.Recovery.Count.Load(),
		Nanos:       s.Recovery.Nanos.Load(),
		Replayed:    s.Recovery.Replayed.Load(),
		Fallbacks:   s.Recovery.Fallbacks.Load(),
		FullReplays: s.Recovery.FullReplays.Load(),
	}
	x := ExceptionSnapshot{
		Escalations:   s.Exception.Escalations.Load(),
		Compensated:   s.Exception.Compensated.Load(),
		Sweeps:        s.Exception.Sweeps.Load(),
		SweepErrors:   s.Exception.SweepErrors.Load(),
		SweepNanos:    s.Exception.SweepNanos.Snapshot(),
		SweepLagNanos: s.Exception.SweepLagNanos.Load(),
	}
	for i := range s.Exception.Actions {
		if n := s.Exception.Actions[i].Load(); n > 0 {
			if x.Actions == nil {
				x.Actions = map[string]int64{}
			}
			x.Actions[ActionNames[i]] = n
		}
	}
	snap.Exception = x
	snap.RPC = RPCSnapshot{
		OpenStreams:  s.RPC.OpenStreams.Load(),
		StreamEvents: s.RPC.StreamEvents.Load(),
		DecodeErrors: s.RPC.DecodeErrors.Load(),
	}
	for i := range s.RPC.requests {
		n := s.RPC.requests[i].Load()
		if n == 0 {
			continue
		}
		if snap.RPC.Endpoints == nil {
			snap.RPC.Endpoints = map[string]RPCEndpointSnapshot{}
		}
		snap.RPC.Endpoints[RPCEndpoints[i]] = RPCEndpointSnapshot{
			Requests: n,
			Failures: s.RPC.failures[i].Load(),
			Latency:  s.RPC.Latency[i].Snapshot(),
		}
	}
	traces := s.Ring.Snapshot()
	sort.Slice(traces, func(i, j int) bool { return traces[i].SubmitNanos < traces[j].SubmitNanos })
	snap.Traces = traces
	return snap
}
