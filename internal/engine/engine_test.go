package engine

import (
	"strings"
	"testing"

	"adept2/internal/model"
	"adept2/internal/org"
	"adept2/internal/state"
)

// demoOrg returns users covering the online-order roles.
func demoOrg(t *testing.T) *org.Model {
	t.Helper()
	m := org.NewModel()
	for _, u := range []*org.User{
		{ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales"}},
		{ID: "bob", Name: "Bob", Roles: []string{"warehouse", "courier"}},
	} {
		if err := m.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// onlineOrder builds the paper's Fig. 1 schema (see verify tests).
func onlineOrder(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("online_order")
	b.DataElement("order", model.TypeString)
	get := b.Activity("get_order", "Get Order", model.WithRole("clerk"))
	branchA := b.Seq(
		b.Activity("collect_data", "Collect Data", model.WithRole("clerk")),
		b.Activity("confirm_order", "Confirm Order", model.WithRole("sales")),
	)
	branchB := b.Seq(
		b.Activity("compose_order", "Compose Order", model.WithRole("warehouse")),
		b.Activity("pack_goods", "Pack Goods", model.WithRole("warehouse")),
	)
	deliver := b.Activity("deliver_goods", "Deliver Goods", model.WithRole("courier"))
	b.Write("get_order", "order", "out")
	b.Read("confirm_order", "order", "in", true)
	b.Read("compose_order", "order", "in", true)
	s, err := b.Build(b.Seq(get, b.Parallel(branchA, branchB), deliver))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(demoOrg(t))
	if err := e.Deploy(onlineOrder(t)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return e
}

func mustComplete(t *testing.T, e *Engine, inst, node, user string, out map[string]any, opts ...CompleteOption) {
	t.Helper()
	if err := e.CompleteActivity(inst, node, user, out, opts...); err != nil {
		t.Fatalf("complete %s: %v", node, err)
	}
}

func TestDeployValidation(t *testing.T) {
	e := New(nil)
	s := onlineOrder(t)
	if err := e.Deploy(s); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if err := e.Deploy(s); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
	// Older version must be rejected.
	old := model.NewVersionBuilder("online_order", 0)
	if _, err := old.Build(old.Activity("a", "A", model.WithRole("r"))); err != nil {
		t.Fatal(err)
	}
	// Version 0 is not newer than 1 — but builder made version 0 schema;
	// deploy must reject it.
	bad := model.NewVersionBuilder("online_order", 1)
	s2, err := bad.Build(bad.Activity("a", "A", model.WithRole("r")))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Deploy(s2); err == nil {
		t.Fatal("non-increasing version must fail")
	}
	// Broken schema must be rejected by verification.
	broken := model.NewSchema("x", "broken", 1)
	if err := broken.AddNode(&model.Node{ID: "a", Type: model.NodeActivity}); err != nil {
		t.Fatal(err)
	}
	if err := e.Deploy(broken); err == nil || !strings.Contains(err.Error(), "verify") {
		t.Fatalf("expected verification failure, got %v", err)
	}
	if got := e.Types(); len(got) != 1 || got[0] != "online_order" {
		t.Fatalf("Types = %v", got)
	}
	if got := e.Versions("online_order"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Versions = %v", got)
	}
	if e.LatestVersion("online_order") != 1 || e.LatestVersion("nope") != 0 {
		t.Fatal("LatestVersion")
	}
}

func TestInstanceExecutionEndToEnd(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if inst.Version() != 1 || inst.TypeName() != "online_order" {
		t.Fatal("instance metadata")
	}
	// get_order is the only offered item, visible to ann (clerk).
	items := e.WorkItems("ann")
	if len(items) != 1 || items[0].Node != "get_order" {
		t.Fatalf("ann's worklist = %v", items)
	}
	if len(e.WorkItems("bob")) != 0 {
		t.Fatal("bob should see nothing yet")
	}

	// Claim, start, complete get_order.
	if err := e.Claim(items[0].ID, "ann"); err != nil {
		t.Fatal(err)
	}
	if err := e.StartActivity(inst.ID(), "get_order", "ann"); err != nil {
		t.Fatal(err)
	}
	if inst.NodeState("get_order") != state.Running {
		t.Fatal("get_order should be running")
	}
	mustComplete(t, e, inst.ID(), "get_order", "ann", map[string]any{"out": "order-77"})

	// The AND split fires automatically; both branch heads are offered.
	if inst.NodeState("collect_data") != state.Activated || inst.NodeState("compose_order") != state.Activated {
		t.Fatal("branch heads should be activated")
	}
	if len(e.WorkItems("ann")) != 1 || len(e.WorkItems("bob")) != 1 {
		t.Fatalf("worklists: ann=%v bob=%v", e.WorkItems("ann"), e.WorkItems("bob"))
	}

	// Reads flow from the data store.
	mustComplete(t, e, inst.ID(), "compose_order", "bob", nil)
	ev := inst.HistoryEvents()
	var sawRead bool
	for _, h := range ev {
		if h.Node == "compose_order" && h.Reads["in"] == "order-77" {
			sawRead = true
		}
	}
	if !sawRead {
		t.Fatalf("compose_order should have read order-77: %v", ev)
	}

	mustComplete(t, e, inst.ID(), "collect_data", "ann", nil)
	mustComplete(t, e, inst.ID(), "confirm_order", "ann", nil)
	mustComplete(t, e, inst.ID(), "pack_goods", "bob", nil)
	// AND join fired automatically; deliver_goods is last.
	mustComplete(t, e, inst.ID(), "deliver_goods", "bob", nil)
	if !inst.Done() {
		t.Fatal("instance should be done")
	}
	if e.Worklist().Len() != 0 {
		t.Fatal("worklist should be empty at completion")
	}
	if err := e.CompleteActivity(inst.ID(), "deliver_goods", "bob", nil); err == nil {
		t.Fatal("completing on a finished instance must fail")
	}
}

func TestRoleEnforcement(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartActivity(inst.ID(), "get_order", "bob"); err == nil {
		t.Fatal("bob lacks the clerk role")
	}
	if err := e.StartActivity(inst.ID(), "get_order", ""); err == nil {
		t.Fatal("anonymous start of role-bound activity must fail")
	}
	if err := e.StartActivity(inst.ID(), "ghost", "ann"); err == nil {
		t.Fatal("unknown node must fail")
	}
	if err := e.StartActivity("nope", "get_order", "ann"); err == nil {
		t.Fatal("unknown instance must fail")
	}
	if err := e.StartActivity(inst.ID(), "collect_data", "ann"); err == nil {
		t.Fatal("not-activated node must fail")
	}
}

func TestMandatoryInputBlocksStart(t *testing.T) {
	// Reader whose writer is skipped would block; here we simply drop the
	// writer's output by violating the protocol: completing get_order
	// without the output is already rejected.
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	err = e.CompleteActivity(inst.ID(), "get_order", "ann", nil)
	if err == nil || !strings.Contains(err.Error(), "missing output") {
		t.Fatalf("expected missing output error, got %v", err)
	}
	// Unknown parameter names are rejected too.
	err = e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "x", "bogus": 1})
	if err == nil || !strings.Contains(err.Error(), "unknown output") {
		t.Fatalf("expected unknown output error, got %v", err)
	}
	// Type mismatches are rejected.
	err = e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": 42})
	if err == nil || !strings.Contains(err.Error(), "not assignable") {
		t.Fatalf("expected coercion error, got %v", err)
	}
}

func TestXORDecisionRouting(t *testing.T) {
	b := model.NewBuilder("route")
	b.DataElement("route", model.TypeInt)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	ch := b.Choice("route",
		b.Activity("x", "X", model.WithRole("clerk")),
		b.Activity("y", "Y", model.WithRole("clerk")),
	)
	s, err := b.Build(b.Seq(init, ch))
	if err != nil {
		t.Fatal(err)
	}
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("route", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustComplete(t, e, inst.ID(), "init", "ann", map[string]any{"r": 1})
	// The XOR split consumed route=1 automatically: y activated, x skipped.
	if inst.NodeState("y") != state.Activated {
		t.Fatalf("y should be activated, is %s", inst.NodeState("y"))
	}
	if inst.NodeState("x") != state.Skipped {
		t.Fatalf("x should be skipped, is %s", inst.NodeState("x"))
	}
	mustComplete(t, e, inst.ID(), "y", "ann", nil)
	if !inst.Done() {
		t.Fatal("instance should be done")
	}
}

func TestXORManualDecisionAndClamping(t *testing.T) {
	b := model.NewBuilder("manual")
	ch := b.Choice("", // manual decision
		b.Activity("x", "X", model.WithRole("clerk")),
		b.Activity("y", "Y", model.WithRole("clerk")),
	)
	s, err := b.Build(ch)
	if err != nil {
		t.Fatal(err)
	}
	var split string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeXORSplit {
			split = n.ID
		}
	}
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("manual", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The manual split waits in activated state.
	if inst.NodeState(split) != state.Activated {
		t.Fatalf("split should wait for manual decision, is %s", inst.NodeState(split))
	}
	// Completing without a decision fails.
	if err := e.CompleteActivity(inst.ID(), split, "", nil); err == nil {
		t.Fatal("xor completion without decision must fail")
	}
	// An unmatched decision code clamps to the lowest branch code.
	mustComplete(t, e, inst.ID(), split, "", nil, WithDecision(42))
	if inst.NodeState("x") != state.Activated {
		t.Fatalf("clamped decision should choose x, x is %s", inst.NodeState("x"))
	}
}

func TestLoopExecution(t *testing.T) {
	b := model.NewBuilder("loop")
	b.DataElement("again", model.TypeBool)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "again", "a")
	work := b.Activity("work", "Work", model.WithRole("clerk"))
	b.Write("work", "again", "more")
	loop := b.Loop(work, "again", 10)
	s, err := b.Build(b.Seq(init, loop))
	if err != nil {
		t.Fatal(err)
	}
	var le string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeLoopEnd {
			le = n.ID
		}
	}
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("loop", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustComplete(t, e, inst.ID(), "init", "ann", map[string]any{"a": true})
	// First iteration: work activated again after loop end auto-decides
	// against the 'again=true' element.
	mustComplete(t, e, inst.ID(), "work", "ann", map[string]any{"more": true})
	if inst.NodeState("work") != state.Activated {
		t.Fatalf("second iteration should re-activate work, is %s", inst.NodeState("work"))
	}
	if inst.LoopIterations(le) != 1 {
		t.Fatalf("loop iterations = %d, want 1", inst.LoopIterations(le))
	}
	// Second iteration exits.
	mustComplete(t, e, inst.ID(), "work", "ann", map[string]any{"more": false})
	if !inst.Done() {
		t.Fatal("instance should be done after loop exit")
	}
	// History keeps both iterations physically.
	var workCompletions int
	for _, ev := range inst.HistoryEvents() {
		if ev.Node == "work" && ev.Kind == 1 {
			workCompletions++
		}
	}
	if workCompletions != 2 {
		t.Fatalf("physical history should keep both iterations, got %d", workCompletions)
	}
}

func TestMaxIterationsCapsLoop(t *testing.T) {
	b := model.NewBuilder("cap")
	b.DataElement("again", model.TypeBool)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "again", "a")
	work := b.Activity("work", "Work", model.WithRole("clerk"))
	loop := b.Loop(work, "again", 3) // element always true, cap 3
	s, err := b.Build(b.Seq(init, loop))
	if err != nil {
		t.Fatal(err)
	}
	e := New(demoOrg(t))
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("cap", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustComplete(t, e, inst.ID(), "init", "ann", map[string]any{"a": true})
	for i := 0; i < 3; i++ {
		if inst.Done() {
			t.Fatalf("done too early at iteration %d", i)
		}
		mustComplete(t, e, inst.ID(), "work", "ann", nil)
	}
	if !inst.Done() {
		t.Fatal("cap must force loop exit after 3 iterations")
	}
}

func TestInstancesEnumeration(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 3; i++ {
		if _, err := e.CreateInstance("online_order", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Instances()); got != 3 {
		t.Fatalf("Instances = %d", got)
	}
	if got := len(e.InstancesOf("online_order", 1)); got != 3 {
		t.Fatalf("InstancesOf v1 = %d", got)
	}
	if got := len(e.InstancesOf("online_order", 2)); got != 0 {
		t.Fatalf("InstancesOf v2 = %d", got)
	}
	if got := len(e.InstancesOf("zz", -1)); got != 0 {
		t.Fatalf("InstancesOf zz = %d", got)
	}
	if _, err := e.CreateInstance("zz", 0); err == nil {
		t.Fatal("unknown type must fail")
	}
	inst := e.Instances()[0]
	if _, ok := e.Instance(inst.ID()); !ok {
		t.Fatal("Instance lookup")
	}
	snap := inst.MarkingSnapshot()
	if snap.Node("get_order") != state.Activated {
		t.Fatal("snapshot state")
	}
	if inst.Biased() || len(inst.BiasOps()) != 0 || inst.Migrations() != 0 {
		t.Fatal("fresh instance must be unbiased")
	}
	fp := inst.Footprint()
	if fp.BiasBytes != 0 || fp.StateBytes == 0 {
		t.Fatalf("footprint = %+v", fp)
	}
}
