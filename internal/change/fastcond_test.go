package change_test

import (
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/sim"
)

// fastCtx captures the instance facets the conditions consult.
func fastCtx(t *testing.T, inst *engine.Instance) *change.Context {
	t.Helper()
	return &change.Context{
		View:    inst.View(),
		Marking: inst.MarkingSnapshot(),
		Stats:   inst.StatsSnapshot(),
		Store:   inst.DataSnapshot(),
	}
}

// stateI1 returns an instance in the Fig. 1 I1 state (confirm_order and
// pack_goods activated, everything before completed).
func stateI1(t *testing.T) (*engine.Engine, *engine.Instance) {
	t.Helper()
	e := newEngine(t)
	inst := freshInstance(t, e)
	if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
		t.Fatal(err)
	}
	return e, inst
}

// stateI3 additionally has pack_goods completed.
func stateI3(t *testing.T) (*engine.Engine, *engine.Instance) {
	t.Helper()
	e := newEngine(t)
	inst := freshInstance(t, e)
	if err := sim.AdvanceOnlineOrderToI3(e, inst); err != nil {
		t.Fatal(err)
	}
	return e, inst
}

func manualNode(id string) *model.Node {
	return &model.Node{ID: id, Name: id, Type: model.NodeActivity, Role: "sales", Template: id}
}

func autoNode(id string) *model.Node {
	return &model.Node{ID: id, Name: id, Type: model.NodeActivity, Auto: true, Template: id}
}

func TestSerialInsertCondition(t *testing.T) {
	_, i1 := stateI1(t)
	_, i3 := stateI3(t)

	// Successor not started: compliant.
	op := &change.SerialInsert{Node: manualNode("x"), Pred: "compose_order", Succ: "pack_goods"}
	if err := op.FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("I1: %v", err)
	}
	// Successor started: conflict.
	if err := op.FastCompliance(fastCtx(t, i3)); err == nil {
		t.Fatal("I3 must conflict")
	}
	// Automatic node: always compliant (replay fires it virtually).
	auto := &change.SerialInsert{Node: autoNode("x"), Pred: "compose_order", Succ: "pack_goods"}
	if err := auto.FastCompliance(fastCtx(t, i3)); err != nil {
		t.Fatalf("auto insert on I3: %v", err)
	}
}

func TestSerialInsertIntoSkippedRegion(t *testing.T) {
	// Build an XOR schema, choose the other branch, then insert into the
	// dead branch: compliant even though the join already fired.
	b := model.NewBuilder("skip")
	ch := b.Choice("",
		b.Seq(b.Activity("x1", "X1", model.WithRole("worker")), b.Activity("x2", "X2", model.WithRole("worker"))),
		b.Activity("y", "Y", model.WithRole("worker")),
	)
	tail := b.Activity("tail", "Tail", model.WithRole("worker"))
	s, err := b.Build(b.Seq(ch, tail))
	if err != nil {
		t.Fatal(err)
	}
	var split string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeXORSplit {
			split = n.ID
		}
	}
	e := engine.New(sim.Org())
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("skip", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), split, "", nil, engine.WithDecision(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "y", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "tail", "ann", nil); err != nil {
		t.Fatal(err)
	}
	// x1 and x2 are skipped; tail (beyond the join) completed. Inserting
	// between x1 and x2 is compliant — dead region.
	op := &change.SerialInsert{Node: manualNode("nx"), Pred: "x1", Succ: "x2"}
	if err := op.FastCompliance(fastCtx(t, inst)); err != nil {
		t.Fatalf("insert into skipped region: %v", err)
	}
}

func TestParallelInsertCondition(t *testing.T) {
	_, i1 := stateI1(t)
	_, i3 := stateI3(t)
	// Region collect_data..confirm_order; the node behind the region is
	// the AND join, which has not fired in I1.
	op := &change.ParallelInsert{Node: manualNode("x"), From: "collect_data", To: "confirm_order"}
	if err := op.FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("I1: %v", err)
	}
	// Around compose_order..pack_goods in I3: pack_goods completed but the
	// AND join still waits on confirm_order — still compliant!
	op2 := &change.ParallelInsert{Node: manualNode("x"), From: "compose_order", To: "pack_goods"}
	if err := op2.FastCompliance(fastCtx(t, i3)); err != nil {
		t.Fatalf("I3 with unfired join: %v", err)
	}
	// Once the join has fired (deliver started), the manual insert
	// conflicts.
	e, late := stateI3(t)
	if err := e.CompleteActivity(late.ID(), "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.StartActivity(late.ID(), "deliver_goods", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := op2.FastCompliance(fastCtx(t, late)); err == nil {
		t.Fatal("fired join must conflict for manual insert")
	}
	// The same insert with an automatic activity is compliant.
	autoOp := &change.ParallelInsert{Node: autoNode("x"), From: "compose_order", To: "pack_goods"}
	if err := autoOp.FastCompliance(fastCtx(t, late)); err != nil {
		t.Fatalf("auto parallel insert: %v", err)
	}
}

func TestConditionalInsertCondition(t *testing.T) {
	// Schema with an int element routing the conditional insert.
	e := newEngine(t)
	inst := freshInstance(t, e)
	// get_order writes "order"; add a flag element via ad-hoc data ops.
	if err := change.ApplyAdHoc(inst,
		&change.AddDataElement{Element: &model.DataElement{ID: "flag", Type: model.TypeInt}},
		&change.AddDataEdge{Edge: &model.DataEdge{Activity: "get_order", Element: "flag", Access: model.Write, Parameter: "flag"}},
	); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o", "flag": 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	// confirm_order started with flag=0: the condition routes around the
	// inserted activity -> compliant even though succ started.
	op := &change.ConditionalInsert{Node: manualNode("x"), Pred: "collect_data", Succ: "confirm_order", DecisionElement: "flag"}
	if err := op.FastCompliance(fastCtx(t, inst)); err != nil {
		t.Fatalf("flag=0: %v", err)
	}

	// Same scenario with flag=1: the condition selects the activity ->
	// conflict for a manual node, fine for an automatic one.
	inst2 := freshInstance(t, e)
	if err := change.ApplyAdHoc(inst2,
		&change.AddDataElement{Element: &model.DataElement{ID: "flag", Type: model.TypeInt}},
		&change.AddDataEdge{Edge: &model.DataEdge{Activity: "get_order", Element: "flag", Access: model.Write, Parameter: "flag"}},
	); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst2.ID(), "get_order", "ann", map[string]any{"out": "o", "flag": 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst2.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst2.ID(), "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := op.FastCompliance(fastCtx(t, inst2)); err == nil {
		t.Fatal("flag=1 with manual node must conflict")
	}
	autoOp := &change.ConditionalInsert{Node: autoNode("x"), Pred: "collect_data", Succ: "confirm_order", DecisionElement: "flag"}
	if err := autoOp.FastCompliance(fastCtx(t, inst2)); err != nil {
		t.Fatalf("flag=1 with auto node: %v", err)
	}
	// Succ not started at all: compliant regardless.
	fresh := freshInstance(t, e)
	if err := op.FastCompliance(fastCtx(t, fresh)); err != nil {
		t.Fatalf("fresh: %v", err)
	}
}

func TestDeleteActivityCondition(t *testing.T) {
	_, i1 := stateI1(t)
	// Started activity: conflict; activated one: fine.
	if err := (&change.DeleteActivity{ID: "collect_data"}).FastCompliance(fastCtx(t, i1)); err == nil {
		t.Fatal("completed activity must conflict")
	}
	if err := (&change.DeleteActivity{ID: "confirm_order"}).FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("activated activity: %v", err)
	}
}

func TestMoveActivityCondition(t *testing.T) {
	_, i1 := stateI1(t)
	// Unstarted activity onto an unstarted position: fine.
	mv := &change.MoveActivity{ID: "pack_goods", NewPred: "collect_data", NewSucc: "confirm_order"}
	if err := mv.FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("unstarted move: %v", err)
	}
	// Started activity whose history replays at the new position: moving
	// collect_data (started after get_order completed, completed before
	// confirm_order started) directly behind get_order... its new
	// successor is the AND split, which started *before* collect_data
	// completed -> conflict.
	mv2 := &change.MoveActivity{ID: "collect_data", NewPred: "get_order", NewSucc: "and-split_1"}
	if err := mv2.FastCompliance(fastCtx(t, i1)); err == nil {
		t.Fatal("expected conflict: new successor started before the move target completed")
	}
	// Started activity onto a not-yet-started position whose new pred
	// completed before it started: compose_order between collect_data and
	// confirm_order? collect_data completed (seq 6) before compose_order
	// started (seq 7): compliant.
	mv3 := &change.MoveActivity{ID: "compose_order", NewPred: "collect_data", NewSucc: "confirm_order"}
	if err := mv3.FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("replayable move of started activity: %v", err)
	}
	// Started activity whose new pred never completed: conflict.
	mv4 := &change.MoveActivity{ID: "collect_data", NewPred: "confirm_order", NewSucc: "and-join_2"}
	if err := mv4.FastCompliance(fastCtx(t, i1)); err == nil {
		t.Fatal("expected conflict: new pred not completed before the activity started")
	}
}

func TestInsertSyncEdgeCondition(t *testing.T) {
	_, i1 := stateI1(t)
	// Target not started: fine.
	if err := (&change.InsertSyncEdge{From: "confirm_order", To: "pack_goods"}).FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("unstarted target: %v", err)
	}
	// Target started, source completed before: collect_data completed
	// (seq 6) before compose_order started (seq 7).
	if err := (&change.InsertSyncEdge{From: "collect_data", To: "compose_order"}).FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatalf("ordered completion: %v", err)
	}
	// Target started before source completed: conflict.
	if err := (&change.InsertSyncEdge{From: "confirm_order", To: "compose_order"}).FastCompliance(fastCtx(t, i1)); err == nil {
		t.Fatal("expected conflict: target ran before source")
	}
	// Deleting sync edges never conflicts.
	if err := (&change.DeleteSyncEdge{From: "a", To: "b"}).FastCompliance(fastCtx(t, i1)); err != nil {
		t.Fatal("delete sync edge must always be compliant")
	}
}

func TestSyncEdgeFromSkippedSource(t *testing.T) {
	// The sync source was definitely skipped before the target started:
	// compliant (the edge would have been false-signaled).
	b := model.NewBuilder("skipsync")
	par := b.Parallel(
		b.Seq(
			func() model.Fragment {
				return b.Choice("", b.Activity("x", "X", model.WithRole("worker")), b.Activity("y", "Y", model.WithRole("worker")))
			}(),
			b.Activity("after", "After", model.WithRole("worker")),
		),
		b.Activity("z", "Z", model.WithRole("worker")),
	)
	s, err := b.Build(par)
	if err != nil {
		t.Fatal(err)
	}
	var split string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeXORSplit {
			split = n.ID
		}
	}
	e := engine.New(sim.Org())
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("skipsync", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Choose y (skipping x), then run z.
	if err := e.CompleteActivity(inst.ID(), split, "", nil, engine.WithDecision(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "z", "ann", nil); err != nil {
		t.Fatal(err)
	}
	// x was skipped before z started: sync x ~> z is compliant.
	if err := (&change.InsertSyncEdge{From: "x", To: "z"}).FastCompliance(fastCtx(t, inst)); err != nil {
		t.Fatalf("skipped source: %v", err)
	}
	// y completed after z started? y is not even started: sync y ~> z
	// conflicts (y activated, z completed).
	if err := (&change.InsertSyncEdge{From: "y", To: "z"}).FastCompliance(fastCtx(t, inst)); err == nil {
		t.Fatal("unfinished source with started target must conflict")
	}
}

func TestDataEdgeConditions(t *testing.T) {
	_, i1 := stateI1(t)
	ctx := fastCtx(t, i1)
	// Write edge on a completed activity: conflict.
	w := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "order", Access: model.Write, Parameter: "p"}}
	if err := w.FastCompliance(ctx); err == nil {
		t.Fatal("write edge on completed activity must conflict")
	}
	// Write edge on an activated activity: fine.
	w2 := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "confirm_order", Element: "order", Access: model.Write, Parameter: "p"}}
	if err := w2.FastCompliance(ctx); err != nil {
		t.Fatalf("write edge on activated activity: %v", err)
	}
	// Mandatory read on a started activity whose element held a value at
	// start: fine (order written by get_order before collect_data).
	r := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "order", Access: model.Read, Parameter: "p", Mandatory: true}}
	if err := r.FastCompliance(ctx); err != nil {
		t.Fatalf("read of available value: %v", err)
	}
	// Optional read never conflicts.
	r2 := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "order", Access: model.Read, Parameter: "p2"}}
	if err := r2.FastCompliance(ctx); err != nil {
		t.Fatalf("optional read: %v", err)
	}
	// Deleting the write edge of a completed activity: conflict; of an
	// unstarted one: fine.
	dw := &change.DeleteDataEdge{Key: model.DataEdgeKey{Activity: "get_order", Element: "order", Access: model.Write, Parameter: "out"}}
	if err := dw.FastCompliance(ctx); err == nil {
		t.Fatal("deleting executed write must conflict")
	}
	dr := &change.DeleteDataEdge{Key: model.DataEdgeKey{Activity: "confirm_order", Element: "order", Access: model.Read, Parameter: "in"}}
	if err := dr.FastCompliance(ctx); err != nil {
		t.Fatalf("deleting read edge: %v", err)
	}
	// AddDataElement never conflicts.
	if err := (&change.AddDataElement{Element: &model.DataElement{ID: "n", Type: model.TypeInt}}).FastCompliance(ctx); err != nil {
		t.Fatal("add element must always be compliant")
	}
}

func TestAsOperationsRejectsForeignOps(t *testing.T) {
	ops, err := change.AsOperations(nil)
	if err != nil || len(ops) != 0 {
		t.Fatal("empty bias")
	}
	if _, err := change.AsOperations([]engine.BiasOp{fakeBias{}}); err == nil {
		t.Fatal("foreign bias op must be rejected")
	}
}

type fakeBias struct{}

func (fakeBias) OpName() string                  { return "fake" }
func (fakeBias) ApplyTo(model.MutableView) error { return nil }
func (fakeBias) String() string                  { return "fake" }
