// Package persist implements durable command journaling for the ADEPT2
// runtime: every state-changing command (deploy, instance creation,
// activity completion, ad-hoc change, schema evolution) is appended to a
// newline-delimited JSON write-ahead journal. Recovery replays the journal
// through the public API, reconstructing the exact engine state — the
// substitution for the paper prototype's RDBMS-backed storage layer (see
// DESIGN.md).
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record is one journaled command.
type Record struct {
	// Seq is the journal sequence number (1-based).
	Seq int `json:"seq"`
	// Op names the command (facade-defined, e.g. "deploy", "complete").
	Op string `json:"op"`
	// Args carries the command arguments.
	Args json.RawMessage `json:"args"`
}

// Journal is an append-only command log. It is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	file *os.File // non-nil when backed by a file
	seq  int
	sync bool

	// Append serializes into per-journal buffers (guarded by mu) instead
	// of allocating fresh ones per record; the encoders are lazily bound
	// to the buffers on first use.
	lineBuf bytes.Buffer
	argsBuf bytes.Buffer
	lineEnc *json.Encoder
	argsEnc *json.Encoder
}

// NewJournal wraps an arbitrary writer (tests use a bytes.Buffer).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenJournal opens (or creates) a file-backed journal in append mode. If
// the file already holds records, new sequence numbers continue after the
// highest existing one.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	recs, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{w: f, file: f, sync: true}
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
	}
	return j, nil
}

// SetSync toggles fsync after every append (default true for file-backed
// journals; benchmarks disable it).
func (j *Journal) SetSync(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sync = on
}

// Append journals one command.
func (j *Journal) Append(op string, args any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lineEnc == nil {
		j.lineEnc = json.NewEncoder(&j.lineBuf)
		j.argsEnc = json.NewEncoder(&j.argsBuf)
	}
	j.argsBuf.Reset()
	if err := j.argsEnc.Encode(args); err != nil {
		return fmt.Errorf("persist: marshal %s args: %w", op, err)
	}
	blob := j.argsBuf.Bytes()
	blob = blob[:len(blob)-1] // drop the encoder's trailing newline
	j.seq++
	rec := Record{Seq: j.seq, Op: op, Args: blob}
	j.lineBuf.Reset()
	// Encode appends the newline record terminator itself.
	if err := j.lineEnc.Encode(rec); err != nil {
		j.seq--
		return fmt.Errorf("persist: marshal record: %w", err)
	}
	if _, err := j.w.Write(j.lineBuf.Bytes()); err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	if j.file != nil && j.sync {
		if err := j.file.Sync(); err != nil {
			return fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return nil
}

// Seq returns the sequence number of the last appended record.
func (j *Journal) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close closes a file-backed journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file != nil {
		return j.file.Close()
	}
	return nil
}

// ReadJournal parses all records from a reader. A trailing partial line
// (torn write after a crash) is tolerated and discarded; corruption in the
// middle of the journal is an error.
func ReadJournal(r io.Reader) ([]Record, error) {
	return readAll(r)
}

// LoadJournal reads all records of a journal file. A missing file yields
// an empty journal.
func LoadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: load journal: %w", err)
	}
	defer f.Close()
	return readAll(f)
}

func readAll(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// A malformed line followed by more data is real corruption.
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Possibly a torn final write; decide when we see whether more
			// lines follow.
			pendingErr = fmt.Errorf("persist: corrupt record at line %d: %w", lineNo, err)
			continue
		}
		if want := len(recs) + 1; rec.Seq != want {
			return nil, fmt.Errorf("persist: journal gap at line %d: seq %d, want %d", lineNo, rec.Seq, want)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("persist: read journal: %w", err)
	}
	return recs, nil
}

// Applier replays one journaled command; the facade implements it.
type Applier func(op string, args json.RawMessage) error

// Replay feeds every record to the applier in order.
func Replay(recs []Record, apply Applier) error {
	for _, rec := range recs {
		if err := apply(rec.Op, rec.Args); err != nil {
			return fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	return nil
}
