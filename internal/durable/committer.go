package durable

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adept2/internal/obs"
	"adept2/internal/persist"
)

// CommitterOptions tunes the group-commit flush window.
type CommitterOptions struct {
	// FlushWindow optionally delays each flush so more callers join the
	// batch. The default (0) uses natural batching instead: the duration
	// of the in-flight fsync is the gather window — appends arriving
	// while a flush runs form the next batch, so batch size adapts to
	// load without added latency. Set a positive window only when fsyncs
	// are so fast that batches stay degenerate under real concurrency.
	FlushWindow time.Duration
	// MaxBatch short-circuits a positive FlushWindow: when at least
	// MaxBatch appends are pending, the flusher skips the wait (default
	// 64). Ignored with natural batching.
	MaxBatch int
	// RetryMax bounds how many times a failed flush is retried (with
	// exponential backoff) before the committer wedges. Each retry
	// re-verifies the journal tail and rewrites the batch from the
	// pending buffer (persist.Journal.Flush), so a transient I/O error —
	// a busy device, a momentary ENOSPC — never wedges the committer.
	// Default 4; negative disables retries entirely.
	RetryMax int
	// RetryBase is the first retry's backoff (default 1ms); each further
	// retry doubles it up to RetryCap (default 50ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Metrics, when set, receives the committer's flush telemetry (fsync
	// latency, batch occupancy, retries, wedge/heal transitions). All
	// recording methods are nil-safe, so the zero value costs one branch.
	// Sharded WALs share one CommitterMetrics across their per-shard
	// committers — the families aggregate.
	Metrics *obs.CommitterMetrics
}

func (o *CommitterOptions) defaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.RetryMax == 0 {
		o.RetryMax = 4
	}
	if o.RetryMax < 0 {
		o.RetryMax = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 50 * time.Millisecond
	}
}

// Committer groups concurrent journal appends into shared flushes: each
// Append writes its record into the journal's user-space buffer and blocks
// until one buffered write + one fsync covering it completed (see the
// package documentation for the batching and error semantics). It is safe
// for concurrent use.
type Committer struct {
	j    *persist.Journal
	opts CommitterOptions

	mu      sync.Mutex
	cond    *sync.Cond
	flushed int   // highest seq covered by a successful flush
	err     error // sticky: set on the first flush failure
	closed  bool
	stopped bool // flusher goroutine exited; stragglers flush inline

	// waiters are WaitSeq callers parked on a channel (instead of the
	// cond) so cancellation via context works; resolved whenever flushed
	// advances or the sticky error is set.
	waiters []waiter

	wake chan struct{}
	done chan struct{}

	retries atomic.Int64 // flush attempts beyond the first, across all batches
}

// waiter is one parked WaitSeq call.
type waiter struct {
	seq int
	ch  chan error // buffered(1); receives nil or the sticky error
}

// resolveWaitersLocked completes every parked WaitSeq call the current
// flushed/err state answers. Callers hold c.mu.
func (c *Committer) resolveWaitersLocked() {
	if len(c.waiters) == 0 {
		return
	}
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		switch {
		case c.err != nil:
			w.ch <- c.err
		case c.flushed >= w.seq:
			w.ch <- nil
		default:
			keep = append(keep, w)
		}
	}
	c.waiters = keep
}

// NewCommitter starts a group-commit pipeline over the journal. The
// journal should be opened with persist.OpenJournalBuffered; a sync-per-
// append journal works but double-pays fsyncs.
func NewCommitter(j *persist.Journal, opts CommitterOptions) *Committer {
	opts.defaults()
	c := &Committer{
		j:    j,
		opts: opts,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// Journal returns the underlying journal (read-side accessors like Seq).
func (c *Committer) Journal() *persist.Journal { return c.j }

// Append journals one command and blocks until it is durable (its batch
// was written and fsynced) or the committer failed or closed. The returned
// sequence number is valid iff err is nil.
func (c *Committer) Append(op string, args any) (int, error) {
	return c.AppendEpoch(op, 0, args)
}

// AppendEpoch is Append with an explicit epoch reference on the record
// (sharded data journals tag commands with the control-log position they
// were issued under; see internal/durable/sharded).
func (c *Committer) AppendEpoch(op string, epoch int, args any) (int, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	if c.closed {
		c.mu.Unlock()
		return 0, fmt.Errorf("durable: committer closed")
	}
	c.mu.Unlock()

	// The journal's own lock serializes the record into the shared buffer
	// and assigns the sequence number; holding c.mu here would serialize
	// the JSON encoding too.
	seq, err := c.j.AppendRecord(op, epoch, args)
	if err != nil {
		return 0, err
	}

	// Publish-then-wake: the record (and its seq) is visible in the
	// journal before the wake token lands, so the flusher can never go
	// idle with uncovered work — any token it consumes after this point
	// observes a journal tail that includes the record.
	c.mu.Lock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	for c.flushed < seq && c.err == nil && !c.stopped {
		c.cond.Wait()
	}
	c.mu.Unlock()
	if err := c.settle(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendAsync journals one record and schedules its flush WITHOUT
// blocking until durability: the caller pipelines further appends and
// awaits the returned sequence number with WaitSeq when it needs the
// durability guarantee. Errors of the append itself (encoding, write)
// surface here; flush failures surface from WaitSeq and Err.
func (c *Committer) AppendAsync(op string, epoch int, args any) (int, error) {
	if err := c.admit(); err != nil {
		return 0, err
	}
	seq, err := c.j.AppendRecord(op, epoch, args)
	if err != nil {
		return 0, err
	}
	c.kick()
	return seq, nil
}

// AppendMulti journals a batch of records as one journal write (see
// persist.Journal.AppendMulti) and schedules its flush without waiting:
// one WaitSeq on the returned last sequence number covers the whole
// batch.
func (c *Committer) AppendMulti(recs []persist.Pending) (int, error) {
	if err := c.admit(); err != nil {
		return 0, err
	}
	last, err := c.j.AppendMulti(recs)
	if err != nil {
		return 0, err
	}
	c.kick()
	return last, nil
}

// admit rejects appends on a wedged or closed committer.
func (c *Committer) admit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return fmt.Errorf("durable: committer closed")
	}
	return nil
}

// kick wakes the flusher. The caller's journal append happened before the
// wake token lands (publish-then-wake), so the flusher can never go idle
// with uncovered work.
func (c *Committer) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// WaitSeq blocks until seq is covered by a successful flush, the
// committer wedges (returns the sticky error), or ctx is done (returns
// ctx.Err(); the record stays queued and a later WaitSeq can still await
// it).
func (c *Committer) WaitSeq(ctx context.Context, seq int) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.flushed >= seq {
		c.mu.Unlock()
		return nil
	}
	if c.stopped {
		c.mu.Unlock()
		return c.settle(seq)
	}
	w := waiter{seq: seq, ch: make(chan error, 1)}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	c.kick()
	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// settle resolves a waiter's outcome after its wait loop broke: success
// when a flush covered the sequence, the sticky error when one is set,
// and otherwise — the flusher exited during shutdown before covering a
// straggler that slipped past the closed check — an inline flush.
func (c *Committer) settle(seq int) error {
	c.mu.Lock()
	flushed, err, stopped := c.flushed, c.err, c.stopped
	c.mu.Unlock()
	if flushed >= seq {
		return nil
	}
	if err != nil {
		return err
	}
	if !stopped {
		return nil // unreachable: the wait loop only breaks on one of the three
	}
	ferr := c.flushWithRetry()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ferr != nil {
		c.wedgeLocked(ferr)
		c.resolveWaitersLocked()
		c.cond.Broadcast()
		return c.err
	}
	if seq > c.flushed {
		c.flushed = seq
	}
	c.resolveWaitersLocked()
	c.cond.Broadcast()
	return nil
}

// Err returns the sticky flush error without blocking: nil while the
// committer is healthy, the first exhausted-retry failure once it is
// wedged. Health surfacing (System.Health) polls this instead of waiting
// for the next append to observe the failure.
func (c *Committer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Retries returns how many flush retries (attempts beyond each batch's
// first) have happened over the committer's lifetime — a nonzero count
// with a nil Err means transient I/O errors were absorbed.
func (c *Committer) Retries() int64 { return c.retries.Load() }

// Flushed returns the highest sequence number covered by a successful
// flush — the durable watermark. Seq() - Flushed() is the staged-but-
// unflushed backlog the stats plane reports as append depth.
func (c *Committer) Flushed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushed
}

// flushWithRetry runs Journal.Flush with bounded exponential backoff.
// The journal keeps failed batches in its pending buffer and repairs its
// physical tail before each retry, so every attempt is a complete,
// self-contained redo. Only the final attempt's error escapes (and then
// wedges the committer).
func (c *Committer) flushWithRetry() error {
	err := c.timedFlush()
	backoff := c.opts.RetryBase
	for attempt := 0; err != nil && attempt < c.opts.RetryMax; attempt++ {
		c.retries.Add(1)
		c.opts.Metrics.RetryInc()
		time.Sleep(backoff)
		if backoff *= 2; backoff > c.opts.RetryCap {
			backoff = c.opts.RetryCap
		}
		err = c.timedFlush()
	}
	return err
}

// timedFlush is one flush attempt with its duration (write + fsync)
// observed into the fsync-latency histogram.
func (c *Committer) timedFlush() error {
	m := c.opts.Metrics
	if m == nil {
		return c.j.Flush()
	}
	start := time.Now()
	err := c.j.Flush()
	m.ObserveFsync(time.Since(start).Nanoseconds())
	return err
}

// wedgeLocked installs the sticky flush error (first one wins) and counts
// the wedge transition. Callers hold c.mu.
func (c *Committer) wedgeLocked(ferr error) {
	if c.err != nil {
		return
	}
	c.err = fmt.Errorf("durable: group commit: %w", ferr)
	c.opts.Metrics.WedgeInc()
}

// Heal clears a wedged committer after the fault is gone: the journal
// re-opens its file, verifies and repairs the physical tail, and
// re-flushes the records retained in its pending buffer (so no appended
// record is ever dropped by a wedge/heal cycle). On success the sticky
// error is cleared, parked waiters whose records are now durable resolve,
// and the flusher resumes. The sequence read happens before the heal so
// concurrent post-heal appends are never marked flushed early.
func (c *Committer) Heal() error {
	target := c.j.Seq()
	if err := c.j.Heal(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.err != nil {
		c.opts.Metrics.HealInc()
	}
	c.err = nil
	if target > c.flushed {
		c.flushed = target
	}
	c.resolveWaitersLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.kick()
	return nil
}

// Sync blocks until everything appended so far is durable.
func (c *Committer) Sync() error {
	target := c.j.Seq()
	c.mu.Lock()
	if c.flushed >= target {
		c.mu.Unlock()
		return nil
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
	for c.flushed < target && c.err == nil && !c.stopped {
		c.cond.Wait()
	}
	c.mu.Unlock()
	return c.settle(target)
}

// Close flushes any remaining appends, stops the flusher, and leaves the
// journal open (the owner closes it).
func (c *Committer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.err
	}
	c.closed = true
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// run is the flusher goroutine. Each inner iteration turns every append
// accumulated so far into one buffered write + one fsync and wakes the
// covered callers; appends arriving during the fsync form the next batch
// (natural batching — the fsync latency is the gather window).
func (c *Committer) run() {
	defer func() {
		// Wake any straggler that enqueued after the exit decision; it
		// self-serves its flush in settle. Parked WaitSeq callers have no
		// thread to self-serve with, so any still uncovered (an async
		// append slipping past the exit decision) get one final inline
		// flush here before their channels resolve.
		c.mu.Lock()
		c.stopped = true
		uncovered := false
		for _, w := range c.waiters {
			if c.err == nil && c.flushed < w.seq {
				uncovered = true
			}
		}
		c.mu.Unlock()
		if uncovered {
			target := c.j.Seq()
			ferr := c.flushWithRetry()
			c.mu.Lock()
			if ferr != nil {
				c.wedgeLocked(ferr)
			} else if target > c.flushed {
				c.flushed = target
			}
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.resolveWaitersLocked()
		c.cond.Broadcast()
		c.mu.Unlock()
		close(c.done)
	}()
	for {
		<-c.wake
		for {
			// Yield once so appenders woken by the previous broadcast (or
			// freshly unblocked callers) can enqueue before this batch is
			// cut — essential on few-core hosts where the flusher would
			// otherwise outrun every producer and degrade to batch size 1.
			runtime.Gosched()
			c.mu.Lock()
			flushed, closed, broken := c.flushed, c.closed, c.err != nil
			c.mu.Unlock()
			// The journal tail itself is the work signal: comparing it
			// against flushed can never lose an append the way a separate
			// pending counter could (an append landing mid-flush must not
			// be wiped by the post-flush bookkeeping).
			target := c.j.Seq()
			if target <= flushed || broken {
				if closed {
					return
				}
				break // idle (or sticky-broken): wait for the next wake
			}
			if w := c.opts.FlushWindow; w > 0 && !closed && target-flushed < c.opts.MaxBatch {
				time.Sleep(w)
				target = c.j.Seq() // the window let more appends land
			}

			// Everything appended up to target is covered by this flush;
			// transient failures are retried with backoff before wedging.
			err := c.flushWithRetry()

			c.mu.Lock()
			if err != nil {
				// Sticky failure after exhausting the retry budget: the
				// committer wedges. Waiters on this and all later batches
				// observe the error until Heal clears it.
				c.wedgeLocked(err)
			} else if target > c.flushed {
				c.flushed = target
				c.opts.Metrics.ObserveBatch(int64(target - flushed))
			}
			c.resolveWaitersLocked()
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}
