// Package worklist implements the ADEPT2 worklist manager. When an
// activity becomes activated, a work item is offered to every user whose
// role matches the activity's staff assignment; users claim, start, and
// complete items. Items of skipped, completed, or migrated-away activities
// are withdrawn automatically by the engine.
package worklist

import (
	"fmt"
	"sort"
	"sync"

	"adept2/internal/fault"
)

// ItemState is the lifecycle state of a work item.
type ItemState uint8

const (
	// Offered: visible in the worklists of all candidate users.
	Offered ItemState = iota
	// Claimed: one user reserved the item.
	Claimed
	// InProgress: the activity was started.
	InProgress
)

var itemStateNames = [...]string{
	Offered:    "offered",
	Claimed:    "claimed",
	InProgress: "in-progress",
}

func (s ItemState) String() string {
	if int(s) < len(itemStateNames) {
		return itemStateNames[s]
	}
	return fmt.Sprintf("item-state(%d)", uint8(s))
}

// Item is one unit of offered work.
type Item struct {
	ID        string
	Instance  string
	Node      string
	Role      string
	Offered   []string // candidate user IDs
	ClaimedBy string
	State     ItemState
}

func (i *Item) clone() *Item {
	c := *i
	c.Offered = append([]string(nil), i.Offered...)
	return &c
}

// Manager is a thread-safe worklist registry.
type Manager struct {
	mu     sync.Mutex
	seq    int
	items  map[string]*Item     // item ID -> item
	byNode map[[2]string]string // (instance, node) -> item ID
	// byUser holds each user's visible item IDs: a membership set for
	// O(1) offers/withdrawals plus a lazily rebuilt sorted cache so a
	// page listing is a binary search plus a walk of one page — O(page)
	// while the worklist is read-quiescent, one O(n log n) rebuild on
	// the first read after a write (no worse than gathering and sorting
	// the whole ID set per call, which is what it replaced).
	byUser map[string]*userIndex
	byInst map[string]map[string]bool // instance -> item IDs
}

// userIndex is one user's worklist index.
type userIndex struct {
	members map[string]struct{} // item IDs offered to / claimed by the user
	sorted  []string            // ascending ID cache over members; nil when stale
}

// sortedIDs returns the user's item IDs in ascending order, rebuilding
// the cache if a write invalidated it. Caller holds the manager lock.
func (u *userIndex) sortedIDs() []string {
	if u.sorted == nil {
		u.sorted = make([]string, 0, len(u.members))
		for id := range u.members {
			u.sorted = append(u.sorted, id)
		}
		sort.Strings(u.sorted)
	}
	return u.sorted
}

// NewManager returns an empty worklist manager.
func NewManager() *Manager {
	return &Manager{
		items:  make(map[string]*Item),
		byNode: make(map[[2]string]string),
		byUser: make(map[string]*userIndex),
		byInst: make(map[string]map[string]bool),
	}
}

// addToUser indexes id for user. Caller holds the manager lock.
func (m *Manager) addToUser(user, id string) {
	u := m.byUser[user]
	if u == nil {
		u = &userIndex{members: make(map[string]struct{})}
		m.byUser[user] = u
	}
	u.members[id] = struct{}{}
	u.sorted = nil
}

// removeFromUser drops id from user's index. Caller holds the manager lock.
func (m *Manager) removeFromUser(user, id string) {
	u := m.byUser[user]
	if u == nil {
		return
	}
	delete(u.members, id)
	if len(u.members) == 0 {
		delete(m.byUser, user)
		return
	}
	u.sorted = nil
}

// Offer creates a work item for an activated activity and offers it to the
// candidate users. At most one item exists per (instance, node).
func (m *Manager) Offer(instance, node, role string, users []string) (*Item, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it := m.offerLocked(instance, node, role, users)
	if it == nil {
		return nil, fmt.Errorf("worklist: offer %s/%s: item already exists", instance, node)
	}
	return it.clone(), nil
}

// offerLocked creates and indexes a new item; it returns nil if one
// already exists for (instance, node).
func (m *Manager) offerLocked(instance, node, role string, users []string) *Item {
	key := [2]string{instance, node}
	if _, dup := m.byNode[key]; dup {
		return nil
	}
	m.seq++
	it := &Item{
		ID:       fmt.Sprintf("wi-%d", m.seq),
		Instance: instance,
		Node:     node,
		Role:     role,
		Offered:  append([]string(nil), users...),
		State:    Offered,
	}
	sort.Strings(it.Offered)
	m.items[it.ID] = it
	m.byNode[key] = it.ID
	for _, u := range it.Offered {
		m.addToUser(u, it.ID)
	}
	inst := m.byInst[instance]
	if inst == nil {
		inst = make(map[string]bool)
		m.byInst[instance] = inst
	}
	inst[it.ID] = true
	return it
}

// Escalate replaces the activity's work item with a fresh offer to the
// escalation role's candidates, under one lock acquisition so no reader
// observes the node item-less in between. The previous item — typically
// InProgress for the original assignee of a timed-out activity — is
// withdrawn; the replacement starts in the Offered state. Returns the
// new item.
func (m *Manager) Escalate(instance, node, role string, users []string) *Item {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.withdrawLocked(instance, node)
	it := m.offerLocked(instance, node, role, users)
	if it == nil {
		return nil
	}
	return it.clone()
}

// Claim reserves an offered item for one of its candidate users.
func (m *Manager) Claim(itemID, user string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.items[itemID]
	if !ok {
		return fault.Tagf(fault.NotFound, "worklist: claim %q: no such item", itemID)
	}
	if it.State != Offered {
		return fault.Tagf(fault.Conflict, "worklist: claim %q: item is %s", itemID, it.State)
	}
	if !contains(it.Offered, user) {
		return fault.Tagf(fault.Denied, "worklist: claim %q: user %q is not a candidate", itemID, user)
	}
	it.State = Claimed
	it.ClaimedBy = user
	return nil
}

// Release returns a claimed item to the offered state.
func (m *Manager) Release(itemID, user string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.items[itemID]
	if !ok {
		return fault.Tagf(fault.NotFound, "worklist: release %q: no such item", itemID)
	}
	if it.State != Claimed || it.ClaimedBy != user {
		return fault.Tagf(fault.Conflict, "worklist: release %q: not claimed by %q", itemID, user)
	}
	it.State = Offered
	it.ClaimedBy = ""
	return nil
}

// MarkStarted transitions the item of the given activity to InProgress.
func (m *Manager) MarkStarted(instance, node, user string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.byNode[[2]string{instance, node}]
	if !ok {
		return fault.Tagf(fault.NotFound, "worklist: start %s/%s: no work item", instance, node)
	}
	it := m.items[id]
	if it.State == Claimed && it.ClaimedBy != user {
		return fault.Tagf(fault.Denied, "worklist: start %s/%s: claimed by %q, not %q", instance, node, it.ClaimedBy, user)
	}
	it.State = InProgress
	it.ClaimedBy = user
	return nil
}

// Withdraw removes the item of the given activity (completion, skip, or
// migration made it obsolete). Withdrawing a non-existent item is a no-op
// so callers can withdraw defensively.
func (m *Manager) Withdraw(instance, node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.withdrawLocked(instance, node)
}

func (m *Manager) withdrawLocked(instance, node string) {
	key := [2]string{instance, node}
	id, ok := m.byNode[key]
	if !ok {
		return
	}
	it := m.items[id]
	delete(m.byNode, key)
	delete(m.items, id)
	for _, u := range it.Offered {
		m.removeFromUser(u, id)
	}
	if set := m.byInst[instance]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(m.byInst, instance)
		}
	}
}

// Wanted describes the desired work item of one node for BatchUpdate.
type Wanted struct {
	// Node is the activity the item belongs to.
	Node string
	// Role is the activity's current staff assignment.
	Role string
	// Running marks in-progress work: its item (if any) is never
	// disturbed, and no new item is offered for it (the user already
	// started the activity).
	Running bool
}

// BatchUpdate reconciles all items of one instance against the desired
// state under a single lock: items of nodes not listed (or whose staff
// assignment changed while merely offered) are withdrawn, and missing
// items for non-running entries are offered. usersInRole resolves the
// candidate users of a role; it is consulted at most once per distinct
// role in the batch, so a cascade touching many nodes of one role costs a
// single org-model resolution instead of one per operation.
func (m *Manager) BatchUpdate(instance string, wanted []Wanted, usersInRole func(role string) []string) {
	// Phase 1 (locked): withdraw obsolete items, decide which offers are
	// missing. In-progress work is never disturbed; offered items whose
	// staff assignment changed are withdrawn and re-offered to the new
	// role below.
	m.mu.Lock()
	byNode := make(map[string]*Wanted, len(wanted))
	for i := range wanted {
		byNode[wanted[i].Node] = &wanted[i]
	}
	var stale []string
	for id := range m.byInst[instance] {
		it := m.items[id]
		if w, ok := byNode[it.Node]; ok && (it.Role == w.Role || w.Running) {
			delete(byNode, it.Node) // keep existing item
		} else {
			stale = append(stale, it.Node)
		}
	}
	for _, node := range stale {
		m.withdrawLocked(instance, node)
	}
	var nodes []string
	for node, w := range byNode {
		if !w.Running {
			nodes = append(nodes, node)
		}
	}
	m.mu.Unlock()
	if len(nodes) == 0 {
		return
	}

	// Phase 2 (unlocked): resolve candidate users, once per distinct role
	// — the org model must not be consulted while every other worklist
	// operation is blocked on the manager lock.
	sort.Strings(nodes) // deterministic item IDs
	roleUsers := make(map[string][]string)
	for _, node := range nodes {
		role := byNode[node].Role
		if _, done := roleUsers[role]; !done {
			roleUsers[role] = usersInRole(role)
		}
	}

	// Phase 3 (locked): create the missing items. An item that appeared
	// in the unlocked window is kept (offerLocked refuses duplicates) —
	// only the instance's own reconciliation creates items, and that runs
	// under the instance lock.
	m.mu.Lock()
	for _, node := range nodes {
		w := byNode[node]
		m.offerLocked(instance, node, w.Role, roleUsers[w.Role])
	}
	m.mu.Unlock()
}

// ManagerExport is the serialized state of a worklist manager: the item-ID
// counter and every live item. Restoring it wholesale (instead of
// re-offering from markings) preserves pre-crash item IDs and claims.
type ManagerExport struct {
	Seq   int     `json:"seq"`
	Items []*Item `json:"items,omitempty"`
}

// Export serializes the manager state, items ordered by ID.
func (m *Manager) Export() *ManagerExport {
	m.mu.Lock()
	defer m.mu.Unlock()
	ex := &ManagerExport{Seq: m.seq, Items: make([]*Item, 0, len(m.items))}
	for _, it := range m.items {
		ex.Items = append(ex.Items, it.clone())
	}
	sort.Slice(ex.Items, func(i, j int) bool { return ex.Items[i].ID < ex.Items[j].ID })
	return ex
}

// Import replaces the manager state with the exported one, rebuilding all
// indexes. Pre-existing items are dropped.
func (m *Manager) Import(ex *ManagerExport) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	items := make(map[string]*Item, len(ex.Items))
	byNode := make(map[[2]string]string, len(ex.Items))
	byUser := make(map[string]*userIndex)
	byInst := make(map[string]map[string]bool)
	for _, src := range ex.Items {
		it := src.clone()
		if _, dup := items[it.ID]; dup {
			return fmt.Errorf("worklist: import: duplicate item ID %q", it.ID)
		}
		key := [2]string{it.Instance, it.Node}
		if _, dup := byNode[key]; dup {
			return fmt.Errorf("worklist: import: duplicate item for %s/%s", it.Instance, it.Node)
		}
		items[it.ID] = it
		byNode[key] = it.ID
		for _, u := range it.Offered {
			ui := byUser[u]
			if ui == nil {
				ui = &userIndex{members: make(map[string]struct{})}
				byUser[u] = ui
			}
			ui.members[it.ID] = struct{}{}
		}
		inst := byInst[it.Instance]
		if inst == nil {
			inst = make(map[string]bool)
			byInst[it.Instance] = inst
		}
		inst[it.ID] = true
	}
	m.seq = ex.Seq
	m.items = items
	m.byNode = byNode
	m.byUser = byUser
	m.byInst = byInst
	return nil
}

// ItemsFor returns the items visible to a user (offered to or claimed by),
// ordered by item ID.
func (m *Manager) ItemsFor(user string) []*Item {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	if u := m.byUser[user]; u != nil {
		ids = u.sortedIDs()
	}
	items := make([]*Item, 0, len(ids))
	for _, id := range ids {
		it := m.items[id]
		if it.State == Claimed && it.ClaimedBy != user {
			continue // reserved by someone else
		}
		items = append(items, it.clone())
	}
	return items
}

// ItemsForPage returns up to limit of the items visible to a user in
// item-ID order, starting after the cursor item ID ("" starts from the
// beginning), plus the cursor for the next page ("" when no items
// follow). The per-user index caches a sorted ID slice, so a page costs
// one binary search for the cursor plus a walk of the page — O(page),
// independent of the user's total worklist size — except on the first
// read after an offer/withdrawal touched the user, which rebuilds the
// cache (O(n log n), the cost every call used to pay).
func (m *Manager) ItemsForPage(user, cursor string, limit int) ([]*Item, string) {
	if limit <= 0 {
		limit = 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	if u := m.byUser[user]; u != nil {
		ids = u.sortedIDs()
	}
	start := 0
	if cursor != "" {
		start = sort.SearchStrings(ids, cursor)
		if start < len(ids) && ids[start] == cursor {
			start++
		}
	}
	items := make([]*Item, 0, limit)
	next := ""
	for i := start; i < len(ids); i++ {
		it := m.items[ids[i]]
		if it.State == Claimed && it.ClaimedBy != user {
			continue // reserved by someone else
		}
		if len(items) == limit {
			next = ids[i-1] // page full with candidates left
			break
		}
		items = append(items, it.clone())
	}
	return items, next
}

// ItemsForInstance returns all items of one instance, ordered by item ID.
// The engine uses it to reconcile worklists after markings change.
func (m *Manager) ItemsForInstance(instance string) []*Item {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.byInst[instance]))
	for id := range m.byInst[instance] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	items := make([]*Item, 0, len(ids))
	for _, id := range ids {
		items = append(items, m.items[id].clone())
	}
	return items
}

// ItemFor returns the item of the given activity, if any.
func (m *Manager) ItemFor(instance, node string) (*Item, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.byNode[[2]string{instance, node}]
	if !ok {
		return nil, false
	}
	return m.items[id].clone(), true
}

// Len returns the number of live items.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

func contains(ss []string, s string) bool {
	i := sort.SearchStrings(ss, s)
	return i < len(ss) && ss[i] == s
}
