// Package evolution implements ADEPT2 schema evolution and instance
// migration: a process type change ΔT derives a new schema version, and
// the migration manager propagates it to the running instances of the old
// version — on the fly, classifying every instance as migrated or as
// having a state-related, structural, or semantical conflict (the Fig. 3
// migration report of the paper).
package evolution

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/fault"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
	"adept2/internal/verify"
)

// Outcome classifies the migration result of one instance.
type Outcome uint8

const (
	// Migrated: the instance is compliant and now runs on the new version.
	Migrated Outcome = iota
	// AlreadyFinished: the instance completed before the migration; it
	// stays on its version.
	AlreadyFinished
	// StateConflict: the instance progressed beyond the change region
	// (instance I3 of Fig. 1); it remains on the old version.
	StateConflict
	// StructuralConflict: the instance's ad-hoc bias conflicts with the
	// type change — jointly they would violate the buildtime guarantees,
	// e.g. create a deadlock-causing cycle (instance I2 of Fig. 1).
	StructuralConflict
	// SemanticConflict: the type change and the instance bias insert the
	// same activity template (duplicate work).
	SemanticConflict
	// Failed: an internal error occurred; the instance is untouched.
	Failed
)

var outcomeNames = [...]string{
	Migrated:           "migrated",
	AlreadyFinished:    "already-finished",
	StateConflict:      "state-conflict",
	StructuralConflict: "structural-conflict",
	SemanticConflict:   "semantic-conflict",
	Failed:             "failed",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Outcomes enumerates all outcome values in display order.
func Outcomes() []Outcome {
	return []Outcome{Migrated, AlreadyFinished, StateConflict, StructuralConflict, SemanticConflict, Failed}
}

// CheckMode selects the compliance checking algorithm.
type CheckMode uint8

const (
	// FastCheck uses the per-operation state conditions (paper Fig. 1).
	FastCheck CheckMode = iota
	// ReplayCheck replays the reduced execution history on the target
	// schema (the ground-truth criterion; slower).
	ReplayCheck
)

func (m CheckMode) String() string {
	if m == ReplayCheck {
		return "replay"
	}
	return "fast"
}

// AdaptMode selects the state adaptation procedure for migrated instances.
type AdaptMode uint8

const (
	// AdaptIncremental recomputes derivable marking parts in place
	// (state.Adapt — the paper's efficient procedure).
	AdaptIncremental AdaptMode = iota
	// AdaptReplay rebuilds the marking by replaying the reduced history on
	// the new schema (baseline for the ablation).
	AdaptReplay
)

func (m AdaptMode) String() string {
	if m == AdaptReplay {
		return "replay-adapt"
	}
	return "incremental-adapt"
}

// Options tunes a migration run.
type Options struct {
	// Workers bounds the number of instances migrated concurrently
	// (default: GOMAXPROCS).
	Workers int
	// Mode selects the compliance check (default FastCheck).
	Mode CheckMode
	// Adapt selects the state adaptation procedure (default
	// AdaptIncremental).
	Adapt AdaptMode
}

// InstanceResult is the per-instance row of a migration report.
type InstanceResult struct {
	Instance string
	Outcome  Outcome
	// Detail explains conflicts in user terms (which condition failed).
	Detail string
	// Biased records whether the instance carried ad-hoc changes.
	Biased bool
	// Duration is the wall time spent deciding and migrating.
	Duration time.Duration
}

// Report summarizes one migration run (the content of the paper's Fig. 3
// report window).
type Report struct {
	TypeName    string
	FromVersion int
	ToVersion   int
	Options     Options
	Results     []InstanceResult
	Elapsed     time.Duration
}

// Count returns how many instances ended with the outcome.
func (r *Report) Count(o Outcome) int {
	n := 0
	for _, res := range r.Results {
		if res.Outcome == o {
			n++
		}
	}
	return n
}

// Total returns the number of considered instances.
func (r *Report) Total() int { return len(r.Results) }

// Manager performs schema evolutions against one engine.
type Manager struct {
	eng *engine.Engine
}

// NewManager returns a migration manager for the engine.
func NewManager(e *engine.Engine) *Manager { return &Manager{eng: e} }

// DeriveVersion applies a type change to the latest version of the process
// type and returns the new (verified, not yet deployed) schema version.
func (m *Manager) DeriveVersion(typeName string, ops []change.Operation) (*model.Schema, error) {
	from := m.eng.LatestVersion(typeName)
	if from == 0 {
		return nil, fault.Tagf(fault.NotFound, "evolution: unknown process type %q", typeName)
	}
	base, _ := m.eng.Schema(typeName, from)
	next := base.Clone()
	next.SetVersion(from + 1)
	next.SetSchemaID(fmt.Sprintf("%s@v%d", typeName, from+1))
	for _, op := range ops {
		if err := op.ApplyTo(next); err != nil {
			return nil, fault.Tagf(fault.Invalid, "evolution: derive %s v%d: %w", typeName, from+1, err)
		}
	}
	if res := verify.Check(next); !res.OK() {
		return nil, fault.Tagf(fault.Invalid, "evolution: derive %s v%d: %w", typeName, from+1, res.Err())
	}
	return next, nil
}

// Evolve performs a full schema evolution: it derives and deploys the new
// version and migrates all compliant instances of the old version on the
// fly. Non-compliant instances keep running on the old version (their
// conflict is reported), exactly as in the paper's demo.
func (m *Manager) Evolve(typeName string, ops []change.Operation, opts Options) (*Report, error) {
	from := m.eng.LatestVersion(typeName)
	next, err := m.DeriveVersion(typeName, ops)
	if err != nil {
		return nil, err
	}
	if err := m.eng.Deploy(next); err != nil {
		return nil, err
	}
	report := m.MigrateAll(typeName, from, next, ops, opts)
	return report, nil
}

// targetIndex bundles the target schema with its derived indexes — block
// analysis and topology — computed once per migration run and shared
// (read-only) by every worker, instead of being re-derived per instance.
type targetIndex struct {
	schema  *model.Schema
	info    *graph.Info
	infoErr error
}

// indexTarget precomputes the shared derived indexes of the target schema.
// Only the replay check consumes the block analysis, so it is skipped in
// fast mode. Pre-warming Topology also keeps the workers from racing to
// build the schema's cached index.
func indexTarget(target *model.Schema, mode CheckMode) *targetIndex {
	ti := &targetIndex{schema: target}
	if mode == ReplayCheck {
		ti.info, ti.infoErr = graph.Analyze(target)
	}
	target.Topology()
	return ti
}

// MigrateAll migrates every instance of (typeName, fromVersion) towards
// the already-deployed target schema and returns the report.
func (m *Manager) MigrateAll(typeName string, fromVersion int, target *model.Schema, ops []change.Operation, opts Options) *Report {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	insts := m.eng.InstancesOf(typeName, fromVersion)
	results := make([]InstanceResult, len(insts))
	ti := indexTarget(target, opts.Mode)

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker reuses one replay scratch (interned event log,
			// in-history bitset, candidate list) and one history-reduction
			// buffer across all instances it migrates.
			sc := &migrateScratch{}
			for i := range work {
				results[i] = m.migrateInstance(insts[i], ti, ops, opts, sc)
			}
		}()
	}
	for i := range insts {
		work <- i
	}
	close(work)
	wg.Wait()

	return &Report{
		TypeName:    typeName,
		FromVersion: fromVersion,
		ToVersion:   target.Version(),
		Options:     opts,
		Results:     results,
		Elapsed:     time.Since(start),
	}
}

// migrateScratch bundles the per-worker reusable buffers of a migration
// run: the replay checker's scratch, the history-reduction buffer, and the
// marking/stats remap pools (fast-mode state adaptation recycles the
// previous instance's discarded dense arrays instead of allocating four
// fresh ones per migrated instance).
type migrateScratch struct {
	rp      compliance.Replayer
	reduced []*history.Event
	remap   state.RemapScratch
	rebind  history.RebindScratch
}

// MigrateInstance decides and (if compliant) performs the migration of one
// instance to the target schema.
func (m *Manager) MigrateInstance(inst *engine.Instance, target *model.Schema, ops []change.Operation, opts Options) InstanceResult {
	return m.migrateInstance(inst, indexTarget(target, opts.Mode), ops, opts, &migrateScratch{})
}

func (m *Manager) migrateInstance(inst *engine.Instance, ti *targetIndex, ops []change.Operation, opts Options, sc *migrateScratch) InstanceResult {
	res := InstanceResult{Instance: inst.ID()}
	begin := time.Now()
	err := inst.Mutate(func(mx *engine.Mutable) error {
		res.Biased = len(mx.BiasOps()) > 0
		res.Outcome, res.Detail = m.migrateLocked(mx, ti, ops, opts, sc)
		return nil
	})
	if err != nil {
		res.Outcome, res.Detail = Failed, err.Error()
	}
	res.Duration = time.Since(begin)
	return res
}

// migrateLocked runs under the instance lock.
func (m *Manager) migrateLocked(mx *engine.Mutable, ti *targetIndex, ops []change.Operation, opts Options, sc *migrateScratch) (Outcome, string) {
	target := ti.schema
	if mx.Done() {
		return AlreadyFinished, ""
	}
	biasOps, err := change.AsOperations(mxBias(mx))
	if err != nil {
		return Failed, err.Error()
	}
	// 1. Semantical conflicts: type change and bias insert the same
	// activity template.
	if len(biasOps) > 0 {
		tChange := change.InsertedTemplates(ops)
		for t := range change.InsertedTemplates(biasOps) {
			if tChange[t] {
				return SemanticConflict, fmt.Sprintf("type change and instance bias both insert template %q", t)
			}
		}
	}

	// 2. Structural conflicts: the bias must re-apply cleanly to the new
	// version and the result must satisfy every buildtime guarantee
	// (instance I2 of Fig. 1 fails here with a deadlock-causing cycle).
	targetView := model.SchemaView(target)
	if len(biasOps) > 0 {
		trial := target.Clone()
		trial.SetSchemaID(trial.SchemaID() + "+bias-trial")
		for _, op := range biasOps {
			if err := op.ApplyTo(trial); err != nil {
				return StructuralConflict, err.Error()
			}
		}
		if vres := verify.Check(trial); !vres.OK() {
			return StructuralConflict, vres.Err().Error()
		}
		targetView = trial
	}

	// 3. State-related conflicts: compliance check.
	switch opts.Mode {
	case ReplayCheck:
		curBlocks, err := mx.Blocks()
		if err != nil {
			return Failed, err.Error()
		}
		sc.reduced = history.ReduceInto(curBlocks, mx.History().Events(), sc.reduced)
		// Unbiased instances replay against the shared target index; only
		// biased instances need a fresh analysis of their trial view.
		info, infoErr := ti.info, ti.infoErr
		if targetView != model.SchemaView(target) {
			info, infoErr = graph.Analyze(targetView)
		}
		if infoErr != nil {
			return StructuralConflict, infoErr.Error()
		}
		if _, err := sc.rp.Replay(targetView, info, sc.reduced); err != nil {
			return StateConflict, err.Error()
		}
	default:
		view, err := mx.View()
		if err != nil {
			return Failed, err.Error()
		}
		ctx := &change.Context{View: view, Marking: mx.Marking(), Stats: mx.Stats(), Store: mx.Store()}
		if err := compliance.CheckFast(ctx, ops); err != nil {
			return StateConflict, err.Error()
		}
	}

	// 4. Migrate: swap schema version, re-apply bias, adapt state.
	rebased := make([]engine.BiasOp, len(biasOps))
	for i, op := range biasOps {
		rebased[i] = op
	}
	if err := mx.MigrateTo(target, rebased); err != nil {
		return Failed, err.Error()
	}
	switch opts.Adapt {
	case AdaptReplay:
		view, err := mx.View()
		if err != nil {
			return Failed, err.Error()
		}
		info, err := mx.Blocks()
		if err != nil {
			return Failed, err.Error()
		}
		sc.reduced = history.ReduceInto(info, mx.History().Events(), sc.reduced)
		rr, err := sc.rp.Replay(view, info, sc.reduced)
		if err != nil {
			return Failed, "replay adaptation after successful check: " + err.Error()
		}
		mx.SetMarking(rr.Marking)
		if err := mx.Cascade(); err != nil {
			return Failed, err.Error()
		}
	default:
		// Pre-bind marking and stats onto the target topology through the
		// worker's pooled scratch; the adaptation's own ensure/rebind then
		// degenerates to a pointer check instead of an allocating remap.
		if view, verr := mx.View(); verr == nil {
			topo := view.Topology()
			mx.Marking().RebindTo(topo, &sc.remap)
			mx.Stats().RebindPooled(topo, &sc.rebind)
		}
		if _, err := mx.AdaptState(); err != nil {
			return Failed, err.Error()
		}
	}
	return Migrated, ""
}

// mxBias fetches the recorded bias ops from the mutable instance.
func mxBias(mx *engine.Mutable) []engine.BiasOp { return mx.BiasOps() }
