package verify

import (
	"strings"
	"testing"

	"adept2/internal/model"
)

// onlineOrder builds the paper's Fig. 1 online-order schema:
//
//	start -> get_order -> AND[ collect_data -> confirm_order |
//	                           compose_order -> pack_goods ] -> deliver_goods -> end
func onlineOrder(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("online_order")
	b.DataElement("order", model.TypeString)
	get := b.Activity("get_order", "Get Order", model.WithRole("clerk"))
	branchA := b.Seq(
		b.Activity("collect_data", "Collect Data", model.WithRole("clerk")),
		b.Activity("confirm_order", "Confirm Order", model.WithRole("sales")),
	)
	branchB := b.Seq(
		b.Activity("compose_order", "Compose Order", model.WithRole("warehouse")),
		b.Activity("pack_goods", "Pack Goods", model.WithRole("warehouse")),
	)
	deliver := b.Activity("deliver_goods", "Deliver Goods", model.WithRole("courier"))
	b.Write("get_order", "order", "out")
	b.Read("confirm_order", "order", "in", true)
	b.Read("compose_order", "order", "in", true)
	s, err := b.Build(b.Seq(get, b.Parallel(branchA, branchB), deliver))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func hasIssue(r *Result, code Code) bool {
	for _, i := range r.Issues {
		if i.Code == code {
			return true
		}
	}
	return false
}

func TestCheckAcceptsOnlineOrder(t *testing.T) {
	r := Check(onlineOrder(t))
	if !r.OK() {
		t.Fatalf("expected OK, got: %v", r.Err())
	}
	if len(r.Warnings()) != 0 {
		t.Fatalf("expected no warnings, got %v", r.Warnings())
	}
	if r.Blocks == nil || len(r.Blocks.Blocks()) != 1 {
		t.Fatal("block analysis missing")
	}
	if err := Err(onlineOrder(t)); err != nil {
		t.Fatalf("Err helper: %v", err)
	}
}

func TestCheckAcceptsLoopsAndChoices(t *testing.T) {
	b := model.NewBuilder("loops")
	b.DataElement("route", model.TypeInt)
	b.DataElement("again", model.TypeBool)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	b.Write("init", "again", "a")
	body := b.Choice("route",
		b.Activity("x", "X", model.WithRole("clerk")),
		b.Activity("y", "Y", model.WithRole("clerk")),
	)
	loop := b.Loop(body, "again", 4)
	s, err := b.Build(b.Seq(init, loop))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if !r.OK() {
		t.Fatalf("expected OK, got %v", r.Err())
	}
}

func TestCheckCardinalityViolations(t *testing.T) {
	s := onlineOrder(t)
	// Second outgoing control edge from an activity.
	if err := s.AddEdge(&model.Edge{From: "get_order", To: "deliver_goods", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeCardinality) {
		t.Fatalf("expected cardinality error, got %v", r.Issues)
	}
}

func TestCheckMissingStartEnd(t *testing.T) {
	s := model.NewSchema("x", "x", 1)
	if err := s.AddNode(&model.Node{ID: "a", Type: model.NodeActivity}); err != nil {
		t.Fatal(err)
	}
	r := Check(s)
	if !hasIssue(r, CodeNoStart) || !hasIssue(r, CodeNoEnd) {
		t.Fatalf("expected no-start/no-end, got %v", r.Issues)
	}
}

func TestCheckConnectivity(t *testing.T) {
	s := onlineOrder(t)
	if err := s.AddNode(&model.Node{ID: "island", Type: model.NodeActivity, Role: "clerk"}); err != nil {
		t.Fatal(err)
	}
	// Give it valid-looking local edges to itself region? It stays
	// disconnected: no control edges at all.
	r := Check(s)
	if !hasIssue(r, CodeUnreachable) || !hasIssue(r, CodeNoExit) {
		t.Fatalf("expected connectivity errors, got %v", r.Issues)
	}
}

func TestCheckDeadlockCycleFromSyncEdges(t *testing.T) {
	// This is the I2 situation of Fig. 1: a bias sync edge
	// confirm_order ~> compose_order plus the type change's
	// send_questions ~> confirm_order yields a cycle.
	s := onlineOrder(t)
	if err := s.AddEdge(&model.Edge{From: "confirm_order", To: "compose_order", Type: model.EdgeSync}); err != nil {
		t.Fatal(err)
	}
	r := Check(s)
	if !r.OK() {
		t.Fatalf("single sync edge must be fine: %v", r.Err())
	}
	// Insert send_questions between compose_order and pack_goods.
	if err := s.RemoveEdge(model.EdgeKey{From: "compose_order", To: "pack_goods", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(&model.Node{ID: "send_questions", Type: model.NodeActivity, Role: "sales"}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []*model.Edge{
		{From: "compose_order", To: "send_questions", Type: model.EdgeControl},
		{From: "send_questions", To: "pack_goods", Type: model.EdgeControl},
		{From: "send_questions", To: "confirm_order", Type: model.EdgeSync},
	} {
		if err := s.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	r = Check(s)
	if r.OK() || !hasIssue(r, CodeDeadlockCycle) {
		t.Fatalf("expected deadlock-cycle error, got %v", r.Issues)
	}
}

func TestCheckSyncBetweenExclusiveBranches(t *testing.T) {
	b := model.NewBuilder("xorsync")
	b.DataElement("route", model.TypeInt)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	ch := b.Choice("route",
		b.Activity("x", "X", model.WithRole("clerk")),
		b.Activity("y", "Y", model.WithRole("clerk")),
	)
	b.Sync("x", "y")
	s, err := b.Build(b.Seq(init, ch))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeSyncExclusive) {
		t.Fatalf("expected sync-exclusive error, got %v", r.Issues)
	}
}

func TestCheckSyncCrossingLoopBoundary(t *testing.T) {
	b := model.NewBuilder("loopsync")
	b.DataElement("again", model.TypeBool)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "again", "a")
	par := b.Parallel(
		b.Loop(b.Activity("w", "W", model.WithRole("clerk")), "again", 3),
		b.Activity("z", "Z", model.WithRole("clerk")),
	)
	b.Sync("w", "z") // from inside the loop to outside: ambiguous per-iteration semantics
	s, err := b.Build(b.Seq(init, par))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeSyncLoop) {
		t.Fatalf("expected sync-crosses-loop error, got %v", r.Issues)
	}
}

func TestCheckSyncRedundantWarning(t *testing.T) {
	s := onlineOrder(t)
	if err := s.AddEdge(&model.Edge{From: "collect_data", To: "confirm_order", Type: model.EdgeSync}); err != nil {
		t.Fatal(err)
	}
	r := Check(s)
	if !r.OK() {
		t.Fatalf("redundant sync is only a warning: %v", r.Err())
	}
	if !hasIssue(r, CodeSyncRedundant) {
		t.Fatalf("expected sync-redundant warning, got %v", r.Issues)
	}
}

func TestCheckSyncOnStartEnd(t *testing.T) {
	s := onlineOrder(t)
	if err := s.AddEdge(&model.Edge{From: "start", To: "deliver_goods", Type: model.EdgeSync}); err != nil {
		t.Fatal(err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeSyncEndpoint) {
		t.Fatalf("expected sync-endpoint error, got %v", r.Issues)
	}
}

func TestCheckMissingData(t *testing.T) {
	b := model.NewBuilder("missing")
	b.DataElement("d", model.TypeString)
	a := b.Activity("a", "A", model.WithRole("clerk"))
	c := b.Activity("c", "C", model.WithRole("clerk"))
	b.Read("c", "d", "in", true) // nobody writes d
	s, err := b.Build(b.Seq(a, c))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeMissingData) {
		t.Fatalf("expected missing-data error, got %v", r.Issues)
	}
}

func TestCheckMissingDataOnXORPath(t *testing.T) {
	// Writer only on one XOR branch; reader after the join must fail.
	b := model.NewBuilder("xorwrite")
	b.DataElement("route", model.TypeInt)
	b.DataElement("d", model.TypeString)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	wx := b.Activity("wx", "WX", model.WithRole("clerk"))
	b.Write("wx", "d", "out")
	ch := b.Choice("route", wx, b.Empty())
	rd := b.Activity("rd", "RD", model.WithRole("clerk"))
	b.Read("rd", "d", "in", true)
	s, err := b.Build(b.Seq(init, ch, rd))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeMissingData) {
		t.Fatalf("expected missing-data error for XOR-only writer, got %v", r.Issues)
	}
}

func TestCheckDataSuppliedThroughANDJoin(t *testing.T) {
	// Writer inside one AND branch; reader after the join is fine (union).
	b := model.NewBuilder("andwrite")
	b.DataElement("d", model.TypeString)
	w := b.Activity("w", "W", model.WithRole("clerk"))
	b.Write("w", "d", "out")
	par := b.Parallel(w, b.Activity("z", "Z", model.WithRole("clerk")))
	rd := b.Activity("rd", "RD", model.WithRole("clerk"))
	b.Read("rd", "d", "in", true)
	s, err := b.Build(b.Seq(par, rd))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if r := Check(s); !r.OK() {
		t.Fatalf("expected OK, got %v", r.Err())
	}
}

func TestCheckDataSuppliedThroughSyncEdge(t *testing.T) {
	// Writer in parallel branch supplies a reader in the sibling branch
	// only when a sync edge orders them.
	build := func(withSync bool) *model.Schema {
		b := model.NewBuilder("syncdata")
		b.DataElement("d", model.TypeString)
		w := b.Activity("w", "W", model.WithRole("clerk"))
		b.Write("w", "d", "out")
		rd := b.Activity("rd", "RD", model.WithRole("clerk"))
		b.Read("rd", "d", "in", true)
		par := b.Parallel(w, rd)
		if withSync {
			b.Sync("w", "rd")
		}
		s, err := b.Build(par)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return s
	}
	if r := Check(build(false)); r.OK() || !hasIssue(r, CodeMissingData) {
		t.Fatalf("no sync edge: expected missing-data, got %v", r.Issues)
	}
	if r := Check(build(true)); !r.OK() {
		t.Fatalf("with sync edge: expected OK, got %v", r.Err())
	}
}

func TestCheckSyncSupplierInsideXORNotGuaranteed(t *testing.T) {
	// The sync source sits inside an XOR branch of its own: it may be
	// skipped, so it cannot guarantee the data supply.
	b := model.NewBuilder("syncxor")
	b.DataElement("route", model.TypeInt)
	b.DataElement("d", model.TypeString)
	init := b.Activity("init", "Init", model.WithRole("clerk"))
	b.Write("init", "route", "r")
	w := b.Activity("w", "W", model.WithRole("clerk"))
	b.Write("w", "d", "out")
	maybeW := b.Choice("route", w, b.Empty())
	rd := b.Activity("rd", "RD", model.WithRole("clerk"))
	b.Read("rd", "d", "in", true)
	par := b.Parallel(maybeW, rd)
	b.Sync("w", "rd")
	s, err := b.Build(b.Seq(init, par))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeMissingData) {
		t.Fatalf("expected missing-data (supplier skippable), got %v", r.Issues)
	}
}

func TestCheckDecisionElementIssues(t *testing.T) {
	// Unknown decision element.
	b := model.NewBuilder("unknowndec")
	ch := b.Choice("nope", b.Activity("x", "X", model.WithRole("r")), b.Empty())
	s, err := b.Build(ch)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if r.OK() || !hasIssue(r, CodeDecisionData) {
		t.Fatalf("expected decision-data error, got %v", r.Issues)
	}

	// Wrong decision element type: warning.
	b2 := model.NewBuilder("wrongtype")
	b2.DataElement("flag", model.TypeBool) // xor wants int
	init := b2.Activity("init", "Init", model.WithRole("clerk"))
	b2.Write("init", "flag", "f")
	ch2 := b2.Choice("flag", b2.Activity("x", "X", model.WithRole("r")), b2.Empty())
	s2, err := b2.Build(b2.Seq(init, ch2))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r2 := Check(s2)
	if !r2.OK() {
		t.Fatalf("wrong type should only warn: %v", r2.Err())
	}
	if !hasIssue(r2, CodeDecisionData) {
		t.Fatalf("expected decision-data warning, got %v", r2.Issues)
	}
}

func TestCheckLostUpdateAndUnstableRead(t *testing.T) {
	b := model.NewBuilder("races")
	b.DataElement("d", model.TypeInt)
	w1 := b.Activity("w1", "W1", model.WithRole("clerk"))
	w2 := b.Activity("w2", "W2", model.WithRole("clerk"))
	rd := b.Activity("rd", "RD", model.WithRole("clerk"))
	b.Write("w1", "d", "o1")
	b.Write("w2", "d", "o2")
	b.Read("rd", "d", "in", false)
	s, err := b.Build(b.Parallel(w1, w2, rd))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if !r.OK() {
		t.Fatalf("races are warnings, not errors: %v", r.Err())
	}
	if !hasIssue(r, CodeLostUpdate) {
		t.Fatalf("expected lost-update warning, got %v", r.Issues)
	}
	if !hasIssue(r, CodeUnstableRead) {
		t.Fatalf("expected unstable-read warning, got %v", r.Issues)
	}

	// Ordering the writers with a sync edge silences the lost update.
	b2 := model.NewBuilder("ordered")
	b2.DataElement("d", model.TypeInt)
	w1 = b2.Activity("w1", "W1", model.WithRole("clerk"))
	w2 = b2.Activity("w2", "W2", model.WithRole("clerk"))
	b2.Write("w1", "d", "o1")
	b2.Write("w2", "d", "o2")
	b2.Sync("w1", "w2")
	s2, err := b2.Build(b2.Parallel(w1, w2))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if r2 := Check(s2); hasIssue(r2, CodeLostUpdate) {
		t.Fatalf("sync-ordered writers must not warn: %v", r2.Issues)
	}
}

func TestCheckUnassignedRoleWarning(t *testing.T) {
	b := model.NewBuilder("norole")
	s, err := b.Build(b.Activity("a", "A")) // manual, no role
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Check(s)
	if !r.OK() || !hasIssue(r, CodeUnassignedRole) {
		t.Fatalf("expected unassigned-role warning, got %v", r.Issues)
	}
}

func TestResultErrFormatting(t *testing.T) {
	s := model.NewSchema("x", "x", 1)
	r := Check(s)
	err := r.Err()
	if err == nil {
		t.Fatal("empty schema must fail")
	}
	if !strings.Contains(err.Error(), string(CodeNoStart)) {
		t.Fatalf("error should mention code: %v", err)
	}
	if len(r.Errors()) == 0 {
		t.Fatal("Errors() empty")
	}
	var iss Issue
	iss = r.Errors()[0]
	if iss.String() == "" || Error.String() != "error" || Warning.String() != "warning" {
		t.Fatal("string methods broken")
	}
}
