package adept2_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

// buildRecoveryJournal writes a journal for the recovery benchmarks: a
// fixed population of 16 progressed instances plus `churn` additional
// journaled commands (suspend/resume cycles) that grow the command
// history without growing the live state — the regime where checkpointing
// pays: recovery work should track state size and suffix length, not how
// many commands ever ran. With snapshot=true a checkpoint is written
// after the churn, followed by a fixed 16-command suffix.
func buildRecoveryJournal(b *testing.B, path string, churn int, ckpt adept2.CheckpointConfig, snapshot bool) {
	b.Helper()
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(ckpt))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	var first string
	for i := 0; i < 16; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			b.Fatal(err)
		}
		if first == "" {
			first = inst.ID()
		}
		if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < churn/2; i++ {
		if err := sys.Suspend(first); err != nil {
			b.Fatal(err)
		}
		if err := sys.Resume(first); err != nil {
			b.Fatal(err)
		}
	}
	if snapshot {
		if _, _, err := sys.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := sys.Suspend(first); err != nil {
				b.Fatal(err)
			}
			if err := sys.Resume(first); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := sys.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecoveryFull measures Open-time recovery by full journal
// replay: cost is O(history) — it scales with every command ever
// journaled.
func BenchmarkRecoveryFull(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			// Group commit keeps the setup fast; no snapshot is written.
			buildRecoveryJournal(b, path, n, adept2.CheckpointConfig{Every: -1, GroupCommit: true}, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
				if err != nil {
					b.Fatal(err)
				}
				if !sys.Recovery().FullReplay {
					b.Fatal("expected full replay")
				}
				sys.Close()
			}
		})
	}
}

// BenchmarkRecoverySnapshot measures Open-time recovery from a snapshot
// plus a fixed 16-command journal suffix: cost is O(state + suffix),
// independent of the pre-snapshot history length.
func BenchmarkRecoverySnapshot(b *testing.B) {
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true}
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			buildRecoveryJournal(b, path, n, cfg, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
				if err != nil {
					b.Fatal(err)
				}
				if info := sys.Recovery(); info.FullReplay || info.Replayed != 16 {
					b.Fatalf("expected snapshot + 16-record suffix, got %+v", info)
				}
				sys.Close()
			}
		})
	}
}
