package adept2

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"adept2/internal/durable"
	"adept2/internal/durable/sharded"
	"adept2/internal/engine"
	"adept2/internal/persist"
)

// refuseExistingSingleJournal guards fresh sharded-layout creation: a
// journal (or snapshot store) already populated in the single-journal
// layout must be resharded offline, not silently reinterpreted.
func refuseExistingSingleJournal(c *config, path string) error {
	_, tail, err := persist.LoadJournalSuffixFS(c.fsys(), path, int(^uint(0)>>1))
	if err != nil {
		return err
	}
	if tail.LastSeq > 0 {
		return fmt.Errorf(
			"adept2: %s holds %s-layout records (journal ends at seq %d): reshard offline (adeptctl reshard) instead of opening with a shard count",
			path, "single-journal", tail.LastSeq)
	}
	dir := path + ".snapshots"
	if c.ckpt != nil && c.ckpt.Dir != "" {
		dir = c.ckpt.Dir
	}
	if des, err := c.fsys().ReadDir(dir); err == nil && len(des) > 0 {
		return fmt.Errorf(
			"adept2: %s already has snapshots in the single-journal layout: reshard offline (adeptctl reshard)", dir)
	}
	return nil
}

// shardedLayout derives the Layout for a base path and config.
func shardedLayout(c *config, path string, shards int) sharded.Layout {
	l := sharded.Layout{Base: path, Shards: shards, FS: c.fs}
	if c.ckpt != nil && c.ckpt.Dir != "" {
		l.SnapBase = c.ckpt.Dir
	}
	return l
}

// openSharded opens a sharded layout: every shard's newest-valid
// generation snapshot is loaded and restored in parallel, the journal
// suffixes are replayed in the epoch-merged order (data shards
// concurrently between control-record barriers), and the shard journals
// resume under a WAL router. A sharded layout implies checkpointing —
// the generation mechanism is its recovery path — so a missing
// WithCheckpointing gets the defaults.
func openSharded(c *config, path string, man *sharded.Manifest) (*System, error) {
	if c.ckpt == nil {
		c.ckpt = &CheckpointConfig{}
	}
	if c.ckpt.Every == 0 {
		c.ckpt.Every = 1024
	}
	if c.ckpt.Keep <= 0 {
		c.ckpt.Keep = 3
	}
	l := shardedLayout(c, path, man.Shards)
	recoverStart := time.Now()

	stores := make([]*durable.SnapshotStore, l.Shards)
	for k := range stores {
		st, err := durable.OpenStoreFS(c.fsys(), l.SnapDir(k))
		if err != nil {
			return nil, err
		}
		stores[k] = st
	}

	// Each generation attempt restores into a fresh system so a half-
	// restored failure cannot leak into the fallback; any caller-supplied
	// org model is cloned per attempt for the same reason.
	var sys *System
	fresh := func() *engine.Engine {
		attempt := *c
		if c.org != nil {
			attempt.org = c.org.Clone()
		}
		sys = newSystem(&attempt)
		return sys.eng
	}
	_, res, err := sharded.Recover(l, man, stores, fresh)
	if err != nil {
		return nil, err
	}

	applied := 0
	apply := func(rec *persist.Record) error {
		if err := sys.apply(rec.Op, rec.Args); err != nil {
			return fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		return nil
	}
	lastControl, perShard, err := sharded.MergeApply(res, isControlOp, apply)
	if err != nil {
		return nil, err
	}
	sys.eng.SortInstanceOrder()

	info := &RecoveryInfo{
		Fallbacks: res.Fallbacks,
		Shards:    l.Shards,
	}
	for k := range res.Shards {
		sr := ShardRecovery{Shard: k, Replayed: perShard[k]}
		applied += perShard[k]
		if st := res.Shards[k].State; st != nil {
			sr.SnapshotSeq = st.Seq
			sr.SnapshotFile = res.Shards[k].File
		}
		info.PerShard = append(info.PerShard, sr)
	}
	info.Replayed = applied
	if res.Gen != nil {
		info.SnapshotSeq = res.Shards[0].State.Seq
		info.SnapshotFile = res.Shards[0].File
	} else {
		info.FullReplay = true
	}

	// Replay is done: install the telemetry plane (see metrics.go) so the
	// WAL committers record into it but nothing recovered above did.
	sys.met = newMetricsSet(c, l.Shards)
	recordRecovery(sys.met, info, time.Since(recoverStart))

	// Resume every shard journal (repairing torn tails) without a second
	// full read; journals fully folded into snapshots continue the
	// snapshot's numbering.
	tails := make([]persist.TailInfo, l.Shards)
	for k := range tails {
		tails[k] = res.Shards[k].Tail
		if res.Gen != nil && res.Gen.Parts[k].Seq > tails[k].LastSeq {
			tails[k].LastSeq = res.Gen.Parts[k].Seq
		}
	}
	copts := c.ckpt.committerOptions()
	if sys.met != nil {
		copts.Metrics = &sys.met.Committer
	}
	wal, err := sharded.OpenWAL(l, tails, c.ckpt.GroupCommit, copts)
	if err != nil {
		return nil, err
	}
	wal.SetEpoch(lastControl)

	sys.wal = wal
	sys.layout = l
	sys.stores = stores
	sys.gman = man
	sys.recovery = info
	sys.ckpt = newCheckpointer(nil, c.ckpt, wal.TotalSeq())
	if err := sys.startObs(c); err != nil {
		_ = sys.Close()
		return nil, err
	}
	return sys, nil
}

// checkpointSharded writes one generation: all shard snapshots captured
// under a single exclusive barrier (one consistent cut at one epoch),
// encoded and written concurrently, committed by the global manifest
// rewrite. Returns shard 0's snapshot file and covered sequence number.
func (s *System) checkpointSharded() (string, int, error) {
	// The manifest read-modify-write and the "one generation at a time"
	// invariant need explicit serialization: an explicit Checkpoint may
	// race the background one.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.snapMu.Lock()
	if err := s.wal.Sync(); err != nil {
		s.snapMu.Unlock()
		return "", 0, err
	}
	seqs := s.wal.Seqs()
	epoch := s.wal.Epoch()
	staged := durable.Stage(s.eng, 0)
	s.snapMu.Unlock()

	caps := staged.Split(seqs, epoch, s.wal.ShardFor)
	man, file0, err := sharded.WriteCheckpoint(s.layout, s.gman, s.stores, caps, epoch, seqs, s.ckpt.keep)
	if err != nil {
		return file0, seqs[0], err
	}
	s.gman = man
	total := 0
	for _, q := range seqs {
		total += q
	}
	s.ckpt.mu.Lock()
	if total > s.ckpt.lastSeq {
		s.ckpt.lastSeq = total
	}
	s.ckpt.mu.Unlock()
	return file0, seqs[0], nil
}

// Reshard rewrites the durability layout at path from its current shard
// count to n, offline: it recovers the full state, writes a fresh
// generation of per-shard snapshots under the NEW instance-to-shard
// hash, commits the new global manifest (the atomic switch point), and
// removes artifacts the new layout no longer references. Journals of
// surviving shards are kept — their records are covered by the new
// snapshots and fenced off from any future full replay by the
// manifest's per-shard replay floors — so shard 0 stays byte-compatible
// with what a pre-sharding build wrote. Resharding a single-journal
// layout to n=1 is a no-op.
//
// Crash safety: everything written before the manifest commit is inert
// under the old layout (extra snapshot files only); a crash between the
// commit and the cleanup of now-stray shard journals (when shrinking)
// leaves a layout that refuses a normal Open — rerunning Reshard sweeps
// those journals first (their records are covered by the committed
// generation) and finishes the job.
func Reshard(path string, n int, opts ...Option) error {
	if n < 1 {
		return fmt.Errorf("adept2: reshard: invalid shard count %d", n)
	}
	var c config
	for _, o := range opts {
		o(&c)
	}
	man, err := sharded.LoadManifestFS(c.fsys(), sharded.ManifestPath(path))
	if err != nil {
		return err
	}
	oldShards := 1
	if man != nil {
		oldShards = man.Shards
	}
	if man == nil && n == 1 {
		return nil // single-journal layout already is the 1-shard layout
	}

	// Complete an interrupted shrink: journals past the manifest's shard
	// count block Open, but once a generation committed, their records
	// are folded into its snapshots — sweep and proceed.
	if man != nil && len(man.Generations) > 0 {
		stray, err := sharded.StrayShardsFS(c.fsys(), path, man.Shards)
		if err != nil {
			return err
		}
		for _, k := range stray {
			l := shardedLayout(&c, path, k+1)
			if err := c.fsys().Remove(l.JournalPath(k)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("adept2: reshard: sweep stray journal: %w", err)
			}
			if err := c.fsys().RemoveAll(l.SnapDir(k)); err != nil {
				return fmt.Errorf("adept2: reshard: sweep stray snapshots: %w", err)
			}
		}
	}

	// Recover through the caller's configuration (snapshot dir, group
	// commit) with automatic checkpoints off — only Every is overridden.
	ckpt := CheckpointConfig{Every: -1}
	if c.ckpt != nil {
		ckpt = *c.ckpt
		ckpt.Every = -1
		ckpt.Shards = 0 // auto-detect; the target count applies on write
	}
	sys, err := Open(path, append(append([]Option(nil), opts...), WithCheckpointing(ckpt))...)
	if err != nil {
		return err
	}
	// Capture the cut: seqs of surviving shard journals carry over (their
	// records are folded into the new snapshots); fresh shards start
	// empty at seq 0. The epoch carries over too — for a single-journal
	// source it is the journal head, which every pre-existing record is
	// at or below.
	var seqs, oldSeqs []int
	var epoch int
	if sys.wal != nil {
		oldSeqs = sys.wal.Seqs()
		epoch = sys.wal.Epoch()
	} else {
		oldSeqs = []int{sys.journal.Seq()}
		epoch = sys.journal.Seq()
	}
	newSeqs := make([]int, n)
	for k := 0; k < n && k < len(oldSeqs); k++ {
		newSeqs[k] = oldSeqs[k]
	}
	seqs = newSeqs
	staged := durable.Stage(sys.eng, 0)
	if err := sys.Close(); err != nil {
		return err
	}

	l := shardedLayout(&c, path, n)
	stores := make([]*durable.SnapshotStore, n)
	for k := range stores {
		st, err := durable.OpenStoreFS(c.fsys(), l.SnapDir(k))
		if err != nil {
			return err
		}
		stores[k] = st
	}
	caps := staged.Split(seqs, epoch, func(id string) int { return sharded.ShardOf(id, n) })
	// The kept journals' existing records were partitioned under the old
	// shard count: record the cut as each shard's replay floor so a
	// future full-replay fallback refuses to reorder them (recovery must
	// go through this generation or a later one).
	base := sharded.NewManifest(n)
	base.ReplayFloors = append([]int(nil), seqs...)
	if _, _, err := sharded.WriteCheckpoint(l, base, stores, caps, epoch, seqs, 1); err != nil {
		return err
	}

	// The manifest committed the new layout; remove what it obsoletes:
	// journals and snapshot stores of shards past the new count.
	stray := shardedLayout(&c, path, oldShards)
	for k := n; k < oldShards; k++ {
		if err := c.fsys().Remove(stray.JournalPath(k)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("adept2: reshard: remove stray journal: %w", err)
		}
		if err := c.fsys().RemoveAll(stray.SnapDir(k)); err != nil {
			return fmt.Errorf("adept2: reshard: remove stray snapshots: %w", err)
		}
	}
	// Fsync the directory so the removals are durable alongside the
	// manifest.
	_ = c.fsys().SyncDir(filepath.Dir(path))
	return nil
}
