package history

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"adept2/internal/graph"
	"adept2/internal/model"
)

func loopSchema(t *testing.T) (*model.Schema, *graph.Info, string, string) {
	t.Helper()
	b := model.NewBuilder("loop")
	loop := b.Loop(b.Seq(b.Activity("w", "W"), b.Activity("v", "V")), "", 0)
	s, err := b.Build(b.Seq(b.Activity("pre", "Pre"), loop, b.Activity("post", "Post")))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	info, err := graph.Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ls, le string
	for _, n := range s.Nodes() {
		switch n.Type {
		case model.NodeLoopStart:
			ls = n.ID
		case model.NodeLoopEnd:
			le = n.ID
		}
	}
	return s, info, ls, le
}

func TestLogAppendAssignsDenseSeq(t *testing.T) {
	l := NewLog()
	e1 := l.Append(&Event{Kind: Started, Node: "a"})
	e2 := l.Append(&Event{Kind: Completed, Node: "a"})
	if e1.Seq != 1 || e2.Seq != 2 || l.Len() != 2 || l.NextSeq() != 3 {
		t.Fatalf("seq assignment broken: %d %d len=%d next=%d", e1.Seq, e2.Seq, l.Len(), l.NextSeq())
	}
}

func TestLogCloneIsDeep(t *testing.T) {
	l := NewLog()
	l.Append(&Event{Kind: Completed, Node: "a", Writes: map[string]any{"d": int64(1)}})
	c := l.Clone()
	c.Events()[0].Writes["d"] = int64(99)
	if l.Events()[0].Writes["d"] != int64(1) {
		t.Fatal("clone shares write maps")
	}
	c.Append(&Event{Kind: Started, Node: "b"})
	if l.Len() != 1 {
		t.Fatal("clone append leaked")
	}
}

func TestLogJSONRoundTrip(t *testing.T) {
	l := NewLog()
	l.Append(&Event{Kind: Started, Node: "a", User: "u1", Reads: map[string]any{"p": "v"}})
	l.Append(&Event{Kind: Completed, Node: "a", Decision: 2})
	blob, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Log
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Len() != 2 || back.NextSeq() != 3 {
		t.Fatalf("round trip: len=%d next=%d", back.Len(), back.NextSeq())
	}
	if back.Events()[1].Decision != 2 {
		t.Fatal("decision lost")
	}
	if err := json.Unmarshal([]byte("{"), &back); err == nil {
		t.Fatal("expected error for bad JSON")
	}
}

func TestReduceDropsSupersededIterations(t *testing.T) {
	_, info, ls, le := loopSchema(t)
	l := NewLog()
	// pre, then two iterations of (ls, w, v, le-again), then final
	// iteration completing.
	l.Append(&Event{Kind: Started, Node: "pre"})
	l.Append(&Event{Kind: Completed, Node: "pre"})
	for i := 0; i < 2; i++ {
		l.Append(&Event{Kind: Started, Node: ls})
		l.Append(&Event{Kind: Completed, Node: ls})
		l.Append(&Event{Kind: Started, Node: "w"})
		l.Append(&Event{Kind: Completed, Node: "w"})
		l.Append(&Event{Kind: Started, Node: "v"})
		l.Append(&Event{Kind: Completed, Node: "v"})
		l.Append(&Event{Kind: Started, Node: le})
		l.Append(&Event{Kind: Completed, Node: le, Again: true})
	}
	l.Append(&Event{Kind: Started, Node: ls})
	l.Append(&Event{Kind: Completed, Node: ls})
	l.Append(&Event{Kind: Started, Node: "w"})
	l.Append(&Event{Kind: Completed, Node: "w"})

	red := Reduce(info, l.Events())
	// Expected: pre(2) + final iteration so far (ls started/completed, w
	// started/completed) = 6 events.
	if len(red) != 6 {
		t.Fatalf("reduced length = %d, want 6: %v", len(red), red)
	}
	for _, e := range red {
		if e.Again {
			t.Fatalf("iterating completion survived reduction: %v", e)
		}
	}
	if red[0].Node != "pre" || red[2].Node != ls || red[4].Node != "w" {
		t.Fatalf("unexpected order: %v", red)
	}
}

func TestReduceKeepsNonLoopHistory(t *testing.T) {
	_, info, _, _ := loopSchema(t)
	l := NewLog()
	l.Append(&Event{Kind: Started, Node: "pre"})
	l.Append(&Event{Kind: Completed, Node: "pre"})
	red := Reduce(info, l.Events())
	if len(red) != 2 {
		t.Fatalf("reduce must keep all non-loop events, got %d", len(red))
	}
}

// nestedLoopSchema: pre -> outer loop( w -> inner loop(x) -> v ) -> post.
func nestedLoopSchema(t *testing.T) (*model.Schema, *graph.Info, []string) {
	t.Helper()
	b := model.NewBuilder("nested")
	inner := b.Loop(b.Activity("x", "X"), "", 0)
	outer := b.Loop(b.Seq(b.Activity("w", "W"), inner, b.Activity("v", "V")), "", 0)
	s, err := b.Build(b.Seq(b.Activity("pre", "Pre"), outer, b.Activity("post", "Post")))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	info, err := graph.Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return s, info, s.NodeIDs()
}

// TestReduceBackwardMatchesForward: the backward interned single-pass
// reduction is stream-for-stream identical to the forward purge-on-Again
// formulation, on randomized event streams over a schema with nested
// loops (including streams that are not valid executions — both
// formulations only inspect Kind/Again/Node). The generator also emits
// Failed and Timeout events, pinning the attempt-purge bookkeeping of
// both passes against each other.
func TestReduceBackwardMatchesForward(t *testing.T) {
	_, info, ids := nestedLoopSchema(t)
	if info.Topology() == nil {
		t.Fatal("analysis must capture the topology snapshot")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		events := make([]*Event, n)
		for i := range events {
			e := &Event{Seq: i + 1, Node: ids[rng.Intn(len(ids))]}
			switch rng.Intn(6) {
			case 0, 1, 2:
				e.Kind = Completed
				e.Again = rng.Intn(3) == 0
			case 3:
				e.Kind = Failed
			case 4:
				e.Kind = Timeout
			default:
				e.Kind = Started
			}
			events[i] = e
		}
		got := ReduceInto(info, events, nil)
		want := reduceForward(info, events, nil)
		if len(got) != len(want) {
			t.Fatalf("seed %d: backward %d events, forward %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d differs: %v vs %v", seed, i, got[i], want[i])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReducePurgesFailedAttempts: a failed attempt leaves the logical
// history entirely — the Failed event drops together with its matching
// Started, Timeout markers always drop, and the successful retry's
// Started/Completed pair survives. This is what makes a failed-then-
// retried activity compliant with a schema that never saw the failure.
func TestReducePurgesFailedAttempts(t *testing.T) {
	_, info, _, _ := loopSchema(t)
	l := NewLog()
	l.Append(&Event{Kind: Started, Node: "pre"})
	l.Append(&Event{Kind: Timeout, Node: "pre", Reason: "deadline expired"})
	l.Append(&Event{Kind: Failed, Node: "pre", Reason: "attempt 1"})
	l.Append(&Event{Kind: Started, Node: "pre"})
	l.Append(&Event{Kind: Failed, Node: "pre", Reason: "attempt 2"})
	l.Append(&Event{Kind: Started, Node: "pre"})
	l.Append(&Event{Kind: Completed, Node: "pre"})

	red := Reduce(info, l.Events())
	if len(red) != 2 {
		t.Fatalf("reduced length = %d, want the surviving Started/Completed pair: %v", len(red), red)
	}
	if red[0].Kind != Started || red[1].Kind != Completed || red[0].Seq != 6 {
		t.Fatalf("wrong survivors: %v", red)
	}
	for _, e := range red {
		if e.Kind == Failed || e.Kind == Timeout {
			t.Fatalf("exception marker survived reduction: %v", e)
		}
	}
}

// TestReduceIntoReusesBuffer: the result lives in the caller's buffer when
// it has capacity.
func TestReduceIntoReusesBuffer(t *testing.T) {
	_, info, _, _ := loopSchema(t)
	events := []*Event{
		{Seq: 1, Kind: Started, Node: "pre"},
		{Seq: 2, Kind: Completed, Node: "pre"},
	}
	buf := make([]*Event, 0, 32)
	out := ReduceInto(info, events, buf)
	if len(out) != 2 || cap(out) != cap(buf) || &out[0] != &buf[:1][0] {
		t.Fatalf("buffer not reused: len=%d cap=%d", len(out), cap(out))
	}
}

// TestStatsRebind: dense records survive a rebind to a mutated topology,
// records of unknown nodes spill into the overflow and fold back in on the
// next rebind.
func TestStatsRebind(t *testing.T) {
	s, _, _, _ := loopSchema(t)
	st := NewStatsFor(s.Topology())
	st.OnStart("pre", 1)
	st.OnComplete("pre", 2, -1)
	st.OnStart("ghost", 3) // unknown to the topology: overflow-kept
	if !st.Started("pre") || !st.Started("ghost") {
		t.Fatal("records lost before rebind")
	}

	// Mutate the schema (adds a node, invalidates the topology cache).
	if err := s.AddNode(&model.Node{ID: "ghost", Type: model.NodeActivity}); err != nil {
		t.Fatal(err)
	}
	topo2 := s.Topology()
	st.Rebind(topo2)
	if st.StartSeq("pre") != 1 || st.CompleteSeq("pre") != 2 {
		t.Fatal("dense record lost across rebind")
	}
	if st.StartSeq("ghost") != 3 {
		t.Fatal("overflow record not folded into the new topology")
	}
	st.Rebind(topo2) // same-topology rebind is a no-op
	if st.StartSeq("pre") != 1 {
		t.Fatal("no-op rebind corrupted records")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

func TestStatsLifecycle(t *testing.T) {
	s := NewStats()
	s.OnStart("a", 3)
	if !s.Started("a") || s.StartSeq("a") != 3 || s.CompleteSeq("a") != 0 {
		t.Fatal("start bookkeeping")
	}
	s.OnComplete("a", 4, -1)
	if s.CompleteSeq("a") != 4 {
		t.Fatal("complete bookkeeping")
	}
	s.OnComplete("split", 6, 1) // completion without recorded start
	d := s.Decisions()
	if d["split"] != 1 {
		t.Fatalf("decisions = %v", d)
	}
	if _, ok := d["a"]; ok {
		t.Fatal("non-split decision leaked")
	}
	c := s.Clone()
	c.OnStart("b", 9)
	if s.Started("b") {
		t.Fatal("clone leaked")
	}
	s.PurgeRegion(map[string]bool{"a": true})
	if s.Started("a") {
		t.Fatal("purge failed")
	}
	if s.Started("nope") || s.StartSeq("nope") != 0 || s.CompleteSeq("nope") != 0 {
		t.Fatal("zero stats for unknown nodes")
	}
}

func TestEventStringsAndKind(t *testing.T) {
	if (&Event{Seq: 1, Kind: Started, Node: "a"}).String() != "#1 started a" {
		t.Fatal("started string")
	}
	if (&Event{Seq: 2, Kind: Completed, Node: "s", Decision: 1}).String() != "#2 completed s (decision 1)" {
		t.Fatal("decision string")
	}
	if (&Event{Seq: 3, Kind: Completed, Node: "le", Again: true}).String() != "#3 completed le (again)" {
		t.Fatal("again string")
	}
	if (&Event{Seq: 4, Kind: Completed, Node: "a", Decision: -1}).String() != "#4 completed a" {
		t.Fatal("plain completed string")
	}
	if Started.String() != "started" || Completed.String() != "completed" {
		t.Fatal("kind strings")
	}
}

func TestStatsExportImportRoundTrip(t *testing.T) {
	s := model.NewSchema("s", "t", 1)
	for _, n := range []*model.Node{
		{ID: "start", Name: "start", Type: model.NodeStart, Auto: true},
		{ID: "a", Name: "a", Type: model.NodeActivity},
		{ID: "end", Name: "end", Type: model.NodeEnd, Auto: true},
	} {
		if err := s.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	st := NewStatsFor(s.Topology())
	st.OnStart("a", 1)
	st.OnComplete("a", 2, 3)
	st.OnStart("ghost", 4) // overflow record (node unknown to the topology)

	ex := st.Export()
	re := ImportStats(s.Topology(), ex)
	if !re.Started("a") || re.CompleteSeq("a") != 2 || re.Decisions()["a"] != 3 {
		t.Fatalf("dense record lost: %+v", ex)
	}
	if !re.Started("ghost") || re.StartSeq("ghost") != 4 {
		t.Fatalf("overflow record lost: %+v", ex)
	}
}

func TestStatsDenseAccessorsMatchStringPath(t *testing.T) {
	s := model.NewSchema("s", "t", 1)
	for _, n := range []*model.Node{
		{ID: "start", Name: "start", Type: model.NodeStart, Auto: true},
		{ID: "a", Name: "a", Type: model.NodeActivity},
		{ID: "end", Name: "end", Type: model.NodeEnd, Auto: true},
	} {
		if err := s.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	topo := s.Topology()
	st := NewStatsFor(topo)
	st.OnStart("a", 1)
	st.OnComplete("a", 2, -1)
	ai, _ := topo.Idx("a")
	if st.StartedAt(topo, ai) != st.Started("a") ||
		st.StartSeqAt(topo, ai) != st.StartSeq("a") ||
		st.CompleteSeqAt(topo, ai) != st.CompleteSeq("a") {
		t.Fatal("dense accessors diverge from string path")
	}
	// Foreign topology binding falls back to the string path.
	other := model.NewSchema("o", "t", 1)
	for _, n := range []*model.Node{
		{ID: "start", Name: "s", Type: model.NodeStart, Auto: true},
		{ID: "a", Name: "a", Type: model.NodeActivity},
		{ID: "end", Name: "e", Type: model.NodeEnd, Auto: true},
	} {
		if err := other.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	oi, _ := other.Topology().Idx("a")
	if !st.StartedAt(other.Topology(), oi) {
		t.Fatal("fallback path broken")
	}
}

func TestStatsRebindPooledMatchesRebind(t *testing.T) {
	mk := func() (*model.Schema, *model.Schema) {
		a := model.NewSchema("a", "t", 1)
		b := model.NewSchema("b", "t", 2)
		for _, s := range []*model.Schema{a, b} {
			for _, n := range []*model.Node{
				{ID: "start", Name: "s", Type: model.NodeStart, Auto: true},
				{ID: "x", Name: "x", Type: model.NodeActivity},
				{ID: "end", Name: "e", Type: model.NodeEnd, Auto: true},
			} {
				if err := s.AddNode(n); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := b.AddNode(&model.Node{ID: "y", Name: "y", Type: model.NodeActivity}); err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	a, b := mk()
	sc := &RebindScratch{}
	for iter := 0; iter < 3; iter++ {
		pooled := NewStatsFor(a.Topology())
		pooled.OnStart("x", 1)
		plain := pooled.Clone()
		pooled.RebindPooled(b.Topology(), sc)
		plain.Rebind(b.Topology())
		if pooled.StartSeq("x") != plain.StartSeq("x") || pooled.Len() != plain.Len() {
			t.Fatalf("iter %d: pooled rebind diverged", iter)
		}
	}
}
