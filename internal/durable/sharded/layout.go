// Package sharded partitions the durability pipeline of internal/durable
// across N journals: instances are hashed by instance ID onto shards,
// each shard owns its own journal file, its own group-commit committer,
// and its own snapshot series, and recovery opens all shards in parallel.
// Shard 0 doubles as the control log: schema deploys, org/user changes,
// and schema evolutions are appended there, and the sequence number of
// the last control record — the epoch — is stamped onto every data-shard
// record so cross-shard recovery can re-establish a consistent order.
// See the package documentation of internal/durable for the invariants.
package sharded

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"adept2/internal/durable"
	"adept2/internal/vfs"
)

// Layout names the on-disk artifacts of a sharded journal set rooted at a
// base journal path. Shard 0's journal is the base path itself, so a
// single-shard layout is byte-compatible with the pre-sharding (PR 3)
// single-journal layout; shard k > 0 lives in sibling files.
type Layout struct {
	// Base is the shard-0 journal path (the path handed to adept2.Open).
	Base string
	// Shards is the shard count (>= 1).
	Shards int
	// SnapBase optionally overrides the snapshot directory root: shard
	// k's store becomes SnapBase/shard-k. Empty selects the default
	// sibling-directory scheme (<journal>.snapshots per shard).
	SnapBase string
	// FS is the filesystem every artifact of the layout is accessed
	// through; nil selects the real OS filesystem.
	FS vfs.FS
}

// fs resolves the layout's filesystem, defaulting to the OS backend.
func (l Layout) fs() vfs.FS {
	if l.FS != nil {
		return l.FS
	}
	return vfs.OS()
}

// JournalPath returns shard k's journal file path.
func (l Layout) JournalPath(k int) string {
	if k == 0 {
		return l.Base
	}
	return fmt.Sprintf("%s.shard-%d", l.Base, k)
}

// SnapDir returns shard k's snapshot directory.
func (l Layout) SnapDir(k int) string {
	if l.SnapBase != "" {
		return filepath.Join(l.SnapBase, fmt.Sprintf("shard-%d", k))
	}
	return l.JournalPath(k) + ".snapshots"
}

// ManifestPath returns the global manifest path for a base journal path.
func ManifestPath(base string) string { return base + ".MANIFEST.json" }

// ShardOf hashes an instance ID onto one of n shards. The hash must stay
// stable across processes (it is baked into the on-disk partitioning):
// FNV-1a over the ID bytes.
func ShardOf(instID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(instID))
	return int(h.Sum32() % uint32(n))
}

// ManifestFormat versions the global manifest schema.
const ManifestFormat = 1

// Part ties one shard's snapshot file to the journal sequence number it
// covers within a generation.
type Part struct {
	File string `json:"file"`
	Seq  int    `json:"seq"`
}

// Generation records one checkpoint cut: every shard's snapshot was
// captured under the same exclusive barrier, at the same control epoch,
// so restoring all parts of one generation yields a consistent state.
type Generation struct {
	// Epoch is the control-log (shard 0) sequence number of the last
	// control record folded into the cut.
	Epoch int    `json:"epoch"`
	Parts []Part `json:"parts"`
}

// Manifest is the global sharded-layout manifest. Unlike the advisory
// per-store manifests, it is authoritative: it declares the shard count
// (the partitioning function), and its generation list is the unit of
// recovery fallback — a generation is only usable when every part of it
// validates, so the manifest is written after all parts are durable.
type Manifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
	// Heads records each shard's journal head sequence number as of the
	// newest generation (diagnostic; recovery trusts the journals).
	Heads []int `json:"heads,omitempty"`
	// Generations lists checkpoint cuts, ascending (newest last).
	Generations []Generation `json:"generations,omitempty"`
	// ReplayFloors marks, per shard, the journal position of the last
	// reshard cut: records at or below the floor were partitioned under
	// a DIFFERENT shard count, so a full merged replay — which orders
	// data shards only by epoch — could interleave one instance's
	// records from two shards. Recovery refuses full replay for a data
	// shard whose journal still reaches its floor (a generation snapshot
	// is required instead). Shard 0 is exempt: its pre-reshard records
	// are totally ordered and epoch-gate every later data record.
	ReplayFloors []int `json:"replayFloors,omitempty"`
}

// NewManifest initializes an empty manifest for n shards.
func NewManifest(n int) *Manifest {
	return &Manifest{Format: ManifestFormat, Shards: n}
}

// LoadManifest reads the global manifest; a missing file returns (nil,
// nil) — the caller treats that as "not a sharded layout".
func LoadManifest(path string) (*Manifest, error) {
	return LoadManifestFS(vfs.OS(), path)
}

// LoadManifestFS is LoadManifest over an explicit filesystem.
func LoadManifestFS(fsys vfs.FS, path string) (*Manifest, error) {
	blob, err := vfs.ReadFile(fsys, path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sharded: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("sharded: parse manifest %s: %w", path, err)
	}
	if m.Format != ManifestFormat {
		return nil, fmt.Errorf("sharded: manifest %s: format %d, want %d", path, m.Format, ManifestFormat)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("sharded: manifest %s: invalid shard count %d", path, m.Shards)
	}
	return &m, nil
}

// WriteManifest atomically rewrites the global manifest (temp file +
// fsync + rename + directory fsync, like snapshot files).
func WriteManifest(base string, m *Manifest) error {
	return WriteManifestFS(vfs.OS(), base, m)
}

// WriteManifestFS is WriteManifest over an explicit filesystem.
func WriteManifestFS(fsys vfs.FS, base string, m *Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sharded: marshal manifest: %w", err)
	}
	dir, name := filepath.Split(ManifestPath(base))
	if dir == "" {
		dir = "."
	}
	return durable.AtomicWriteFS(fsys, dir, name, blob)
}

// StrayShards lists the indexes of shard journals past the declared
// shard count that hold data.
func StrayShards(base string, shards int) ([]int, error) {
	return StrayShardsFS(vfs.OS(), base, shards)
}

// StrayShardsFS is StrayShards over an explicit filesystem.
func StrayShardsFS(fsys vfs.FS, base string, shards int) ([]int, error) {
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sharded: scan layout: %w", err)
	}
	prefix := name + ".shard-"
	var stray []int
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), prefix) {
			continue
		}
		k, err := strconv.Atoi(strings.TrimPrefix(de.Name(), prefix))
		if err != nil || k < shards {
			continue
		}
		if info, err := de.Info(); err == nil && info.Size() > 0 {
			stray = append(stray, k)
		}
	}
	return stray, nil
}

// CheckStrayShards refuses when the directory holds shard journals past
// the manifest's shard count with records in them: silently ignoring a
// populated shard journal would drop its instances' history. Resharding
// (which rewrites the layout offline, and sweeps these up when rerun
// after an interrupted shrink) is the only legitimate way the shard
// count changes.
func CheckStrayShards(base string, shards int) error {
	return CheckStrayShardsFS(vfs.OS(), base, shards)
}

// CheckStrayShardsFS is CheckStrayShards over an explicit filesystem.
func CheckStrayShardsFS(fsys vfs.FS, base string, shards int) error {
	stray, err := StrayShardsFS(fsys, base, shards)
	if err != nil {
		return err
	}
	if len(stray) > 0 {
		return fmt.Errorf(
			"sharded: journal shard %d exists with data but the manifest declares %d shards: shard count mismatch, refusing to recover (rerun adeptctl reshard)",
			stray[0], shards)
	}
	return nil
}
