package model

// SchemaView is the read-only interface all ADEPT2 components operate on.
// Both *Schema and the substitution-block overlay of biased instances
// (internal/storage) implement it; this indirection realizes the hybrid
// storage representation of Fig. 2 of the paper.
//
// Implementations must return stable, deterministic orders from the
// enumeration methods, and callers must not mutate returned values.
type SchemaView interface {
	// SchemaID returns the unique identifier of the (possibly overlaid)
	// schema.
	SchemaID() string
	// TypeName returns the process type the schema belongs to.
	TypeName() string
	// Version returns the schema version within its process type.
	Version() int

	// NodeIDs enumerates all node IDs in a stable order.
	NodeIDs() []string
	// Node looks up a node by ID.
	Node(id string) (*Node, bool)
	// Edges enumerates all edges in a stable order.
	Edges() []*Edge
	// OutEdges returns all edges (of every type) leaving the node.
	OutEdges(id string) []*Edge
	// InEdges returns all edges (of every type) entering the node.
	InEdges(id string) []*Edge
	// HasEdge reports whether the edge identified by the key exists.
	HasEdge(k EdgeKey) bool

	// StartID returns the ID of the unique start node ("" if absent).
	StartID() string
	// EndID returns the ID of the unique end node ("" if absent).
	EndID() string

	// Topology returns the precomputed topology index of the view.
	// Implementations cache the index and invalidate it on structural
	// mutation; the returned value is immutable and must not be held
	// across mutations of the view.
	Topology() *Topology

	// DataElements enumerates all data elements in a stable order.
	DataElements() []*DataElement
	// DataElement looks up a data element by ID.
	DataElement(id string) (*DataElement, bool)
	// DataEdges enumerates all data edges in a stable order.
	DataEdges() []*DataEdge
	// DataEdgesOf returns the data edges attached to an activity.
	DataEdgesOf(activity string) []*DataEdge
}

// MutableView extends SchemaView with the mutation operations the change
// framework needs. *Schema implements it directly; the storage overlay
// implements it by recording deltas against its base schema.
type MutableView interface {
	SchemaView

	AddNode(n *Node) error
	// ReplaceNode swaps the attributes of an existing node (same ID, same
	// type); attribute-level change operations such as staff re-assignment
	// use it.
	ReplaceNode(n *Node) error
	RemoveNode(id string) error
	AddEdge(e *Edge) error
	RemoveEdge(k EdgeKey) error
	AddDataElement(d *DataElement) error
	RemoveDataElement(id string) error
	AddDataEdge(d *DataEdge) error
	RemoveDataEdge(k DataEdgeKey) error
}

// ControlSuccs returns the targets of outgoing control edges of the node,
// in edge order.
func ControlSuccs(v SchemaView, id string) []string {
	return edgeTargets(v.OutEdges(id), EdgeControl, true)
}

// ControlPreds returns the sources of incoming control edges of the node.
func ControlPreds(v SchemaView, id string) []string {
	return edgeTargets(v.InEdges(id), EdgeControl, false)
}

// SyncSuccs returns the targets of outgoing sync edges of the node.
func SyncSuccs(v SchemaView, id string) []string {
	return edgeTargets(v.OutEdges(id), EdgeSync, true)
}

// SyncPreds returns the sources of incoming sync edges of the node.
func SyncPreds(v SchemaView, id string) []string {
	return edgeTargets(v.InEdges(id), EdgeSync, false)
}

func edgeTargets(edges []*Edge, t EdgeType, out bool) []string {
	var ids []string
	for _, e := range edges {
		if e.Type != t {
			continue
		}
		if out {
			ids = append(ids, e.To)
		} else {
			ids = append(ids, e.From)
		}
	}
	return ids
}

// OutControlEdges returns the outgoing control edges of the node.
func OutControlEdges(v SchemaView, id string) []*Edge {
	var es []*Edge
	for _, e := range v.OutEdges(id) {
		if e.Type == EdgeControl {
			es = append(es, e)
		}
	}
	return es
}

// InControlEdges returns the incoming control edges of the node.
func InControlEdges(v SchemaView, id string) []*Edge {
	var es []*Edge
	for _, e := range v.InEdges(id) {
		if e.Type == EdgeControl {
			es = append(es, e)
		}
	}
	return es
}

// WritersOf returns the activities with a write data edge on the element.
func WritersOf(v SchemaView, element string) []string {
	var ids []string
	for _, de := range v.DataEdges() {
		if de.Element == element && de.Access == Write {
			ids = append(ids, de.Activity)
		}
	}
	return ids
}

// ReadersOf returns the activities with a read data edge on the element.
func ReadersOf(v SchemaView, element string) []string {
	var ids []string
	for _, de := range v.DataEdges() {
		if de.Element == element && de.Access == Read {
			ids = append(ids, de.Activity)
		}
	}
	return ids
}
