package evolution_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/sim"
)

// buildPopulatedEngine creates an engine with a deterministic population of
// online-order instances (biased, conflicting, and plain ones).
func buildPopulatedEngine(t *testing.T, n int) *engine.Engine {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	opts := sim.DefaultPopulationOpts(n)
	opts.BiasedFrac = 0.3
	opts.ConflictingBiasFrac = 0.2
	if _, err := sim.BuildPopulation(e, rng, opts); err != nil {
		t.Fatal(err)
	}
	return e
}

// outcomeCounts summarizes a report as outcome -> count.
func outcomeCounts(r *evolution.Report) map[evolution.Outcome]int {
	c := make(map[evolution.Outcome]int)
	for _, res := range r.Results {
		c[res.Outcome]++
	}
	return c
}

// TestConcurrentMigrationSharedIndex migrates a population with many
// workers under both check modes. All workers share the target schema's
// precomputed block analysis and topology index; run under -race this
// asserts the sharing is sound, and the per-outcome counts must match a
// single-worker run of the identically-seeded population.
func TestConcurrentMigrationSharedIndex(t *testing.T) {
	for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
		t.Run(fmt.Sprintf("mode=%s", mode), func(t *testing.T) {
			serial := buildPopulatedEngine(t, 120)
			serialReport, err := evolution.NewManager(serial).Evolve(
				"online_order", sim.OnlineOrderTypeChange(),
				evolution.Options{Mode: mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}

			parallel := buildPopulatedEngine(t, 120)
			parallelReport, err := evolution.NewManager(parallel).Evolve(
				"online_order", sim.OnlineOrderTypeChange(),
				evolution.Options{Mode: mode, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}

			if parallelReport.Total() != serialReport.Total() {
				t.Fatalf("totals differ: serial=%d parallel=%d", serialReport.Total(), parallelReport.Total())
			}
			sc, pc := outcomeCounts(serialReport), outcomeCounts(parallelReport)
			for _, o := range evolution.Outcomes() {
				if sc[o] != pc[o] {
					t.Errorf("outcome %s: serial=%d parallel=%d", o, sc[o], pc[o])
				}
			}
			if got := parallelReport.Count(evolution.Migrated); got == 0 {
				t.Fatal("expected at least one migrated instance")
			}
			if got := parallelReport.Count(evolution.Failed); got != 0 {
				t.Fatalf("unexpected failures: %d", got)
			}
		})
	}
}

// TestMigrateAllReusesTargetIndexAcrossVersions runs two consecutive
// evolutions with concurrent workers: the second migration starts from a
// deployed version whose cached indexes were already shared by the first —
// the long-lived-cache path a production engine exercises continuously.
func TestMigrateAllReusesTargetIndexAcrossVersions(t *testing.T) {
	e := buildPopulatedEngine(t, 60)
	mgr := evolution.NewManager(e)
	if _, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Workers: 6}); err != nil {
		t.Fatal(err)
	}
	second := []change.Operation{&change.SerialInsert{
		Node: &model.Node{ID: "register_delivery", Name: "Register Delivery", Type: model.NodeActivity, Role: "courier", Template: "register_delivery"},
		Pred: "deliver_goods",
		Succ: "end",
	}}
	report, err := mgr.Evolve("online_order", second, evolution.Options{Workers: 6, Mode: evolution.ReplayCheck})
	if err != nil {
		t.Fatal(err)
	}
	if report.Count(evolution.Failed) != 0 {
		t.Fatalf("unexpected failures in second evolution: %+v", report.Results)
	}
}
