package adept2_test

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

// buildShardedSystem opens a system with n shards (n=1 stays on the
// single-journal layout — the PR 3 baseline), deploys the demo schema,
// and creates insts instances.
func buildShardedSystem(b *testing.B, path string, shards, insts int) (*adept2.System, []string) {
	b.Helper()
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, Shards: shards}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	ids := make([]string, insts)
	for i := range ids {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = inst.ID()
	}
	return sys, ids
}

// BenchmarkShardedAppend measures journaled command throughput under
// concurrent writers as the shard count grows. shards=1 is the PR 3
// single-committer group-commit pipeline (one fsync queue); more shards
// give concurrent writers independent journal locks, encoders, and fsync
// queues, so throughput can scale past the single-committer plateau.
// Each op is one journaled suspend/resume pair on a goroutine-private
// instance.
func BenchmarkShardedAppend(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d/writers=8", shards), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			sys, ids := buildShardedSystem(b, path, shards, 256)
			defer sys.Close()
			var next int32
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := ids[(atomic.AddInt32(&next, 1)-1)%int32(len(ids))]
				for pb.Next() {
					if err := sys.Suspend(id); err != nil {
						b.Error(err)
						return
					}
					if err := sys.Resume(id); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardedRecovery measures Open-time recovery of a 16k-record
// history as the shard count grows: the journals are scanned, decoded,
// and replayed shard-parallel (control-record barriers only), so
// recovery wall-time can drop with the shard count instead of paying one
// serial replay. shards=1 is the PR 3 single-journal full replay.
func BenchmarkShardedRecovery(b *testing.B) {
	const history = 16384
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d/history=%d", shards, history), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			sys, ids := buildShardedSystem(b, path, shards, 64)
			for seq := sys.JournalSeq(); seq < history; seq = sys.JournalSeq() {
				id := ids[seq%len(ids)]
				if err := sys.Suspend(id); err != nil {
					b.Fatal(err)
				}
				if err := sys.Resume(id); err != nil {
					b.Fatal(err)
				}
			}
			if err := sys.Close(); err != nil {
				b.Fatal(err)
			}
			cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, Shards: shards}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
				if err != nil {
					b.Fatal(err)
				}
				if info := sys.Recovery(); !info.FullReplay {
					b.Fatalf("expected full replay, got %+v", info)
				}
				sys.Close()
			}
		})
	}
}

// BenchmarkShardedSnapshotRecovery is the checkpointed variant: each
// shard restores its own snapshot (decoded and installed in parallel)
// plus a short suffix.
func BenchmarkShardedSnapshotRecovery(b *testing.B) {
	const history = 16384
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d/history=%d", shards, history), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.ndjson")
			sys, ids := buildShardedSystem(b, path, shards, 512)
			for seq := sys.JournalSeq(); seq < history; seq = sys.JournalSeq() {
				id := ids[seq%len(ids)]
				if err := sys.Suspend(id); err != nil {
					b.Fatal(err)
				}
				if err := sys.Resume(id); err != nil {
					b.Fatal(err)
				}
			}
			if _, _, err := sys.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 32; i++ {
				id := ids[i]
				if err := sys.Suspend(id); err != nil {
					b.Fatal(err)
				}
				if err := sys.Resume(id); err != nil {
					b.Fatal(err)
				}
			}
			if err := sys.Close(); err != nil {
				b.Fatal(err)
			}
			cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true, Shards: shards}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
				if err != nil {
					b.Fatal(err)
				}
				if info := sys.Recovery(); info.FullReplay {
					b.Fatalf("expected snapshot recovery, got %+v", info)
				}
				sys.Close()
			}
		})
	}
}
