package model

// NodeTopology is the precomputed adjacency record of one node: its
// incident edges split by edge type, the node itself, and the node's
// position in the view's enumeration order. The marking evaluator
// (internal/state) consults these slices in its inner loop instead of
// filtering InEdges/OutEdges on every visit, which removes all per-call
// allocations from the hot path.
//
// The slices are owned by the Topology and must not be mutated.
type NodeTopology struct {
	// Index is the node's position in SchemaView.NodeIDs order; it gives
	// consumers a deterministic, allocation-free ordering key.
	Index int
	// Node is the node record itself.
	Node *Node

	// InControl / OutControl are the incoming/outgoing control edges.
	InControl  []*Edge
	OutControl []*Edge
	// InSync / OutSync are the incoming/outgoing sync edges.
	InSync  []*Edge
	OutSync []*Edge
	// InLoop / OutLoop are the incoming/outgoing loop back edges.
	InLoop  []*Edge
	OutLoop []*Edge
}

// Topology is the precomputed topology index of a schema view: per-node
// typed adjacency plus derived node lists the engine's hot paths scan
// (auto-executable nodes for the execution cascade, manual activities for
// worklist reconciliation).
//
// A Topology is an immutable snapshot of the view it was built from. Views
// cache it (see Schema.Topology and the overlay refresh path in
// internal/storage) and invalidate the cache on every structural mutation,
// so holding a *Topology across a mutation observes stale data — re-fetch
// it from the view instead.
type Topology struct {
	nodes  map[string]*NodeTopology
	auto   []string // CanAutoExecute node IDs in view order
	manual []string // manual (user-worked) activity IDs in view order
}

// BuildTopology computes the topology index of a view. Callers should
// prefer SchemaView.Topology, which returns the view's cached index.
func BuildTopology(v SchemaView) *Topology {
	ids := v.NodeIDs()
	t := &Topology{nodes: make(map[string]*NodeTopology, len(ids))}
	for i, id := range ids {
		n, ok := v.Node(id)
		if !ok {
			continue
		}
		t.nodes[id] = &NodeTopology{Index: i, Node: n}
		if n.CanAutoExecute() {
			t.auto = append(t.auto, id)
		}
		if n.Type == NodeActivity && !n.Auto {
			t.manual = append(t.manual, id)
		}
	}
	for _, e := range v.Edges() {
		from, to := t.nodes[e.From], t.nodes[e.To]
		switch e.Type {
		case EdgeControl:
			if from != nil {
				from.OutControl = append(from.OutControl, e)
			}
			if to != nil {
				to.InControl = append(to.InControl, e)
			}
		case EdgeSync:
			if from != nil {
				from.OutSync = append(from.OutSync, e)
			}
			if to != nil {
				to.InSync = append(to.InSync, e)
			}
		case EdgeLoop:
			if from != nil {
				from.OutLoop = append(from.OutLoop, e)
			}
			if to != nil {
				to.InLoop = append(to.InLoop, e)
			}
		}
	}
	return t
}

// Of returns the adjacency record of the node, or nil if the node is not
// part of the indexed view.
func (t *Topology) Of(id string) *NodeTopology { return t.nodes[id] }

// NumNodes returns the number of indexed nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// AutoExecutable returns the IDs of all nodes the engine may start and
// complete without user interaction (Node.CanAutoExecute), in view order.
// The execution cascade scans this list instead of all nodes.
func (t *Topology) AutoExecutable() []string { return t.auto }

// ManualActivities returns the IDs of all user-worked activity nodes in
// view order; worklist reconciliation scans this list instead of all
// nodes.
func (t *Topology) ManualActivities() []string { return t.manual }
