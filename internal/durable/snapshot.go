package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"adept2/internal/persist"
)

// snapHeader is the first line of a snapshot file; the payload follows as
// exactly Len bytes of SystemState JSON with CRC-32 (IEEE) checksum CRC32.
type snapHeader struct {
	Format int    `json:"format"`
	Seq    int    `json:"seq"`
	Len    int    `json:"len"`
	CRC32  uint32 `json:"crc32"`
}

// ManifestEntry ties one snapshot file to the journal sequence number it
// covers.
type ManifestEntry struct {
	File string `json:"file"`
	Seq  int    `json:"seq"`
}

// Manifest lists the snapshots of a store, ascending by sequence number.
// It is advisory: recovery enumerates the directory (so a crash between
// snapshot rename and manifest rewrite — a stale manifest — costs
// nothing), and validates every snapshot header independently.
type Manifest struct {
	Format    int             `json:"format"`
	Snapshots []ManifestEntry `json:"snapshots"`
}

// SnapshotStore reads and writes checkpoint files in one directory.
type SnapshotStore struct {
	dir string
}

// ManifestName is the file name of the snapshot manifest.
const ManifestName = "MANIFEST.json"

const snapPrefix, snapSuffix = "snap-", ".json"

// OpenStore opens (creating if needed) a snapshot directory. Orphaned
// temp files left by a crash mid-write are swept; the store assumes a
// single owning process (as the facade guarantees).
func OpenStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open snapshot store: %w", err)
	}
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			if !de.IsDir() && strings.Contains(de.Name(), ".tmp-") {
				_ = os.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	return &SnapshotStore{dir: dir}, nil
}

// Dir returns the store directory.
func (st *SnapshotStore) Dir() string { return st.dir }

// fileFor returns the snapshot file name covering seq.
func fileFor(seq int) string { return fmt.Sprintf("%s%012d%s", snapPrefix, seq, snapSuffix) }

// seqOf parses the sequence number out of a snapshot file name.
func seqOf(name string) (int, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Write persists the state as a new snapshot: payload to a temp file,
// fsync, atomic rename, directory fsync, then the manifest is rewritten
// the same way. A crash at any point leaves older snapshots untouched.
func (st *SnapshotStore) Write(state *SystemState) (string, error) {
	file, err := st.write(state)
	if err != nil {
		return "", err
	}
	return file, st.writeManifest()
}

// WriteAndPrune is Write followed by Prune with a single manifest rewrite
// (the steady-state checkpoint path would otherwise pay two temp-file +
// fsync + rename passes for the manifest per snapshot).
func (st *SnapshotStore) WriteAndPrune(state *SystemState, keep int) (string, error) {
	file, err := st.write(state)
	if err != nil {
		return "", err
	}
	if err := st.prune(keep); err != nil {
		return file, err
	}
	return file, st.writeManifest()
}

// write persists the snapshot file without touching the manifest.
func (st *SnapshotStore) write(state *SystemState) (string, error) {
	payload, err := json.Marshal(state)
	if err != nil {
		return "", fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	hdr, err := json.Marshal(snapHeader{
		Format: state.Format,
		Seq:    state.Seq,
		Len:    len(payload),
		CRC32:  crc32.ChecksumIEEE(payload),
	})
	if err != nil {
		return "", fmt.Errorf("durable: marshal snapshot header: %w", err)
	}
	name := fileFor(state.Seq)
	var buf bytes.Buffer
	buf.Grow(len(hdr) + 1 + len(payload))
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	if err := atomicWrite(st.dir, name, buf.Bytes()); err != nil {
		return "", err
	}
	return filepath.Join(st.dir, name), nil
}

// atomicWrite writes name in dir via temp file + fsync + rename + dir
// fsync.
func atomicWrite(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", name, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("durable: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("durable: fsync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: rename %s: %w", name, err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Entries lists the snapshots present in the store, ascending by sequence
// number. The listing comes from the directory, not the manifest, so a
// stale or missing manifest never hides a durable snapshot.
func (st *SnapshotStore) Entries() ([]ManifestEntry, error) {
	des, err := os.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	var out []ManifestEntry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if seq, ok := seqOf(de.Name()); ok {
			out = append(out, ManifestEntry{File: de.Name(), Seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// writeManifest atomically rewrites the manifest from the directory
// listing.
func (st *SnapshotStore) writeManifest() error {
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(&Manifest{Format: FormatVersion, Snapshots: entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal manifest: %w", err)
	}
	return atomicWrite(st.dir, ManifestName, blob)
}

// ReadManifest parses the manifest (advisory; see Manifest).
func (st *SnapshotStore) ReadManifest() (*Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(st.dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("durable: parse manifest: %w", err)
	}
	return &m, nil
}

// Load reads and fully validates one snapshot: header format, length, and
// checksum. Any mismatch (torn tail, corruption, version skew) returns an
// error; the caller falls back to an older snapshot or a full replay.
func (st *SnapshotStore) Load(entry ManifestEntry) (*SystemState, error) {
	f, err := os.Open(filepath.Join(st.dir, entry.File))
	if err != nil {
		return nil, fmt.Errorf("durable: open snapshot %s: %w", entry.File, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdrLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: torn header: %w", entry.File, err)
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: corrupt header: %w", entry.File, err)
	}
	if hdr.Format != FormatVersion {
		return nil, fmt.Errorf("durable: snapshot %s: format %d, want %d", entry.File, hdr.Format, FormatVersion)
	}
	if hdr.Seq != entry.Seq {
		return nil, fmt.Errorf("durable: snapshot %s: header seq %d does not match file name", entry.File, hdr.Seq)
	}
	payload := make([]byte, hdr.Len)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: torn payload: %w", entry.File, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("durable: snapshot %s: trailing data after payload", entry.File)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != hdr.CRC32 {
		return nil, fmt.Errorf("durable: snapshot %s: checksum mismatch (%08x != %08x)", entry.File, crc, hdr.CRC32)
	}
	var state SystemState
	if err := json.Unmarshal(payload, &state); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: corrupt payload: %w", entry.File, err)
	}
	if state.Seq != hdr.Seq {
		return nil, fmt.Errorf("durable: snapshot %s: payload seq %d != header seq %d", entry.File, state.Seq, hdr.Seq)
	}
	return &state, nil
}

// Prune removes all but the newest keep snapshots and rewrites the
// manifest.
func (st *SnapshotStore) Prune(keep int) error {
	if err := st.prune(keep); err != nil {
		return err
	}
	return st.writeManifest()
}

// prune removes the stale snapshot files without touching the manifest.
func (st *SnapshotStore) prune(keep int) error {
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	if len(entries) <= keep {
		return nil
	}
	for _, e := range entries[:len(entries)-keep] {
		// A concurrent pruner may have removed the file already (explicit
		// Checkpoint overlapping a background one): not an error.
		if err := os.Remove(filepath.Join(st.dir, e.File)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("durable: prune %s: %w", e.File, err)
		}
	}
	return nil
}

// CompactJournal rewrites the journal at path to only the records past
// keepSeq (the sequence number a durable snapshot covers), atomically.
// It returns how many records were dropped. The newest record is always
// retained even when the snapshot covers it: a journal emptied completely
// would be indistinguishable from a brand-new one, silently disabling the
// compacted-journal-requires-snapshot guard if the snapshots are ever
// lost. The resulting journal starts past seq 1; recovering it requires a
// snapshot reaching its first record.
func CompactJournal(path string, keepSeq int) (int, error) {
	// Only the kept suffix needs decoding; the dropped prefix is
	// integrity-scanned by the cheap sequence probe.
	recs, tail, err := persist.LoadJournalSuffix(path, keepSeq)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 && tail.LastSeq > 0 {
		// Keep the final record as the compaction tombstone.
		keepSeq = tail.LastSeq - 1
		recs, tail, err = persist.LoadJournalSuffix(path, keepSeq)
		if err != nil {
			return 0, err
		}
	}
	dropped := 0
	if tail.FirstSeq > 0 && tail.FirstSeq <= keepSeq {
		end := tail.LastSeq
		if end > keepSeq {
			end = keepSeq
		}
		dropped = end - tail.FirstSeq + 1
	}
	if dropped == 0 {
		return 0, nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return 0, fmt.Errorf("durable: compact: %w", err)
		}
	}
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	if err := atomicWrite(dir, name, buf.Bytes()); err != nil {
		return 0, err
	}
	return dropped, nil
}
