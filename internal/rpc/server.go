package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adept2"
	"adept2/internal/obs"
)

// Options tunes a Server (zero values take defaults).
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0" — loopback,
	// kernel-assigned port; read it back with Addr()).
	Addr string
	// MaxInflight bounds concurrently executing command/batch handlers;
	// excess requests block in the handler until a slot frees (the
	// wire plane's backpressure — the TCP connection absorbs the queue).
	// Default 64.
	MaxInflight int
	// MaxStreams bounds concurrently connected NDJSON subscribers
	// (watermark + control-log tails); excess subscriptions are rejected
	// with 503. Default 8.
	MaxStreams int
}

// Server is the networked command plane: an HTTP/JSON front over one
// *adept2.System. Commands travel as registry (op, args) envelopes —
// the same codec the journal uses — and async durability resolves
// through the watermark stream (see doc.go for the wire protocol).
type Server struct {
	sys  *adept2.System
	met  *obs.Set
	opts Options

	lis net.Listener
	srv *http.Server

	sema     chan struct{} // command/batch backpressure slots
	streams  atomic.Int64  // connected NDJSON subscribers
	draining atomic.Bool
	drainCh  chan struct{} // closed when drain begins: unblocks slot waiters

	streamCtx    context.Context // canceled after drain syncs: ends streams
	streamCancel context.CancelFunc

	closeOnce sync.Once
	closeErr  error
	serveErr  chan error
}

// NewServer starts serving sys on opts.Addr. The returned server is
// live: Addr() is connectable until Close.
func NewServer(sys *adept2.System, opts Options) (*Server, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 64
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = 8
	}
	lis, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		sys:      sys,
		met:      sys.ObsSet(),
		opts:     opts,
		lis:      lis,
		sema:     make(chan struct{}, opts.MaxInflight),
		drainCh:  make(chan struct{}),
		serveErr: make(chan error, 1),
	}
	s.streamCtx, s.streamCancel = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/commands", s.instrument(obs.EpCommands, s.handleCommands))
	mux.HandleFunc("POST /v1/batch", s.instrument(obs.EpBatch, s.handleBatch))
	mux.HandleFunc("GET /v1/instances", s.instrument(obs.EpInstances, s.handleInstances))
	mux.HandleFunc("GET /v1/instances/{id}", s.instrument(obs.EpInstances, s.handleInstance))
	mux.HandleFunc("GET /v1/workitems", s.instrument(obs.EpWorkItems, s.handleWorkItems))
	mux.HandleFunc("GET /v1/exceptions", s.instrument(obs.EpExceptions, s.handleExceptions))
	mux.HandleFunc("GET /v1/healthz", s.instrument(obs.EpHealth, s.handleHealth))
	mux.HandleFunc("GET /v1/watermarks", s.instrument(obs.EpWatermarks, s.handleWatermarks))
	mux.HandleFunc("GET /v1/control-log", s.instrument(obs.EpControlLog, s.handleControlLog))

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { s.serveErr <- s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL, the form Dial takes.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close drains gracefully: (1) new commands and subscriptions are
// rejected 503, (2) in-flight command handlers finish (bounded by ctx),
// (3) every staged journal record is forced durable, (4) streams emit
// their final watermarks and end — resolving every receipt issued
// before Close — and (5) the HTTP server shuts down. Close does not
// close the underlying System.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		// Barrier: owning every slot means no command handler is mid-
		// stage, so the sync below covers everything submitted so far.
		acquired := 0
	barrier:
		for acquired < cap(s.sema) {
			select {
			case s.sema <- struct{}{}:
				acquired++
			case <-ctx.Done():
				s.closeErr = ctx.Err()
				break barrier
			}
		}
		err := s.sys.SyncDurable()
		s.streamCancel()
		if serr := s.srv.Shutdown(ctx); err == nil {
			err = serr
		}
		for i := 0; i < acquired; i++ {
			<-s.sema
		}
		if s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// instrument wraps a handler with the per-endpoint request counter and
// latency histogram (streaming handlers observe the full stream
// lifetime). All obs methods are nil-Set-safe.
func (s *Server) instrument(ep int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		s.met.RPCRequest(ep, time.Since(start).Nanoseconds(), sr.code < 400)
	}
}

// statusRecorder captures the response status for the request metrics
// and forwards Flush so streaming handlers keep their flusher.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	we, status := toWireError(err)
	writeJSON(w, status, errorBody{Error: we})
}

func drainingErr() error {
	return &adept2.Error{Code: adept2.CodeWedged, Op: "rpc",
		Err: errors.New("rpc: server draining")}
}

// acquireSlot takes one backpressure slot, blocking while the plane is
// at MaxInflight. It reports false (with the response written) when
// the client went away or the server started draining.
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		writeError(w, drainingErr())
		return false
	}
	select {
	case s.sema <- struct{}{}:
		return true
	case <-r.Context().Done():
		writeError(w, &adept2.Error{Code: adept2.CodeCanceled, Op: "rpc", Err: r.Context().Err()})
		return false
	case <-s.drainCh:
		writeError(w, drainingErr())
		return false
	}
}

func (s *Server) releaseSlot() { <-s.sema }

// handleCommands serves POST /v1/commands: decode the envelope through
// the registry, dispatch SubmitAsync, and either wait for durability
// (sync mode) or hand back the receipt token (async mode).
func (s *Server) handleCommands(w http.ResponseWriter, r *http.Request) {
	if !s.acquireSlot(w, r) {
		return
	}
	defer s.releaseSlot()
	var req commandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.RPCDecodeError()
		writeError(w, decodeErr("command envelope", err))
		return
	}
	cmd, err := adept2.DecodeWireCommand(req.Op, req.Args)
	if err != nil {
		s.met.RPCDecodeError()
		writeError(w, err)
		return
	}
	rcpt, err := s.sys.SubmitAsync(r.Context(), cmd)
	if err != nil {
		writeError(w, err)
		return
	}
	res := SubmitResult{
		Op:     req.Op,
		Shard:  rcpt.Shard(),
		Seq:    rcpt.Seq(),
		Result: resultSummary(rcpt.Result()),
	}
	if req.Mode == "async" {
		res.Durable = s.sys.DurableWatermarks()[res.Shard] >= res.Seq
	} else {
		if err := rcpt.Wait(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		res.Durable = true
	}
	writeJSON(w, http.StatusOK, res)
}

// handleBatch serves POST /v1/batch: decode every envelope, land the
// run through SubmitBatch (durable on return), answer the applied
// results plus the in-band error envelope of the first failure.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.acquireSlot(w, r) {
		return
	}
	defer s.releaseSlot()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.met.RPCDecodeError()
		writeError(w, decodeErr("batch envelope", err))
		return
	}
	cmds := make([]adept2.Command, len(req.Commands))
	for i, env := range req.Commands {
		cmd, err := adept2.DecodeWireCommand(env.Op, env.Args)
		if err != nil {
			s.met.RPCDecodeError()
			writeError(w, decodeErr(fmt.Sprintf("batch command %d", i), err))
			return
		}
		cmds[i] = cmd
	}
	results, err := s.sys.SubmitBatch(r.Context(), cmds)
	resp := BatchResponse{Results: make([]*ResultSummary, len(results))}
	for i, res := range results {
		resp.Results[i] = resultSummary(res)
	}
	if err != nil {
		resp.Error, _ = toWireError(err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamWriter serializes NDJSON lines from concurrent per-shard
// emitters onto one response and flushes each line immediately.
type streamWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  http.Flusher
	met *obs.Set
}

func (sw *streamWriter) send(v any) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err := sw.enc.Encode(v); err != nil {
		return // client gone; the handler context ends the stream
	}
	sw.fl.Flush()
	sw.met.RPCStreamEvents(1)
}

// acquireStream admits one NDJSON subscriber, rejecting past
// MaxStreams and during drain. The caller must releaseStream.
func (s *Server) acquireStream(w http.ResponseWriter) (*streamWriter, bool) {
	if s.draining.Load() {
		writeError(w, drainingErr())
		return nil, false
	}
	if s.streams.Add(1) > int64(s.opts.MaxStreams) {
		s.streams.Add(-1)
		writeError(w, &adept2.Error{Code: adept2.CodeWedged, Op: "rpc",
			Err: fmt.Errorf("rpc: stream limit %d reached", s.opts.MaxStreams)})
		return nil, false
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.streams.Add(-1)
		writeError(w, &adept2.Error{Code: adept2.CodeInternal, Op: "rpc",
			Err: errors.New("rpc: response not flushable")})
		return nil, false
	}
	s.met.RPCStreamOpen()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	return &streamWriter{enc: json.NewEncoder(w), fl: fl, met: s.met}, true
}

func (s *Server) releaseStream() {
	s.streams.Add(-1)
	s.met.RPCStreamClose()
}

// streamContext merges the request context with the server's drain
// signal so streams end both when the client goes away and on Close.
func (s *Server) streamContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.streamCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// handleWatermarks serves GET /v1/watermarks. With ?once=1 it answers
// the current watermark snapshot; otherwise it streams NDJSON
// WatermarkEvents — the initial watermark of every shard, then one
// event per advance — until the client disconnects or the server
// drains (emitting Final events after the drain sync).
func (s *Server) handleWatermarks(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("once") != "" {
		writeJSON(w, http.StatusOK, WatermarksSnapshot{Durable: s.sys.DurableWatermarks()})
		return
	}
	sw, ok := s.acquireStream(w)
	if !ok {
		return
	}
	defer s.releaseStream()
	ctx, cancel := s.streamContext(r)
	defer cancel()

	wms := s.sys.DurableWatermarks()
	for k, wm := range wms {
		sw.send(WatermarkEvent{Shard: k, Durable: wm})
	}
	var wg sync.WaitGroup
	for k := range wms {
		k, wm := k, wms[k]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := s.sys.WaitDurable(ctx, k, wm+1); err != nil {
					if ctx.Err() == nil {
						sw.send(WatermarkEvent{Shard: k, Err: err.Error(), Code: string(codeOf(err))})
					}
					return
				}
				wm = s.sys.DurableWatermarks()[k]
				sw.send(WatermarkEvent{Shard: k, Durable: wm})
			}
		}()
	}
	wg.Wait()
	if s.draining.Load() {
		// Drain already synced every staged record; these finals are
		// what resolve the receipts remote clients still hold.
		for k, wm := range s.sys.DurableWatermarks() {
			sw.send(WatermarkEvent{Shard: k, Durable: wm, Final: true})
		}
	}
}

// handleControlLog serves GET /v1/control-log?after=N: the durable
// control-log suffix as JSON, or — with &follow=1 — an NDJSON tail
// that parks on the shard-0 watermark and pushes records as they
// become durable. Records are epoch-stamped exactly as journaled.
func (s *Server) handleControlLog(w http.ResponseWriter, r *http.Request) {
	after, _ := strconv.Atoi(r.URL.Query().Get("after"))
	if r.URL.Query().Get("follow") == "" {
		recs, wm, err := s.sys.ControlLog(after)
		if err != nil {
			writeError(w, err)
			return
		}
		if recs == nil {
			recs = []adept2.WireRecord{}
		}
		writeJSON(w, http.StatusOK, ControlLogPage{Records: recs, Watermark: wm})
		return
	}
	sw, ok := s.acquireStream(w)
	if !ok {
		return
	}
	defer s.releaseStream()
	ctx, cancel := s.streamContext(r)
	defer cancel()

	emit := func() bool {
		recs, wm, err := s.sys.ControlLog(after)
		if err != nil {
			sw.send(ControlLogEvent{Err: err.Error(), Code: string(codeOf(err))})
			return false
		}
		for i := range recs {
			sw.send(ControlLogEvent{Record: &recs[i]})
		}
		if wm > after {
			after = wm
		}
		return true
	}
	for {
		if !emit() {
			return
		}
		if err := s.sys.WaitDurable(ctx, 0, after+1); err != nil {
			if ctx.Err() != nil {
				break
			}
			sw.send(ControlLogEvent{Err: err.Error(), Code: string(codeOf(err))})
			return
		}
	}
	if s.draining.Load() {
		emit()
		sw.send(ControlLogEvent{Watermark: after, Final: true})
	}
}

// handleInstances serves GET /v1/instances?cursor=&limit=.
func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 {
		limit = 100
	}
	insts, next := s.sys.InstancesPage(r.URL.Query().Get("cursor"), limit)
	page := InstancePage{Instances: make([]*InstanceSummary, len(insts)), Next: next}
	for i, inst := range insts {
		page.Instances[i] = instanceSummary(inst)
	}
	writeJSON(w, http.StatusOK, page)
}

// handleInstance serves GET /v1/instances/{id}.
func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	inst, ok := s.sys.Instance(id)
	if !ok {
		writeError(w, &adept2.Error{Code: adept2.CodeNotFound, Op: "instance", Instance: id,
			Err: fmt.Errorf("rpc: unknown instance %q", id)})
		return
	}
	detail := InstanceDetail{
		InstanceSummary: *instanceSummary(inst),
		HistoryLen:      len(inst.HistoryEvents()),
		Deadlines:       inst.Deadlines(),
	}
	writeJSON(w, http.StatusOK, detail)
}

// handleWorkItems serves GET /v1/workitems?user=&cursor=&limit=.
func (s *Server) handleWorkItems(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, _ := strconv.Atoi(q.Get("limit"))
	if limit <= 0 {
		limit = 100
	}
	items, next := s.sys.WorkItemsPage(q.Get("user"), q.Get("cursor"), limit)
	page := WorkItemPage{Items: make([]*WorkItemSummary, len(items)), Next: next}
	for i, it := range items {
		page.Items[i] = workItemSummary(it)
	}
	writeJSON(w, http.StatusOK, page)
}

// handleExceptions serves GET /v1/exceptions.
func (s *Server) handleExceptions(w http.ResponseWriter, r *http.Request) {
	open := s.sys.OpenExceptions()
	list := ExceptionList{Exceptions: make([]ExceptionSummary, len(open))}
	for i, x := range open {
		xs := ExceptionSummary{
			Instance: x.Instance,
			Node:     x.Node,
			Kind:     x.Kind.String(),
			Reason:   x.Reason,
			Failures: x.Failures,
		}
		if x.Err != nil {
			xs.Err = x.Err.Error()
		}
		list.Exceptions[i] = xs
	}
	writeJSON(w, http.StatusOK, list)
}

// handleHealth serves GET /v1/healthz: 200 with the summary when the
// system is serving, 503 (with the same summary body) when wedged or
// draining — the body always parses, so Dial learns the shard count
// either way.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	info := s.sys.HealthInfo()
	sum := HealthSummary{
		Healthy:      info.Wedged == nil,
		Shards:       s.sys.NumShards(),
		Instances:    len(s.sys.Instances()),
		WedgedShards: info.WedgedShards,
		Draining:     s.draining.Load(),
	}
	if info.Wedged != nil {
		sum.Err = info.Wedged.Error()
	}
	status := http.StatusOK
	if !sum.Healthy || sum.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, sum)
}
