// Package adept2 is a Go implementation of ADEPT2, the adaptive process
// management system of Reichert, Rinderle, Kreher, and Dadam (ICDE 2005):
// a process engine whose instances can be changed ad hoc at runtime and
// migrated — correctness-preserving and on the fly — to evolved schema
// versions.
//
// The package is a facade over the subsystem packages in internal/: the
// block-structured process meta model and builder, the buildtime verifier
// (deadlock-causing cycles, data flow), the execution engine with
// worklists and an org model, the change framework with per-operation
// compliance conditions, the replay-based compliance criterion, the
// migration manager, the hybrid substitution-block storage for biased
// instances, and the checkpointed, optionally sharded durability layer.
//
// Quick start:
//
//	b := adept2.NewBuilder("order")
//	frag := b.Seq(b.Activity("a", "A", adept2.WithRole("clerk")),
//	              b.Activity("c", "C", adept2.WithRole("clerk")))
//	schema, _ := b.Build(frag)
//
//	sys := adept2.New()
//	_ = sys.Org().AddUser(&adept2.User{ID: "ann", Roles: []string{"clerk"}})
//	_ = sys.Deploy(schema)
//	inst, _ := sys.CreateInstance("order")
//	_ = sys.Complete(inst.ID(), "a", "ann", nil)
//
// # The unified command API
//
// Every state mutation is a typed Command — CreateInstance,
// StartActivity, CompleteActivity, AdHoc, Evolve, AddUser, Deploy,
// Suspend, Resume, Undo — submitted through one of three entry points:
//
//	res, err := sys.Submit(ctx, cmd)        // durable when it returns
//	rcpt, err := sys.SubmitAsync(ctx, cmd)  // durable when rcpt.Wait returns
//	ress, err := sys.SubmitBatch(ctx, cmds) // one barrier + one append per run
//
// The legacy façade methods (Complete, AdHocChange, Evolve, …) are thin
// wrappers over Submit and keep working unchanged.
//
// A single registry owns each command's journal name, JSON codec,
// control/data classification, and engine application. The SAME table
// drives the live path and crash-recovery replay — executing a command
// and replaying its journal record run the identical code — so the three
// historically hand-synchronized copies (façade method, args codec,
// replay switch) cannot drift. This uniformity is the paper's central
// architectural claim carried into the implementation: execution, ad-hoc
// change, and schema evolution are the same kind of logged, replayable
// operation.
//
// # Receipts
//
// SubmitAsync separates a command's two guarantees. Validation and the
// engine mutation are synchronous: when SubmitAsync returns nil, the
// command is applied and its result (Receipt.Result) is valid; a non-nil
// error means nothing happened. Durability is asynchronous: the journal
// record is staged in the group-commit pipeline, and Receipt.Wait
// resolves once an fsync covers it. Pipelining submitters share flushes
// (the in-flight fsync is the gather window), so a writer staging a
// window of commands and awaiting the receipts in bulk pays a fraction
// of the per-command fsync round-trips of blocking Submit. The window a
// caller keeps un-awaited is exactly its exposure: commands whose
// receipts have not resolved may be lost by a crash — applied in memory,
// never journaled — so externalize a result only after its receipt (or a
// later one from the same pipeline) resolves.
//
// # Batches and the epoch invariant
//
// SubmitBatch takes the command barrier once per run of consecutive data
// commands, applies them in order, and appends the encoded records as
// ONE multi-record journal write — one fsync (or one group-commit wait)
// per touched journal for the whole run. Records of a batch keep command
// order within each journal. A failing command ends its run: the applied
// prefix is journaled and durable before SubmitBatch returns the typed
// error, so live state and journal never diverge.
//
// Control commands (AddUser, Deploy, Evolve) keep the exclusive-barrier
// epoch semantics of the sharded layout even inside a batch: each one is
// applied and made durable individually, holding the barrier
// exclusively, before the batch continues. The invariant — every data
// record's epoch stamp brackets it between the control record it
// observed and the next one — is what lets sharded recovery replay data
// shards concurrently between control-record barriers. For the same
// reason control commands never pipeline: the epoch may only advance
// after the control record is durable, so their receipts resolve
// immediately.
//
// # Errors
//
// Every failure of the mutation API carries the Error taxonomy: a Code
// (ErrNotFound, ErrConflict, ErrNotCompliant, ErrSuspended,
// ErrVersionSkew, ErrWedged, ErrUnrecoverable, ErrFailed, ErrTimeout,
// …), the command name, and the targeted instance, matched by errors.Is
// against the Err* sentinels. Messages are unchanged from earlier
// releases — the typed wrapper renders its cause verbatim.
//
// # Exceptions, deadlines, and escalation
//
// Process-level fault tolerance closes the detect→compensate loop with
// two exception sources and three journaled transitions. A running
// activity can FAIL (System.Fail / the FailActivity command): a Failed
// event lands in the physical history, the attempt is purged from the
// logical history (Reduce drops the Started/Failed pair, so compliance
// treats the node as never executed), and the node reverts to
// activated. A running activity with an armed deadline — declared
// relative via WithDeadline and armed from the injected clock when the
// activity starts — can TIME OUT (the TimeoutActivity command, fired by
// System.SweepDeadlines): a Timeout event lands, the deadline disarms
// (exactly once, across any number of recoveries), and the work item
// escalates to the WithEscalation role. The node-level state machine:
//
//	                 ┌────────── retry (sweep lifts backoff) ──────────┐
//	                 ▼                                                 │
//	activated ── start ──▶ running ── fail ──▶ activated+suppressed ───┤
//	                 │        │                  (retryAt / pending)   │
//	                 │        └─ deadline expiry ─▶ running+escalated  │
//	                 │                │                                │
//	                 └─ complete ◀────┘        suspend / skip (AdHoc) ◀┘
//
// An ExceptionPolicy (WithExceptionPolicy) maps each exception to a
// Reaction: ActionRetry re-offers after a backoff, ActionSkip deletes
// the node through a machine-generated AdHoc change (degrading to
// suspend when not compliant), ActionSuspend freezes the instance for a
// human. The policy runs on the live path only and BEFORE the fail
// record is journaled, so the chosen suppression window rides the
// record and replays identically; the compensating command is journaled
// separately, and SweepDeadlines re-runs the policy over still-open
// exceptions, healing compensations lost to a crash between the two.
// All timer math uses timestamps stamped onto journal records from the
// WithClock source — replay never reads a clock, so armed deadlines and
// backoffs survive snapshot+journal recovery bit-exactly.
//
// The adversarial validation harness for this machinery lives in
// internal/sim/soak (surfaced as `adeptctl sim`): populations of
// instances driven through random failures, deadline storms, concurrent
// evolutions, injected disk faults, crashes, and reopen cycles, with
// global invariants checked throughout.
//
// # Observability
//
// Every System carries a telemetry plane (internal/obs), on by default:
// cache-line-padded atomic counters, gauges, and fixed-bucket
// power-of-two histograms, pre-allocated at Open so the hot path never
// allocates — a singular submit pays two clock reads and a handful of
// uncontended atomic adds. WithMetricsDisabled switches the plane to
// the nil set, where recording is one predictable branch and zero
// allocations. The families cover every layer: per-op submit outcomes
// and latency, batch occupancy, per-shard journal appends and
// group-commit backlog, committer fsync latency and wedge/heal
// transitions, checkpoint and recovery cost, the exception loop, and
// the deadline sweep. The plane is installed only after Open-time
// recovery completes, so replay never pollutes live-path metrics —
// recovery reports through its own one-shot family instead.
//
// A sampled trace ring (WithTraceSampling) captures command
// lifecycles: op, instance, shard, journal seq, and the
// submit→applied→durable timeline stamped from the injected WithClock
// source — the event substrate the process-mining plane consumes. The
// ring is a subscription primitive too: obs.TraceRing.Export drains
// spans incrementally by publish cursor (served as /trace.json?after=N
// and `adeptctl trace -fetch`), tear-free under concurrent writers and
// never delivering a span twice.
//
// Three surfaces expose the plane: System.Metrics returns the typed
// obs.Snapshot; WithMetricsServer serves /metrics (Prometheus text
// format 0.0.4), /metrics.json (the snapshot as JSON), /mine.json,
// /trace.json, and /healthz over HTTP, folding HealthInfo into both
// metric forms; and `adeptctl stats` renders any journal's snapshot as
// text, Prometheus, or JSON, serves it, or validates a running
// endpoint. WithSweepInterval completes the operational story: an
// in-process timer runs SweepDeadlines on the system clock, records
// sweep duration and due-to-done lag, and shuts down cleanly on Close.
//
// # Process intelligence
//
// System.Mine streams the live population through a bounded-memory
// mining fold (internal/mining) and returns a deterministic report:
// variant frequencies keyed by a canonical fingerprint of each
// instance's reduced execution history, hot-path extraction, per-node
// traversal and exception concentration (starts, completes, failures,
// timeouts, retries), activity-duration percentiles from journaled
// event timestamps, traversal edges, and drift — instances whose
// version, ad-hoc bias, or foreign nodes diverge from the latest
// deployed schema. The fingerprint folds only Completed events of the
// reduced history, so failed-then-retried attempts, Timeout markers,
// and superseded loop iterations never split a variant: two instances
// that took the same logical path hash identically even when one
// needed three attempts. The scan pages under the snapshot read
// barrier in shard-aligned batches, folding each instance inside its
// own lock with one shared reduction buffer — peak allocation is
// O(batch + capped tables), never O(population). The same report codec
// backs all three surfaces: `adeptctl mine` offline over any journal
// or layout, System.Mine in process, and /mine.json on the metrics
// server. Deadline escalation grows a construction-time policy knob on
// the same plane: WithEscalationBothCanAct offers expired work to the
// union of the original and escalation roles instead of replacing the
// offer, and recovery replays escalations under the same knob.
//
// # The networked command plane
//
// internal/rpc turns the in-process API into a network service without
// inventing a second protocol: the wire envelope {"op","args"} IS the
// journal record format, encoded and decoded through the same command
// registry (EncodeCommand / DecodeWireCommand on this façade), so a
// command serialized by a remote client is byte-compatible with what
// the journal stores and replay consumes. rpc.NewServer mounts the
// HTTP/JSON plane on a System; rpc.Dial returns a typed Client whose
// Submit / SubmitAsync / SubmitBatch mirror the façade with identical
// durable-on-resolution semantics and the identical Error taxonomy —
// non-2xx answers carry a structured error envelope mapped through
// Code.HTTPStatus, and the client rehydrates it so errors.Is matches
// the Err* sentinels across the network.
//
// Async submission keeps its pipelining win remotely because receipts
// are tokens, not server state: a receipt is (shard, shard-local seq),
// durable exactly when the shard's fsync watermark reaches the seq.
// The server streams watermark advances over one NDJSON subscription
// (GET /v1/watermarks) and every client resolves any number of
// receipts locally against that single shared stream — resolving a
// window of N receipts costs zero additional requests. Reads (cursor-
// paginated instances and work items, instance detail, open
// exceptions, health) and a durable-gated control-log tail round out
// the plane; Server.Close drains gracefully, refusing new work,
// finishing in-flight commands, forcing a final flush, and ending
// streams with Final events so every receipt issued before the drain
// resolves. See internal/rpc's package documentation for the wire
// invariants, and `adeptctl serve` / `-remote` for the CLI surface.
package adept2
