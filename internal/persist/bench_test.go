package persist

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
)

// benchArgs is a representative journaled command payload.
type benchArgs struct {
	Instance string         `json:"instance"`
	Node     string         `json:"node"`
	User     string         `json:"user"`
	Outputs  map[string]any `json:"outputs"`
}

func benchPayload() *benchArgs {
	return &benchArgs{
		Instance: "inst-000042",
		Node:     "approve_order",
		User:     "ann",
		Outputs:  map[string]any{"approved": true, "amount": 1299.50},
	}
}

// BenchmarkJournalAppend measures the hot append path against an in-memory
// writer (no fsync), the configuration recovery-journal writes run in
// under group-committed production settings.
func BenchmarkJournalAppend(b *testing.B) {
	var sink bytes.Buffer
	j := NewJournal(&sink)
	args := benchPayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := j.Append("complete", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendFile measures the append path through a real file
// with fsync disabled (the OS page cache absorbs the writes).
func BenchmarkJournalAppendFile(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.journal")
	j, err := OpenJournal(path)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.SetSync(false)
	args := benchPayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("complete", args); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendReusedBuffers pins that buffer reuse keeps records wire-
// compatible with the scanner-based reader: many appends through the same
// journal round-trip exactly.
func TestAppendReusedBuffers(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 0; i < 100; i++ {
		if err := j.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadJournal(io.Reader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("got %d records, want 100", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != i+1 || rec.Op != "op" {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}
