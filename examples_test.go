package adept2_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end; the examples
// double as integration tests of the public API.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want []string // substrings the output must contain
	}{
		{"quickstart", []string{"ann's worklist", "biased=true", "instance done: true"}},
		{"onlineorder", []string{"migrated", "structural-conflict", "state-conflict", "all done: I1=true (v2), I2=true (v1), I3=true (v1)"}},
		{"ehealth", []string{"patient A discharged: true", "rejected as expected"}},
		{"container", []string{"3 on V2", "recovered from journal"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
