package adept2_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

// oneStepSchema builds a minimal deployable schema with a single manual
// activity, so tests can reach the completed-instance state cheaply.
func oneStepSchema(t *testing.T) *adept2.Schema {
	t.Helper()
	b := adept2.NewBuilder("one_step")
	frag := b.Seq(b.Activity("a", "A", adept2.WithRole("clerk")))
	s, err := b.Build(frag)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fakeCommand is a foreign Command implementation the registry must
// reject.
type fakeCommand struct{}

func (fakeCommand) CommandName() string { return "fake" }

// TestErrorTaxonomy asserts that every façade failure mode maps onto the
// right errors.Is sentinel of the adept2.Error taxonomy.
func TestErrorTaxonomy(t *testing.T) {
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(oneStepSchema(t)); err != nil {
		t.Fatal(err)
	}

	// A running instance with one completed step (get_order by ann).
	running, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(running.ID(), "get_order", "ann", map[string]any{"out": "o1"}); err != nil {
		t.Fatal(err)
	}
	// A suspended instance.
	frozen, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Suspend(frozen.ID()); err != nil {
		t.Fatal(err)
	}
	// A completed instance.
	done, err := sys.CreateInstance("one_step")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(done.ID(), "a", "ann", nil); err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		call func() error
		want *adept2.Error
	}{
		{"duplicate user", func() error {
			return sys.AddUser(&adept2.User{ID: "ann"})
		}, adept2.ErrConflict},
		{"empty user ID", func() error {
			return sys.AddUser(&adept2.User{})
		}, adept2.ErrInvalid},
		{"stale deploy version", func() error {
			return sys.Deploy(sim.OnlineOrder())
		}, adept2.ErrVersionSkew},
		{"create of unknown type", func() error {
			_, err := sys.CreateInstance("no_such_type")
			return err
		}, adept2.ErrNotFound},
		{"complete on unknown instance", func() error {
			return sys.Complete("inst-999999", "get_order", "ann", nil)
		}, adept2.ErrNotFound},
		{"complete of unknown node", func() error {
			return sys.Complete(running.ID(), "no_such_node", "ann", nil)
		}, adept2.ErrNotFound},
		{"start a completed node", func() error {
			return sys.Start(running.ID(), "get_order", "ann")
		}, adept2.ErrConflict},
		{"complete without the role", func() error {
			return sys.Complete(running.ID(), "collect_data", "bob", nil)
		}, adept2.ErrDenied},
		{"complete while suspended", func() error {
			return sys.Complete(frozen.ID(), "get_order", "ann", map[string]any{"out": "x"})
		}, adept2.ErrSuspended},
		{"suspend a completed instance", func() error {
			return sys.Suspend(done.ID())
		}, adept2.ErrCompleted},
		{"ad-hoc change of a completed instance", func() error {
			return sys.AdHocChange(done.ID(), sim.OnlineOrderBiasI2()...)
		}, adept2.ErrCompleted},
		{"resume a running instance", func() error {
			return sys.Resume(running.ID())
		}, adept2.ErrConflict},
		{"non-compliant ad-hoc change", func() error {
			// Deleting an already-completed activity violates its state
			// condition.
			return sys.AdHocChange(running.ID(), &adept2.DeleteActivity{ID: "get_order"})
		}, adept2.ErrNotCompliant},
		{"undo without changes", func() error {
			return sys.UndoAdHocChange(running.ID())
		}, adept2.ErrConflict},
		{"evolve unknown type", func() error {
			_, err := sys.Evolve("no_such_type", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{})
			return err
		}, adept2.ErrNotFound},
		{"claim by a non-candidate", func() error {
			items := sys.WorkItems("ann")
			if len(items) == 0 {
				t.Fatal("expected work items for ann")
			}
			return sys.Claim(items[0].ID, "bob")
		}, adept2.ErrDenied},
		{"foreign command implementation", func() error {
			_, err := sys.Submit(context.Background(), fakeCommand{})
			return err
		}, adept2.ErrInvalid},
		{"canceled context", func() error {
			_, err := sys.Submit(canceled, &adept2.Suspend{Instance: running.ID()})
			return err
		}, adept2.ErrCanceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, code %q) = false", err, tc.want.Code)
			}
			var e *adept2.Error
			if !errors.As(err, &e) {
				t.Fatalf("error %v does not carry *adept2.Error", err)
			}
			if e.Op == "" {
				t.Fatalf("error %v has no Op", err)
			}
		})
	}
}

// TestErrorTaxonomyInstanceMatch: errors.Is with a populated Instance
// field narrows to that instance.
func TestErrorTaxonomyInstanceMatch(t *testing.T) {
	sys := adept2.New(adept2.WithOrg(sim.Org()))
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Resume(inst.ID())
	if !errors.Is(err, &adept2.Error{Code: adept2.CodeConflict, Instance: inst.ID()}) {
		t.Fatalf("instance-narrowed match failed for %v", err)
	}
	if errors.Is(err, &adept2.Error{Code: adept2.CodeConflict, Instance: "inst-999999"}) {
		t.Fatalf("instance-narrowed match must not cross instances: %v", err)
	}
}

// TestErrorTaxonomyWedged: Health surfaces a persistently failing
// durability pipeline as ErrWedged (here: the snapshot store directory is
// replaced by a file, so the background checkpoint keeps failing).
func TestErrorTaxonomyWedged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	snaps := filepath.Join(dir, "snaps")
	cfg := adept2.CheckpointConfig{Dir: snaps, Every: 1, GroupCommit: true}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Health(); err != nil {
		t.Fatalf("healthy system reports %v", err)
	}

	// Break the snapshot store out from under the checkpointer.
	if err := os.RemoveAll(snaps); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Commands keep succeeding (the journal is fine) while background
	// checkpoints fail; Health must say wedged.
	for i := 0; i < 4; i++ {
		if _, err := sys.CreateInstance("online_order"); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitCheckpoints(); err != nil {
			break
		}
	}
	err = sys.Health()
	if err == nil {
		t.Fatal("Health must report the failing checkpointer")
	}
	if !errors.Is(err, adept2.ErrWedged) {
		t.Fatalf("errors.Is(%v, ErrWedged) = false", err)
	}
}

// TestErrorTaxonomyUnrecoverable: recovery refusals (journal truncated
// below the newest snapshot) carry ErrUnrecoverable.
func TestErrorTaxonomyUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1}
	sys := openCheckpointed(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(blob), "\n"), "\n")
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)/2], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err == nil || !errors.Is(err, adept2.ErrUnrecoverable) {
		t.Fatalf("truncated journal must yield ErrUnrecoverable, got %v", err)
	}
}

// TestErrorTaxonomyShardSkew: opening a sharded layout with a conflicting
// shard count is a version-skew refusal (reshard offline instead).
func TestErrorTaxonomyShardSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithCheckpointing(adept2.CheckpointConfig{Shards: 2, Every: -1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = adept2.Open(path, adept2.WithCheckpointing(adept2.CheckpointConfig{Shards: 4, Every: -1}))
	if err == nil || !errors.Is(err, adept2.ErrVersionSkew) {
		t.Fatalf("shard-count mismatch must yield ErrVersionSkew, got %v", err)
	}
}
