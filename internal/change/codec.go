package change

import (
	"encoding/json"
	"fmt"
)

// envelope is the serialized form of one operation.
type envelope struct {
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args"`
}

// MarshalOps serializes operations for persistence (WAL records, change
// logs).
func MarshalOps(ops []Operation) ([]byte, error) {
	envs := make([]envelope, len(ops))
	for i, op := range ops {
		args, err := json.Marshal(op)
		if err != nil {
			return nil, fmt.Errorf("change: marshal %s: %w", op.OpName(), err)
		}
		envs[i] = envelope{Op: op.OpName(), Args: args}
	}
	return json.Marshal(envs)
}

// UnmarshalOps deserializes operations produced by MarshalOps.
func UnmarshalOps(b []byte) ([]Operation, error) {
	var envs []envelope
	if err := json.Unmarshal(b, &envs); err != nil {
		return nil, fmt.Errorf("change: unmarshal ops: %w", err)
	}
	ops := make([]Operation, len(envs))
	for i, env := range envs {
		op, err := newOp(env.Op)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(env.Args, op); err != nil {
			return nil, fmt.Errorf("change: unmarshal %s: %w", env.Op, err)
		}
		ops[i] = op
	}
	return ops, nil
}

func newOp(name string) (Operation, error) {
	switch name {
	case "serial-insert":
		return &SerialInsert{}, nil
	case "parallel-insert":
		return &ParallelInsert{}, nil
	case "conditional-insert":
		return &ConditionalInsert{}, nil
	case "delete-activity":
		return &DeleteActivity{}, nil
	case "move-activity":
		return &MoveActivity{}, nil
	case "insert-sync-edge":
		return &InsertSyncEdge{}, nil
	case "delete-sync-edge":
		return &DeleteSyncEdge{}, nil
	case "update-staff-assignment":
		return &UpdateStaffAssignment{}, nil
	case "add-data-element":
		return &AddDataElement{}, nil
	case "add-data-edge":
		return &AddDataEdge{}, nil
	case "delete-data-edge":
		return &DeleteDataEdge{}, nil
	default:
		return nil, fmt.Errorf("change: unknown operation %q", name)
	}
}
