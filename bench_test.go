// Benchmarks regenerating the evaluation artifacts of the ADEPT2 paper
// (one family per figure, plus the ablations indexed in EXPERIMENTS.md).
// cmd/adeptbench produces the same results as human-readable tables.
package adept2_test

import (
	"fmt"
	"math/rand"
	"testing"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/storage"
	"adept2/internal/verify"
)

// --- Fig. 1 / E1: compliance decision cost -------------------------------

// benchLoopInstance prepares a loop-process instance with the given number
// of completed loop iterations (history length grows linearly).
func benchLoopInstance(b *testing.B, iterations int) (*engine.Engine, *engine.Instance) {
	b.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.LoopProcess()); err != nil {
		b.Fatal(err)
	}
	inst, err := e.CreateInstance("loopy", 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.DriveLoopIterations(e, inst, iterations); err != nil {
		b.Fatal(err)
	}
	return e, inst
}

// BenchmarkFig1ComplianceFast measures the per-operation fast compliance
// conditions; the cost must stay flat as the history grows.
func BenchmarkFig1ComplianceFast(b *testing.B) {
	ops := sim.LoopProcessTypeChange()
	for _, iters := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			_, inst := benchLoopInstance(b, iters)
			ctx := &change.Context{
				View:    inst.View(),
				Marking: inst.MarkingSnapshot(),
				Stats:   inst.StatsSnapshot(),
				Store:   inst.DataSnapshot(),
			}
			b.ReportMetric(float64(len(inst.HistoryEvents())), "history-events")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := compliance.CheckFast(ctx, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1ComplianceReplay measures the ground-truth replay checker;
// its cost grows with the history length.
func BenchmarkFig1ComplianceReplay(b *testing.B) {
	ops := sim.LoopProcessTypeChange()
	target := sim.LoopProcess()
	for _, op := range ops {
		if err := op.ApplyTo(target); err != nil {
			b.Fatal(err)
		}
	}
	targetInfo, err := graph.Analyze(target)
	if err != nil {
		b.Fatal(err)
	}
	baseInfo, err := graph.Analyze(sim.LoopProcess())
	if err != nil {
		b.Fatal(err)
	}
	for _, iters := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			_, inst := benchLoopInstance(b, iters)
			events := inst.HistoryEvents()
			b.ReportMetric(float64(len(events)), "history-events")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reduced := history.Reduce(baseInfo, events)
				if _, err := compliance.Replay(target, targetInfo, reduced); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 2 / E2: biased-instance representation -------------------------

// BenchmarkFig2ViewAccess measures the schema-access cost per strategy
// (the read path every engine operation takes) and reports the bias
// memory per biased instance.
func BenchmarkFig2ViewAccess(b *testing.B) {
	for _, strat := range storage.Strategies() {
		b.Run(strat.String(), func(b *testing.B) {
			e := engine.New(sim.Org())
			if err := e.Deploy(sim.OnlineOrder()); err != nil {
				b.Fatal(err)
			}
			e.SetStorageStrategy(strat)
			inst, err := e.CreateInstance("online_order", 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := change.ApplyAdHoc(inst, sim.OnlineOrderBiasI2()...); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(inst.Footprint().BiasBytes), "bias-bytes")
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				v := inst.View()
				sink += len(v.NodeIDs())
			}
			_ = sink
		})
	}
}

// BenchmarkFig2BiasMemory reports the aggregate memory of a population per
// strategy (bytes/op is meaningless here; the custom metrics carry the
// result).
func BenchmarkFig2BiasMemory(b *testing.B) {
	for _, strat := range storage.Strategies() {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(sim.Org())
				if err := e.Deploy(sim.OnlineOrder()); err != nil {
					b.Fatal(err)
				}
				e.SetStorageStrategy(strat)
				rng := rand.New(rand.NewSource(1))
				insts, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(500))
				if err != nil {
					b.Fatal(err)
				}
				var biasBytes, biased float64
				for _, inst := range insts {
					if inst.Biased() {
						biased++
						biasBytes += float64(inst.Footprint().BiasBytes)
					}
				}
				if biased > 0 {
					b.ReportMetric(biasBytes/biased, "bias-bytes/biased-inst")
				}
			}
		})
	}
}

// --- Fig. 3 / E3: population migration -----------------------------------

// BenchmarkFig3Migration migrates a freshly built population per
// iteration; us/instance is the headline number ("thousands of instances
// on the fly").
func BenchmarkFig3Migration(b *testing.B) {
	for _, n := range []int{200, 1000} {
		for _, mode := range []evolution.CheckMode{evolution.FastCheck, evolution.ReplayCheck} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					e := engine.New(sim.Org())
					if err := e.Deploy(sim.OnlineOrder()); err != nil {
						b.Fatal(err)
					}
					rng := rand.New(rand.NewSource(1))
					if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(n)); err != nil {
						b.Fatal(err)
					}
					mgr := evolution.NewManager(e)
					b.StartTimer()
					report, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Mode: mode})
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					b.ReportMetric(float64(report.Elapsed.Microseconds())/float64(report.Total()), "us/instance")
					b.StartTimer()
				}
			})
		}
	}
}

// --- E4: buildtime verification -------------------------------------------

// BenchmarkVerify measures the full buildtime check suite across schema
// sizes.
func BenchmarkVerify(b *testing.B) {
	for _, depth := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(7))
		opts := sim.DefaultSchemaOpts()
		opts.MaxDepth = depth
		opts.MaxSeq = 5
		s := sim.RandomSchema(rng, fmt.Sprintf("bench%d", depth), opts)
		b.Run(fmt.Sprintf("nodes=%d", s.NumNodes()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := verify.Check(s); !res.OK() {
					b.Fatal(res.Err())
				}
			}
		})
	}
}

// --- E5: ad-hoc change latency --------------------------------------------

// BenchmarkAdHocChange measures the full atomic ad-hoc change round trip
// (trial application + verification + state conditions + commit +
// adaptation) per storage strategy.
func BenchmarkAdHocChange(b *testing.B) {
	for _, strat := range storage.Strategies() {
		b.Run(strat.String(), func(b *testing.B) {
			e := engine.New(sim.Org())
			if err := e.Deploy(sim.OnlineOrder()); err != nil {
				b.Fatal(err)
			}
			e.SetStorageStrategy(strat)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				inst, err := e.CreateInstance("online_order", 0)
				if err != nil {
					b.Fatal(err)
				}
				op := &change.SerialInsert{
					Node: &model.Node{ID: fmt.Sprintf("x%d", i), Type: model.NodeActivity, Role: "sales", Template: "x"},
					Pred: "collect_data",
					Succ: "confirm_order",
				}
				b.StartTimer()
				if err := change.ApplyAdHoc(inst, op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: state adaptation ablation ----------------------------------------

// BenchmarkStateAdaptation compares the incremental marking adaptation
// with full history replay during migration.
func BenchmarkStateAdaptation(b *testing.B) {
	for _, adapt := range []evolution.AdaptMode{evolution.AdaptIncremental, evolution.AdaptReplay} {
		b.Run(adapt.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := engine.New(sim.Org())
				if err := e.Deploy(sim.OnlineOrder()); err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				if _, err := sim.BuildPopulation(e, rng, sim.DefaultPopulationOpts(500)); err != nil {
					b.Fatal(err)
				}
				mgr := evolution.NewManager(e)
				b.StartTimer()
				if _, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{Adapt: adapt}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: biased migration across representations ---------------------------

// BenchmarkBiasedMigration isolates migration of biased instances: the
// bias must be structurally re-checked and re-applied, which stresses the
// representation differently per strategy.
func BenchmarkBiasedMigration(b *testing.B) {
	for _, strat := range storage.Strategies() {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := engine.New(sim.Org())
				if err := e.Deploy(sim.OnlineOrder()); err != nil {
					b.Fatal(err)
				}
				e.SetStorageStrategy(strat)
				rng := rand.New(rand.NewSource(1))
				opts := sim.DefaultPopulationOpts(300)
				opts.BiasedFrac = 1.0
				opts.ConflictingBiasFrac = 0.5
				if _, err := sim.BuildPopulation(e, rng, opts); err != nil {
					b.Fatal(err)
				}
				mgr := evolution.NewManager(e)
				b.StartTimer()
				if _, err := mgr.Evolve("online_order", sim.OnlineOrderTypeChange(), evolution.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: engine throughput baseline ----------------------------------------

// BenchmarkEngineComplete measures the plain user-operation path; the
// concurrent-migration variant of E8 (wall-clock interference) lives in
// cmd/adeptbench -experiment concurrent.
func BenchmarkEngineComplete(b *testing.B) {
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	insts := make([]*engine.Instance, b.N)
	for i := range insts {
		inst, err := e.CreateInstance("online_order", 0)
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = inst
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.CompleteActivity(insts[i].ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
			b.Fatal(err)
		}
	}
}
