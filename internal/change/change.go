// Package change implements the ADEPT2 change framework: the complete set
// of high-level change operations (insert, delete, and move activities;
// insert and delete sync edges; data-flow changes), each with
//
//   - a structural precondition (Precheck) evaluated on the schema,
//   - an application procedure (ApplyTo) usable on plain schemas and on
//     biased-instance overlays alike, and
//   - a *fast compliance condition* (FastCompliance) — the per-operation
//     state condition of Fig. 1 of the paper that decides in O(1) whether
//     a running instance may adopt the change, without replaying its
//     execution history.
//
// The fast conditions are exact with respect to the replay-based
// compliance criterion in internal/compliance; the property-based tests in
// that package verify the equivalence on randomized workloads.
package change

import (
	"fmt"

	"adept2/internal/data"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/state"
)

// Context carries the instance facets a fast compliance condition
// consults: the current schema view, the marking, the per-node execution
// index, and the data store. All reads are O(1) per queried node.
//
// The conditions intern each referenced node ID once against the marking's
// bound topology and then consult markings and stats through dense
// index-based accessors — one map lookup per distinct node instead of one
// per facet read (the string-keyed path remains as the fallback for nodes
// outside the binding).
type Context struct {
	View    model.SchemaView
	Marking *state.Marking
	Stats   *history.Stats
	Store   *data.Store

	topo *model.Topology // interning domain, lazily bound (see topology)
}

// topology returns the interning domain of the fast conditions: the
// topology the instance marking is bound to. Using the marking's binding
// (not View.Topology()) keeps dense reads exact even when the view
// materializes a fresh topology pointer per access (on-the-fly storage).
func (c *Context) topology() *model.Topology {
	if c.topo == nil {
		c.topo = c.Marking.Topology()
	}
	return c.topo
}

// node interns a node ID against the marking's topology.
func (c *Context) node(id string) (model.NodeIdx, bool) { return c.topology().Idx(id) }

// startedAt reports whether the interned node entered execution in the
// current loop iteration.
func (c *Context) startedAt(i model.NodeIdx) bool { return c.Stats.StartedAt(c.topology(), i) }

// started reports whether the node entered execution in the current loop
// iteration (string fallback for nodes outside the marking's topology).
func (c *Context) started(node string) bool {
	if i, ok := c.node(node); ok {
		return c.startedAt(i)
	}
	return c.Stats.Started(node)
}

// startSeqAt returns the interned node's start sequence (0 if never
// started).
func (c *Context) startSeqAt(i model.NodeIdx) int { return c.Stats.StartSeqAt(c.topology(), i) }

// completeSeqAt returns the interned node's completion sequence (0 if not
// completed).
func (c *Context) completeSeqAt(i model.NodeIdx) int { return c.Stats.CompleteSeqAt(c.topology(), i) }

// stateAt returns the marking state of the interned node.
func (c *Context) stateAt(i model.NodeIdx) state.NodeState { return c.Marking.NodeAt(i) }

// ComplianceError describes a state-related conflict: the instance has
// progressed beyond the point the operation touches.
type ComplianceError struct {
	Op     string
	Reason string
}

func (e *ComplianceError) Error() string {
	return fmt.Sprintf("change: %s: state conflict: %s", e.Op, e.Reason)
}

func stateConflict(op, format string, args ...any) error {
	return &ComplianceError{Op: op, Reason: fmt.Sprintf(format, args...)}
}

// Operation is one ADEPT2 change operation. Operations implement
// engine.BiasOp, so recorded instance biases can be re-applied by the
// engine when materializing on-the-fly views and re-based onto new schema
// versions during migration.
type Operation interface {
	// OpName identifies the operation kind (stable, used in JSON).
	OpName() string
	// Precheck validates structural preconditions against a view.
	Precheck(v model.SchemaView) error
	// ApplyTo applies the operation to a mutable view. The caller is
	// responsible for running the verifier on the result (the framework
	// helpers in this package do).
	ApplyTo(v model.MutableView) error
	// FastCompliance evaluates the operation's state condition against a
	// running instance. nil means the instance can adopt the change.
	FastCompliance(ctx *Context) error
	// InsertedTemplate returns the activity template the operation inserts
	// ("" for non-inserting operations); semantical conflict detection
	// compares these across concurrent changes.
	InsertedTemplate() string
	// String renders the operation for reports.
	String() string
}

// InsertedTemplates collects the activity templates inserted by a change.
func InsertedTemplates(ops []Operation) map[string]bool {
	out := make(map[string]bool)
	for _, op := range ops {
		if t := op.InsertedTemplate(); t != "" {
			out[t] = true
		}
	}
	return out
}
