package mining

import (
	"sort"

	"adept2/internal/engine"
	"adept2/internal/history"
	"adept2/internal/obs"
)

// Options tunes a mining scan. Zero values take defaults; every cap
// exists to keep the scan's memory bounded regardless of population
// size (see the package comment's scan invariants).
type Options struct {
	// MaxVariants caps the distinct-variant table (default 512).
	// Instances whose fingerprint would create an entry past the cap
	// are tallied into Report.VariantOverflow.
	MaxVariants int
	// MaxEdges caps the traversal-edge table (default 4096); excess
	// traversals tally into Report.EdgeOverflow.
	MaxEdges int
	// TopPaths is how many hot paths the report extracts (default 5).
	TopPaths int
}

func (o Options) withDefaults() Options {
	if o.MaxVariants <= 0 {
		o.MaxVariants = 512
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 4096
	}
	if o.TopPaths <= 0 {
		o.TopPaths = 5
	}
	return o
}

// FNV-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime
	}
	return h
}

// Fingerprint folds a logical (reduced) history into its canonical
// variant hash: FNV-1a 64 over the Completed events' node IDs, XOR
// routing decisions, and loop-iteration flags, in order, with
// separator bytes between fields and events. Started events (in-flight
// work) are skipped; Failed and Timeout events never reach a reduced
// history by construction. See the package comment for why each choice
// canonicalizes.
func Fingerprint(reduced []*history.Event) uint64 {
	h := uint64(fnvOffset)
	for _, e := range reduced {
		if e.Kind != history.Completed {
			continue
		}
		h = fnvString(h, e.Node)
		h = fnvByte(h, 0x1f)
		h = fnvInt(h, int64(e.Decision))
		if e.Again {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
		h = fnvByte(h, 0x1e)
	}
	return h
}

// maxForeignNodes bounds the per-type foreign-node sample in the drift
// table.
const maxForeignNodes = 16

type variantAgg struct {
	fp           uint64
	count        int64
	steps        int
	typeName     string
	minVersion   int
	maxVersion   int
	biased       int64
	nonCompliant int64
	done         int64
	path         []string // node IDs of the first instance observed
}

type nodeAgg struct {
	starts, completes, failures, timeouts, retries int64
	durations                                      *obs.Histogram
}

type edgeKey struct{ from, to string }

type typeAgg struct {
	instances    int64
	current      int64
	stale        int64
	biased       int64
	foreign      int64
	nonCompliant int64
	foreignNodes map[string]bool
}

// Miner is the streaming fold: Observe one instance at a time, then
// Report. Not safe for concurrent use — the facade drives one Miner
// per scan.
type Miner struct {
	opts Options

	// Reference: latest deployed version and its node set per type,
	// registered via Deployed before the scan.
	latest      map[string]int
	latestNodes map[string]map[string]bool

	instances int64
	done      int64
	biased    int64

	variants        map[uint64]*variantAgg
	variantOverflow int64
	nodes           map[string]*nodeAgg
	edges           map[edgeKey]int64
	edgeOverflow    int64
	types           map[string]*typeAgg
	shards          map[int]int64

	// Per-instance scratch, cleared between instances so the fold
	// allocates only on first use.
	lastStart  map[string]int64
	failedOpen map[string]int
}

// NewMiner creates a streaming miner.
func NewMiner(opts Options) *Miner {
	return &Miner{
		opts:        opts.withDefaults(),
		latest:      make(map[string]int),
		latestNodes: make(map[string]map[string]bool),
		variants:    make(map[uint64]*variantAgg),
		nodes:       make(map[string]*nodeAgg),
		edges:       make(map[edgeKey]int64),
		types:       make(map[string]*typeAgg),
		shards:      make(map[int]int64),
		lastStart:   make(map[string]int64),
		failedOpen:  make(map[string]int),
	}
}

// Deployed registers the latest deployed version of a process type and
// its node IDs — the reference the drift table compares every instance
// against. Call once per type before observing.
func (m *Miner) Deployed(typeName string, version int, nodes []string) {
	m.latest[typeName] = version
	set := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	m.latestNodes[typeName] = set
}

// Observe folds one instance into the aggregates. The view's event
// slices alias live engine state (the caller runs Observe inside the
// instance lock via Instance.MineHistory) — Observe reads them fully
// and retains only the node-ID strings.
func (m *Miner) Observe(v engine.MineView, shard int) {
	m.instances++
	m.shards[shard]++
	if v.Done {
		m.done++
	}
	if v.Biased {
		m.biased++
	}

	// Drift classification against the registered reference.
	latest, known := m.latest[v.TypeName]
	stale := known && v.Version < latest
	foreign := false
	if set, ok := m.latestNodes[v.TypeName]; ok {
		for _, e := range v.Reduced {
			if e.Kind == history.Completed && !set[e.Node] {
				foreign = true
				t := m.typeAgg(v.TypeName)
				if len(t.foreignNodes) < maxForeignNodes {
					t.foreignNodes[e.Node] = true
				}
			}
		}
	}
	nonCompliant := stale || foreign || v.Biased

	t := m.typeAgg(v.TypeName)
	t.instances++
	if stale {
		t.stale++
	} else {
		t.current++
	}
	if v.Biased {
		t.biased++
	}
	if foreign {
		t.foreign++
	}
	if nonCompliant {
		t.nonCompliant++
	}

	// Variant table (capped).
	fp := Fingerprint(v.Reduced)
	va, ok := m.variants[fp]
	if !ok {
		if len(m.variants) >= m.opts.MaxVariants {
			m.variantOverflow++
		} else {
			va = &variantAgg{fp: fp, typeName: v.TypeName, minVersion: v.Version, maxVersion: v.Version}
			for _, e := range v.Reduced {
				if e.Kind == history.Completed {
					va.path = append(va.path, e.Node)
					va.steps++
				}
			}
			m.variants[fp] = va
		}
	}
	if va != nil {
		va.count++
		if v.Version < va.minVersion {
			va.minVersion = v.Version
		}
		if v.Version > va.maxVersion {
			va.maxVersion = v.Version
		}
		if v.Biased {
			va.biased++
		}
		if nonCompliant {
			va.nonCompliant++
		}
		if v.Done {
			va.done++
		}
	}

	// Per-node concentration and durations from the physical history:
	// every attempt counts here, including the ones the reduction
	// purges — exception concentration is about what actually happened.
	for _, e := range v.Events {
		na := m.nodeAgg(e.Node)
		switch e.Kind {
		case history.Started:
			na.starts++
			if m.failedOpen[e.Node] > 0 {
				na.retries++
				m.failedOpen[e.Node]--
			}
			if e.At > 0 {
				m.lastStart[e.Node] = e.At
			} else {
				delete(m.lastStart, e.Node) // unstamped start: never pair across it
			}
		case history.Completed:
			na.completes++
			if at := m.lastStart[e.Node]; at > 0 && e.At > at {
				na.durations.Observe(e.At - at)
			}
			delete(m.lastStart, e.Node)
		case history.Failed:
			na.failures++
			m.failedOpen[e.Node]++
			delete(m.lastStart, e.Node)
		case history.Timeout:
			na.timeouts++
		}
	}
	for k := range m.lastStart {
		delete(m.lastStart, k)
	}
	for k := range m.failedOpen {
		delete(m.failedOpen, k)
	}

	// Traversal edges between consecutive Completed events of the
	// logical history (capped).
	prev := ""
	for _, e := range v.Reduced {
		if e.Kind != history.Completed {
			continue
		}
		if prev != "" {
			k := edgeKey{prev, e.Node}
			if _, ok := m.edges[k]; ok || len(m.edges) < m.opts.MaxEdges {
				m.edges[k]++
			} else {
				m.edgeOverflow++
			}
		}
		prev = e.Node
	}
}

func (m *Miner) typeAgg(name string) *typeAgg {
	t, ok := m.types[name]
	if !ok {
		t = &typeAgg{foreignNodes: make(map[string]bool)}
		m.types[name] = t
	}
	return t
}

func (m *Miner) nodeAgg(name string) *nodeAgg {
	n, ok := m.nodes[name]
	if !ok {
		n = &nodeAgg{durations: obs.NewHistogram(28, 10)} // ~1µs .. ~2¼min
		m.nodes[name] = n
	}
	return n
}

// Report freezes the aggregates into the deterministic, JSON-ready
// report: variants by descending frequency (fingerprint ties
// ascending), nodes and drift rows sorted by name, edges by descending
// count.
func (m *Miner) Report() *Report {
	r := &Report{
		Instances:       m.instances,
		Done:            m.done,
		Biased:          m.biased,
		DistinctVariants: len(m.variants),
		VariantOverflow: m.variantOverflow,
		EdgeOverflow:    m.edgeOverflow,
	}

	for shard, n := range m.shards {
		r.Shards = append(r.Shards, ShardStat{Shard: shard, Instances: n})
	}
	sort.Slice(r.Shards, func(i, j int) bool { return r.Shards[i].Shard < r.Shards[j].Shard })

	for _, va := range m.variants {
		r.Variants = append(r.Variants, Variant{
			Fingerprint:  fpString(va.fp),
			Count:        va.count,
			Steps:        va.steps,
			Type:         va.typeName,
			MinVersion:   va.minVersion,
			MaxVersion:   va.maxVersion,
			Biased:       va.biased,
			NonCompliant: va.nonCompliant,
			Done:         va.done,
			Path:         va.path,
		})
	}
	sort.Slice(r.Variants, func(i, j int) bool {
		if r.Variants[i].Count != r.Variants[j].Count {
			return r.Variants[i].Count > r.Variants[j].Count
		}
		return r.Variants[i].Fingerprint < r.Variants[j].Fingerprint
	})

	for k := 0; k < len(r.Variants) && k < m.opts.TopPaths; k++ {
		v := r.Variants[k]
		if v.Count == 0 || len(v.Path) == 0 {
			continue
		}
		r.HotPaths = append(r.HotPaths, Path{Fingerprint: v.Fingerprint, Count: v.Count, Path: v.Path})
	}

	for name, na := range m.nodes {
		d := na.durations.Snapshot()
		r.Nodes = append(r.Nodes, Node{
			Node:      name,
			Starts:    na.starts,
			Completes: na.completes,
			Failures:  na.failures,
			Timeouts:  na.timeouts,
			Retries:   na.retries,
			Durations: d,
			P50:       Quantile(d, 0.50),
			P90:       Quantile(d, 0.90),
			P99:       Quantile(d, 0.99),
		})
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Node < r.Nodes[j].Node })

	for k, n := range m.edges {
		r.Edges = append(r.Edges, Edge{From: k.from, To: k.to, Count: n})
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		if r.Edges[i].Count != r.Edges[j].Count {
			return r.Edges[i].Count > r.Edges[j].Count
		}
		if r.Edges[i].From != r.Edges[j].From {
			return r.Edges[i].From < r.Edges[j].From
		}
		return r.Edges[i].To < r.Edges[j].To
	})

	for name, t := range m.types {
		td := TypeDrift{
			Type:          name,
			LatestVersion: m.latest[name],
			Instances:     t.instances,
			Current:       t.current,
			Stale:         t.stale,
			Biased:        t.biased,
			Foreign:       t.foreign,
			NonCompliant:  t.nonCompliant,
		}
		for n := range t.foreignNodes {
			td.ForeignNodes = append(td.ForeignNodes, n)
		}
		sort.Strings(td.ForeignNodes)
		r.Drift = append(r.Drift, td)
	}
	sort.Slice(r.Drift, func(i, j int) bool { return r.Drift[i].Type < r.Drift[j].Type })

	return r
}

// Quantile reads the q-quantile (0 < q <= 1) off a histogram snapshot:
// the upper bound of the bucket where the cumulative count crosses the
// rank, -1 when it lands in the unbounded final bucket, 0 for an empty
// histogram. Power-of-two bucket bounds make this an upper estimate
// within one octave — the right fidelity for hot-spot ranking.
func Quantile(h obs.HistogramSnapshot, q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			return h.Bounds[i]
		}
	}
	return -1
}
