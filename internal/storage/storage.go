// Package storage implements the hybrid schema/instance representation of
// Fig. 2 of the ADEPT2 paper. Unchanged ("unbiased") instances reference
// their original schema redundancy-free and only carry instance data
// (markings, histories). For changed ("biased") instances the package
// offers three representations:
//
//   - Hybrid (the paper's choice): a minimal substitution block — an
//     Overlay recording only the delta against the original schema — is
//     kept per biased instance and overlays the original schema on access.
//   - FullCopy: a complete materialized schema per biased instance
//     (maximal memory, fastest access).
//   - OnTheFly: only the change operations are kept and the
//     instance-specific schema is materialized on every access (minimal
//     memory, slowest access).
//
// The Fig. 2 experiments (bench_test.go, cmd/adeptbench) compare the
// three.
package storage

import "fmt"

// Strategy selects the representation of biased instances.
type Strategy uint8

const (
	// Hybrid keeps a minimal substitution block per biased instance and
	// overlays the original schema on access (the paper's approach).
	Hybrid Strategy = iota
	// FullCopy materializes a complete schema per biased instance.
	FullCopy
	// OnTheFly stores only the bias operations and materializes the
	// instance-specific schema on every access.
	OnTheFly
)

var strategyNames = [...]string{
	Hybrid:   "hybrid",
	FullCopy: "full-copy",
	OnTheFly: "on-the-fly",
}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// Strategies enumerates all representations, for experiment sweeps.
func Strategies() []Strategy { return []Strategy{Hybrid, FullCopy, OnTheFly} }
