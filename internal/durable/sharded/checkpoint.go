package sharded

import (
	"fmt"
	"path/filepath"
	"sync"

	"adept2/internal/durable"
)

// WriteCheckpoint persists one generation: every shard's staged capture
// is encoded and written to its snapshot store concurrently, and only
// when all parts are durable is the global manifest rewritten with the
// new generation appended (and trimmed to keep generations). A crash —
// or any part failing — before the manifest write leaves the previous
// generations fully intact; the orphaned part files are swept by the
// next successful checkpoint's pruning pass. Returns the updated
// manifest and shard 0's snapshot file path.
func WriteCheckpoint(l Layout, man *Manifest, stores []*durable.SnapshotStore, caps []*durable.StagedCapture, epoch int, seqs []int, keep int) (*Manifest, string, error) {
	n := l.Shards
	files := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			st, err := caps[k].Encode()
			if err != nil {
				errs[k] = err
				return
			}
			files[k], errs[k] = stores[k].Write(st)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return man, "", fmt.Errorf("sharded: checkpoint shard %d: %w", k, err)
		}
	}

	gen := Generation{Epoch: epoch, Parts: make([]Part, n)}
	for k := 0; k < n; k++ {
		gen.Parts[k] = Part{File: filepath.Base(files[k]), Seq: seqs[k]}
	}
	next := &Manifest{Format: ManifestFormat, Shards: n, Heads: seqs, ReplayFloors: man.ReplayFloors}
	gens := append(append([]Generation(nil), man.Generations...), gen)
	if keep > 0 && len(gens) > keep {
		gens = gens[len(gens)-keep:]
	}
	next.Generations = gens
	if err := WriteManifestFS(l.fs(), l.Base, next); err != nil {
		return man, "", err
	}
	pruneUnreferenced(l, next, stores)
	return next, files[0], nil
}

// pruneUnreferenced removes snapshot files no retained generation points
// at (stale generations, orphans of failed checkpoint attempts). Removal
// failures never fail the checkpoint — the manifest already committed —
// but each store counts them (SnapshotStore.CleanupErrs) so the facade
// can surface a disk that stopped letting go of space.
func pruneUnreferenced(l Layout, man *Manifest, stores []*durable.SnapshotStore) {
	for k := 0; k < l.Shards; k++ {
		keep := make(map[string]bool)
		for _, gen := range man.Generations {
			if k < len(gen.Parts) {
				keep[gen.Parts[k].File] = true
			}
		}
		_ = stores[k].PruneExcept(keep)
	}
}

// CompactAll rewrites every shard journal to the suffix its part of the
// newest generation does not cover (offline — the journals must be
// closed). Returns the total number of records dropped.
func CompactAll(base string) (int, error) {
	man, err := LoadManifest(ManifestPath(base))
	if err != nil {
		return 0, err
	}
	if man == nil {
		return 0, fmt.Errorf("sharded: %s is not a sharded layout", base)
	}
	if len(man.Generations) == 0 {
		return 0, fmt.Errorf("sharded: no generation to compact against (checkpoint first)")
	}
	l := Layout{Base: base, Shards: man.Shards}
	gen := man.Generations[len(man.Generations)-1]
	total := 0
	for k := 0; k < man.Shards; k++ {
		dropped, err := durable.CompactJournal(l.JournalPath(k), gen.Parts[k].Seq)
		if err != nil {
			return total, fmt.Errorf("sharded: compact shard %d: %w", k, err)
		}
		total += dropped
	}
	return total, nil
}
