package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/state"
	"adept2/internal/verify"
)

func TestOnlineOrderSchemaVerifies(t *testing.T) {
	if err := verify.Err(OnlineOrder()); err != nil {
		t.Fatalf("online order schema: %v", err)
	}
	s := OnlineOrder()
	for _, op := range OnlineOrderTypeChange() {
		if err := op.ApplyTo(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("online order V2: %v", err)
	}
}

func TestBiasI2ConflictsWithTypeChange(t *testing.T) {
	// ΔT and ΔI together must produce the deadlock cycle of Fig. 1.
	s := OnlineOrder()
	for _, op := range OnlineOrderBiasI2() {
		if err := op.ApplyTo(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := verify.Err(s); err != nil {
		t.Fatalf("bias alone must verify: %v", err)
	}
	for _, op := range OnlineOrderTypeChange() {
		if err := op.ApplyTo(s); err != nil {
			t.Fatal(err)
		}
	}
	if res := verify.Check(s); res.OK() {
		t.Fatal("ΔT + ΔI must create a deadlock cycle")
	}
}

// TestRandomSchemasAlwaysVerify is the quick-based generator invariant:
// every generated schema passes the full buildtime check suite.
func TestRandomSchemasAlwaysVerify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomSchema(rng, "q", DefaultSchemaOpts())
		return verify.Check(s).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomSchemaDeterminism: equal seeds produce equal schemas.
func TestRandomSchemaDeterminism(t *testing.T) {
	a := RandomSchema(rand.New(rand.NewSource(5)), "d", DefaultSchemaOpts())
	b := RandomSchema(rand.New(rand.NewSource(5)), "d", DefaultSchemaOpts())
	if len(a.NodeIDs()) != len(b.NodeIDs()) || len(a.Edges()) != len(b.Edges()) {
		t.Fatal("generator is not deterministic")
	}
}

// TestDriverCompletesRandomSchemas: the random driver always brings random
// schemas to completion (no deadlocks, no stuck states) — an end-to-end
// soundness property of schema generation + engine semantics.
func TestDriverCompletesRandomSchemas(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 100))
		name := fmt.Sprintf("run%d", i)
		s := RandomSchema(rng, name, DefaultSchemaOpts())
		e := engine.New(Org())
		if err := e.Deploy(s); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		inst, err := e.CreateInstance(name, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		d := NewDriver(rng, e)
		if err := d.RunToCompletion(inst); err != nil {
			t.Fatalf("trial %d (%d nodes): %v", i, s.NumNodes(), err)
		}
		if !inst.Done() {
			t.Fatalf("trial %d: not done", i)
		}
	}
}

func TestAdvanceHelpers(t *testing.T) {
	e := engine.New(Org())
	if err := e.Deploy(OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	i1, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := AdvanceOnlineOrderToI1(e, i1); err != nil {
		t.Fatal(err)
	}
	if i1.NodeState("confirm_order") != state.Activated || i1.NodeState("pack_goods") != state.Activated {
		t.Fatal("I1 state wrong")
	}
	i3, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := AdvanceOnlineOrderToI3(e, i3); err != nil {
		t.Fatal(err)
	}
	if i3.NodeState("pack_goods") != state.Completed {
		t.Fatal("I3 state wrong")
	}
}

func TestBuildPopulationShape(t *testing.T) {
	e := engine.New(Org())
	if err := e.Deploy(OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	insts, err := BuildPopulation(e, rng, DefaultPopulationOpts(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 300 {
		t.Fatalf("population = %d", len(insts))
	}
	var biased, late int
	for _, inst := range insts {
		if inst.Biased() {
			biased++
		}
		if inst.NodeState("pack_goods") == state.Completed {
			late++
		}
	}
	if biased == 0 {
		t.Fatal("population has no biased instances")
	}
	if late == 0 {
		t.Fatal("population has no late instances")
	}
}

func TestLoopProcessDriving(t *testing.T) {
	e := engine.New(Org())
	if err := e.Deploy(LoopProcess()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("loopy", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := DriveLoopIterations(e, inst, 3); err != nil {
		t.Fatal(err)
	}
	// 4 passes (3 iterations + exit) * 10 events (loop-start gateway,
	// three activities, loop end — start+complete each) = 40 events.
	if got := len(inst.HistoryEvents()); got != 40 {
		t.Fatalf("history = %d events", got)
	}
	if inst.NodeState("finalize") != state.Activated {
		t.Fatal("finalize should be enabled after loop exit")
	}
	// The measured change is compliant on such an instance.
	ops := LoopProcessTypeChange()
	if len(ops) == 0 {
		t.Fatal("no ops")
	}
	if err := change.ApplyAdHoc(inst, ops...); err != nil {
		t.Fatalf("type change ops should apply ad hoc too: %v", err)
	}
}

func TestRandomAdHocOpsShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := OnlineOrder()
	kinds := map[string]bool{}
	for i := 0; i < 200; i++ {
		ops := RandomAdHocOps(rng, s, i)
		if len(ops) == 0 {
			t.Fatal("no ops proposed")
		}
		kinds[ops[0].OpName()] = true
	}
	for _, want := range []string{"serial-insert", "parallel-insert", "delete-activity", "insert-sync-edge", "move-activity"} {
		if !kinds[want] {
			t.Errorf("op kind %q never proposed", want)
		}
	}
}
