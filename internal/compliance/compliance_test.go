package compliance_test

import (
	"strings"
	"testing"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(sim.Org())
	if err := e.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return e
}

// targetSchema applies ΔT to a copy of the online-order schema (the S' of
// Fig. 1).
func targetSchema(t *testing.T) (*model.Schema, *graph.Info) {
	t.Helper()
	s2 := sim.OnlineOrder()
	for _, op := range sim.OnlineOrderTypeChange() {
		if err := op.ApplyTo(s2); err != nil {
			t.Fatalf("apply ΔT: %v", err)
		}
	}
	info, err := graph.Analyze(s2)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return s2, info
}

func reducedHistory(t *testing.T, inst *engine.Instance) []*history.Event {
	t.Helper()
	base := sim.OnlineOrder()
	info, err := graph.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	return history.Reduce(info, inst.HistoryEvents())
}

func fastCtx(inst *engine.Instance) *change.Context {
	return &change.Context{
		View:    inst.View(),
		Marking: inst.MarkingSnapshot(),
		Stats:   inst.StatsSnapshot(),
		Store:   inst.DataSnapshot(),
	}
}

// TestFig1InstanceI1 reproduces the compliant instance of the paper's
// Fig. 1: I1 may migrate, and after state adaptation confirm_order waits
// for the new sync edge while send_questions becomes activated.
func TestFig1InstanceI1(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
		t.Fatal(err)
	}
	ops := sim.OnlineOrderTypeChange()

	// Fast conditions: compliant.
	if err := compliance.CheckFast(fastCtx(inst), ops); err != nil {
		t.Fatalf("I1 must be fast-compliant: %v", err)
	}

	// Replay criterion: compliant, and the adapted state matches the
	// paper's Fig. 1 (send_questions activated, confirm_order demoted to
	// waiting, pack_goods waiting).
	s2, info := targetSchema(t)
	res, err := compliance.Replay(s2, info, reducedHistory(t, inst))
	if err != nil {
		t.Fatalf("I1 must be replay-compliant: %v", err)
	}
	m := res.Marking
	if m.Node("send_questions") != state.Activated {
		t.Fatalf("send_questions should be activated, is %s", m.Node("send_questions"))
	}
	if m.Node("confirm_order") != state.NotActivated {
		t.Fatalf("confirm_order should wait for the sync edge, is %s", m.Node("confirm_order"))
	}
	if m.Node("pack_goods") != state.NotActivated {
		t.Fatalf("pack_goods should wait for send_questions, is %s", m.Node("pack_goods"))
	}
	if m.Node("compose_order") != state.Completed || m.Node("collect_data") != state.Completed {
		t.Fatal("completed work must be preserved")
	}
}

// TestFig1InstanceI3 reproduces the state conflict of Fig. 1: pack_goods
// already completed, so the insertion point has been passed.
func TestFig1InstanceI3(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI3(e, inst); err != nil {
		t.Fatal(err)
	}
	ops := sim.OnlineOrderTypeChange()
	if err := compliance.CheckFast(fastCtx(inst), ops); err == nil {
		t.Fatal("I3 must not be fast-compliant")
	}
	s2, info := targetSchema(t)
	if _, err := compliance.Replay(s2, info, reducedHistory(t, inst)); err == nil {
		t.Fatal("I3 must not be replay-compliant")
	}
}

func TestReplayRejectsDeletedNodeWithHistory(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	// Delete collect_data from the target schema.
	s2 := sim.OnlineOrder()
	if err := (&change.DeleteActivity{ID: "collect_data"}).ApplyTo(s2); err != nil {
		t.Fatal(err)
	}
	info, err := graph.Analyze(s2)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := compliance.Replay(s2, info, reducedHistory(t, inst))
	if rerr == nil || !strings.Contains(rerr.Error(), "no longer exists") {
		t.Fatalf("expected deleted-node failure, got %v", rerr)
	}
}

func TestReplayVirtualFiringForAutoInsert(t *testing.T) {
	// Insert an *automatic* activity before an already-started successor:
	// the relaxed criterion allows it (the engine fires it retroactively),
	// and the fast condition agrees.
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI3(e, inst); err != nil {
		t.Fatal(err) // pack_goods completed
	}
	auto := &change.SerialInsert{
		Node: &model.Node{ID: "notify", Name: "Notify", Type: model.NodeActivity, Auto: true, Template: "notify"},
		Pred: "compose_order",
		Succ: "pack_goods",
	}
	if err := compliance.CheckFast(fastCtx(inst), []change.Operation{auto}); err != nil {
		t.Fatalf("auto insert must be fast-compliant: %v", err)
	}
	s2 := sim.OnlineOrder()
	if err := auto.ApplyTo(s2); err != nil {
		t.Fatal(err)
	}
	info, err := graph.Analyze(s2)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := compliance.Replay(s2, info, reducedHistory(t, inst))
	if rerr != nil {
		t.Fatalf("auto insert must be replay-compliant: %v", rerr)
	}
	if res.VirtualFirings == 0 {
		t.Fatal("replay should have fired the inserted node virtually")
	}
	if res.Marking.Node("notify") != state.Completed {
		t.Fatalf("notify should be virtually completed, is %s", res.Marking.Node("notify"))
	}
}

func TestReplayDataConflicts(t *testing.T) {
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
		t.Fatal(err)
	}
	// New mandatory read on an element that held no value when
	// collect_data started.
	s2 := sim.OnlineOrder()
	if err := s2.AddDataElement(&model.DataElement{ID: "extra", Type: model.TypeString}); err != nil {
		t.Fatal(err)
	}
	if err := s2.AddDataEdge(&model.DataEdge{Activity: "collect_data", Element: "extra", Access: model.Read, Parameter: "x", Mandatory: true}); err != nil {
		t.Fatal(err)
	}
	info, err := graph.Analyze(s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := compliance.Replay(s2, info, reducedHistory(t, inst)); rerr == nil {
		t.Fatal("mandatory read without value must fail replay")
	}
	// And the corresponding fast condition agrees.
	op := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "order", Access: model.Read, Parameter: "x", Mandatory: true}}
	// order held a value before collect_data started -> compliant.
	if err := compliance.CheckFast(fastCtx(inst), []change.Operation{op}); err != nil {
		t.Fatalf("read of pre-existing value must be compliant: %v", err)
	}

	// New write edge on a completed activity: replay rejects it.
	s3 := sim.OnlineOrder()
	if err := s3.AddDataElement(&model.DataElement{ID: "extra", Type: model.TypeString}); err != nil {
		t.Fatal(err)
	}
	if err := s3.AddDataEdge(&model.DataEdge{Activity: "collect_data", Element: "extra", Access: model.Write, Parameter: "x"}); err != nil {
		t.Fatal(err)
	}
	info3, err := graph.Analyze(s3)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := compliance.Replay(s3, info3, reducedHistory(t, inst)); rerr == nil {
		t.Fatal("missing output of completed activity must fail replay")
	}
	opW := &change.AddDataEdge{Edge: &model.DataEdge{Activity: "collect_data", Element: "order", Access: model.Write, Parameter: "x"}}
	if err := compliance.CheckFast(fastCtx(inst), []change.Operation{opW}); err == nil {
		t.Fatal("fast condition must reject write edge on completed activity")
	}
}

func TestReplayRejectsVanishedBranch(t *testing.T) {
	// An XOR split completed with a decision whose branch the change
	// removes.
	b := model.NewBuilder("branches")
	ch := b.Choice("",
		b.Activity("x", "X", model.WithRole("worker")),
		b.Activity("y", "Y", model.WithRole("worker")),
	)
	s, err := b.Build(ch)
	if err != nil {
		t.Fatal(err)
	}
	var split string
	for _, n := range s.Nodes() {
		if n.Type == model.NodeXORSplit {
			split = n.ID
		}
	}
	e := engine.New(sim.Org())
	if err := e.Deploy(s); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("branches", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), split, "", nil, engine.WithDecision(1)); err != nil {
		t.Fatal(err)
	}
	// Target schema re-codes the chosen branch: decision 1 vanishes.
	s2 := s.Clone()
	for _, edge := range s2.Edges() {
		if edge.From == split && edge.Code == 1 {
			edge.Code = 7
		}
	}
	info, err := graph.Analyze(s2)
	if err != nil {
		t.Fatal(err)
	}
	baseInfo, err := graph.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := compliance.Replay(s2, info, history.Reduce(baseInfo, inst.HistoryEvents()))
	if rerr == nil || !strings.Contains(rerr.Error(), "no longer exists") {
		t.Fatalf("expected vanished-branch failure, got %v", rerr)
	}
}

func TestReplayAdaptationMatchesIncrementalAdapt(t *testing.T) {
	// For an unchanged schema, replaying the full history must yield the
	// exact same marking the engine holds.
	e := newEngine(t)
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AdvanceOnlineOrderToI1(e, inst); err != nil {
		t.Fatal(err)
	}
	base := sim.OnlineOrder()
	info, err := graph.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := compliance.Replay(base, info, reducedHistory(t, inst))
	if rerr != nil {
		t.Fatal(rerr)
	}
	live := inst.MarkingSnapshot()
	for _, id := range base.NodeIDs() {
		if got, want := res.Marking.Node(id), live.Node(id); got != want {
			t.Errorf("node %s: replay %s, live %s", id, got, want)
		}
	}
}
