package graph

import (
	"strings"
	"testing"

	"adept2/internal/model"
)

// buildSeq assembles start -> a -> b -> c -> end.
func buildSeq(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("seq")
	s, err := b.Build(b.Seq(b.Activity("a", "A"), b.Activity("b", "B"), b.Activity("c", "C")))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// buildParallel assembles a parallel block with two branches of two
// activities each plus a sync edge a1 ~> b2.
func buildParallel(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("par")
	p := b.Parallel(
		b.Seq(b.Activity("a1", "A1"), b.Activity("a2", "A2")),
		b.Seq(b.Activity("b1", "B1"), b.Activity("b2", "B2")),
	)
	b.Sync("a1", "b2")
	s, err := b.Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func TestTopoOrderSequence(t *testing.T) {
	s := buildSeq(t)
	order, err := TopoOrder(s, Control)
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range s.Edges() {
		if e.Type == model.EdgeControl && pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %s violates topological order", e)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	s := buildParallel(t)
	// Sync edge b2 ~> a1 closes a cycle with a1 ~> b2.
	if err := s.AddEdge(&model.Edge{From: "b2", To: "a1", Type: model.EdgeSync}); err != nil {
		t.Fatalf("add edge: %v", err)
	}
	if _, err := TopoOrder(s, ControlAndSync); err == nil {
		t.Fatal("expected cycle error")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Control-only view stays acyclic.
	if _, err := TopoOrder(s, Control); err != nil {
		t.Fatalf("control-only topo: %v", err)
	}
}

func TestReachableAndHasPath(t *testing.T) {
	s := buildParallel(t)
	fwd := Reachable(s, "a1", Control, true)
	if !fwd["a2"] || fwd["b1"] {
		t.Fatalf("forward reach from a1: %v", fwd)
	}
	back := Reachable(s, "b2", Control, false)
	if !back["b1"] || back["a2"] {
		t.Fatalf("backward reach from b2: %v", back)
	}
	if !HasPath(s, s.StartID(), s.EndID(), Control) {
		t.Fatal("start must reach end")
	}
	if HasPath(s, "a2", "b1", Control) {
		t.Fatal("parallel branches must not be control-connected")
	}
	if !HasPath(s, "a1", "b2", ControlAndSync) {
		t.Fatal("sync edge must connect branches in control+sync view")
	}
	if !HasPath(s, "a1", "a1", Control) {
		t.Fatal("trivial self path expected")
	}
}

func TestAnalyzeSequenceHasNoBlocks(t *testing.T) {
	info, err := Analyze(buildSeq(t))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(info.Blocks()) != 0 {
		t.Fatalf("sequence should have no blocks, got %d", len(info.Blocks()))
	}
	if blk := info.InnermostContaining("b"); blk != nil {
		t.Fatalf("no block should contain b, got %q..%q", blk.Split, blk.Join)
	}
}

func TestAnalyzeParallelBlock(t *testing.T) {
	s := buildParallel(t)
	info, err := Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(info.Blocks()) != 1 {
		t.Fatalf("want 1 block, got %d", len(info.Blocks()))
	}
	b := info.Blocks()[0]
	if b.Kind != model.NodeANDSplit || len(b.Branches) != 2 {
		t.Fatalf("block mismatch: kind=%s branches=%d", b.Kind, len(b.Branches))
	}
	if !b.Inside["a1"] || !b.Inside["b2"] || b.Inside[s.StartID()] {
		t.Fatalf("inside set wrong: %v", b.Inside)
	}
	if b.BranchOf("a1") == b.BranchOf("b1") {
		t.Fatal("a1 and b1 must sit on different branches")
	}
	if b.BranchOf("start") != -1 {
		t.Fatal("start is not inside the block")
	}
	if !b.Contains(b.Split) || !b.Contains(b.Join) {
		t.Fatal("block must contain its own split and join")
	}
	if blk, _, _, ok := info.Divergence("a1", "b2"); !ok || blk != b {
		t.Fatal("divergence of a1/b2 should be the AND block")
	}
	if _, _, _, ok := info.Divergence("a1", "a2"); ok {
		t.Fatal("a1/a2 are on the same branch: no divergence")
	}
	if got := info.MinimalRegion([]string{"a1", "b2"}); got != b {
		t.Fatal("minimal region of {a1,b2} should be the AND block")
	}
	if got := info.MinimalRegion([]string{"a1", s.EndID()}); got != nil {
		t.Fatal("region spanning end must be nil (whole schema)")
	}
}

func TestAnalyzeNestedBlocks(t *testing.T) {
	b := model.NewBuilder("nested")
	b.DataElement("route", model.TypeInt)
	inner := b.Choice("route", b.Activity("x", "X"), b.Activity("y", "Y"))
	outer := b.Parallel(b.Seq(b.Activity("a", "A"), inner), b.Activity("z", "Z"))
	s, err := b.Build(outer)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	info, err := Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(info.Blocks()) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(info.Blocks()))
	}
	// Blocks are innermost-first.
	if info.Blocks()[0].Kind != model.NodeXORSplit || info.Blocks()[1].Kind != model.NodeANDSplit {
		t.Fatalf("block order wrong: %s then %s", info.Blocks()[0].Kind, info.Blocks()[1].Kind)
	}
	xor := info.Blocks()[0]
	if got := info.InnermostContaining("x"); got != xor {
		t.Fatal("innermost block of x must be the XOR block")
	}
	path := info.Path("x")
	if len(path) != 2 || path[0].Block.Kind != model.NodeANDSplit || path[1].Block.Kind != model.NodeXORSplit {
		t.Fatalf("path of x wrong: %+v", path)
	}
	// x and y diverge at the XOR block; x and z at the AND block.
	if blk, _, _, ok := info.Divergence("x", "y"); !ok || blk.Kind != model.NodeXORSplit {
		t.Fatal("x/y must diverge at the XOR block")
	}
	if blk, _, _, ok := info.Divergence("x", "z"); !ok || blk.Kind != model.NodeANDSplit {
		t.Fatal("x/z must diverge at the AND block")
	}
}

func TestAnalyzeLoopBlock(t *testing.T) {
	b := model.NewBuilder("loop")
	b.DataElement("again", model.TypeBool)
	loop := b.Loop(b.Seq(b.Activity("w", "W"), b.Activity("v", "V")), "again", 3)
	s, err := b.Build(b.Seq(b.Activity("pre", "Pre"), loop, b.Activity("post", "Post")))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	info, err := Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(info.Blocks()) != 1 {
		t.Fatalf("want 1 loop block, got %d", len(info.Blocks()))
	}
	lb := info.Blocks()[0]
	if lb.Kind != model.NodeLoopStart || !lb.Inside["w"] || !lb.Inside["v"] || lb.Inside["pre"] || lb.Inside["post"] {
		t.Fatalf("loop body wrong: %v", lb.Inside)
	}
	if _, ok := info.ByJoin(lb.Join); !ok {
		t.Fatal("ByJoin lookup failed")
	}
	if _, ok := info.BySplit(lb.Split); !ok {
		t.Fatal("BySplit lookup failed")
	}
}

func TestAnalyzeRejectsDefects(t *testing.T) {
	mk := func(mutate func(t *testing.T, s *model.Schema)) *model.Schema {
		s := buildParallel(t)
		mutate(t, s)
		return s
	}
	add := func(t *testing.T, s *model.Schema, e *model.Edge) {
		t.Helper()
		if err := s.AddEdge(e); err != nil {
			t.Fatalf("add edge: %v", err)
		}
	}
	cases := []struct {
		name string
		s    *model.Schema
		want string
	}{
		{
			name: "crossing edge between branches",
			s: mk(func(t *testing.T, s *model.Schema) {
				add(t, s, &model.Edge{From: "a1", To: "b2", Type: model.EdgeControl})
			}),
			want: "", // several messages possible; any error is fine
		},
		{
			name: "orphan join",
			s: func() *model.Schema {
				b := model.NewBuilder("orphan")
				frag := b.Seq(b.Activity("a", "A"), b.Activity("c", "C"))
				s, err := b.Build(frag)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if err := s.AddNode(&model.Node{ID: "j", Type: model.NodeANDJoin, Auto: true}); err != nil {
					t.Fatal(err)
				}
				if err := s.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
					t.Fatal(err)
				}
				add(t, s, &model.Edge{From: "a", To: "j", Type: model.EdgeControl})
				add(t, s, &model.Edge{From: "j", To: "c", Type: model.EdgeControl})
				return s
			}(),
			want: "no matching split",
		},
		{
			name: "single-branch split",
			s: func() *model.Schema {
				b := model.NewBuilder("single")
				frag := b.Seq(b.Activity("a", "A"), b.Activity("c", "C"))
				s, err := b.Build(frag)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if err := s.AddNode(&model.Node{ID: "sp", Type: model.NodeANDSplit, Auto: true}); err != nil {
					t.Fatal(err)
				}
				if err := s.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
					t.Fatal(err)
				}
				add(t, s, &model.Edge{From: "a", To: "sp", Type: model.EdgeControl})
				add(t, s, &model.Edge{From: "sp", To: "c", Type: model.EdgeControl})
				return s
			}(),
			want: "need >=2",
		},
		{
			name: "duplicate xor codes",
			s: func() *model.Schema {
				b := model.NewBuilder("dupcode")
				frag := b.Choice("", b.Activity("x", "X"), b.Activity("y", "Y"))
				s, err := b.Build(frag)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				for _, e := range s.Edges() {
					if e.Type == model.EdgeControl && e.Code == 1 {
						e.Code = 0 // collide with the other branch
					}
				}
				return s
			}(),
			want: "duplicate selection code",
		},
	}
	for _, c := range cases {
		_, err := Analyze(c.s)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestAnalyzeRejectsBrokenLoops(t *testing.T) {
	// Loop edge from activity to activity.
	b := model.NewBuilder("badloop")
	frag := b.Seq(b.Activity("a", "A"), b.Activity("c", "C"))
	s, err := b.Build(frag)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := s.AddEdge(&model.Edge{From: "c", To: "a", Type: model.EdgeLoop}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(s); err == nil || !strings.Contains(err.Error(), "loop edge") {
		t.Fatalf("expected loop edge error, got %v", err)
	}

	// Loop start without loop edge.
	b2 := model.NewBuilder("noloopedge")
	b2.DataElement("again", model.TypeBool)
	loop := b2.Loop(b2.Activity("w", "W"), "again", 2)
	s2, err := b2.Build(loop)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, e := range s2.Edges() {
		if e.Type == model.EdgeLoop {
			if err := s2.RemoveEdge(e.Key()); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if _, err := Analyze(s2); err == nil {
		t.Fatal("expected error for loop start without loop edge")
	}
}
