package adept2_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adept2"
	"adept2/internal/rpc"
	"adept2/internal/sim"
)

// The PR 10 remote-submission benches measure the networked command
// plane over loopback HTTP against the same suspend/resume workload the
// PR 5 in-process benches use:
//
//   - RemoteSubmit blocks per command: one HTTP round-trip plus one
//     durability round-trip before the next command is issued,
//   - RemoteSubmitAsyncPipeline posts async commands (the server answers
//     at receipt-issue time) and resolves windows of receipts against
//     the shared watermark stream, so both the HTTP latency and the
//     flush cost amortize across the window.
//
// The server runs a 2ms group-commit flush window (the standard
// configuration for a loaded durability pipeline) rather than
// flush-on-every-append: this host's raw fsync latency drifts by
// ±50µs minute to minute, more than the ~60µs structural gap the
// windowless config leaves at one writer, so windowless runs measure
// the disk's mood instead of the protocol. Under a window the
// durability cost is deterministic and the comparison is structural:
// the blocking path pays the window per command, the pipelined path
// per 64-command window. Same honest 1-CPU caveat as the local
// benches: loopback HTTP and the engine share one core, so the gain
// shown is a floor — real network latency widens it, since the
// blocking path pays that latency per command too.

// remoteBench serves a group-commit system over loopback and runs fn
// across `writers` goroutines, each owning one instance, splitting b.N
// commands between them.
func remoteBench(b *testing.B, writers int, fn func(cli *rpc.Client, id string, n int)) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Every: -1, GroupCommit: true,
		FlushWindow: 2 * time.Millisecond, MaxBatch: 1 << 20}
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		b.Fatal(err)
	}
	srv, err := rpc.NewServer(sys, rpc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close(context.Background())
	cli, err := rpc.Dial(context.Background(), srv.URL())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	cli.Watch()
	ids := make([]string, writers)
	for i := range ids {
		res, err := cli.Submit(context.Background(), &adept2.CreateInstance{TypeName: "online_order"})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = res.Result.Instance.ID
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for w := 0; w < writers; w++ {
		n := per
		if w == 0 {
			n += b.N - per*writers
		}
		wg.Add(1)
		go func(id string, n int) {
			defer wg.Done()
			fn(cli, id, n)
		}(ids[w], n)
	}
	wg.Wait()
	b.StopTimer()
	if err := sys.Health(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRemoteSubmit is the blocking remote baseline: every command
// pays an HTTP round-trip and a durability round-trip in series.
func BenchmarkRemoteSubmit(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			remoteBench(b, writers, func(cli *rpc.Client, id string, n int) {
				ctx := context.Background()
				for i := 0; i < n; i++ {
					if _, err := cli.Submit(ctx, toggle(id, i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkRemoteSubmitAsyncPipeline pipelines windows of 64 async
// commands before resolving their receipts in bulk against the shared
// watermark stream — the remote analogue of SubmitAsyncPipeline, and
// the path that preserves the in-process pipelining win across the
// network.
func BenchmarkRemoteSubmitAsyncPipeline(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			remoteBench(b, writers, func(cli *rpc.Client, id string, n int) {
				ctx := context.Background()
				receipts := make([]*rpc.Receipt, 0, 64)
				drain := func() {
					for _, r := range receipts {
						if err := r.Wait(ctx); err != nil {
							b.Error(err)
							return
						}
					}
					receipts = receipts[:0]
				}
				for i := 0; i < n; i++ {
					r, err := cli.SubmitAsync(ctx, toggle(id, i))
					if err != nil {
						b.Error(err)
						return
					}
					receipts = append(receipts, r)
					if len(receipts) == 64 {
						drain()
					}
				}
				drain()
			})
		})
	}
}
