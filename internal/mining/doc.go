// Package mining is the process-intelligence layer over recorded
// executions: a bounded-memory, streaming fold of instance histories
// into variant frequencies, per-node/per-edge traversal statistics,
// activity-duration percentiles, hot paths, exception concentration,
// and drift — the populations a deployed schema version no longer
// describes. It is the analytical read path the ROADMAP's
// "process mining → auto-evolution loop" item calls for: the numbers a
// process engineer (or a future auto-Evolve proposer) needs before
// committing a type change.
//
// # Variant fingerprints
//
// A variant is an equivalence class of instances that executed the same
// logical history. The fingerprint is FNV-1a 64 folded over the
// *reduced* history (history.ReduceInto) in order, taking only
// Completed events and, per event, the node ID, the XOR routing
// decision, and the loop-iteration flag, each terminated by separator
// bytes so no field concatenation is ambiguous. Canonicalization
// choices, and why:
//
//   - Only Completed events contribute. Started events describe
//     in-flight work, so including them would split one behavioral
//     variant into per-progress sub-variants that merge again a step
//     later.
//   - Failed attempts and Timeout markers never contribute — not by
//     filtering here, but by construction: Reduce purges the
//     Started/Failed pair and drops Timeout audit markers, so a
//     retried-to-success instance fingerprints identically to one that
//     succeeded first try. The differential tests pin this interplay.
//   - Node IDs are hashed as strings, not interned indexes: dense
//     indexes are per-topology, so two instances on different schema
//     versions (or carrying different biases) would hash differently
//     for identical behavior. String identity is stable across
//     versions, which is exactly what drift comparison needs.
//   - Superseded loop iterations are already purged by the reduction,
//     so a loop that iterated five times and one that iterated once
//     share a fingerprint when their final iterations agree — the
//     paper's loop-tolerant equivalence carried into analytics.
//
// # Bounded-memory scan invariants
//
// The scanner never hydrates the whole population. Instances stream
// through Miner.Observe one at a time (the facade walks
// engine.InstancesPage in shard batches under the read barrier, folding
// each instance inside its own lock via Instance.MineHistory with one
// shared reduction buffer), and every table the Miner grows is capped:
// the variant table at Options.MaxVariants (excess instances tally into
// VariantOverflow), the edge table at Options.MaxEdges, foreign-node
// sets per type at a fixed handful. Per-node aggregates are bounded by
// schema size, durations live in fixed-bucket power-of-two
// obs.Histogram buckets, and the per-instance scratch state (last-start
// timestamps, failed-attempt flags) is cleared and reused between
// instances. Memory is therefore O(distinct schema nodes + caps),
// independent of population size — the property the facade's
// mine-allocation benchmark pins.
//
// # Drift
//
// Drift detection compares each instance against the *latest deployed*
// version of its type (registered via Miner.Deployed): an instance is
// stale when its version lags, biased when it carries ad-hoc change
// operations, and foreign when its logical history contains nodes the
// latest schema does not know (work stranded by a partial migration or
// an ad-hoc insertion). Any of the three makes it non-compliant in the
// report's drift table — the population slice a migration (or a
// proposed Evolve, the queued follow-up) would have to carry.
package mining
