package adept2

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"adept2/internal/durable"
	"adept2/internal/durable/sharded"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/fault"
	"adept2/internal/obs"
	"adept2/internal/org"
	"adept2/internal/persist"
	"adept2/internal/storage"
	"adept2/internal/vfs"
)

// System bundles the engine with the migration manager and an optional
// durable command journal. All state-changing methods are journaled, so
// Open can rebuild the exact system state after a crash. With
// checkpointing enabled (WithCheckpointing), the journal is augmented by
// background state snapshots and recovery replays only the journal suffix
// past the newest valid snapshot; with group commit, concurrent commands
// share one buffered write + one fsync per batch.
type System struct {
	eng       *engine.Engine
	mgr       *evolution.Manager
	journal   *persist.Journal
	committer *durable.Committer

	// Sharded durability (set by Open on a sharded layout, exclusive
	// with journal/committer): the WAL routes control records to shard 0
	// and data records by instance hash, stores holds one snapshot store
	// per shard, and gman is the authoritative global manifest.
	wal    *sharded.WAL
	layout sharded.Layout
	stores []*durable.SnapshotStore
	gman   *sharded.Manifest
	ckptMu sync.Mutex // serializes global-manifest read-modify-write

	// snapMu is the snapshot barrier: every journaled command holds it
	// shared across "engine mutation + journal append", and a snapshot
	// capture holds it exclusively — so captures always observe command-
	// boundary-consistent state tied to an exact journal sequence number.
	// In sharded mode, control commands (user, deploy, evolve) hold it
	// exclusively too: the epoch stamped onto data records is only a
	// valid recovery order if no data command is in flight between a
	// control command's engine mutation and its epoch advance.
	snapMu sync.RWMutex

	ckpt     *checkpointer
	recovery *RecoveryInfo

	// fsys is the filesystem every durability artifact lives on (vfs.OS
	// unless WithVFS injected one). The wire plane's control-log tail
	// reads journal suffixes through it.
	fsys vfs.FS

	// nowFn is the system clock (unix nanos), injectable via WithClock
	// so deterministic soaks drive deadlines with a logical clock. Only
	// the live path reads it — every timestamp that matters is stamped
	// onto the journal record it belongs to, so replay never consults
	// the clock.
	nowFn func() int64
	// policy maps detected exceptions (activity failures, deadline
	// expiries) to compensating commands; see ExceptionPolicy.
	policy ExceptionPolicy

	// met is the telemetry plane (nil = obs.Disabled). It is installed
	// only AFTER recovery completes, so replay can never record live-
	// path metrics. obsSrv/obsLis serve it over HTTP
	// (WithMetricsServer); sweepStop/sweepDone bound the in-process
	// deadline sweep timer (WithSweepInterval).
	met       *obs.Set
	obsSrv    *http.Server
	obsLis    net.Listener
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// now returns the current time in unix nanos from the configured clock.
func (s *System) now() int64 {
	if s.nowFn != nil {
		return s.nowFn()
	}
	return time.Now().UnixNano()
}

// checkpointer tracks automatic background snapshots.
type checkpointer struct {
	store *durable.SnapshotStore
	every int // journal growth (records) that triggers a snapshot; <=0 disables
	keep  int // snapshots retained after a write

	mu       sync.Mutex
	idle     *sync.Cond // signaled when an in-flight snapshot finishes
	lastSeq  int        // journal seq covered by the newest snapshot
	tried    int        // journal seq at the last attempt (backoff base on failure)
	inflight bool
	err      error // last background snapshot failure (diagnosed, not fatal)
}

func newCheckpointer(store *durable.SnapshotStore, cfg *CheckpointConfig, lastSeq int) *checkpointer {
	ck := &checkpointer{store: store, every: cfg.Every, keep: cfg.Keep, lastSeq: lastSeq}
	ck.idle = sync.NewCond(&ck.mu)
	return ck
}

// wait blocks until no background snapshot is in flight and returns the
// most recent background snapshot error.
func (ck *checkpointer) wait() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for ck.inflight {
		ck.idle.Wait()
	}
	return ck.err
}

// CheckpointConfig tunes the checkpointed durability pipeline (see
// WithCheckpointing). The zero value of every field selects a default.
type CheckpointConfig struct {
	// Dir is the snapshot directory. Default: <journal path>.snapshots.
	Dir string
	// Every triggers a background snapshot when the journal grew by this
	// many records since the last one. Default 1024; negative disables
	// automatic snapshots (Checkpoint can still be called explicitly).
	Every int
	// Keep bounds the snapshots retained after a successful write
	// (older ones are pruned). Default 3.
	Keep int
	// GroupCommit batches concurrent command appends into one buffered
	// write + one fsync (durable.Committer) instead of fsyncing per
	// record (per shard, in a sharded layout).
	GroupCommit bool
	// Shards selects the sharded durability layout: instances are hashed
	// across this many journals, each with its own committer and
	// snapshot series, under a global manifest (see
	// internal/durable/sharded). 0 or 1 keeps the single-journal layout.
	// The value only matters when a layout is first created; opening an
	// existing sharded layout auto-detects its count and refuses a
	// conflicting non-zero setting (reshard offline to change it).
	Shards int
	// FlushWindow and MaxBatch tune the group-commit flush window; zero
	// values take the committer defaults.
	FlushWindow time.Duration
	MaxBatch    int
	// RetryMax bounds how many times a failed group-commit flush is
	// retried (with exponential backoff from RetryBase up to RetryCap)
	// before the committer wedges and the system degrades to read-only
	// serving (see System.Heal). Zero values take the committer defaults
	// (4 retries, 1ms base, 50ms cap); RetryMax < 0 disables retries.
	RetryMax  int
	RetryBase time.Duration
	RetryCap  time.Duration
}

// committerOptions maps the config's group-commit knobs onto the
// committer's option set.
func (c *CheckpointConfig) committerOptions() durable.CommitterOptions {
	return durable.CommitterOptions{
		FlushWindow: c.FlushWindow,
		MaxBatch:    c.MaxBatch,
		RetryMax:    c.RetryMax,
		RetryBase:   c.RetryBase,
		RetryCap:    c.RetryCap,
	}
}

func (c *CheckpointConfig) defaults(journalPath string) {
	if c.Dir == "" {
		c.Dir = journalPath + ".snapshots"
	}
	if c.Every == 0 {
		c.Every = 1024
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
}

// RecoveryInfo describes how Open rebuilt the system state.
type RecoveryInfo struct {
	// SnapshotSeq is the journal sequence number of the snapshot the
	// recovery started from (0 when recovering by full replay; shard 0's
	// snapshot in a sharded layout).
	SnapshotSeq int
	// SnapshotFile is the path of that snapshot ("" for full replay).
	SnapshotFile string
	// Replayed counts the journal records applied on top of the snapshot
	// (the whole journal for a full replay; summed across shards).
	Replayed int
	// FullReplay reports that no snapshot was used.
	FullReplay bool
	// Fallbacks diagnoses snapshots that were present but rejected
	// (checksum mismatch, version skew, torn file, failed restore). In a
	// sharded layout, whole generations fall back together.
	Fallbacks []string
	// Shards is the shard count of the recovered layout (1 for the
	// single-journal layout).
	Shards int
	// PerShard details each shard's recovery in a sharded layout (nil
	// otherwise).
	PerShard []ShardRecovery
}

// ShardRecovery is one shard's slice of a sharded recovery.
type ShardRecovery struct {
	// Shard is the shard index (0 is the control shard).
	Shard int
	// SnapshotSeq is the shard-journal sequence its snapshot covered.
	SnapshotSeq int
	// SnapshotFile is the snapshot file name ("" on full replay).
	SnapshotFile string
	// Replayed counts the shard's suffix records applied.
	Replayed int
}

// Option configures a System.
type Option func(*config)

type config struct {
	org        *org.Model
	strategy   storage.Strategy
	journal    *persist.Journal
	ckpt       *CheckpointConfig
	fs         vfs.FS
	nowFn      func() int64
	policy     ExceptionPolicy
	bothCanAct bool

	// Observability (metrics.go): metrics are on by default; metricsOff
	// selects obs.Disabled, obsOpts tunes the trace ring, metricsAddr
	// brings up the HTTP stats plane, sweepEvery the deadline timer.
	metricsOff  bool
	obsOpts     obs.Options
	metricsAddr string
	sweepEvery  time.Duration
}

// fsys resolves the configured filesystem, defaulting to the real OS.
func (c *config) fsys() vfs.FS {
	if c.fs != nil {
		return c.fs
	}
	return vfs.OS()
}

// WithOrg supplies a pre-populated organizational model.
func WithOrg(m *OrgModel) Option { return func(c *config) { c.org = m } }

// WithStorageStrategy selects the biased-instance representation.
func WithStorageStrategy(s StorageStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithJournal attaches a command journal for durability.
func WithJournal(j *persist.Journal) Option { return func(c *config) { c.journal = j } }

// WithVFS routes every file access of the durability stack (journals,
// snapshots, manifests) through an explicit filesystem. Tests inject
// vfs.NewMemFS or vfs.NewFaultFS to simulate crashes and I/O faults; the
// default is the real OS filesystem.
func WithVFS(fsys vfs.FS) Option { return func(c *config) { c.fs = fsys } }

// WithCheckpointing enables the checkpointed durability pipeline for Open:
// state snapshots written in the background at journal-growth thresholds,
// snapshot + journal-suffix recovery, and (optionally) group commit. It
// only takes effect together with a file journal opened through Open.
func WithCheckpointing(cfg CheckpointConfig) Option {
	return func(c *config) { c.ckpt = &cfg }
}

// New creates a System.
func New(opts ...Option) *System {
	var c config
	for _, o := range opts {
		o(&c)
	}
	sys := newSystem(&c)
	sys.met = newMetricsSet(&c, 1)
	if c.sweepEvery > 0 {
		sys.startSweeper(c.sweepEvery)
	}
	return sys
}

func newSystem(c *config) *System {
	e := engine.New(c.org)
	e.SetStorageStrategy(c.strategy)
	// Escalation semantics are fixed before any replay (every
	// construction path — New, each snapshot-recovery attempt, full
	// replay — funnels through here), so recovered timeout records
	// escalate to the identical user set the original execution offered.
	e.SetEscalationBothCanAct(c.bothCanAct)
	return &System{eng: e, mgr: evolution.NewManager(e), journal: c.journal, fsys: c.fsys(), nowFn: c.nowFn, policy: c.policy}
}

// Open creates a System backed by a file journal at path, recovering any
// existing state first, then appending new commands. Without
// checkpointing, recovery replays the entire journal. With
// WithCheckpointing, recovery restores the newest valid snapshot and
// replays only the journal suffix past it, falling back to older
// snapshots and finally to a full replay when snapshots are torn,
// corrupt, or version-skewed; Recovery reports what happened.
func Open(path string, opts ...Option) (*System, error) {
	sys, err := open(path, opts...)
	if err != nil {
		// Classify for errors.Is: durability-layer refusals to rebuild
		// state are tagged by the recovery code; everything else keeps
		// CodeInternal.
		return nil, wrapErr("open", "", err)
	}
	return sys, nil
}

func open(path string, opts ...Option) (*System, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}

	// Sharded layouts are self-describing: a global manifest next to the
	// journal declares the shard count. Absent one, a configured shard
	// count > 1 creates a fresh sharded layout — but never silently on
	// top of existing single-journal data (reshard offline instead).
	man, err := sharded.LoadManifestFS(c.fsys(), sharded.ManifestPath(path))
	if err != nil {
		return nil, err
	}
	want := 0
	if c.ckpt != nil {
		want = c.ckpt.Shards
	}
	switch {
	case man != nil:
		if want > 0 && want != man.Shards {
			return nil, fault.Tagf(fault.VersionSkew,
				"adept2: layout at %s has %d shards but %d were requested: reshard offline (adeptctl reshard)",
				path, man.Shards, want)
		}
		return openSharded(&c, path, man)
	case want > 1:
		if err := refuseExistingSingleJournal(&c, path); err != nil {
			return nil, err
		}
		man = sharded.NewManifest(want)
		if err := sharded.WriteManifestFS(c.fsys(), path, man); err != nil {
			return nil, err
		}
		return openSharded(&c, path, man)
	}

	var store *durable.SnapshotStore
	if c.ckpt != nil {
		c.ckpt.defaults(path)
		store, err = durable.OpenStoreFS(c.fsys(), c.ckpt.Dir)
		if err != nil {
			return nil, err
		}
	}
	recoverStart := time.Now()
	sys, info, tail, err := recoverSystem(&c, store, path)
	if err != nil {
		return nil, err
	}
	// Telemetry goes live only now — replay above ran on a Set-less
	// system, so recovered commands can never pollute live-path metrics.
	sys.met = newMetricsSet(&c, 1)
	recordRecovery(sys.met, info, time.Since(recoverStart))

	// The recovery pass already established the journal's boundaries, so
	// the journal resumes (repairing any torn tail) without a second full
	// read. A journal compacted past its last record continues the
	// snapshot's numbering.
	if info.SnapshotSeq > tail.LastSeq {
		tail.LastSeq = info.SnapshotSeq
	}
	groupCommit := c.ckpt != nil && c.ckpt.GroupCommit
	j, err := persist.ResumeJournalFS(c.fsys(), path, tail, groupCommit)
	if err != nil {
		return nil, err
	}
	if groupCommit {
		copts := c.ckpt.committerOptions()
		if sys.met != nil {
			copts.Metrics = &sys.met.Committer
		}
		sys.committer = durable.NewCommitter(j, copts)
	}
	sys.journal = j
	sys.recovery = info
	if c.ckpt != nil {
		sys.ckpt = newCheckpointer(store, c.ckpt, info.SnapshotSeq)
	}
	if err := sys.startObs(&c); err != nil {
		_ = sys.Close()
		return nil, err
	}
	return sys, nil
}

// recoverSystem rebuilds the system state from the snapshot store (when
// present) and the journal. Each snapshot attempt starts from a fresh
// system so a half-restored failure cannot leak into the fallback, and
// only the journal suffix past the chosen snapshot is decoded — the
// prefix is integrity-scanned without materializing records. Returns the
// recovered system, what happened, and the journal's scanned tail info.
func recoverSystem(c *config, store *durable.SnapshotStore, path string) (*System, *RecoveryInfo, persist.TailInfo, error) {
	info := &RecoveryInfo{}
	none := persist.TailInfo{}

	if store != nil {
		entries, err := store.Entries()
		if err != nil {
			return nil, nil, none, err
		}
		for i := len(entries) - 1; i >= 0; i-- {
			entry := entries[i]
			st, err := store.Load(entry)
			if err != nil {
				info.Fallbacks = append(info.Fallbacks, err.Error())
				continue
			}
			recs, tail, err := persist.LoadJournalSuffixFS(c.fsys(), path, st.Seq)
			if err != nil {
				return nil, nil, none, err
			}
			// A snapshot ahead of the journal tail means the journal lost
			// committed records: recovering would silently forge history.
			// (An empty journal is fine — compaction may have folded every
			// record into the snapshot.)
			if tail.LastSeq > 0 && st.Seq > tail.LastSeq {
				return nil, nil, none, fault.Tagf(fault.Unrecoverable,
					"adept2: snapshot %s covers seq %d but the journal ends at %d: journal truncated, refusing to recover",
					entry.File, st.Seq, tail.LastSeq)
			}
			// A compacted journal needs a snapshot reaching its first
			// record; older snapshots cannot bridge the gap.
			if tail.FirstSeq > 1 && st.Seq < tail.FirstSeq-1 {
				info.Fallbacks = append(info.Fallbacks, fmt.Sprintf(
					"durable: snapshot %s (seq %d) predates the compacted journal start %d", entry.File, st.Seq, tail.FirstSeq))
				continue
			}
			// Each attempt gets its own copy of any caller-supplied org
			// model: a half-restored failure must not leak users into the
			// model the next attempt (or the full-replay fallback) starts
			// from.
			attempt := *c
			if c.org != nil {
				attempt.org = c.org.Clone()
			}
			sys := newSystem(&attempt)
			if err := durable.Restore(sys.eng, st); err != nil {
				info.Fallbacks = append(info.Fallbacks, err.Error())
				continue
			}
			for _, rec := range recs {
				if err := sys.apply(rec.Op, rec.Args); err != nil {
					return nil, nil, none, fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
				}
			}
			sys.eng.SortInstanceOrder()
			info.SnapshotSeq = st.Seq
			info.SnapshotFile = entry.File
			info.Replayed = len(recs)
			return sys, info, tail, nil
		}
	}

	// Full replay — impossible once the journal was compacted.
	recs, tail, err := persist.LoadJournalSuffixFS(c.fsys(), path, 0)
	if err != nil {
		return nil, nil, none, err
	}
	if tail.FirstSeq > 1 {
		return nil, nil, none, fault.Tagf(fault.Unrecoverable,
			"adept2: journal starts at seq %d (compacted) and no usable snapshot reaches seq %d: %v",
			tail.FirstSeq, tail.FirstSeq-1, info.Fallbacks)
	}
	sys := newSystem(c)
	if err := persist.Replay(recs, sys.apply); err != nil {
		return nil, nil, none, err
	}
	sys.eng.SortInstanceOrder()
	info.FullReplay = true
	info.Replayed = len(recs)
	return sys, info, tail, nil
}

// Recovery reports how Open rebuilt the state (nil for systems created
// with New).
func (s *System) Recovery() *RecoveryInfo { return s.recovery }

// Close drains the group-commit pipeline (every shard's, in a sharded
// layout), waits for an in-flight background snapshot, and releases the
// journals.
func (s *System) Close() error {
	// Observability goroutines go first: no sweep may submit into a
	// closing committer, no scrape may observe a half-closed system.
	s.stopObs()
	var firstErr error
	if s.committer != nil {
		if err := s.committer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.ckpt != nil {
		if err := s.ckpt.wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Health reports asynchronous durability failures without waiting for
// the next command to surface them: a wedged group-commit committer
// (sticky flush error after exhausted retries — any shard's, in a
// sharded layout) or the most recent background checkpoint failure. nil
// means the pipeline is healthy.
func (s *System) Health() error {
	if err := s.healthErr(); err != nil {
		return &Error{Code: CodeWedged, Op: "health", Err: err}
	}
	return nil
}

// healthErr is Health without the taxonomy wrapping.
func (s *System) healthErr() error {
	if err := s.wedgedErr(); err != nil {
		return err
	}
	if ck := s.ckpt; ck != nil {
		ck.mu.Lock()
		err := ck.err
		ck.mu.Unlock()
		if err != nil {
			return fmt.Errorf("adept2: background checkpoint failing: %w", err)
		}
	}
	return nil
}

// wedgedErr reports only the write-path wedge (a committer whose flush
// retries are exhausted) — the condition that degrades the system to
// read-only serving. A failing background checkpoint does NOT wedge:
// commands stay durable through the journal, so writes keep flowing
// while Health surfaces the snapshot problem.
func (s *System) wedgedErr() error {
	if s.wal != nil {
		if err := s.wal.Health(); err != nil {
			return err
		}
	}
	if s.committer != nil {
		if err := s.committer.Err(); err != nil {
			return fmt.Errorf("adept2: committer wedged: %w", err)
		}
	}
	return nil
}

// HealthInfo details the durability pipeline's condition beyond the
// first-error summary of Health.
type HealthInfo struct {
	// Wedged is the write-path wedge, if any: submissions fail fast with
	// ErrWedged until Heal succeeds. nil while writes flow.
	Wedged error
	// WedgedShards lists the wedged shards ([0] for the single-journal
	// layout's committer; empty while healthy).
	WedgedShards []int
	// CheckpointErr is the most recent background checkpoint failure
	// (does not wedge the system; cleared by the next success or a Heal).
	CheckpointErr error
	// CleanupErrs counts failed removals of stale snapshot and temp
	// files across all stores — a warning (disk not being reclaimed),
	// never a failure.
	CleanupErrs int64
	// FlushRetries counts the transient flush failures the committers
	// absorbed without wedging over the system's lifetime.
	FlushRetries int64
}

// HealthInfo returns the detailed pipeline condition (see the HealthInfo
// type). Cheap and non-blocking — safe to poll.
func (s *System) HealthInfo() HealthInfo {
	hi := HealthInfo{Wedged: s.wedgedErr()}
	if s.wal != nil {
		hi.WedgedShards = s.wal.WedgedShards()
		hi.FlushRetries = s.wal.Retries()
	} else if s.committer != nil {
		if s.committer.Err() != nil {
			hi.WedgedShards = []int{0}
		}
		hi.FlushRetries = s.committer.Retries()
	}
	if ck := s.ckpt; ck != nil {
		ck.mu.Lock()
		hi.CheckpointErr = ck.err
		ck.mu.Unlock()
		if ck.store != nil {
			hi.CleanupErrs += ck.store.CleanupErrs()
		}
	}
	for _, st := range s.stores {
		hi.CleanupErrs += st.CleanupErrs()
	}
	return hi
}

// Heal restores a wedged system to full service without a restart: every
// wedged shard's journal is re-opened and tail-repaired in place, its
// committer re-flushes the records retained in memory (no acknowledged
// or accepted write is ever dropped by a wedge/heal cycle), and
// submissions flow again. The sticky background-checkpoint error and its
// retry backoff are cleared too, so snapshotting resumes promptly. Heal
// on a healthy system is a no-op. If the underlying fault persists, the
// heal fails (or the next flush wedges again) — the system stays
// degraded and Heal can be retried.
func (s *System) Heal(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return &Error{Code: CodeCanceled, Op: "heal", Err: err}
	}
	var (
		err    error
		healed bool
	)
	switch {
	case s.wal != nil:
		healed = s.wal.Health() != nil
		err = s.wal.Heal()
	case s.committer != nil && s.committer.Err() != nil:
		healed = true
		err = s.committer.Heal()
	}
	if err != nil {
		return wrapErr("heal", "", err)
	}
	if ck := s.ckpt; ck != nil {
		ck.mu.Lock()
		ck.err = nil
		ck.tried = 0
		ck.mu.Unlock()
		if healed {
			// A successful heal forces a checkpoint: the wedge era may
			// have left a long un-snapshotted journal suffix, and the
			// next recovery should not have to replay it. A snapshot
			// failure is diagnosed like any background checkpoint
			// failure — the heal itself already succeeded.
			if _, _, cerr := s.Checkpoint(); cerr != nil {
				ck.mu.Lock()
				if ck.err == nil {
					ck.err = cerr
				}
				ck.mu.Unlock()
			}
		}
	}
	return nil
}

// Engine exposes the underlying runtime (read paths, worklists).
func (s *System) Engine() *Engine { return s.eng }

// Org exposes the organizational model.
func (s *System) Org() *OrgModel { return s.eng.Org() }

// WorkItems returns the work items visible to a user.
func (s *System) WorkItems(user string) []*WorkItem { return s.eng.WorkItems(user) }

// Claim reserves a work item for a user.
func (s *System) Claim(itemID, user string) error {
	return wrapErr("claim", "", s.eng.Claim(itemID, user))
}

// Release un-claims a work item.
func (s *System) Release(itemID, user string) error {
	return wrapErr("release", "", s.eng.Release(itemID, user))
}

// Instance looks up an instance.
func (s *System) Instance(id string) (*Instance, bool) { return s.eng.Instance(id) }

// Instances returns all instances in creation order.
func (s *System) Instances() []*Instance { return s.eng.Instances() }

// WorkItemsPage returns up to limit of a user's work items in item-ID
// order, starting after the cursor item ID ("" = beginning), plus the
// cursor for the next page ("" when the listing is exhausted). Unlike
// WorkItems it clones only one page per call — the read path for
// worklist browsers at large user counts.
func (s *System) WorkItemsPage(user, cursor string, limit int) ([]*WorkItem, string) {
	return s.eng.WorkItemsPage(user, cursor, limit)
}

// InstancesPage returns up to limit instances in creation order,
// starting after the cursor instance ID ("" = beginning), plus the
// cursor for the next page ("" when exhausted). Unlike Instances it
// copies only one page per call.
func (s *System) InstancesPage(cursor string, limit int) ([]*Instance, string) {
	return s.eng.InstancesPage(cursor, limit)
}

// lockControl acquires the command barrier for a control command. In a
// multi-shard layout control commands hold the barrier exclusively: a
// data command observing the engine effect of a control command but
// stamping the pre-command epoch would replay on the wrong side of it
// after a crash. Single-journal (and single-shard) systems keep the
// cheap shared acquisition — the journal's total order needs no epoch.
func (s *System) lockControl() func() {
	if s.wal != nil && s.wal.Shards() > 1 {
		s.snapMu.Lock()
		return s.snapMu.Unlock
	}
	s.snapMu.RLock()
	return s.snapMu.RUnlock
}

// Checkpoint synchronously captures the engine state at the current
// journal position and writes a snapshot, returning its path and the
// journal sequence number it covers. The capture quiesces commands for
// the (in-memory, fast) state export; serialization and the file write
// happen outside the barrier.
func (s *System) Checkpoint() (string, int, error) {
	if s.ckpt == nil {
		return "", 0, fmt.Errorf("adept2: checkpointing is not enabled (use WithCheckpointing)")
	}
	start := time.Now()
	file, seq, err := s.checkpoint()
	if m := s.met; m != nil {
		m.Checkpoint.Count.Inc()
		m.Checkpoint.Nanos.Observe(time.Since(start).Nanoseconds())
		if err != nil {
			m.Checkpoint.Failures.Inc()
		}
	}
	return file, seq, err
}

func (s *System) checkpoint() (string, int, error) {
	if s.wal != nil {
		return s.checkpointSharded()
	}
	st, err := s.captureState()
	if err != nil {
		return "", 0, err
	}
	file, err := s.ckpt.store.WriteAndPrune(st, s.ckpt.keep)
	if err != nil {
		return file, st.Seq, err
	}
	s.ckpt.mu.Lock()
	if st.Seq > s.ckpt.lastSeq {
		s.ckpt.lastSeq = st.Seq
	}
	s.ckpt.mu.Unlock()
	return file, st.Seq, nil
}

// captureState stages the engine state under the exclusive snapshot
// barrier (cheap clones only — serialization happens after the barrier is
// released), tied to a fully durable journal sequence number: with group
// commit the pipeline is synced first, so the snapshot never covers
// records that could still be lost by a crash.
func (s *System) captureState() (*durable.SystemState, error) {
	s.snapMu.Lock()
	if s.committer != nil {
		if err := s.committer.Sync(); err != nil {
			s.snapMu.Unlock()
			return nil, err
		}
	}
	seq := 0
	if s.journal != nil {
		seq = s.journal.Seq()
	}
	staged := durable.Stage(s.eng, seq)
	s.snapMu.Unlock()
	return staged.Encode()
}

// maybeCheckpoint spawns a background snapshot when the journal grew past
// the configured threshold since the last one (at most one in flight).
// In a sharded layout the growth measure is the summed shard heads.
func (s *System) maybeCheckpoint() {
	ck := s.ckpt
	if ck == nil || ck.every <= 0 || (s.journal == nil && s.wal == nil) {
		return
	}
	var seq int
	if s.wal != nil {
		seq = s.wal.TotalSeq()
	} else {
		seq = s.journal.Seq()
	}
	ck.mu.Lock()
	// The trigger base is the newest snapshot OR the last (possibly
	// failed) attempt: a persistently failing snapshot store retries only
	// once per Every records instead of stalling every command behind the
	// capture barrier.
	base := ck.lastSeq
	if ck.tried > base {
		base = ck.tried
	}
	if ck.inflight || seq-base < ck.every {
		ck.mu.Unlock()
		return
	}
	ck.inflight = true
	ck.tried = seq
	ck.mu.Unlock()
	go func() {
		_, _, err := s.Checkpoint()
		ck.mu.Lock()
		ck.inflight = false
		ck.err = err
		ck.idle.Broadcast()
		ck.mu.Unlock()
	}()
}

// WaitCheckpoints blocks until no background snapshot is in flight and
// returns the most recent background snapshot error, if any.
func (s *System) WaitCheckpoints() error {
	if s.ckpt == nil {
		return nil
	}
	return s.ckpt.wait()
}

// JournalSeq returns the sequence number of the last journaled command (0
// without a journal). In a sharded layout it returns the summed shard
// head sequence numbers — a total growth measure, not a single position.
func (s *System) JournalSeq() int {
	if s.wal != nil {
		return s.wal.TotalSeq()
	}
	if s.journal == nil {
		return 0
	}
	return s.journal.Seq()
}

// AddUser registers a user in the organizational model (journaled, unlike
// direct Org() mutation).
func (s *System) AddUser(u *User) error {
	_, err := s.Submit(context.Background(), &AddUser{User: u})
	return err
}

// Deploy verifies and registers a schema version.
func (s *System) Deploy(schema *Schema) error {
	_, err := s.Submit(context.Background(), &Deploy{Schema: schema})
	return err
}

// CreateInstance instantiates the latest version of a process type.
func (s *System) CreateInstance(typeName string) (*Instance, error) {
	return s.CreateInstanceVersion(typeName, 0)
}

// CreateInstanceVersion instantiates an explicit schema version (0 =
// latest).
func (s *System) CreateInstanceVersion(typeName string, version int) (*Instance, error) {
	res, err := s.Submit(context.Background(), &CreateInstance{TypeName: typeName, Version: version})
	if err != nil {
		// The instance may exist despite the error (journaling failed
		// after the create); hand it back alongside, as before PR 5.
		inst, _ := appliedResult(err).(*Instance)
		return inst, err
	}
	return res.(*Instance), nil
}

// appliedResult extracts the result of a command that WAS applied even
// though its submission returned an error (Error.Applied).
func appliedResult(err error) any {
	var e *Error
	if errors.As(err, &e) && e.Applied {
		return e.Result
	}
	return nil
}

// Start starts an activated activity on behalf of a user.
func (s *System) Start(instID, node, user string) error {
	_, err := s.Submit(context.Background(), &StartActivity{Instance: instID, Node: node, User: user})
	return err
}

// Complete completes a node (starting it first when merely activated).
func (s *System) Complete(instID, node, user string, outputs map[string]any) error {
	_, err := s.Submit(context.Background(), &CompleteActivity{Instance: instID, Node: node, User: user, Outputs: outputs})
	return err
}

// CompleteWithDecision completes an XOR split with an explicit routing
// decision.
func (s *System) CompleteWithDecision(instID, node, user string, outputs map[string]any, decision int) error {
	_, err := s.Submit(context.Background(), &CompleteActivity{
		Instance: instID, Node: node, User: user, Outputs: outputs, Decision: &decision})
	return err
}

// CompleteLoop completes a loop end with an explicit iteration decision.
func (s *System) CompleteLoop(instID, node, user string, outputs map[string]any, again bool) error {
	_, err := s.Submit(context.Background(), &CompleteActivity{
		Instance: instID, Node: node, User: user, Outputs: outputs, Again: &again})
	return err
}

// AdHocChange applies an ad-hoc change to a single running instance (the
// paper's instance-level change dimension).
func (s *System) AdHocChange(instID string, ops ...Operation) error {
	_, err := s.Submit(context.Background(), &AdHoc{Instance: instID, Ops: ops})
	return err
}

// Suspend blocks user operations on an instance; ad-hoc changes and
// migration stay possible.
func (s *System) Suspend(instID string) error {
	_, err := s.Submit(context.Background(), &Suspend{Instance: instID})
	return err
}

// Resume re-enables user operations on a suspended instance.
func (s *System) Resume(instID string) error {
	_, err := s.Submit(context.Background(), &Resume{Instance: instID})
	return err
}

// UndoAdHocChange removes the most recent ad-hoc change of the instance,
// provided it has not progressed into the changed region.
func (s *System) UndoAdHocChange(instID string) error {
	_, err := s.Submit(context.Background(), &Undo{Instance: instID})
	return err
}

// UndoAllAdHocChanges returns the instance to its plain schema version.
func (s *System) UndoAllAdHocChanges(instID string) error {
	_, err := s.Submit(context.Background(), &Undo{Instance: instID, All: true})
	return err
}

// Evolve performs a schema evolution of the process type and migrates all
// compliant instances on the fly (the paper's type-level change
// dimension). The returned report classifies every instance.
func (s *System) Evolve(typeName string, ops []Operation, opts EvolveOptions) (*MigrationReport, error) {
	res, err := s.Submit(context.Background(), &Evolve{TypeName: typeName, Ops: ops, Options: opts})
	if err != nil {
		// The evolution may have run despite the error (journaling
		// failed after the migration); the report still classifies every
		// instance, so hand it back alongside, as before PR 5.
		report, _ := appliedResult(err).(*MigrationReport)
		return report, err
	}
	return res.(*MigrationReport), nil
}
