package adept2_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"adept2"
	"adept2/internal/durable/sharded"
	"adept2/internal/sim"
)

// shardedCfg is the default sharded test configuration: 4 shards, manual
// checkpoints, group commit off (deterministic file contents).
func shardedCfg() adept2.CheckpointConfig {
	return adept2.CheckpointConfig{Shards: 4, Every: -1}
}

func openSharded(t *testing.T, path string, cfg adept2.CheckpointConfig) *adept2.System {
	t.Helper()
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// reference replays the canonical scenario on an in-memory system for
// state comparison.
func reference(t *testing.T, suffix bool) *adept2.System {
	t.Helper()
	want := adept2.New(adept2.WithOrg(sim.Org()))
	i1, _ := runPrefix(t, want)
	if suffix {
		runSuffix(t, want, i1)
	}
	return want
}

// TestShardedRoundTrip: a fresh 4-shard layout journals the canonical
// scenario across shards and a reopen rebuilds the exact state by a full
// merged replay.
func TestShardedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Data records actually spread past the control shard.
	spread := 0
	for k := 1; k < 4; k++ {
		l := sharded.Layout{Base: path, Shards: 4}
		if st, err := os.Stat(l.JournalPath(k)); err == nil && st.Size() > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("no data shard received records")
	}

	got := openSharded(t, path, shardedCfg())
	defer got.Close()
	info := got.Recovery()
	if !info.FullReplay || info.Shards != 4 {
		t.Fatalf("recovery: %+v", info)
	}
	assertSameState(t, reference(t, true), got)
}

// TestShardedCheckpointSuffixRecovery: a generation checkpoint plus a
// cross-shard suffix recovers without a full replay, and the per-shard
// replay counts add up to the suffix.
func TestShardedCheckpointSuffixRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, _ := runPrefix(t, sys)
	preSeq := sys.JournalSeq()
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	suffixLen := sys.JournalSeq() - preSeq
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	got := openSharded(t, path, shardedCfg())
	defer got.Close()
	info := got.Recovery()
	if info.FullReplay {
		t.Fatalf("expected generation recovery, got full replay: %+v", info)
	}
	if info.Replayed != suffixLen {
		t.Fatalf("replayed %d records, suffix was %d", info.Replayed, suffixLen)
	}
	assertSameState(t, reference(t, true), got)
}

// TestShardedTornSnapshotFallsBackAGeneration: corrupting one shard's
// part of the newest generation degrades recovery to the previous
// generation — for every shard, never mixing cuts — and the state still
// comes back exact.
func TestShardedTornSnapshotFallsBackAGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	cfg := shardedCfg()
	cfg.Keep = 3
	sys := openSharded(t, path, cfg)
	i1, _ := runPrefix(t, sys)
	if _, _, err := sys.Checkpoint(); err != nil { // generation 1
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	// A control record between the cuts gives generation 2 a new epoch,
	// so every shard gets its own part file even where its journal did
	// not advance (the fallback ladder depends on parts not being shared).
	if err := sys.AddUser(&adept2.User{ID: "carl", Roles: []string{"clerk"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Checkpoint(); err != nil { // generation 2
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := sharded.LoadManifest(sharded.ManifestPath(path))
	if err != nil || man == nil || len(man.Generations) != 2 {
		t.Fatalf("manifest: %+v err=%v", man, err)
	}
	newest := man.Generations[1]
	l := sharded.Layout{Base: path, Shards: man.Shards}
	victim := filepath.Join(l.SnapDir(2), newest.Parts[2].File)
	blob, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0xff
	if err := os.WriteFile(victim, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	got := openSharded(t, path, shardedCfg())
	defer got.Close()
	info := got.Recovery()
	if info.FullReplay {
		t.Fatalf("expected older-generation recovery: %+v", info)
	}
	if len(info.Fallbacks) == 0 {
		t.Fatal("expected a fallback diagnosis for the torn part")
	}
	if info.SnapshotSeq != man.Generations[0].Parts[0].Seq {
		t.Fatalf("recovered from seq %d, want generation 1 at %d", info.SnapshotSeq, man.Generations[0].Parts[0].Seq)
	}
	assertSameState(t, reference(t, true), got)

	// With every generation's shard-2 part torn, recovery degrades to a
	// full merged replay (journals are uncompacted) — still exact.
	for _, gen := range man.Generations {
		f := filepath.Join(l.SnapDir(2), gen.Parts[2].File)
		if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got2 := openSharded(t, path, shardedCfg())
	defer got2.Close()
	if !got2.Recovery().FullReplay {
		t.Fatalf("expected full replay: %+v", got2.Recovery())
	}
	assertSameState(t, reference(t, true), got2)
}

// dropLastLine truncates a journal file by its final record.
func dropLastLine(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimRight(string(blob), "\n")
	i := strings.LastIndexByte(trimmed, '\n')
	if i < 0 {
		t.Fatalf("journal %s has fewer than two records", path)
	}
	if err := os.WriteFile(path, []byte(trimmed[:i+1]), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTornDataJournalTail: losing a data shard's final record is
// tolerated (like a torn tail in the single-journal layout) and recovery
// lands deterministically on the state just before the lost command.
func TestShardedTornDataJournalTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, i2 := runPrefix(t, sys)
	// Route one extra command to a non-control shard and then lose it.
	victim, shard := i1, sharded.ShardOf(i1, 4)
	if shard == 0 {
		victim, shard = i2, sharded.ShardOf(i2, 4)
	}
	if shard == 0 {
		t.Skip("both scenario instances hash to shard 0")
	}
	if err := sys.Suspend(victim); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	l := sharded.Layout{Base: path, Shards: 4}
	dropLastLine(t, l.JournalPath(shard))

	got := openSharded(t, path, shardedCfg())
	defer got.Close()
	inst, ok := got.Instance(victim)
	if !ok {
		t.Fatalf("instance %s lost", victim)
	}
	if inst.Suspended() {
		t.Fatal("suspend survived although its record was torn off")
	}
	assertSameState(t, reference(t, false), got)
}

// TestShardedDanglingEpochRefuses: a data record referencing a control
// epoch the (truncated) control log no longer reaches is a hard refusal —
// replaying it on the wrong side of the lost control record would forge
// history.
func TestShardedDanglingEpochRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	// A second control record, then data records stamped with its epoch.
	if _, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{}); err != nil {
		t.Fatal(err)
	}
	spread := false
	for i := 0; i < 8; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		if sharded.ShardOf(inst.ID(), 4) != 0 {
			spread = true
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if !spread {
		t.Fatal("no instance hashed off the control shard")
	}
	// Truncate the control log to before the evolve: the data records
	// stamped with its seq now dangle.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.IndexByte(string(blob), '\n')
	if err := os.WriteFile(path, blob[:first+1], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(shardedCfg()))
	if err == nil || !strings.Contains(err.Error(), "control") {
		t.Fatalf("expected dangling-epoch refusal, got %v", err)
	}
}

// TestShardedCountMismatchRefuses: the global manifest's shard count is
// authoritative; shard journals past it holding records refuse the open.
func TestShardedCountMismatchRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	// Populate the upper shards so the lie below is detectable.
	high := false
	for i := 0; i < 8; i++ {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		if sharded.ShardOf(inst.ID(), 4) >= 2 {
			high = true
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if !high {
		t.Fatal("no instance hashed to a shard >= 2")
	}
	// Rewrite the manifest claiming fewer shards than the directory holds.
	blob, _ := json.Marshal(&sharded.Manifest{Format: sharded.ManifestFormat, Shards: 2})
	if err := os.WriteFile(sharded.ManifestPath(path), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err == nil || !strings.Contains(err.Error(), "shard count mismatch") {
		t.Fatalf("expected shard-count-mismatch refusal, got %v", err)
	}
}

// TestShardedOpenOnSingleJournalLayoutRefuses: asking for shards on top
// of an existing single-journal layout refuses with a reshard hint — it
// never reinterprets the data in place.
func TestShardedOpenOnSingleJournalLayoutRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	runPrefix(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = adept2.Open(path, adept2.WithOrg(sim.Org()), adept2.WithCheckpointing(shardedCfg()))
	if err == nil || !strings.Contains(err.Error(), "reshard") {
		t.Fatalf("expected reshard refusal, got %v", err)
	}
	// Opened without a shard count, the layout still works unchanged.
	sys, err = adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	assertSameState(t, reference(t, false), sys)
}

// TestReshardPreservesState walks the layout through 1 → 4 → 2 shards
// and back to 1, comparing the externally observable state at every
// step, with new commands landing correctly in between.
func TestReshardPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := runPrefix(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{4, 2, 1} {
		if err := adept2.Reshard(path, n, adept2.WithOrg(sim.Org())); err != nil {
			t.Fatalf("reshard to %d: %v", n, err)
		}
		got, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
		if err != nil {
			t.Fatalf("open after reshard to %d: %v", n, err)
		}
		if got.Recovery().Shards != n {
			t.Fatalf("recovered %d shards, want %d", got.Recovery().Shards, n)
		}
		assertSameState(t, reference(t, false), got)
		if err := got.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The final 1-shard layout keeps working: append a suffix, reopen.
	sys, err = adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameState(t, reference(t, true), got)
}

// TestReshardAfterSuffixOnSharded: reshard a sharded layout that has
// live journal suffixes past its newest generation, then keep working.
func TestReshardAfterSuffixOnSharded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, _ := runPrefix(t, sys)
	if _, _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := adept2.Reshard(path, 2, adept2.WithOrg(sim.Org())); err != nil {
		t.Fatal(err)
	}
	got := openSharded(t, path, adept2.CheckpointConfig{Shards: 2, Every: -1})
	defer got.Close()
	assertSameState(t, reference(t, true), got)
}

// TestShardedConcurrentLoad drives concurrent data commands, interleaved
// control commands, and background checkpoints through a 4-shard group-
// commit pipeline, then proves a reopen converges (exercised under
// -race: epoch stamping, the exclusive control barrier, parallel capture
// and parallel recovery all run concurrently here).
func TestShardedConcurrentLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	cfg := adept2.CheckpointConfig{Shards: 4, Every: 64, GroupCommit: true, Keep: 2}
	sys := openSharded(t, path, cfg)
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	insts := make([]string, workers)
	for i := range insts {
		inst, err := sys.CreateInstance("online_order")
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst.ID()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if err := sys.Suspend(insts[w]); err != nil {
					t.Error(err)
					return
				}
				if err := sys.Resume(insts[w]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Control commands race the data traffic through the exclusive
	// barrier.
	for i := 0; i < 4; i++ {
		if err := sys.AddUser(&adept2.User{ID: fmt.Sprintf("u%d", i), Roles: []string{"clerk"}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := sys.WaitCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Health(); err != nil {
		t.Fatal(err)
	}
	total := sys.JournalSeq()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	got := openSharded(t, path, cfg)
	defer got.Close()
	if got.JournalSeq() != total {
		t.Fatalf("journal total %d after reopen, want %d", got.JournalSeq(), total)
	}
	if len(got.Instances()) != workers {
		t.Fatalf("%d instances after reopen, want %d", len(got.Instances()), workers)
	}
	for _, id := range insts {
		inst, ok := got.Instance(id)
		if !ok || inst.Suspended() {
			t.Fatalf("instance %s state wrong after reopen", id)
		}
	}
	if _, ok := got.Org().User("u3"); !ok {
		t.Fatal("journaled user lost")
	}
}

// TestReshardRerunCompletesInterruptedShrink: a crash between the
// manifest commit and the stray-journal sweep of a shrinking reshard
// leaves a layout normal Open refuses; rerunning Reshard sweeps the
// strays (their records are covered by the committed generation) and
// finishes the job.
func TestReshardRerunCompletesInterruptedShrink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Keep copies of the upper shard journals, reshard down, then put
	// them back: exactly the state a crash after the manifest commit
	// leaves behind.
	l4 := sharded.Layout{Base: path, Shards: 4}
	saved := map[string][]byte{}
	for k := 2; k < 4; k++ {
		if blob, err := os.ReadFile(l4.JournalPath(k)); err == nil {
			saved[l4.JournalPath(k)] = blob
		}
	}
	if len(saved) == 0 {
		t.Skip("no instance hashed to a shard >= 2")
	}
	if err := adept2.Reshard(path, 2, adept2.WithOrg(sim.Org())); err != nil {
		t.Fatal(err)
	}
	for p, blob := range saved {
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := adept2.Open(path, adept2.WithOrg(sim.Org())); err == nil {
		t.Fatal("open must refuse the interrupted-shrink state")
	}
	if err := adept2.Reshard(path, 2, adept2.WithOrg(sim.Org())); err != nil {
		t.Fatalf("reshard rerun must complete the shrink: %v", err)
	}
	got, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	assertSameState(t, reference(t, true), got)
}

// TestReshardFloorRefusesFullReplay: after an N→M reshard the kept data-
// shard journals hold records partitioned under the OLD hash; if every
// generation snapshot is lost, recovery must refuse full replay (one
// instance's records may span two data shards, which the epoch merge
// cannot order) instead of replaying them nondeterministically.
func TestReshardFloorRefusesFullReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys := openSharded(t, path, shardedCfg())
	i1, _ := runPrefix(t, sys)
	runSuffix(t, sys, i1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := adept2.Reshard(path, 2, adept2.WithOrg(sim.Org())); err != nil {
		t.Fatal(err)
	}
	man, err := sharded.LoadManifest(sharded.ManifestPath(path))
	if err != nil || len(man.ReplayFloors) != 2 {
		t.Fatalf("manifest floors: %+v err=%v", man, err)
	}
	if man.ReplayFloors[1] == 0 {
		t.Skip("shard 1 held no pre-reshard records")
	}
	// Lose every generation part: recovery would otherwise fall back to
	// a full merged replay of mis-partitioned journals.
	l := sharded.Layout{Base: path, Shards: 2}
	for _, gen := range man.Generations {
		for k, part := range gen.Parts {
			if err := os.WriteFile(filepath.Join(l.SnapDir(k), part.File), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, err = adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err == nil || !strings.Contains(err.Error(), "floor") {
		t.Fatalf("expected reshard-floor refusal, got %v", err)
	}
}
