package storage

import (
	"fmt"

	"adept2/internal/model"
)

// Overlay is the substitution block of one biased instance: the minimal
// delta (added/removed nodes, edges, data elements, data edges) applied
// over an immutable base schema. It implements model.SchemaView and
// model.MutableView, so the engine, the verifier, and the compliance
// checker operate on it exactly as on a plain schema — without ever
// materializing a full copy.
type Overlay struct {
	base *model.Schema

	addedNodes   map[string]*model.Node
	addedNodeIDs []string
	removedNodes map[string]bool

	addedEdges    map[model.EdgeKey]*model.Edge
	addedEdgeList []*model.Edge
	removedEdges  map[model.EdgeKey]bool

	addedData    map[string]*model.DataElement
	addedDataIDs []string
	removedData  map[string]bool

	addedDataEdges    map[model.DataEdgeKey]*model.DataEdge
	addedDataEdgeList []*model.DataEdge
	removedDataEdges  map[model.DataEdgeKey]bool

	// lazily rebuilt caches
	dirty     bool
	nodeIDs   []string
	edgeList  []*model.Edge
	outCache  map[string][]*model.Edge
	inCache   map[string][]*model.Edge
	deOfCache map[string][]*model.DataEdge
	topo      *model.Topology
}

// NewOverlay creates an empty overlay over the base schema.
func NewOverlay(base *model.Schema) *Overlay {
	return &Overlay{
		base:             base,
		addedNodes:       make(map[string]*model.Node),
		removedNodes:     make(map[string]bool),
		addedEdges:       make(map[model.EdgeKey]*model.Edge),
		removedEdges:     make(map[model.EdgeKey]bool),
		addedData:        make(map[string]*model.DataElement),
		removedData:      make(map[string]bool),
		addedDataEdges:   make(map[model.DataEdgeKey]*model.DataEdge),
		removedDataEdges: make(map[model.DataEdgeKey]bool),
		dirty:            true,
	}
}

// Base returns the base schema the overlay substitutes into.
func (o *Overlay) Base() *model.Schema { return o.base }

// Rebase re-attaches the overlay delta to a different base schema (used
// when a biased instance migrates to a new schema version and its bias is
// re-applied there). The delta is validated against the new base by the
// caller (the migration manager re-applies the bias operations instead of
// blindly rebasing when validation is needed).
func (o *Overlay) Rebase(base *model.Schema) {
	o.base = base
	o.dirty = true
}

// IsEmpty reports whether the overlay holds no delta.
func (o *Overlay) IsEmpty() bool {
	return len(o.addedNodes) == 0 && len(o.removedNodes) == 0 &&
		len(o.addedEdges) == 0 && len(o.removedEdges) == 0 &&
		len(o.addedData) == 0 && len(o.removedData) == 0 &&
		len(o.addedDataEdges) == 0 && len(o.removedDataEdges) == 0
}

// --- SchemaView ---

// SchemaID implements model.SchemaView.
func (o *Overlay) SchemaID() string { return o.base.SchemaID() + "+bias" }

// TypeName implements model.SchemaView.
func (o *Overlay) TypeName() string { return o.base.TypeName() }

// Version implements model.SchemaView.
func (o *Overlay) Version() int { return o.base.Version() }

func (o *Overlay) refresh() {
	if !o.dirty {
		return
	}
	o.nodeIDs = o.nodeIDs[:0]
	for _, id := range o.base.NodeIDs() {
		if o.removedNodes[id] || o.addedNodes[id] != nil {
			continue
		}
		o.nodeIDs = append(o.nodeIDs, id)
	}
	o.nodeIDs = append(o.nodeIDs, o.addedNodeIDs...)

	o.edgeList = o.edgeList[:0]
	o.outCache = make(map[string][]*model.Edge)
	o.inCache = make(map[string][]*model.Edge)
	for _, e := range o.base.Edges() {
		k := e.Key()
		if o.removedEdges[k] || o.addedEdges[k] != nil {
			continue
		}
		o.edgeList = append(o.edgeList, e)
	}
	o.edgeList = append(o.edgeList, o.addedEdgeList...)
	for _, e := range o.edgeList {
		o.outCache[e.From] = append(o.outCache[e.From], e)
		o.inCache[e.To] = append(o.inCache[e.To], e)
	}

	o.deOfCache = make(map[string][]*model.DataEdge)
	for _, de := range o.allDataEdges() {
		o.deOfCache[de.Activity] = append(o.deOfCache[de.Activity], de)
	}
	o.topo = nil // rebuilt lazily by Topology against the fresh caches
	o.dirty = false
}

func (o *Overlay) allDataEdges() []*model.DataEdge {
	var out []*model.DataEdge
	for _, de := range o.base.DataEdges() {
		k := de.Key()
		if o.removedDataEdges[k] || o.addedDataEdges[k] != nil {
			continue
		}
		out = append(out, de)
	}
	return append(out, o.addedDataEdgeList...)
}

// NodeIDs implements model.SchemaView.
func (o *Overlay) NodeIDs() []string {
	o.refresh()
	return o.nodeIDs
}

// Node implements model.SchemaView.
func (o *Overlay) Node(id string) (*model.Node, bool) {
	if n, ok := o.addedNodes[id]; ok {
		return n, true
	}
	if o.removedNodes[id] {
		return nil, false
	}
	return o.base.Node(id)
}

// Edges implements model.SchemaView.
func (o *Overlay) Edges() []*model.Edge {
	o.refresh()
	return o.edgeList
}

// OutEdges implements model.SchemaView.
func (o *Overlay) OutEdges(id string) []*model.Edge {
	o.refresh()
	return o.outCache[id]
}

// InEdges implements model.SchemaView.
func (o *Overlay) InEdges(id string) []*model.Edge {
	o.refresh()
	return o.inCache[id]
}

// HasEdge implements model.SchemaView.
func (o *Overlay) HasEdge(k model.EdgeKey) bool {
	if o.addedEdges[k] != nil {
		return true
	}
	if o.removedEdges[k] {
		return false
	}
	return o.base.HasEdge(k)
}

// StartID implements model.SchemaView.
func (o *Overlay) StartID() string {
	if id := o.base.StartID(); id != "" && !o.removedNodes[id] {
		return id
	}
	for _, id := range o.addedNodeIDs {
		if o.addedNodes[id].Type == model.NodeStart {
			return id
		}
	}
	return ""
}

// EndID implements model.SchemaView.
func (o *Overlay) EndID() string {
	if id := o.base.EndID(); id != "" && !o.removedNodes[id] {
		return id
	}
	for _, id := range o.addedNodeIDs {
		if o.addedNodes[id].Type == model.NodeEnd {
			return id
		}
	}
	return ""
}

// DataElements implements model.SchemaView.
func (o *Overlay) DataElements() []*model.DataElement {
	var out []*model.DataElement
	for _, d := range o.base.DataElements() {
		if o.removedData[d.ID] || o.addedData[d.ID] != nil {
			continue
		}
		out = append(out, d)
	}
	for _, id := range o.addedDataIDs {
		out = append(out, o.addedData[id])
	}
	return out
}

// DataElement implements model.SchemaView.
func (o *Overlay) DataElement(id string) (*model.DataElement, bool) {
	if d, ok := o.addedData[id]; ok {
		return d, true
	}
	if o.removedData[id] {
		return nil, false
	}
	return o.base.DataElement(id)
}

// Topology implements model.SchemaView: the index is rebuilt together
// with the overlay's adjacency caches whenever the delta changed.
func (o *Overlay) Topology() *model.Topology {
	o.refresh()
	if o.topo == nil {
		o.topo = model.BuildTopology(o)
	}
	return o.topo
}

// DataEdges implements model.SchemaView.
func (o *Overlay) DataEdges() []*model.DataEdge { return o.allDataEdges() }

// DataEdgesOf implements model.SchemaView.
func (o *Overlay) DataEdgesOf(activity string) []*model.DataEdge {
	o.refresh()
	return o.deOfCache[activity]
}

// --- MutableView ---

// AddNode implements model.MutableView. Re-adding a node that was removed
// from the base is allowed (a moved activity keeps its identity).
func (o *Overlay) AddNode(n *model.Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("storage: overlay add node: empty node ID")
	}
	if _, visible := o.Node(n.ID); visible {
		return fmt.Errorf("storage: overlay add node %q: duplicate ID", n.ID)
	}
	switch n.Type {
	case model.NodeStart:
		if o.StartID() != "" {
			return fmt.Errorf("storage: overlay add node %q: start node already present", n.ID)
		}
	case model.NodeEnd:
		if o.EndID() != "" {
			return fmt.Errorf("storage: overlay add node %q: end node already present", n.ID)
		}
	}
	o.addedNodes[n.ID] = n
	o.addedNodeIDs = append(o.addedNodeIDs, n.ID)
	o.dirty = true
	return nil
}

// ReplaceNode implements model.MutableView: the replacement node shadows
// the base node in the overlay.
func (o *Overlay) ReplaceNode(n *model.Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("storage: overlay replace node: empty node ID")
	}
	old, ok := o.Node(n.ID)
	if !ok {
		return fmt.Errorf("storage: overlay replace node %q: not found", n.ID)
	}
	if old.Type != n.Type {
		return fmt.Errorf("storage: overlay replace node %q: type change %s -> %s not allowed", n.ID, old.Type, n.Type)
	}
	if _, added := o.addedNodes[n.ID]; added {
		o.addedNodes[n.ID] = n
		o.topo = nil // node attributes feed the topology's derived lists
		return nil
	}
	o.addedNodes[n.ID] = n
	o.addedNodeIDs = append(o.addedNodeIDs, n.ID)
	o.dirty = true
	return nil
}

// RemoveNode implements model.MutableView.
func (o *Overlay) RemoveNode(id string) error {
	if _, visible := o.Node(id); !visible {
		return fmt.Errorf("storage: overlay remove node %q: not found", id)
	}
	if len(o.OutEdges(id)) > 0 || len(o.InEdges(id)) > 0 {
		return fmt.Errorf("storage: overlay remove node %q: incident edges remain", id)
	}
	if len(o.DataEdgesOf(id)) > 0 {
		return fmt.Errorf("storage: overlay remove node %q: data edges remain", id)
	}
	if _, added := o.addedNodes[id]; added {
		delete(o.addedNodes, id)
		o.addedNodeIDs = removeString(o.addedNodeIDs, id)
		// If the base also has this node it must stay hidden.
		if _, inBase := o.base.Node(id); inBase {
			o.removedNodes[id] = true
		}
	} else {
		o.removedNodes[id] = true
	}
	o.dirty = true
	return nil
}

// AddEdge implements model.MutableView.
func (o *Overlay) AddEdge(e *model.Edge) error {
	if e == nil {
		return fmt.Errorf("storage: overlay add edge: nil edge")
	}
	if e.From == e.To {
		return fmt.Errorf("storage: overlay add edge %s: self edge", e)
	}
	if _, ok := o.Node(e.From); !ok {
		return fmt.Errorf("storage: overlay add edge %s: unknown source node %q", e, e.From)
	}
	if _, ok := o.Node(e.To); !ok {
		return fmt.Errorf("storage: overlay add edge %s: unknown target node %q", e, e.To)
	}
	if o.HasEdge(e.Key()) {
		return fmt.Errorf("storage: overlay add edge %s: duplicate edge", e)
	}
	o.addedEdges[e.Key()] = e
	o.addedEdgeList = append(o.addedEdgeList, e)
	o.dirty = true
	return nil
}

// RemoveEdge implements model.MutableView.
func (o *Overlay) RemoveEdge(k model.EdgeKey) error {
	if !o.HasEdge(k) {
		return fmt.Errorf("storage: overlay remove edge %s: not found", k)
	}
	if e, added := o.addedEdges[k]; added {
		delete(o.addedEdges, k)
		o.addedEdgeList = removeEdge(o.addedEdgeList, e)
		if o.base.HasEdge(k) {
			o.removedEdges[k] = true
		}
	} else {
		o.removedEdges[k] = true
	}
	o.dirty = true
	return nil
}

// AddDataElement implements model.MutableView.
func (o *Overlay) AddDataElement(d *model.DataElement) error {
	if d == nil || d.ID == "" {
		return fmt.Errorf("storage: overlay add data element: empty ID")
	}
	if _, visible := o.DataElement(d.ID); visible {
		return fmt.Errorf("storage: overlay add data element %q: duplicate ID", d.ID)
	}
	o.addedData[d.ID] = d
	o.addedDataIDs = append(o.addedDataIDs, d.ID)
	return nil
}

// RemoveDataElement implements model.MutableView.
func (o *Overlay) RemoveDataElement(id string) error {
	if _, visible := o.DataElement(id); !visible {
		return fmt.Errorf("storage: overlay remove data element %q: not found", id)
	}
	for _, de := range o.allDataEdges() {
		if de.Element == id {
			return fmt.Errorf("storage: overlay remove data element %q: data edge %s remains", id, de)
		}
	}
	if _, added := o.addedData[id]; added {
		delete(o.addedData, id)
		o.addedDataIDs = removeString(o.addedDataIDs, id)
		if _, inBase := o.base.DataElement(id); inBase {
			o.removedData[id] = true
		}
	} else {
		o.removedData[id] = true
	}
	return nil
}

// AddDataEdge implements model.MutableView.
func (o *Overlay) AddDataEdge(d *model.DataEdge) error {
	if d == nil {
		return fmt.Errorf("storage: overlay add data edge: nil edge")
	}
	if d.Parameter == "" {
		return fmt.Errorf("storage: overlay add data edge: empty parameter name")
	}
	if _, ok := o.Node(d.Activity); !ok {
		return fmt.Errorf("storage: overlay add data edge %s: unknown activity %q", d, d.Activity)
	}
	if _, ok := o.DataElement(d.Element); !ok {
		return fmt.Errorf("storage: overlay add data edge %s: unknown data element %q", d, d.Element)
	}
	k := d.Key()
	if o.hasDataEdge(k) {
		return fmt.Errorf("storage: overlay add data edge %s: duplicate edge", d)
	}
	o.addedDataEdges[k] = d
	o.addedDataEdgeList = append(o.addedDataEdgeList, d)
	o.dirty = true
	return nil
}

// RemoveDataEdge implements model.MutableView.
func (o *Overlay) RemoveDataEdge(k model.DataEdgeKey) error {
	if !o.hasDataEdge(k) {
		return fmt.Errorf("storage: overlay remove data edge %v: not found", k)
	}
	if de, added := o.addedDataEdges[k]; added {
		delete(o.addedDataEdges, k)
		o.addedDataEdgeList = removeDataEdge(o.addedDataEdgeList, de)
		if baseHasDataEdge(o.base, k) {
			o.removedDataEdges[k] = true
		}
	} else {
		o.removedDataEdges[k] = true
	}
	o.dirty = true
	return nil
}

func (o *Overlay) hasDataEdge(k model.DataEdgeKey) bool {
	if o.addedDataEdges[k] != nil {
		return true
	}
	if o.removedDataEdges[k] {
		return false
	}
	return baseHasDataEdge(o.base, k)
}

func baseHasDataEdge(s *model.Schema, k model.DataEdgeKey) bool {
	for _, de := range s.DataEdgesOf(k.Activity) {
		if de.Key() == k {
			return true
		}
	}
	return false
}

// Delta summarizes the substitution block for reports and storage
// accounting.
type Delta struct {
	AddedNodes       int
	RemovedNodes     int
	AddedEdges       int
	RemovedEdges     int
	AddedData        int
	RemovedData      int
	AddedDataEdges   int
	RemovedDataEdges int
}

// Delta returns the overlay's delta summary.
func (o *Overlay) Delta() Delta {
	return Delta{
		AddedNodes:       len(o.addedNodes),
		RemovedNodes:     len(o.removedNodes),
		AddedEdges:       len(o.addedEdges),
		RemovedEdges:     len(o.removedEdges),
		AddedData:        len(o.addedData),
		RemovedData:      len(o.removedData),
		AddedDataEdges:   len(o.addedDataEdges),
		RemovedDataEdges: len(o.removedDataEdges),
	}
}

// TouchedNodes returns the IDs of all nodes the delta touches (added,
// removed, or endpoints of added/removed edges); the minimal substitution
// block reported to users is the smallest block containing them.
func (o *Overlay) TouchedNodes() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range o.addedNodeIDs {
		add(id)
	}
	for id := range o.removedNodes {
		add(id)
	}
	for k := range o.addedEdges {
		add(k.From)
		add(k.To)
	}
	for k := range o.removedEdges {
		add(k.From)
		add(k.To)
	}
	return out
}

// ApproxBytes estimates the memory held by the substitution block (the
// delta only — the base schema is shared across all instances).
func (o *Overlay) ApproxBytes() int {
	total := 0
	for _, n := range o.addedNodes {
		total += 48 + len(n.ID) + len(n.Name) + len(n.Role) + len(n.Template) + len(n.DecisionElement)
	}
	for id := range o.removedNodes {
		total += len(id) + 16
	}
	for _, e := range o.addedEdges {
		total += 24 + len(e.From) + len(e.To)
	}
	for k := range o.removedEdges {
		total += 24 + len(k.From) + len(k.To)
	}
	for _, d := range o.addedData {
		total += 16 + len(d.ID) + len(d.Name)
	}
	for _, de := range o.addedDataEdges {
		total += 24 + len(de.Activity) + len(de.Element) + len(de.Parameter)
	}
	return total
}

// Materialize builds a standalone schema equal to the overlaid view; the
// FullCopy strategy and schema evolution use it.
func Materialize(v model.SchemaView, id, typeName string, version int) (*model.Schema, error) {
	s := model.NewSchema(id, typeName, version)
	for _, nid := range v.NodeIDs() {
		n, _ := v.Node(nid)
		if err := s.AddNode(n.Clone()); err != nil {
			return nil, err
		}
	}
	for _, e := range v.Edges() {
		if err := s.AddEdge(e.Clone()); err != nil {
			return nil, err
		}
	}
	for _, d := range v.DataElements() {
		if err := s.AddDataElement(d.Clone()); err != nil {
			return nil, err
		}
	}
	for _, de := range v.DataEdges() {
		if err := s.AddDataEdge(de.Clone()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func removeString(ss []string, s string) []string {
	for i, v := range ss {
		if v == s {
			return append(ss[:i], ss[i+1:]...)
		}
	}
	return ss
}

func removeEdge(es []*model.Edge, e *model.Edge) []*model.Edge {
	for i, v := range es {
		if v == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

func removeDataEdge(ds []*model.DataEdge, d *model.DataEdge) []*model.DataEdge {
	for i, v := range ds {
		if v == d {
			return append(ds[:i], ds[i+1:]...)
		}
	}
	return ds
}

var (
	_ model.SchemaView  = (*Overlay)(nil)
	_ model.MutableView = (*Overlay)(nil)
)
