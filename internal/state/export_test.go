package state

import (
	"reflect"
	"testing"

	"adept2/internal/model"
)

// chainSchema builds start -> a -> b -> end.
func chainSchema(t *testing.T, id string) *model.Schema {
	t.Helper()
	s := model.NewSchema(id, "t", 1)
	for _, n := range []*model.Node{
		{ID: "start", Name: "start", Type: model.NodeStart, Auto: true},
		{ID: "a", Name: "a", Type: model.NodeActivity, Role: "r"},
		{ID: "b", Name: "b", Type: model.NodeActivity, Role: "r"},
		{ID: "end", Name: "end", Type: model.NodeEnd, Auto: true},
	} {
		if err := s.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []*model.Edge{
		{From: "start", To: "a", Type: model.EdgeControl},
		{From: "a", To: "b", Type: model.EdgeControl},
		{From: "b", To: "end", Type: model.EdgeControl},
	} {
		if err := s.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestMarkingExportImportRoundTrip(t *testing.T) {
	s := chainSchema(t, "s1")
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	if err := m.Start("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(s, "a", -1); err != nil {
		t.Fatal(err)
	}
	Evaluate(s, m, 2)

	ex := m.Export()
	// Import against a freshly parsed clone of the schema: the topology is
	// rebuilt from scratch, so only the stable keys may be consulted.
	s2 := chainSchema(t, "s1")
	m2, err := ImportMarking(s2, ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"start", "a", "b", "end"} {
		if m.Node(id) != m2.Node(id) {
			t.Fatalf("node %s: %s != %s", id, m.Node(id), m2.Node(id))
		}
	}
	if m2.Node("b") != Activated {
		t.Fatalf("b = %s", m2.Node("b"))
	}
}

func TestImportMarkingRejectsForeignNodes(t *testing.T) {
	s := chainSchema(t, "s1")
	if _, err := ImportMarking(s, &MarkingExport{Nodes: []ExportedNode{{ID: "ghost", State: uint8(Completed)}}}); err == nil {
		t.Fatal("unknown node must be rejected")
	}
	if _, err := ImportMarking(s, &MarkingExport{Edges: []ExportedEdge{{From: "x", To: "y", State: uint8(TrueSignaled)}}}); err == nil {
		t.Fatal("unknown edge must be rejected")
	}
}

// TestRebindToMatchesRemap drives the pooled rebind across two topologies
// and checks it agrees with the allocating remap, including scratch reuse.
func TestRebindToMatchesRemap(t *testing.T) {
	src := chainSchema(t, "src")
	dst := chainSchema(t, "dst")
	if err := dst.AddNode(&model.Node{ID: "c", Name: "c", Type: model.NodeActivity, Role: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := dst.RemoveEdge(model.EdgeKey{From: "b", To: "end", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []*model.Edge{
		{From: "b", To: "c", Type: model.EdgeControl},
		{From: "c", To: "end", Type: model.EdgeControl},
	} {
		if err := dst.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}

	sc := &RemapScratch{}
	for iter := 0; iter < 3; iter++ { // iterations >0 exercise the recycled arrays
		mk := func() *Marking {
			m := NewMarking(src)
			m.Init(src)
			Evaluate(src, m, 1)
			if err := m.Start("a"); err != nil {
				t.Fatal(err)
			}
			if err := m.Complete(src, "a", -1); err != nil {
				t.Fatal(err)
			}
			return m
		}
		pooled, plain := mk(), mk()
		pooled.RebindTo(dst.Topology(), sc)
		plain.RebindTo(dst.Topology(), nil)
		if pooled.Topology() != dst.Topology() {
			t.Fatal("pooled rebind did not bind the target topology")
		}
		if !reflect.DeepEqual(pooled.nodes, plain.nodes) ||
			!reflect.DeepEqual(pooled.edges, plain.edges) ||
			!reflect.DeepEqual(pooled.skipSeq, plain.skipSeq) {
			t.Fatalf("iter %d: pooled rebind diverged from remap", iter)
		}
		// Both must evaluate identically afterwards.
		a1 := Evaluate(dst, pooled, 5)
		a2 := Evaluate(dst, plain, 5)
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("activations diverged: %v vs %v", a1, a2)
		}
	}
}
