// Package durable is the checkpointed durability subsystem layered on top
// of the command journal in internal/persist: it turns persistence from
// "append-one-fsync-one, replay-everything" into a write-ahead pipeline
// with group commit, background state snapshots, and snapshot + journal-
// suffix recovery. It is the substitute for the ADEPT2 prototype's
// RDBMS-backed storage layer at the scale the ROADMAP targets: bounded-
// time recovery is a precondition for adaptivity at scale (compare
// SmartPM's recovery-by-adaptation and the PMS robustness requirements in
// de Leoni's pervasive-scenario work).
//
// # Group commit
//
// Committer batches concurrent Append callers into one buffered write plus
// one fsync. Appends land in the journal's user-space buffer immediately
// (serialized by the journal lock, preserving sequence order); each caller
// then blocks until a flush covering its record completed. A single
// background flusher drains the batch: it waits up to the configured flush
// window (FlushWindow) for more callers to join — unless the pending batch
// already reached MaxBatch — then issues exactly one buffered write + one
// fsync for the whole batch and wakes every covered caller.
//
// Error semantics: a record is durable if and only if its Append (or the
// Wait on its receipt) returned nil. Flush failures do NOT immediately
// poison the pipeline — see the retry/wedge/heal state machine below.
//
// # Retry, wedge, heal
//
// The journal's group-commit mode keeps every not-yet-flushed record
// encoded in a user-space pending buffer, which makes a failed flush
// RETRYABLE without tripping over the fsync-gate problem (a failed fsync
// may silently drop the kernel's dirty pages, so re-fsyncing the same
// file descriptor proves nothing). A failed flush marks the physical
// tail dirty; the retry path never trusts kernel pages — it truncates
// the file back to the last fsync-covered offset, re-verifies the size,
// rewrites the pending records from user space, and fsyncs. The
// committer drives that retry with bounded exponential backoff
// (CommitterOptions.RetryBase doubling up to RetryCap, at most RetryMax
// retries per flush), so transient faults — a momentary ENOSPC, a
// hiccuping device — are absorbed invisibly (counted in Retries).
//
// Only when the budget is exhausted does the committer WEDGE: the error
// becomes sticky, every waiter (current and future) settles with it,
// and new appends are refused. The state machine per committer is
//
//	healthy --flush error--> retrying --success--> healthy
//	                            |
//	                            +--budget exhausted--> wedged --Heal--> healthy
//
// Wedging is deliberately not fatal: the facade degrades to READ-ONLY
// serving. The invariants of degraded mode are (a) reads, pagination,
// and health reporting keep working; (b) every submission path fails
// fast with ErrWedged BEFORE mutating the engine (Applied=false —
// nothing happened); (c) records accepted before the wedge are retained
// in the pending buffer, never dropped. Heal (Committer.Heal, WAL.Heal,
// System.Heal) restores full service in place: it re-opens the journal
// file, refuses if the file shrank below the durable offset (that is
// data loss, not a transient fault), truncates any unfsynced tail,
// swaps the handle, and re-flushes the retained records — so a
// wedge/heal cycle loses neither acknowledged nor accepted writes. If
// the fault persists, Heal fails (or the next flush re-wedges) and the
// system stays degraded; Heal is retryable.
//
// A failing background checkpoint, by contrast, never wedges: commands
// stay durable through the journal, so writes keep flowing while Health
// and HealthInfo surface the snapshot problem (and failed cleanup of
// stale snapshot files is merely counted — see CleanupErrs).
//
// # Snapshots
//
// SnapshotStore persists point-in-time captures of the full engine state
// (deployed schemas, per-instance markings/stats/histories/data/bias,
// worklists, org model — see Capture) as versioned, checksummed files in a
// snapshot directory, plus a MANIFEST.json tying each snapshot to the
// journal sequence number it covers. Snapshot files are written atomically:
// payload to a temporary file, fsync, rename into place, directory fsync,
// then the manifest is rewritten the same way. A torn snapshot or torn
// manifest therefore never destroys an older good one.
//
// Snapshot file layout (snap-<seq>.json):
//
//	{"format":1,"seq":N,"len":L,"crc32":C}\n   <- header line
//	<L bytes of SystemState JSON>              <- payload, CRC-32 (IEEE) = C
//
// # Recovery
//
// Recover loads the newest manifest-listed snapshot that (a) parses, (b)
// carries the supported format version, and (c) passes the length and
// checksum validation, restores it, and replays only the journal records
// past its sequence number. Invalid snapshots (torn tail, checksum
// mismatch, version skew, missing file) fall back to the next older one,
// and finally to a full journal replay — corruption degrades recovery
// time, never correctness. Two cases are hard errors instead of fallbacks:
// a snapshot sequence number ahead of the journal tail (the journal lost
// committed records — silently truncating history would forge state), and
// a compacted journal whose first record is past every usable snapshot
// (the prefix needed for replay is gone).
//
// Journal compaction (CompactJournal) rewrites the journal to the suffix
// not covered by a given snapshot; the persist readers accept journals
// starting past sequence 1, and recovery then requires that snapshot.
//
// # Sharding (internal/durable/sharded)
//
// The sharded subpackage partitions this pipeline across N journals:
// instances are hashed by instance ID onto shards (FNV-1a, baked into the
// layout), each shard owning its own journal, group-commit committer, and
// snapshot series. Its invariants:
//
//   - Control log. Shard 0 is the control log: schema deploys, org/user
//     records, and schema evolutions append there. The epoch — the shard-0
//     sequence number of the newest durable control record — is stamped
//     onto every data-shard record. The facade holds its snapshot barrier
//     EXCLUSIVELY around control commands, so a data record stamped with
//     epoch e provably executed after control record e and before the
//     first control record past e; recovery replays it in exactly that
//     window (data shards concurrently between control-record barriers).
//
//   - Epoch cut. A checkpoint captures every shard under one exclusive
//     barrier: one generation = one consistent cut at one epoch, recorded
//     in the global MANIFEST.json (written only after every part is
//     durable — it supersedes the advisory per-store manifests). Recovery
//     restores all parts of ONE generation, never mixing cuts: a control
//     change (an evolution migrates instances without touching their
//     shards' journals) between two cuts would otherwise be double- or
//     un-applied. A rejected part therefore degrades recovery to the
//     previous generation for every shard, and finally to a full merged
//     replay. Part files are epoch-qualified (snap-<seq>.e<epoch>.json)
//     so a quiescent shard's parts are not overwritten across cuts.
//
//   - Refusals. The single-journal hard errors hold per shard: a snapshot
//     past the journal tail (truncation), and a compacted shard journal
//     no usable generation reaches. Two sharded-specific conditions are
//     also hard refusals: a data record whose epoch lies past the control
//     log's tail (the control journal lost committed records), and shard
//     journals past the manifest's declared count holding records (shard
//     count mismatch — the partitioning function is authoritative).
//
//   - Single-shard compatibility. Shard 0's journal is the base path and
//     its snapshot directory the base's sibling, so a 1-shard layout is
//     byte-compatible with the pre-sharding layout; epoch stamps are
//     omitted there. Changing the shard count is an offline reshard
//     (adept2.Reshard): snapshot-all under the new hash, commit the new
//     global manifest, sweep the obsolete artifacts.
package durable
