// Package sim provides deterministic workload generation for tests,
// examples, and the experiment harness: the paper's online-order scenario
// (Fig. 1 / Fig. 3), randomized block-structured schemas, a random
// execution driver, and random ad-hoc changes. Everything is seeded
// explicitly, so experiments are reproducible.
package sim

import (
	"fmt"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/model"
	"adept2/internal/org"
)

// Org returns an organizational model covering the demo roles plus a pool
// of generic workers for random schemas.
func Org() *org.Model {
	m := org.NewModel()
	users := []*org.User{
		{ID: "ann", Name: "Ann", Roles: []string{"clerk", "sales", "worker"}},
		{ID: "bob", Name: "Bob", Roles: []string{"warehouse", "courier", "worker"}},
		{ID: "cyn", Name: "Cyn", Roles: []string{"clerk", "warehouse", "worker"}},
		{ID: "dan", Name: "Dan", Roles: []string{"sales", "courier", "worker"}},
	}
	for _, u := range users {
		if err := m.AddUser(u); err != nil {
			panic(fmt.Sprintf("sim: org setup: %v", err))
		}
	}
	return m
}

// OnlineOrder builds version 1 of the paper's online-order process
// (Fig. 1):
//
//	start -> get_order -> AND[ collect_data -> confirm_order |
//	                           compose_order -> pack_goods ] -> deliver_goods -> end
//
// with the order record written by get_order and read by both branches.
func OnlineOrder() *model.Schema {
	b := model.NewBuilder("online_order")
	b.DataElement("order", model.TypeString)
	get := b.Activity("get_order", "Get Order", model.WithRole("clerk"))
	branchA := b.Seq(
		b.Activity("collect_data", "Collect Data", model.WithRole("clerk")),
		b.Activity("confirm_order", "Confirm Order", model.WithRole("sales")),
	)
	branchB := b.Seq(
		b.Activity("compose_order", "Compose Order", model.WithRole("warehouse")),
		b.Activity("pack_goods", "Pack Goods", model.WithRole("warehouse")),
	)
	deliver := b.Activity("deliver_goods", "Deliver Goods", model.WithRole("courier"))
	b.Write("get_order", "order", "out")
	b.Read("confirm_order", "order", "in", true)
	b.Read("compose_order", "order", "in", true)
	s, err := b.Build(b.Seq(get, b.Parallel(branchA, branchB), deliver))
	if err != nil {
		panic(fmt.Sprintf("sim: online order schema: %v", err))
	}
	return s
}

// OnlineOrderTypeChange is the ΔT of Fig. 1: addActivity(send_questions)
// between compose_order and pack_goods plus insertSyncEdge(send_questions,
// confirm_order) — the customer must receive the questionnaire before the
// order is confirmed.
func OnlineOrderTypeChange() []change.Operation {
	return []change.Operation{
		&change.SerialInsert{
			Node: &model.Node{ID: "send_questions", Name: "Send Questions", Type: model.NodeActivity, Role: "sales", Template: "send_questions"},
			Pred: "compose_order",
			Succ: "pack_goods",
		},
		&change.InsertSyncEdge{From: "send_questions", To: "confirm_order"},
	}
}

// OnlineOrderBiasI2 is the ad-hoc bias of instance I2 in Fig. 1: a
// send_brochure activity before confirm_order plus a sync edge forcing
// composition to wait for confirmation. Together with ΔT this creates a
// deadlock-causing cycle — the structural conflict of the paper.
func OnlineOrderBiasI2() []change.Operation {
	return []change.Operation{
		&change.SerialInsert{
			Node: &model.Node{ID: "send_brochure", Name: "Send Brochure", Type: model.NodeActivity, Role: "sales", Template: "send_brochure"},
			Pred: "collect_data",
			Succ: "confirm_order",
		},
		&change.InsertSyncEdge{From: "confirm_order", To: "compose_order"},
	}
}

// AdvanceOnlineOrderToI1 brings a fresh online-order instance into the I1
// state of Fig. 1: get_order, collect_data, and compose_order completed;
// confirm_order and pack_goods activated but not started.
func AdvanceOnlineOrderToI1(e *engine.Engine, inst *engine.Instance) error {
	steps := []struct {
		node, user string
		out        map[string]any
	}{
		{"get_order", "ann", map[string]any{"out": "order-1"}},
		{"collect_data", "ann", nil},
		{"compose_order", "bob", nil},
	}
	for _, s := range steps {
		if err := e.CompleteActivity(inst.ID(), s.node, s.user, s.out); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceOnlineOrderToI3 brings a fresh instance into the I3 state of
// Fig. 1: the warehouse branch has already packed the goods, so the type
// change arrives too late (state conflict).
func AdvanceOnlineOrderToI3(e *engine.Engine, inst *engine.Instance) error {
	if err := AdvanceOnlineOrderToI1(e, inst); err != nil {
		return err
	}
	return e.CompleteActivity(inst.ID(), "pack_goods", "bob", nil)
}
