package vfs

import (
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory filesystem with an explicit crash model: every
// file tracks its live content and its synced content, every directory
// entry (name -> file) tracks whether it is durable, and Crash() reverts
// the whole filesystem to the durable view — exactly what a kernel
// losing its page cache would leave on disk.
//
// Durability rules (see doc.go for the rationale):
//
//   - File.Sync persists the file's content AND its directory entry
//     (the relaxed ext4-like model the journal relies on: a created-
//     then-fsynced file survives a crash without a directory fsync).
//   - FS.SyncDir persists the directory's current entry table: renames
//     and removes in it become durable, and entries of never-synced
//     files become durable with whatever content was last file-synced
//     (possibly none — an empty file, like a real crash).
//   - Directories themselves are durable on creation (simplification).
//
// MemFS is safe for concurrent use. After Crash(), handles opened
// before the crash return ErrStaleHandle on every operation — their
// goroutines (an abandoned committer's flusher) can never write into
// the post-crash state.
type MemFS struct {
	mu     sync.Mutex
	gen    int // bumped by Crash; handles of older generations are dead
	files  map[string]*memNode
	synced map[string]*memNode // durable entries: name -> inode
	dirs   map[string]bool
	sdirs  map[string]bool // durable directories
}

// memNode is one inode: live bytes and the bytes a crash preserves.
type memNode struct {
	data   []byte
	synced []byte
}

// ErrStaleHandle is returned by operations on handles that were open
// when Crash() was called.
var ErrStaleHandle = &fs.PathError{Op: "stale", Path: "", Err: fs.ErrClosed}

// NewMemFS returns an empty in-memory filesystem whose root ("/" and
// ".") exists.
func NewMemFS() *MemFS {
	return &MemFS{
		files:  make(map[string]*memNode),
		synced: make(map[string]*memNode),
		dirs:   map[string]bool{"/": true, ".": true},
		sdirs:  map[string]bool{"/": true, ".": true},
	}
}

// clean normalizes a path to the map key form.
func clean(name string) string { return path.Clean(name) }

// parent returns the directory a path lives in.
func parent(name string) string { return path.Dir(name) }

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

func exist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrExist}
}

// Crash discards everything that is not durable: file contents revert
// to their last-synced bytes, directory entries to the last durable
// entry table, and every open handle goes stale. The filesystem stays
// usable — recovery code opens it like a freshly mounted disk.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	// Rebuild from the durable view with fresh inodes so stale handles
	// (holding the old ones) cannot mutate the post-crash state.
	moved := make(map[*memNode]*memNode)
	files := make(map[string]*memNode, len(m.synced))
	synced := make(map[string]*memNode, len(m.synced))
	for name, n := range m.synced {
		nn, ok := moved[n]
		if !ok {
			nn = &memNode{
				data:   append([]byte(nil), n.synced...),
				synced: append([]byte(nil), n.synced...),
			}
			moved[n] = nn
		}
		files[name] = nn
		synced[name] = nn
	}
	m.files, m.synced = files, synced
	dirs := make(map[string]bool, len(m.sdirs))
	for d := range m.sdirs {
		dirs[d] = true
	}
	m.dirs = dirs
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	n, ok := m.files[p]
	switch {
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, exist("open", name)
	case !ok && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case !ok:
		if d := parent(p); !m.dirs[d] {
			return nil, notExist("open", name)
		}
		n = &memNode{}
		m.files[p] = n
	}
	if flag&os.O_TRUNC != 0 {
		n.data = nil
	}
	return &memFile{fs: m, gen: m.gen, node: n, path: p, flag: flag}, nil
}

// Rename implements FS. The durable view keeps the old binding until
// the directory is synced.
func (m *MemFS) Rename(oldname, newname string) error {
	po, pn := clean(oldname), clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[po]
	if !ok {
		return notExist("rename", oldname)
	}
	if d := parent(pn); !m.dirs[d] {
		return notExist("rename", newname)
	}
	delete(m.files, po)
	m.files[pn] = n
	return nil
}

// Remove implements FS. The durable view keeps the entry until the
// directory is synced.
func (m *MemFS) Remove(name string) error {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		for f := range m.files {
			if parent(f) == p {
				return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrInvalid}
			}
		}
		delete(m.dirs, p)
		delete(m.sdirs, p)
		return nil
	}
	if _, ok := m.files[p]; !ok {
		return notExist("remove", name)
	}
	delete(m.files, p)
	return nil
}

// RemoveAll implements FS. Subtree removal is treated as durable
// immediately (simplification: only offline maintenance uses it).
func (m *MemFS) RemoveAll(root string) error {
	p := clean(root)
	m.mu.Lock()
	defer m.mu.Unlock()
	pre := p + "/"
	for f := range m.files {
		if f == p || strings.HasPrefix(f, pre) {
			delete(m.files, f)
			delete(m.synced, f)
		}
	}
	for f := range m.synced {
		if f == p || strings.HasPrefix(f, pre) {
			delete(m.synced, f)
		}
	}
	for d := range m.dirs {
		if d == p || strings.HasPrefix(d, pre) {
			delete(m.dirs, d)
			delete(m.sdirs, d)
		}
	}
	return nil
}

// MkdirAll implements FS. Directories are durable on creation.
func (m *MemFS) MkdirAll(dir string, perm fs.FileMode) error {
	p := clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, isFile := m.files[p]; isFile {
		return &fs.PathError{Op: "mkdir", Path: dir, Err: fs.ErrExist}
	}
	for d := p; ; d = parent(d) {
		m.dirs[d] = true
		m.sdirs[d] = true
		if d == parent(d) || parent(d) == "." || parent(d) == "/" {
			break
		}
	}
	return nil
}

// ReadDir implements FS over the live view.
func (m *MemFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	p := clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[p] {
		return nil, notExist("readdir", dir)
	}
	var out []fs.DirEntry
	for f, n := range m.files {
		if parent(f) == p {
			out = append(out, memDirEntry{name: path.Base(f), size: int64(len(n.data))})
		}
	}
	for d := range m.dirs {
		if d != p && parent(d) == p {
			out = append(out, memDirEntry{name: path.Base(d), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		return memFileInfo{name: path.Base(p), dir: true}, nil
	}
	if n, ok := m.files[p]; ok {
		return memFileInfo{name: path.Base(p), size: int64(len(n.data))}, nil
	}
	return nil, notExist("stat", name)
}

// SyncDir implements FS: the directory's live entry table becomes the
// durable one. Contents stay at their last file-synced bytes.
func (m *MemFS) SyncDir(dir string) error {
	p := clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[p] {
		return notExist("syncdir", dir)
	}
	for f := range m.synced {
		if parent(f) == p {
			if _, live := m.files[f]; !live {
				delete(m.synced, f)
			}
		}
	}
	for f, n := range m.files {
		if parent(f) == p {
			m.synced[f] = n
		}
	}
	return nil
}

// SyncedContent returns the bytes of name a crash right now would
// preserve, and whether the name would survive at all (test inspection
// hook).
func (m *MemFS) SyncedContent(name string) ([]byte, bool) {
	p := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.synced[p]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), n.synced...), true
}

// memFile is one open handle.
type memFile struct {
	fs   *MemFS
	gen  int
	node *memNode
	path string
	flag int

	mu     sync.Mutex
	off    int64
	closed bool
}

// guard validates the handle against close and crash.
func (f *memFile) guard(op string) error {
	if f.closed {
		return &fs.PathError{Op: op, Path: f.path, Err: fs.ErrClosed}
	}
	if f.gen != f.fs.gen {
		return ErrStaleHandle
	}
	return nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.guard("read"); err != nil {
		return 0, err
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.guard("write"); err != nil {
		return 0, err
	}
	if f.flag&os.O_APPEND != 0 {
		f.off = int64(len(f.node.data))
	}
	if grow := f.off + int64(len(p)) - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	}
	copy(f.node.data[f.off:], p)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.guard("sync"); err != nil {
		return err
	}
	f.node.synced = append(f.node.synced[:0], f.node.data...)
	// Relaxed model: fsync of the file persists its current directory
	// entry too, provided the name still points at this inode.
	if f.fs.files[f.path] == f.node {
		f.fs.synced[f.path] = f.node
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.guard("truncate"); err != nil {
		return err
	}
	if size < 0 {
		return &fs.PathError{Op: "truncate", Path: f.path, Err: fs.ErrInvalid}
	}
	if grow := size - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	} else {
		f.node.data = f.node.data[:size]
	}
	return nil
}

func (f *memFile) Stat() (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.guard("stat"); err != nil {
		return nil, err
	}
	return memFileInfo{name: path.Base(f.path), size: int64(len(f.node.data))}, nil
}

func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return &fs.PathError{Op: "close", Path: f.path, Err: fs.ErrClosed}
	}
	f.closed = true
	return nil
}

func (f *memFile) Name() string { return f.path }

// memFileInfo implements fs.FileInfo.
type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }

// memDirEntry implements fs.DirEntry.
type memDirEntry struct {
	name string
	size int64
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}
