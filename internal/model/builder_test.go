package model

import (
	"strings"
	"testing"
)

func TestBuilderSequence(t *testing.T) {
	b := NewBuilder("demo")
	frag := b.Seq(b.Activity("a", "A"), b.Activity("c", "C"))
	s, err := b.Build(frag)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.StartID() == "" || s.EndID() == "" {
		t.Fatal("missing start/end")
	}
	if !s.HasEdge(EdgeKey{From: "a", To: "c", Type: EdgeControl}) {
		t.Fatal("sequence edge missing")
	}
	if !s.HasEdge(EdgeKey{From: "start", To: "a", Type: EdgeControl}) {
		t.Fatal("start wiring missing")
	}
	if !s.HasEdge(EdgeKey{From: "c", To: "end", Type: EdgeControl}) {
		t.Fatal("end wiring missing")
	}
}

func TestBuilderParallelAndChoice(t *testing.T) {
	b := NewBuilder("demo")
	b.DataElement("route", TypeInt)
	par := b.Parallel(b.Activity("p1", "P1"), b.Activity("p2", "P2"))
	choice := b.Choice("route", b.Activity("c1", "C1"), b.Empty())
	s, err := b.Build(b.Seq(par, choice))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var andSplits, xorSplits, nops int
	var xorSplitID string
	for _, n := range s.Nodes() {
		switch n.Type {
		case NodeANDSplit:
			andSplits++
		case NodeXORSplit:
			xorSplits++
			xorSplitID = n.ID
		case NodeActivity:
			if strings.HasPrefix(n.ID, "nop_") {
				nops++
				if !n.Auto {
					t.Error("empty branch activity must be automatic")
				}
			}
		}
	}
	if andSplits != 1 || xorSplits != 1 || nops != 1 {
		t.Fatalf("gateway counts: and=%d xor=%d nop=%d", andSplits, xorSplits, nops)
	}
	split, _ := s.Node(xorSplitID)
	if split.DecisionElement != "route" || !split.Auto {
		t.Fatalf("xor split config: %+v", split)
	}
	codes := map[int]bool{}
	for _, e := range OutControlEdges(s, xorSplitID) {
		codes[e.Code] = true
	}
	if !codes[0] || !codes[1] {
		t.Fatalf("xor branch codes missing: %v", codes)
	}
}

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder("demo")
	b.DataElement("again", TypeBool)
	loop := b.Loop(b.Activity("body", "Body"), "again", 5)
	s, err := b.Build(loop)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var loopEnd *Node
	for _, n := range s.Nodes() {
		if n.Type == NodeLoopEnd {
			loopEnd = n
		}
	}
	if loopEnd == nil {
		t.Fatal("loop end missing")
	}
	if loopEnd.MaxIterations != 5 || loopEnd.DecisionElement != "again" {
		t.Fatalf("loop end config: %+v", loopEnd)
	}
	var loopEdges int
	for _, e := range s.Edges() {
		if e.Type == EdgeLoop {
			loopEdges++
			if e.From != loopEnd.ID {
				t.Fatalf("loop edge source %q, want %q", e.From, loopEnd.ID)
			}
		}
	}
	if loopEdges != 1 {
		t.Fatalf("want 1 loop edge, got %d", loopEdges)
	}
}

func TestBuilderDataWiring(t *testing.T) {
	b := NewBuilder("demo")
	b.DataElement("order", TypeString)
	a := b.Activity("a", "A", WithRole("clerk"), WithTemplate("tmplA"), WithDuration(7))
	c := b.Activity("c", "C")
	b.Write("a", "order", "out")
	b.Read("c", "order", "in", true)
	s, err := b.Build(b.Seq(a, c))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	na, _ := s.Node("a")
	if na.Role != "clerk" || na.Template != "tmplA" || na.Duration != 7 {
		t.Fatalf("node options not applied: %+v", na)
	}
	des := s.DataEdgesOf("c")
	if len(des) != 1 || des[0].Access != Read || !des[0].Mandatory {
		t.Fatalf("data edges of c: %v", des)
	}
}

func TestBuilderSync(t *testing.T) {
	b := NewBuilder("demo")
	p := b.Parallel(
		b.Seq(b.Activity("a1", "A1"), b.Activity("a2", "A2")),
		b.Seq(b.Activity("b1", "B1"), b.Activity("b2", "B2")),
	)
	b.Sync("a1", "b2")
	s, err := b.Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if !s.HasEdge(EdgeKey{From: "a1", To: "b2", Type: EdgeSync}) {
		t.Fatal("sync edge missing")
	}
}

func TestBuilderErrorsAreSticky(t *testing.T) {
	b := NewBuilder("demo")
	f1 := b.Activity("a", "A")
	f2 := b.Activity("a", "dup") // duplicate ID -> sticky error
	if b.Err() == nil {
		t.Fatal("expected builder error")
	}
	if f2.valid {
		t.Fatal("fragment after error must be invalid")
	}
	// All further calls are no-ops and Build fails with the first error.
	b.Sync("a", "zz")
	b.DataElement("d", TypeInt)
	b.Read("a", "d", "p", false)
	b.Write("a", "d", "p")
	if _, err := b.Build(f1); err == nil {
		t.Fatal("build must return the sticky error")
	}
}

func TestBuilderInvalidCompositions(t *testing.T) {
	cases := []struct {
		name string
		run  func(b *Builder) Fragment
	}{
		{"empty seq", func(b *Builder) Fragment { return b.Seq() }},
		{"seq with invalid fragment", func(b *Builder) Fragment { return b.Seq(Fragment{}) }},
		{"parallel single branch", func(b *Builder) Fragment { return b.Parallel(b.Activity("a", "A")) }},
		{"parallel invalid branch", func(b *Builder) Fragment {
			return b.Parallel(b.Activity("a", "A"), Fragment{})
		}},
		{"choice single branch", func(b *Builder) Fragment { return b.Choice("", b.Activity("a", "A")) }},
		{"choice invalid branch", func(b *Builder) Fragment {
			return b.Choice("", b.Activity("a", "A"), Fragment{})
		}},
		{"loop invalid body", func(b *Builder) Fragment { return b.Loop(Fragment{}, "", 0) }},
	}
	for _, c := range cases {
		b := NewBuilder("demo")
		c.run(b)
		if b.Err() == nil {
			t.Errorf("%s: expected builder error", c.name)
		}
	}
	// Build with an invalid root.
	b := NewBuilder("demo")
	if _, err := b.Build(Fragment{}); err == nil {
		t.Error("build with invalid root must fail")
	}
}

func TestBuilderStartEndCollision(t *testing.T) {
	b := NewBuilder("demo")
	frag := b.Seq(b.Activity("start", "user start"), b.Activity("end", "user end"))
	s, err := b.Build(frag)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.StartID() != "__start" || s.EndID() != "__end" {
		t.Fatalf("collision handling failed: start=%q end=%q", s.StartID(), s.EndID())
	}
}

func TestVersionBuilder(t *testing.T) {
	b := NewVersionBuilder("demo", 3)
	s, err := b.Build(b.Activity("a", "A"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if s.Version() != 3 || s.SchemaID() != "demo@v3" {
		t.Fatalf("version metadata: %q v%d", s.SchemaID(), s.Version())
	}
}
