package adept2

import (
	"encoding/json"
	"fmt"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/org"
	"adept2/internal/persist"
	"adept2/internal/rollback"
	"adept2/internal/storage"
)

// System bundles the engine with the migration manager and an optional
// durable command journal. All state-changing methods are journaled before
// they execute, so Open can rebuild the exact system state after a crash
// by replaying the journal.
type System struct {
	eng     *engine.Engine
	mgr     *evolution.Manager
	journal *persist.Journal
}

// Option configures a System.
type Option func(*config)

type config struct {
	org      *org.Model
	strategy storage.Strategy
	journal  *persist.Journal
}

// WithOrg supplies a pre-populated organizational model.
func WithOrg(m *OrgModel) Option { return func(c *config) { c.org = m } }

// WithStorageStrategy selects the biased-instance representation.
func WithStorageStrategy(s StorageStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithJournal attaches a command journal for durability.
func WithJournal(j *persist.Journal) Option { return func(c *config) { c.journal = j } }

// New creates a System.
func New(opts ...Option) *System {
	var c config
	for _, o := range opts {
		o(&c)
	}
	e := engine.New(c.org)
	e.SetStorageStrategy(c.strategy)
	return &System{eng: e, mgr: evolution.NewManager(e), journal: c.journal}
}

// Open creates a System backed by a file journal at path, replaying any
// existing records first (crash recovery), then appending new commands.
func Open(path string, opts ...Option) (*System, error) {
	recs, err := persist.LoadJournal(path)
	if err != nil {
		return nil, err
	}
	sys := New(opts...)
	if err := persist.Replay(recs, sys.apply); err != nil {
		return nil, err
	}
	j, err := persist.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	sys.journal = j
	return sys, nil
}

// Close releases the journal (if any).
func (s *System) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// Engine exposes the underlying runtime (read paths, worklists).
func (s *System) Engine() *Engine { return s.eng }

// Org exposes the organizational model.
func (s *System) Org() *OrgModel { return s.eng.Org() }

// WorkItems returns the work items visible to a user.
func (s *System) WorkItems(user string) []*WorkItem { return s.eng.WorkItems(user) }

// Claim reserves a work item for a user.
func (s *System) Claim(itemID, user string) error { return s.eng.Claim(itemID, user) }

// Instance looks up an instance.
func (s *System) Instance(id string) (*Instance, bool) { return s.eng.Instance(id) }

// Instances returns all instances in creation order.
func (s *System) Instances() []*Instance { return s.eng.Instances() }

// --- journaled commands ---

type userArgs struct {
	User *org.User `json:"user"`
}

type deployArgs struct {
	Schema json.RawMessage `json:"schema"`
}

type createArgs struct {
	TypeName string `json:"type"`
	Version  int    `json:"version"`
}

type startArgs struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	User     string `json:"user,omitempty"`
}

type completeArgs struct {
	Instance string         `json:"instance"`
	Node     string         `json:"node"`
	User     string         `json:"user,omitempty"`
	Outputs  map[string]any `json:"outputs,omitempty"`
	Decision *int           `json:"decision,omitempty"`
	Again    *bool          `json:"again,omitempty"`
}

type adHocArgs struct {
	Instance string          `json:"instance"`
	Ops      json.RawMessage `json:"ops"`
}

type evolveArgs struct {
	TypeName string          `json:"type"`
	Ops      json.RawMessage `json:"ops"`
	Workers  int             `json:"workers,omitempty"`
	Mode     uint8           `json:"mode,omitempty"`
	Adapt    uint8           `json:"adapt,omitempty"`
}

func (s *System) log(op string, args any) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Append(op, args)
}

// AddUser registers a user in the organizational model (journaled, unlike
// direct Org() mutation).
func (s *System) AddUser(u *User) error {
	if err := s.eng.Org().AddUser(u); err != nil {
		return err
	}
	return s.log("user", userArgs{User: u})
}

// Deploy verifies and registers a schema version.
func (s *System) Deploy(schema *Schema) error {
	if err := s.eng.Deploy(schema); err != nil {
		return err
	}
	blob, err := json.Marshal(schema)
	if err != nil {
		return err
	}
	return s.log("deploy", deployArgs{Schema: blob})
}

// CreateInstance instantiates the latest version of a process type.
func (s *System) CreateInstance(typeName string) (*Instance, error) {
	return s.CreateInstanceVersion(typeName, 0)
}

// CreateInstanceVersion instantiates an explicit schema version (0 =
// latest).
func (s *System) CreateInstanceVersion(typeName string, version int) (*Instance, error) {
	inst, err := s.eng.CreateInstance(typeName, version)
	if err != nil {
		return nil, err
	}
	return inst, s.log("create", createArgs{TypeName: typeName, Version: version})
}

// Start starts an activated activity on behalf of a user.
func (s *System) Start(instID, node, user string) error {
	if err := s.eng.StartActivity(instID, node, user); err != nil {
		return err
	}
	return s.log("start", startArgs{Instance: instID, Node: node, User: user})
}

// Complete completes a node (starting it first when merely activated).
func (s *System) Complete(instID, node, user string, outputs map[string]any) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs})
}

// CompleteWithDecision completes an XOR split with an explicit routing
// decision.
func (s *System) CompleteWithDecision(instID, node, user string, outputs map[string]any, decision int) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs, Decision: &decision})
}

// CompleteLoop completes a loop end with an explicit iteration decision.
func (s *System) CompleteLoop(instID, node, user string, outputs map[string]any, again bool) error {
	return s.complete(completeArgs{Instance: instID, Node: node, User: user, Outputs: outputs, Again: &again})
}

func (s *System) complete(a completeArgs) error {
	var opts []engine.CompleteOption
	if a.Decision != nil {
		opts = append(opts, engine.WithDecision(*a.Decision))
	}
	if a.Again != nil {
		opts = append(opts, engine.WithLoopAgain(*a.Again))
	}
	if err := s.eng.CompleteActivity(a.Instance, a.Node, a.User, a.Outputs, opts...); err != nil {
		return err
	}
	return s.log("complete", a)
}

// AdHocChange applies an ad-hoc change to a single running instance (the
// paper's instance-level change dimension).
func (s *System) AdHocChange(instID string, ops ...Operation) error {
	inst, ok := s.eng.Instance(instID)
	if !ok {
		return fmt.Errorf("adept2: unknown instance %q", instID)
	}
	if err := change.ApplyAdHoc(inst, ops...); err != nil {
		return err
	}
	blob, err := change.MarshalOps(ops)
	if err != nil {
		return err
	}
	return s.log("adhoc", adHocArgs{Instance: instID, Ops: blob})
}

type undoArgs struct {
	Instance string `json:"instance"`
	All      bool   `json:"all,omitempty"`
}

type suspendArgs struct {
	Instance string `json:"instance"`
	Resume   bool   `json:"resume,omitempty"`
}

// Suspend blocks user operations on an instance; ad-hoc changes and
// migration stay possible.
func (s *System) Suspend(instID string) error {
	if err := s.eng.Suspend(instID); err != nil {
		return err
	}
	return s.log("suspend", suspendArgs{Instance: instID})
}

// Resume re-enables user operations on a suspended instance.
func (s *System) Resume(instID string) error {
	if err := s.eng.Resume(instID); err != nil {
		return err
	}
	return s.log("suspend", suspendArgs{Instance: instID, Resume: true})
}

// UndoAdHocChange removes the most recent ad-hoc change of the instance,
// provided it has not progressed into the changed region.
func (s *System) UndoAdHocChange(instID string) error {
	return s.undo(instID, false)
}

// UndoAllAdHocChanges returns the instance to its plain schema version.
func (s *System) UndoAllAdHocChanges(instID string) error {
	return s.undo(instID, true)
}

func (s *System) undo(instID string, all bool) error {
	inst, ok := s.eng.Instance(instID)
	if !ok {
		return fmt.Errorf("adept2: unknown instance %q", instID)
	}
	var err error
	if all {
		err = rollback.UndoAll(inst)
	} else {
		err = rollback.UndoLast(inst)
	}
	if err != nil {
		return err
	}
	return s.log("undo", undoArgs{Instance: instID, All: all})
}

// Evolve performs a schema evolution of the process type and migrates all
// compliant instances on the fly (the paper's type-level change
// dimension). The returned report classifies every instance.
func (s *System) Evolve(typeName string, ops []Operation, opts EvolveOptions) (*MigrationReport, error) {
	report, err := s.mgr.Evolve(typeName, ops, opts)
	if err != nil {
		return nil, err
	}
	blob, merr := change.MarshalOps(ops)
	if merr != nil {
		return report, merr
	}
	return report, s.log("evolve", evolveArgs{
		TypeName: typeName,
		Ops:      blob,
		Workers:  opts.Workers,
		Mode:     uint8(opts.Mode),
		Adapt:    uint8(opts.Adapt),
	})
}

// apply replays one journaled command (crash recovery).
func (s *System) apply(op string, args json.RawMessage) error {
	switch op {
	case "user":
		var a userArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		return s.eng.Org().AddUser(a.User)
	case "deploy":
		var a deployArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		var schema model.Schema
		if err := json.Unmarshal(a.Schema, &schema); err != nil {
			return err
		}
		return s.eng.Deploy(&schema)
	case "create":
		var a createArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		_, err := s.eng.CreateInstance(a.TypeName, a.Version)
		return err
	case "start":
		var a startArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		return s.eng.StartActivity(a.Instance, a.Node, a.User)
	case "complete":
		var a completeArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		var opts []engine.CompleteOption
		if a.Decision != nil {
			opts = append(opts, engine.WithDecision(*a.Decision))
		}
		if a.Again != nil {
			opts = append(opts, engine.WithLoopAgain(*a.Again))
		}
		return s.eng.CompleteActivity(a.Instance, a.Node, a.User, a.Outputs, opts...)
	case "adhoc":
		var a adHocArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		ops, err := change.UnmarshalOps(a.Ops)
		if err != nil {
			return err
		}
		inst, ok := s.eng.Instance(a.Instance)
		if !ok {
			return fmt.Errorf("adept2: replay adhoc: unknown instance %q", a.Instance)
		}
		return change.ApplyAdHoc(inst, ops...)
	case "suspend":
		var a suspendArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		if a.Resume {
			return s.eng.Resume(a.Instance)
		}
		return s.eng.Suspend(a.Instance)
	case "undo":
		var a undoArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		inst, ok := s.eng.Instance(a.Instance)
		if !ok {
			return fmt.Errorf("adept2: replay undo: unknown instance %q", a.Instance)
		}
		if a.All {
			return rollback.UndoAll(inst)
		}
		return rollback.UndoLast(inst)
	case "evolve":
		var a evolveArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return err
		}
		ops, err := change.UnmarshalOps(a.Ops)
		if err != nil {
			return err
		}
		_, err = s.mgr.Evolve(a.TypeName, ops, evolution.Options{
			Workers: a.Workers,
			Mode:    evolution.CheckMode(a.Mode),
			Adapt:   evolution.AdaptMode(a.Adapt),
		})
		return err
	default:
		return fmt.Errorf("adept2: unknown journal op %q", op)
	}
}
