package state

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adept2/internal/graph"
	"adept2/internal/model"
	"adept2/internal/storage"
)

// The tests in this file pin the tentpole invariant of the interned
// incremental evaluator: array-indexed edge-driven propagation
// (Evaluate/Adapt on the dense Marking) produces markings identical —
// node states, edge signals, and skip stamps — to the retained
// string-keyed global-fixpoint reference (refMarking/refFixpoint below),
// event for event, on randomized schemas with XOR/AND blocks, loops, and
// sync edges, across random event prefixes and biased overlay views.

// --- string-keyed reference implementation -------------------------------
//
// refMarking is the historical map-based marking with the global fixpoint
// evaluator — the implementation the interned marking replaced. It is
// retained here, in full, as the semantic ground truth.

type refMarking struct {
	nodes   map[string]NodeState
	edges   map[model.EdgeKey]EdgeState
	skipSeq map[string]int
}

func newRefMarking() *refMarking {
	return &refMarking{
		nodes:   make(map[string]NodeState),
		edges:   make(map[model.EdgeKey]EdgeState),
		skipSeq: make(map[string]int),
	}
}

func (m *refMarking) node(id string) NodeState         { return m.nodes[id] }
func (m *refMarking) edge(k model.EdgeKey) EdgeState   { return m.edges[k] }

func (m *refMarking) setNode(id string, s NodeState) {
	if s == NotActivated {
		delete(m.nodes, id)
		return
	}
	m.nodes[id] = s
}

func (m *refMarking) setEdge(k model.EdgeKey, s EdgeState) {
	if s == NotSignaled {
		delete(m.edges, k)
		return
	}
	m.edges[k] = s
}

func (m *refMarking) init(v model.SchemaView) {
	start := v.StartID()
	if start == "" {
		return
	}
	m.setNode(start, Completed)
	for _, e := range v.OutEdges(start) {
		if e.Type != model.EdgeLoop {
			m.setEdge(e.Key(), TrueSignaled)
		}
	}
}

func (m *refMarking) start(id string) error {
	if got := m.node(id); got != Activated {
		return fmt.Errorf("ref: start %q: node is %s", id, got)
	}
	m.setNode(id, Running)
	return nil
}

func (m *refMarking) complete(v model.SchemaView, id string, decision int) error {
	if got := m.node(id); got != Running {
		return fmt.Errorf("ref: complete %q: node is %s", id, got)
	}
	n, ok := v.Node(id)
	if !ok {
		return fmt.Errorf("ref: complete %q: not in schema", id)
	}
	m.setNode(id, Completed)
	for _, e := range v.OutEdges(id) {
		switch e.Type {
		case model.EdgeControl:
			if n.Type == model.NodeXORSplit && e.Code != decision {
				m.setEdge(e.Key(), FalseSignaled)
			} else {
				m.setEdge(e.Key(), TrueSignaled)
			}
		case model.EdgeSync:
			m.setEdge(e.Key(), TrueSignaled)
		}
	}
	return nil
}

func (m *refMarking) skip(v model.SchemaView, id string, seq int) {
	m.setNode(id, Skipped)
	if _, dup := m.skipSeq[id]; !dup {
		m.skipSeq[id] = seq
	}
	for _, e := range v.OutEdges(id) {
		if e.Type == model.EdgeLoop {
			continue
		}
		m.setEdge(e.Key(), FalseSignaled)
	}
}

// refFixpoint rescans every node of the view until quiescence — the
// historical global fixpoint evaluation.
func refFixpoint(v model.SchemaView, m *refMarking, seq int) []string {
	var activated []string
	for {
		changed := false
		for _, id := range v.NodeIDs() {
			if m.node(id) != NotActivated {
				continue
			}
			n, _ := v.Node(id)
			if n.Type == model.NodeStart {
				continue
			}
			inC := model.InControlEdges(v, id)
			if len(inC) == 0 {
				continue
			}
			trueC, falseC := 0, 0
			for _, e := range inC {
				switch m.edge(e.Key()) {
				case TrueSignaled:
					trueC++
				case FalseSignaled:
					falseC++
				}
			}
			syncReady := true
			for _, e := range v.InEdges(id) {
				if e.Type == model.EdgeSync && m.edge(e.Key()) == NotSignaled {
					syncReady = false
					break
				}
			}

			switch n.Type {
			case model.NodeXORJoin:
				switch {
				case trueC == 1 && trueC+falseC == len(inC) && syncReady:
					m.setNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC == len(inC):
					m.skip(v, id, seq)
					changed = true
				}
			case model.NodeANDJoin:
				switch {
				case trueC == len(inC) && syncReady:
					m.setNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC == len(inC):
					m.skip(v, id, seq)
					changed = true
				}
			default:
				switch {
				case trueC == len(inC) && syncReady:
					m.setNode(id, Activated)
					activated = append(activated, id)
					changed = true
				case falseC > 0:
					m.skip(v, id, seq)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return activated
}

// refAdaptCore mirrors adaptCore on the string-keyed marking.
func refAdaptCore(v model.SchemaView, m *refMarking, decisions map[string]int) {
	for _, id := range v.NodeIDs() {
		switch m.node(id) {
		case Activated, Skipped:
			m.setNode(id, NotActivated)
		}
	}
	for id := range m.nodes {
		if _, ok := v.Node(id); !ok {
			delete(m.nodes, id)
			delete(m.skipSeq, id)
		}
	}
	clear(m.edges)
	m.init(v)
	start := v.StartID()
	for _, id := range v.NodeIDs() {
		if m.node(id) != Completed || id == start {
			continue
		}
		n, _ := v.Node(id)
		for _, e := range v.OutEdges(id) {
			switch e.Type {
			case model.EdgeControl:
				if n.Type == model.NodeXORSplit && e.Code != decisions[id] {
					m.setEdge(e.Key(), FalseSignaled)
				} else {
					m.setEdge(e.Key(), TrueSignaled)
				}
			case model.EdgeSync:
				m.setEdge(e.Key(), TrueSignaled)
			}
		}
	}
}

// refAdapt composes refAdaptCore with the fixpoint and the skip-stamp
// pruning, mirroring Adapt.
func refAdapt(v model.SchemaView, m *refMarking, decisions map[string]int, seq int) []string {
	refAdaptCore(v, m, decisions)
	activated := refFixpoint(v, m, seq)
	for id := range m.skipSeq {
		if m.node(id) != Skipped {
			delete(m.skipSeq, id)
		}
	}
	return activated
}

// refResetLoop mirrors ResetLoop on the string-keyed marking.
func refResetLoop(v model.SchemaView, m *refMarking, region map[string]bool) {
	for id := range region {
		m.setNode(id, NotActivated)
		delete(m.skipSeq, id)
		for _, e := range v.OutEdges(id) {
			if region[e.To] {
				m.setEdge(e.Key(), NotSignaled)
			}
		}
	}
}

// --- generator and harness ----------------------------------------------

// richFrag is a generated fragment plus the activity IDs inside it, so the
// generator can attach sync edges across parallel branches.
type richFrag struct {
	frag model.Fragment
	acts []string
}

// genRichSchema builds a random block-structured schema featuring
// sequences, parallel and conditional blocks, do-while loops, and sync
// edges between sibling parallel branches.
func genRichSchema(rng *rand.Rand, name string) *model.Schema {
	b := model.NewBuilder(name)
	seq := 0
	newAct := func() richFrag {
		seq++
		id := fmt.Sprintf("a%d", seq)
		return richFrag{frag: b.Activity(id, "A", model.WithRole("r")), acts: []string{id}}
	}
	var gen func(depth int) richFrag
	gen = func(depth int) richFrag {
		if depth <= 0 {
			return newAct()
		}
		switch rng.Intn(5) {
		case 0:
			return newAct()
		case 1: // sequence
			l, r := gen(depth-1), gen(depth-1)
			return richFrag{
				frag: b.Seq(l.frag, r.frag),
				acts: append(l.acts, r.acts...),
			}
		case 2: // parallel, optionally with one cross-branch sync edge
			l, r := gen(depth-1), gen(depth-1)
			f := b.Parallel(l.frag, r.frag)
			if len(l.acts) > 0 && len(r.acts) > 0 && rng.Intn(2) == 0 {
				from := l.acts[rng.Intn(len(l.acts))]
				to := r.acts[rng.Intn(len(r.acts))]
				b.Sync(from, to)
			}
			return richFrag{frag: f, acts: append(l.acts, r.acts...)}
		case 3: // conditional
			l, r := gen(depth-1), gen(depth-1)
			return richFrag{
				frag: b.Choice("", l.frag, r.frag),
				acts: append(l.acts, r.acts...),
			}
		default: // do-while loop
			body := gen(depth - 1)
			return richFrag{frag: b.Loop(body.frag, "", 0), acts: body.acts}
		}
	}
	root := gen(3)
	s, err := b.Build(root.frag)
	if err != nil {
		panic(err)
	}
	return s
}

// markingsIdentical compares the interned marking against the string-keyed
// reference exhaustively over a view: node states, edge signals, and skip
// stamps.
func markingsIdentical(v model.SchemaView, a *Marking, b *refMarking) bool {
	for _, id := range v.NodeIDs() {
		if a.Node(id) != b.node(id) || a.SkipSeq(id) != b.skipSeq[id] {
			return false
		}
	}
	for _, e := range v.Edges() {
		if a.Edge(e.Key()) != b.edge(e.Key()) {
			return false
		}
	}
	return true
}

// refNodesInState mirrors Marking.NodesInState for the reference.
func refNodesInState(m *refMarking, s NodeState) []string {
	var ids []string
	for id, ns := range m.nodes {
		if ns == s {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

func sortedCopy(ids []string) []string {
	c := append([]string(nil), ids...)
	sort.Strings(c)
	return c
}

func sameSet(a, b []string) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dualRun drives one random partial execution on two markings in lockstep:
// mInc (interned, array-indexed) evolves through the incremental Evaluate,
// mRef (string-keyed) through the global fixpoint reference. It fails the
// test at the first divergence and returns the final state plus the XOR
// decision record.
func dualRun(t *testing.T, rng *rand.Rand, v model.SchemaView, info *graph.Info) (mInc *Marking, mRef *refMarking, decisions map[string]int) {
	t.Helper()
	mInc, mRef = NewMarking(v), newRefMarking()
	mInc.Init(v)
	mRef.init(v)
	actInc := Evaluate(v, mInc, 1)
	actRef := refFixpoint(v, mRef, 1)
	if !sameSet(actInc, actRef) {
		t.Fatalf("init activation sets diverge: inc=%v ref=%v", actInc, actRef)
	}
	decisions = map[string]int{}
	loopIters := map[string]int{}

	for step := 0; step < 60; step++ {
		enabled := mInc.NodesInState(Activated)
		if !sameSet(enabled, refNodesInState(mRef, Activated)) {
			t.Fatalf("step %d: enabled sets diverge: inc=%v ref=%v", step, enabled, refNodesInState(mRef, Activated))
		}
		if len(enabled) == 0 {
			break
		}
		id := enabled[rng.Intn(len(enabled))]
		if err := mInc.Start(id); err != nil {
			t.Fatalf("step %d: start inc: %v", step, err)
		}
		if err := mRef.start(id); err != nil {
			t.Fatalf("step %d: start ref: %v", step, err)
		}
		node, _ := v.Node(id)
		dec := -1
		if node.Type == model.NodeXORSplit {
			outs := model.OutControlEdges(v, id)
			dec = outs[rng.Intn(len(outs))].Code
			decisions[id] = dec
		}
		seq := step + 2
		if node.Type == model.NodeLoopEnd && loopIters[id] < 1 && rng.Intn(2) == 0 {
			// Iterate the loop once: both markings are completed and reset
			// identically, exercising the worklist seeding of ResetLoop.
			loopIters[id]++
			blk, ok := info.ByJoin(id)
			if !ok {
				t.Fatalf("loop end %s has no block", id)
			}
			// The engine resets without completing (the iterating
			// completion only exists in the history); mirror that.
			region := blk.Region()
			ResetLoop(v, mInc, region)
			refResetLoop(v, mRef, region)
			for n := range region {
				delete(decisions, n)
			}
		} else {
			if err := mInc.Complete(v, id, dec); err != nil {
				t.Fatalf("step %d: complete inc: %v", step, err)
			}
			if err := mRef.complete(v, id, dec); err != nil {
				t.Fatalf("step %d: complete ref: %v", step, err)
			}
		}
		actInc = Evaluate(v, mInc, seq)
		actRef = refFixpoint(v, mRef, seq)
		if !sameSet(actInc, actRef) {
			t.Fatalf("step %d: activation sets diverge: inc=%v ref=%v", step, actInc, actRef)
		}
		if !markingsIdentical(v, mInc, mRef) {
			t.Fatalf("step %d: markings diverge after completing %s", step, id)
		}
	}
	return mInc, mRef, decisions
}

// TestIncrementalMatchesFixpoint: on random schemas and random event
// prefixes, the interned incremental propagation and the string-keyed
// global fixpoint produce identical markings after every single event.
func TestIncrementalMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		info, err := graph.Analyze(s)
		if err != nil {
			panic(err)
		}
		mInc, mRef, _ := dualRun(t, rng, s, info)
		return markingsIdentical(s, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptMatchesFixpoint: state adaptation through the interned
// incremental evaluator equals the adaptation closed by the string-keyed
// fixpoint reference, on the unchanged schema (identity adaptation) after
// a random prefix.
func TestAdaptMatchesFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		info, err := graph.Analyze(s)
		if err != nil {
			panic(err)
		}
		mInc, mRef, decisions := dualRun(t, rng, s, info)
		before := mInc.Clone()

		actInc := Adapt(s, mInc, decisions, 99)
		actRef := refAdapt(s, mRef, decisions, 99)
		if !sameSet(actInc, actRef) {
			t.Fatalf("adapt activation sets diverge: inc=%v ref=%v", actInc, actRef)
		}
		// Identity adaptation must also reproduce the pre-adapt marking
		// (modulo skip stamps, which Adapt re-stamps with the adapt seq).
		for _, id := range s.NodeIDs() {
			if before.Node(id) != mInc.Node(id) {
				t.Fatalf("identity adaptation changed node %s: %s -> %s", id, before.Node(id), mInc.Node(id))
			}
		}
		return markingsIdentical(s, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// biasOverlay applies the canonical ad-hoc change — a serial insert of an
// automatic activity splitting a random control edge — to a fresh overlay
// over the base schema.
func biasOverlay(rng *rand.Rand, base *model.Schema, nodeID string) *storage.Overlay {
	ov := storage.NewOverlay(base)
	biasInto(rng, ov, nodeID)
	return ov
}

// biasInto performs the same serial insert on an existing mutable view.
func biasInto(rng *rand.Rand, ov model.MutableView, nodeID string) {
	var ctrl []*model.Edge
	for _, e := range ov.Edges() {
		if e.Type == model.EdgeControl {
			ctrl = append(ctrl, e)
		}
	}
	split := ctrl[rng.Intn(len(ctrl))]
	ins := &model.Node{ID: nodeID, Name: nodeID, Type: model.NodeActivity, Auto: true, Template: nodeID}
	if err := ov.RemoveEdge(split.Key()); err != nil {
		panic(err)
	}
	if err := ov.AddNode(ins); err != nil {
		panic(err)
	}
	if err := ov.AddEdge(&model.Edge{From: split.From, To: ins.ID, Type: model.EdgeControl, Code: split.Code}); err != nil {
		panic(err)
	}
	if err := ov.AddEdge(&model.Edge{From: ins.ID, To: split.To, Type: model.EdgeControl}); err != nil {
		panic(err)
	}
}

// TestAdaptMatchesFixpointOnBiasedOverlay: after a random prefix, the view
// is biased through a storage overlay (a serial insert of an automatic
// activity splitting a random control edge, the canonical ad-hoc change),
// and both adaptation paths must agree on the overlaid view. For the
// interned marking this exercises the index remap across the bias refresh:
// the marking was bound to the base topology and must carry its state onto
// the overlay's re-interned node set.
func TestAdaptMatchesFixpointOnBiasedOverlay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := genRichSchema(rng, "p")
		info, err := graph.Analyze(base)
		if err != nil {
			panic(err)
		}
		mInc, mRef, decisions := dualRun(t, rng, base, info)

		ov := biasOverlay(rng, base, "bias_x")

		actInc := Adapt(ov, mInc, decisions, 99)
		actRef := refAdapt(ov, mRef, decisions, 99)
		if !sameSet(actInc, actRef) {
			t.Fatalf("biased adapt activation sets diverge: inc=%v ref=%v", actInc, actRef)
		}
		return markingsIdentical(ov, mInc, mRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayRemapStability: bias refreshes re-intern the node set, and
// the marking must remap so that all per-ID states (node states, skip
// stamps, edge signals) survive unchanged across one — and a second —
// refresh, while the bound topology follows the view. This pins the
// index-validity-window rule documented in internal/model/doc.go.
func TestOverlayRemapStability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := genRichSchema(rng, "p")
		info, err := graph.Analyze(base)
		if err != nil {
			panic(err)
		}
		m, _, _ := dualRun(t, rng, base, info)

		// Snapshot the pre-refresh state by identity.
		type snap struct {
			state NodeState
			skip  int
		}
		nodeSnap := make(map[string]snap)
		for _, id := range base.NodeIDs() {
			nodeSnap[id] = snap{m.Node(id), m.SkipSeq(id)}
		}
		edgeSnap := make(map[model.EdgeKey]EdgeState)
		for _, e := range base.Edges() {
			edgeSnap[e.Key()] = m.Edge(e.Key())
		}

		ov := biasOverlay(rng, base, "bias_x")
		topo1 := ov.Topology()
		// The first view-taking entry point re-binds the marking. The
		// pending worklist is empty (dualRun left a fixpoint), so this
		// Evaluate changes nothing — it only triggers the remap.
		Evaluate(ov, m, 99)
		if m.Topology() != topo1 {
			t.Fatalf("marking not rebound to overlay topology")
		}
		for id, want := range nodeSnap {
			if m.Node(id) != want.state || m.SkipSeq(id) != want.skip {
				t.Fatalf("node %s changed across remap: %s/%d -> %s/%d",
					id, want.state, want.skip, m.Node(id), m.SkipSeq(id))
			}
		}
		for k, want := range edgeSnap {
			if _, ok := topo1.EdgeIdxOf(k); !ok {
				continue // edge split away by the insert
			}
			if m.Edge(k) != want {
				t.Fatalf("edge %s changed across remap: %s -> %s", k, want, m.Edge(k))
			}
		}
		// The inserted node is interned and addressable after the refresh.
		if _, ok := topo1.Idx("bias_x"); !ok {
			t.Fatalf("inserted node not interned")
		}
		if m.Node("bias_x") != NotActivated {
			t.Fatalf("inserted node should start not-activated, is %s", m.Node("bias_x"))
		}

		// A second refresh (another insert) must remap again and still
		// preserve everything, including any state on the first insert.
		biasInto(rng, ov, "bias_y")
		topo2 := ov.Topology()
		if topo2 == topo1 {
			t.Fatalf("bias refresh did not re-intern the topology")
		}
		Evaluate(ov, m, 100) // binds to topo2
		if m.Topology() != topo2 {
			t.Fatalf("marking not rebound after second refresh")
		}
		for id, want := range nodeSnap {
			if m.Node(id) != want.state || m.SkipSeq(id) != want.skip {
				t.Fatalf("node %s changed across second remap", id)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateAfterManualStaging: hand-staged marking mutations through
// SetNode/SetEdge (the way compliance tests stage scenarios: mark a node
// completed and signal its outgoing edges) queue exactly the affected
// nodes; the next Evaluate must agree with the fixpoint run on the
// identically staged string-keyed reference.
//
// Note the staging must be *consistent* — a true-signaled edge implies a
// completed source. On corrupted markings (e.g. a true signal from a node
// that a cascade later skips) neither evaluator is order-independent; that
// was equally true of the historical global fixpoint, whose outcome then
// depended on the schema scan order.
func TestEvaluateAfterManualStaging(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genRichSchema(rng, "p")
		m := NewMarking(s)
		ref := newRefMarking()
		m.Init(s)
		ref.init(s)
		Evaluate(s, m, 1)
		refFixpoint(s, ref, 1)
		ids := s.NodeIDs()
		for i := 0; i < 2; i++ {
			id := ids[rng.Intn(len(ids))]
			if m.Node(id) != NotActivated {
				continue
			}
			n, _ := s.Node(id)
			if n.Type == model.NodeStart || n.Type == model.NodeEnd {
				continue
			}
			m.SetNode(id, Completed)
			ref.setNode(id, Completed)
			outs := model.OutControlEdges(s, id)
			pick := -1
			if n.Type == model.NodeXORSplit && len(outs) > 0 {
				pick = rng.Intn(len(outs))
			}
			for j, e := range outs {
				es := TrueSignaled
				if pick >= 0 && j != pick {
					es = FalseSignaled
				}
				m.SetEdge(e.Key(), es)
				ref.setEdge(e.Key(), es)
			}
			for _, to := range model.SyncSuccs(s, id) {
				k := model.EdgeKey{From: id, To: to, Type: model.EdgeSync}
				m.SetEdge(k, TrueSignaled)
				ref.setEdge(k, TrueSignaled)
			}
		}
		incAct := Evaluate(s, m, 7)
		refAct := refFixpoint(s, ref, 7)
		if !sameSet(incAct, refAct) {
			return false
		}
		return markingsIdentical(s, m, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
