package model_test

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"adept2/internal/model"
	"adept2/internal/sim"
)

// TestSchemaJSONRoundTripProperty: serialization round-trips random
// generated schemas exactly (structure and metadata).
func TestSchemaJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.RandomSchema(rng, "rt", sim.DefaultSchemaOpts())
		blob, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var back model.Schema
		if err := json.Unmarshal(blob, &back); err != nil {
			return false
		}
		return model.Equal(s, &back) &&
			back.SchemaID() == s.SchemaID() &&
			back.StartID() == s.StartID() &&
			back.EndID() == s.EndID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneEqualProperty: cloning preserves structure, and mutating the
// clone never touches the original.
func TestCloneEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.RandomSchema(rng, "cl", sim.DefaultSchemaOpts())
		c := s.Clone()
		if !model.Equal(s, c) {
			return false
		}
		if err := c.AddNode(&model.Node{ID: "__mut", Type: model.NodeActivity}); err != nil {
			return false
		}
		if _, leaked := s.Node("__mut"); leaked {
			return false
		}
		return !model.Equal(s, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderCardinalityProperty: builder-produced schemas always satisfy
// the block-structured cardinality rules (one in/out control edge for
// activities, etc.) — the invariant the verifier assumes.
func TestBuilderCardinalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.RandomSchema(rng, "card", sim.DefaultSchemaOpts())
		for _, id := range s.NodeIDs() {
			n, _ := s.Node(id)
			in := len(model.InControlEdges(s, id))
			out := len(model.OutControlEdges(s, id))
			switch n.Type {
			case model.NodeStart:
				if in != 0 || out != 1 {
					return false
				}
			case model.NodeEnd:
				if in != 1 || out != 0 {
					return false
				}
			case model.NodeActivity, model.NodeLoopStart, model.NodeLoopEnd:
				if in != 1 || out != 1 {
					return false
				}
			case model.NodeANDSplit, model.NodeXORSplit:
				if in != 1 || out < 2 {
					return false
				}
			case model.NodeANDJoin, model.NodeXORJoin:
				if in < 2 || out != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
