// Command ehealth models the e-health scenario the paper's prototype was
// deployed for: a cyclic treatment process where exceptional situations
// demand ad-hoc deviations per patient — an extra lab test inserted for
// one patient, a skipped examination for another — without losing the
// system's correctness guarantees.
package main

import (
	"fmt"
	"log"

	"adept2"
)

func buildTreatment() *adept2.Schema {
	b := adept2.NewBuilder("treatment")
	b.DataElement("diagnosis", adept2.TypeString)
	b.DataElement("cured", adept2.TypeBool)

	admit := b.Activity("admit", "Admit Patient", adept2.WithRole("nurse"))
	anamnesis := b.Activity("anamnesis", "Anamnesis", adept2.WithRole("physician"))
	b.Write("anamnesis", "diagnosis", "diagnosis")

	// Treatment cycle: examine and treat run against lab work in
	// parallel; the physician decides after each round whether to repeat.
	examine := b.Activity("examine", "Examine", adept2.WithRole("physician"))
	b.Read("examine", "diagnosis", "diagnosis", true)
	treat := b.Activity("treat", "Treat", adept2.WithRole("physician"))
	lab := b.Activity("lab_basic", "Basic Lab Panel", adept2.WithRole("lab"))
	round := b.Parallel(b.Seq(examine, treat), lab)
	evaluate := b.Activity("evaluate", "Evaluate Round", adept2.WithRole("physician"))
	b.Write("evaluate", "cured", "cured")
	cycle := b.Loop(b.Seq(round, evaluate), "", 10)

	discharge := b.Activity("discharge", "Discharge", adept2.WithRole("nurse"))
	s, err := b.Build(b.Seq(admit, anamnesis, cycle, discharge))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func loopEndOf(s *adept2.Schema) string {
	for _, n := range s.Nodes() {
		if n.Type == adept2.NodeLoopEnd {
			return n.ID
		}
	}
	log.Fatal("no loop end")
	return ""
}

func main() {
	schema := buildTreatment()
	loopEnd := loopEndOf(schema)

	sys := adept2.New()
	for _, u := range []*adept2.User{
		{ID: "nina", Roles: []string{"nurse"}},
		{ID: "dr_may", Roles: []string{"physician"}},
		{ID: "lu", Roles: []string{"lab"}},
	} {
		must(sys.AddUser(u))
	}
	must(sys.Deploy(schema))

	// Patient A follows the standard process for one round.
	pa, err := sys.CreateInstance("treatment")
	must(err)
	must(sys.Complete(pa.ID(), "admit", "nina", nil))
	must(sys.Complete(pa.ID(), "anamnesis", "dr_may", map[string]any{"diagnosis": "pneumonia"}))

	// Exceptional situation: patient A additionally needs an MRT scan in
	// parallel with this round's basic lab panel — an ad-hoc deviation for
	// this single instance.
	must(sys.AdHocChange(pa.ID(), &adept2.ParallelInsert{
		Node: &adept2.Node{ID: "mrt_scan", Name: "MRT Scan", Type: adept2.NodeActivity, Role: "lab", Template: "mrt"},
		From: "lab_basic",
		To:   "lab_basic",
	}))
	fmt.Println("patient A deviates from the template:")
	fmt.Print(adept2.RenderInstance(pa))

	// The round proceeds, including the extra scan.
	must(sys.Complete(pa.ID(), "examine", "dr_may", nil))
	must(sys.Complete(pa.ID(), "treat", "dr_may", nil))
	must(sys.Complete(pa.ID(), "lab_basic", "lu", nil))
	must(sys.Complete(pa.ID(), "mrt_scan", "lu", nil))
	must(sys.Complete(pa.ID(), "evaluate", "dr_may", map[string]any{"cured": false}))
	// Not cured: iterate the treatment cycle once more.
	must(sys.CompleteLoop(pa.ID(), loopEnd, "", nil, true))
	fmt.Printf("\npatient A entered round 2 (loop iterations: %d)\n", pa.LoopIterations(loopEnd))
	must(sys.Complete(pa.ID(), "examine", "dr_may", nil))
	must(sys.Complete(pa.ID(), "treat", "dr_may", nil))
	must(sys.Complete(pa.ID(), "lab_basic", "lu", nil))
	must(sys.Complete(pa.ID(), "mrt_scan", "lu", nil))
	must(sys.Complete(pa.ID(), "evaluate", "dr_may", map[string]any{"cured": true}))
	must(sys.CompleteLoop(pa.ID(), loopEnd, "", nil, false))
	must(sys.Complete(pa.ID(), "discharge", "nina", nil))
	fmt.Printf("patient A discharged: %v\n\n", pa.Done())

	// Patient B: the basic lab panel is not medically indicated; the
	// physician deletes it for this instance. The engine checks that no
	// data dependency breaks.
	pb, err := sys.CreateInstance("treatment")
	must(err)
	must(sys.Complete(pb.ID(), "admit", "nina", nil))
	must(sys.Complete(pb.ID(), "anamnesis", "dr_may", map[string]any{"diagnosis": "sprain"}))
	must(sys.AdHocChange(pb.ID(), &adept2.DeleteActivity{ID: "lab_basic"}))
	fmt.Println("patient B skips the lab panel:")
	fmt.Print(adept2.RenderInstance(pb))

	// Attempting to delete an already-started activity is rejected — the
	// guarantee that makes ad-hoc changes safe.
	must(sys.Start(pb.ID(), "examine", "dr_may"))
	if err := sys.AdHocChange(pb.ID(), &adept2.DeleteActivity{ID: "examine"}); err != nil {
		fmt.Printf("\nrejected as expected: %v\n", err)
	} else {
		log.Fatal("deleting a running activity must be rejected")
	}
}
