package persist

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendAndRead(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append("create", map[string]any{"type": "order"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("complete", map[string]any{"node": "a"}); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 2 {
		t.Fatalf("seq = %d", j.Seq())
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != "create" || recs[1].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if err := j.Append("create", nil); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"seq":2,"op":"comp`) // torn write, no newline... then EOF
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestJournalRejectsMidCorruption(t *testing.T) {
	data := `{"seq":1,"op":"a","args":null}
garbage
{"seq":2,"op":"b","args":null}
`
	if _, err := ReadJournal(strings.NewReader(data)); err == nil {
		t.Fatal("mid-journal corruption must be rejected")
	}
}

func TestJournalRejectsGaps(t *testing.T) {
	data := `{"seq":1,"op":"a","args":null}
{"seq":3,"op":"b","args":null}
`
	if _, err := ReadJournal(strings.NewReader(data)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("expected gap error, got %v", err)
	}
}

func TestFileJournalReopenContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 3 || recs[2].Op != "c" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	recs, err := LoadJournal(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: "ok", Args: json.RawMessage(`null`)},
		{Seq: 2, Op: "boom", Args: json.RawMessage(`null`)},
		{Seq: 3, Op: "ok", Args: json.RawMessage(`null`)},
	}
	var applied []string
	err := Replay(recs, func(op string, _ json.RawMessage) error {
		applied = append(applied, op)
		if op == "boom" {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil || len(applied) != 2 {
		t.Fatalf("applied=%v err=%v", applied, err)
	}
}

func TestAppendMarshalsErrors(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	if err := j.Append("bad", func() {}); err == nil {
		t.Fatal("unmarshalable args must fail")
	}
}

// failNWriter fails every write once armed, without consuming any bytes.
type failNWriter struct {
	w      io.Writer
	failed bool
	arm    bool
}

func (f *failNWriter) Write(p []byte) (int, error) {
	if f.arm {
		f.failed = true
		return 0, os.ErrClosed
	}
	return f.w.Write(p)
}

func TestFailedAppendLeavesSeqAndJournalIntact(t *testing.T) {
	var buf bytes.Buffer
	fw := &failNWriter{w: &buf}
	j := NewJournal(fw)
	if err := j.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	fw.arm = true
	if err := j.Append("b", 2); err == nil {
		t.Fatal("append through failing writer must error")
	}
	if !fw.failed {
		t.Fatal("writer was not exercised")
	}
	if j.Seq() != 1 {
		t.Fatalf("failed append changed Seq: %d", j.Seq())
	}
	// The journal stays readable and the next append continues densely.
	fw.arm = false
	if err := j.Append("c", 3); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal unreadable after failed append: %v", err)
	}
	if len(recs) != 2 || recs[0].Op != "a" || recs[1].Op != "c" || recs[1].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestCompactedJournalAccepted(t *testing.T) {
	data := `{"seq":5,"op":"a","args":null}
{"seq":6,"op":"b","args":null}
`
	recs, err := ReadJournal(strings.NewReader(data))
	if err != nil {
		t.Fatalf("compacted journal must be readable: %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 5 {
		t.Fatalf("records = %+v", recs)
	}
	// Gaps within a compacted journal are still rejected.
	bad := `{"seq":5,"op":"a","args":null}
{"seq":7,"op":"b","args":null}
`
	if _, err := ReadJournal(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("expected gap error, got %v", err)
	}
}

func TestBufferedJournalFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := OpenJournalBuffered(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := j.AppendSeq("a", 1)
	if err != nil || seq != 1 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	// Before the flush the record sits in the user-space buffer.
	if recs, _ := LoadJournal(path); len(recs) != 0 {
		t.Fatalf("buffered record visible before flush: %+v", recs)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	// Close flushes any remainder.
	if _, err := j.AppendSeq("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, _ := LoadJournal(path); len(recs) != 2 {
		t.Fatalf("close must flush, got %+v", recs)
	}
}

func TestLoadJournalSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	for i := 1; i <= 9; i++ {
		if err := j.Append("op", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, tail, err := LoadJournalSuffix(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tail.FirstSeq != 1 || tail.LastSeq != 9 || len(recs) != 3 || recs[0].Seq != 7 || recs[2].Seq != 9 {
		t.Fatalf("suffix: tail=%+v recs=%+v", tail, recs)
	}
	if st, _ := os.Stat(path); tail.ValidSize != st.Size() || tail.OpenTail {
		t.Fatalf("intact journal: tail=%+v size=%d", tail, st.Size())
	}
	// afterSeq 0 decodes everything; afterSeq past the tail decodes nothing.
	if recs, _, _ := LoadJournalSuffix(path, 0); len(recs) != 9 {
		t.Fatalf("full suffix: %d", len(recs))
	}
	if recs, tail, _ := LoadJournalSuffix(path, 99); len(recs) != 0 || tail.LastSeq != 9 {
		t.Fatalf("empty suffix: %d tail=%+v", len(recs), tail)
	}
	// Missing file: all zeros.
	if recs, tail, err := LoadJournalSuffix(filepath.Join(t.TempDir(), "absent"), 0); err != nil || recs != nil || tail != (TailInfo{}) {
		t.Fatalf("missing: %v %v %+v", recs, err, tail)
	}

	// Torn tail is tolerated and reported as ending before the garbage;
	// gaps in the skipped prefix are still caught.
	intact, _ := os.Stat(path)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":10,"op":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, tail, err = LoadJournalSuffix(path, 6)
	if err != nil || tail.LastSeq != 9 || len(recs) != 3 {
		t.Fatalf("torn tail: recs=%d tail=%+v err=%v", len(recs), tail, err)
	}
	if tail.ValidSize != intact.Size() {
		t.Fatalf("valid size %d should end before the torn bytes (%d)", tail.ValidSize, intact.Size())
	}
	gap := `{"seq":1,"op":"a","args":null}
{"seq":3,"op":"b","args":null}
`
	gapPath := filepath.Join(t.TempDir(), "gap.ndjson")
	if err := os.WriteFile(gapPath, []byte(gap), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournalSuffix(gapPath, 5); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("prefix gap not detected: %v", err)
	}
}

func TestResumeJournalContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := ResumeJournal(path, TailInfo{LastSeq: 41}, false)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	seq, err := j.AppendSeq("op", nil)
	if err != nil || seq != 42 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailRepairedBeforeAppend is the crash shape that used to be
// fatal: a torn trailing line survives recovery, and the next append must
// NOT concatenate onto it. Both OpenJournal and ResumeJournal truncate
// the damage (and terminate an unterminated final record) before
// appending.
func TestTornTailRepairedBeforeAppend(t *testing.T) {
	mk := func(t *testing.T, tornTail string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "wal.ndjson")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		j.SetSync(false)
		if err := j.Append("a", 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tornTail); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	check := func(t *testing.T, path string) {
		t.Helper()
		recs, err := LoadJournal(path)
		if err != nil {
			t.Fatalf("journal corrupt after repaired append: %v", err)
		}
		if len(recs) != 2 || recs[1].Seq != 2 || recs[1].Op != "b" {
			t.Fatalf("records: %+v", recs)
		}
	}

	for name, torn := range map[string]string{
		"unterminated":       `{"seq":2,"op":"torn`,
		"terminated-garbage": "garbage-line\n",
	} {
		t.Run("open/"+name, func(t *testing.T) {
			path := mk(t, torn)
			j, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			j.SetSync(false)
			if err := j.Append("b", 2); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			check(t, path)
		})
		t.Run("resume/"+name, func(t *testing.T) {
			path := mk(t, torn)
			_, tail, err := LoadJournalSuffix(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			j, err := ResumeJournal(path, tail, false)
			if err != nil {
				t.Fatal(err)
			}
			j.SetSync(false)
			if err := j.Append("b", 2); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			check(t, path)
		})
	}
}

// TestOpenTailGetsNewline: a crash can persist a complete final record
// whose newline never reached the disk; the record must be kept (it was
// replayed) and the next append must start on a fresh line.
func TestOpenTailGetsNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	if err := os.WriteFile(path, []byte(`{"seq":1,"op":"a","args":null}`), 0o644); err != nil {
		t.Fatal(err) // note: no trailing newline
	}
	_, tail, err := LoadJournalSuffix(path, 0)
	if err != nil || tail.LastSeq != 1 || !tail.OpenTail {
		t.Fatalf("tail=%+v err=%v", tail, err)
	}
	j, err := ResumeJournal(path, tail, false)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil || len(recs) != 2 || recs[0].Op != "a" || recs[1].Op != "b" {
		t.Fatalf("recs=%+v err=%v", recs, err)
	}
}

// TestFailedAppendTruncatesPartialWrite: a short write on a file journal
// must not leave fragment bytes for the next append to collide with.
func TestFailedAppendTruncatesPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	// Simulate a partial write failure: swap the writer for one that
	// writes half the bytes to the real file and then errors.
	real := j.w
	j.w = &halfWriter{w: real}
	if err := j.Append("b", 2); err == nil {
		t.Fatal("partial write must error")
	}
	j.w = real
	if err := j.Append("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal corrupt after partial write: %v", err)
	}
	if len(recs) != 2 || recs[1].Op != "c" || recs[1].Seq != 2 {
		t.Fatalf("records: %+v", recs)
	}
}

type halfWriter struct{ w io.Writer }

func (h *halfWriter) Write(p []byte) (int, error) {
	n, _ := h.w.Write(p[:len(p)/2])
	return n, os.ErrClosed
}

// TestTornTailFollowedByBlankLineRepaired: a corrupt terminated line plus
// a trailing blank line must be truncated entirely — the blank line must
// not extend the "intact" prefix past the corruption.
func TestTornTailFollowedByBlankLineRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	if err := os.WriteFile(path, []byte("{\"seq\":1,\"op\":\"a\",\"args\":null}\ngarbage\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	if err := j.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal corrupt after repair: %v", err)
	}
	if len(recs) != 2 || recs[1].Op != "b" || recs[1].Seq != 2 {
		t.Fatalf("records: %+v", recs)
	}
}

func TestEpochRecordRoundTripAndBackCompat(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if _, err := j.AppendRecord("deploy", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendRecord("complete", 1, 2); err != nil {
		t.Fatal(err)
	}
	// Epoch 0 is omitted from the wire format, keeping unsharded journals
	// byte-compatible with pre-epoch records; the seq probe's prefix
	// assumption holds for both forms.
	lines := strings.SplitN(buf.String(), "\n", 3)
	if strings.Contains(lines[0], "epoch") {
		t.Fatalf("epoch 0 must be omitted: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"epoch":1`) {
		t.Fatalf("epoch missing: %s", lines[1])
	}
	for _, l := range lines[:2] {
		if !strings.HasPrefix(l, `{"seq":`) {
			t.Fatalf("seq must stay the first field for quickSeq: %s", l)
		}
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Epoch != 0 || recs[1].Epoch != 1 {
		t.Fatalf("epochs = %d, %d", recs[0].Epoch, recs[1].Epoch)
	}
	// A pre-epoch (v1) record decodes with epoch 0.
	var rec Record
	if err := json.Unmarshal([]byte(`{"seq":3,"op":"x","args":null}`), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 0 || rec.Seq != 3 {
		t.Fatalf("v1 decode: %+v", rec)
	}
}
