#!/usr/bin/env sh
# bench.sh — run the perf-trajectory benchmark families (Fig. 1 compliance
# replay, Fig. 3 population migration, E8 engine throughput) and emit
# BENCH_baseline.json at the repo root, so successive PRs can compare
# against a recorded baseline.
#
# Usage: scripts/bench.sh [output-file]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_baseline.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Fig1|Fig3|EngineComplete' -benchmem . | tee "$raw"

{
	printf '{\n'
	printf '  "generated_by": "scripts/bench.sh",\n'
	printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
	printf '  "benchmarks": [\n'
	awk '/^Benchmark/ {
		name=$1; sub(/-[0-9]+$/, "", name)
		nsop=""; bop=""; allocs=""; extra=""
		for (i=2; i<NF; i++) {
			if ($(i+1) == "ns/op")     nsop=$i
			if ($(i+1) == "B/op")      bop=$i
			if ($(i+1) == "allocs/op") allocs=$i
			if ($(i+1) == "us/instance") extra=$i
		}
		line=sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
		if (nsop != "")   line=line sprintf(", \"ns_per_op\": %s", nsop)
		if (bop != "")    line=line sprintf(", \"bytes_per_op\": %s", bop)
		if (allocs != "") line=line sprintf(", \"allocs_per_op\": %s", allocs)
		if (extra != "")  line=line sprintf(", \"us_per_instance\": %s", extra)
		line=line "}"
		if (seen) printf(",\n")
		printf("%s", line)
		seen=1
	}
	END { printf("\n") }' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"
