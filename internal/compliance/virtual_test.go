package compliance_test

import (
	"testing"

	"adept2/internal/change"
	"adept2/internal/compliance"
	"adept2/internal/engine"
	"adept2/internal/graph"
	"adept2/internal/history"
	"adept2/internal/model"
	"adept2/internal/sim"
	"adept2/internal/state"
)

// prepFlagInstance creates an online-order instance whose get_order also
// writes an int flag, then advances it past confirm_order.
func prepFlagInstance(t *testing.T, flag int) (*engine.Engine, *engine.Instance, *model.Schema) {
	t.Helper()
	base := sim.OnlineOrder()
	if err := base.AddDataElement(&model.DataElement{ID: "flag", Type: model.TypeInt}); err != nil {
		t.Fatal(err)
	}
	if err := base.AddDataEdge(&model.DataEdge{Activity: "get_order", Element: "flag", Access: model.Write, Parameter: "flag"}); err != nil {
		t.Fatal(err)
	}
	e := engine.New(sim.Org())
	if err := e.Deploy(base); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("online_order", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "get_order", "ann", map[string]any{"out": "o", "flag": flag}); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "collect_data", "ann", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteActivity(inst.ID(), "confirm_order", "ann", nil); err != nil {
		t.Fatal(err)
	}
	return e, inst, base
}

// replayConditional replays the instance history against a target schema
// with a conditional insert before confirm_order.
func replayConditional(t *testing.T, base *model.Schema, inst *engine.Instance, node *model.Node) (*compliance.ReplayResult, error) {
	t.Helper()
	target := base.Clone()
	op := &change.ConditionalInsert{Node: node, Pred: "collect_data", Succ: "confirm_order", DecisionElement: "flag"}
	if err := op.ApplyTo(target); err != nil {
		t.Fatal(err)
	}
	targetInfo, err := graph.Analyze(target)
	if err != nil {
		t.Fatal(err)
	}
	baseInfo, err := graph.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	reduced := history.Reduce(baseInfo, inst.HistoryEvents())
	return compliance.Replay(target, targetInfo, reduced)
}

// TestVirtualXORDecisionRoutesAroundInsert: the virtually fired XOR split
// reads flag=0 and routes through the empty branch, so the started
// successor replays.
func TestVirtualXORDecisionRoutesAroundInsert(t *testing.T) {
	_, inst, base := prepFlagInstance(t, 0)
	node := &model.Node{ID: "x", Type: model.NodeActivity, Role: "sales", Template: "x"}
	res, err := replayConditional(t, base, inst, node)
	if err != nil {
		t.Fatalf("flag=0 must be compliant: %v", err)
	}
	if res.VirtualFirings < 3 { // split, nop, join
		t.Fatalf("virtual firings = %d", res.VirtualFirings)
	}
	if res.Marking.Node("x") != state.Skipped {
		t.Fatalf("x should be skipped, is %s", res.Marking.Node("x"))
	}
}

// TestVirtualXORDecisionSelectsManualInsert: with flag=1 the split selects
// the manual activity, which cannot fire virtually — state conflict.
func TestVirtualXORDecisionSelectsManualInsert(t *testing.T) {
	_, inst, base := prepFlagInstance(t, 1)
	node := &model.Node{ID: "x", Type: model.NodeActivity, Role: "sales", Template: "x"}
	if _, err := replayConditional(t, base, inst, node); err == nil {
		t.Fatal("flag=1 with manual insert must fail replay")
	}
	// An automatic activity fires virtually instead: compliant.
	auto := &model.Node{ID: "x", Type: model.NodeActivity, Auto: true, Template: "x"}
	res, err := replayConditional(t, base, inst, auto)
	if err != nil {
		t.Fatalf("flag=1 with auto insert: %v", err)
	}
	if res.Marking.Node("x") != state.Completed {
		t.Fatalf("x should be virtually completed, is %s", res.Marking.Node("x"))
	}
}

// TestVirtualXORDecisionClamping: an out-of-range flag clamps to the
// lowest code (the empty branch), mirroring the engine.
func TestVirtualXORDecisionClamping(t *testing.T) {
	_, inst, base := prepFlagInstance(t, 42)
	node := &model.Node{ID: "x", Type: model.NodeActivity, Role: "sales", Template: "x"}
	res, err := replayConditional(t, base, inst, node)
	if err != nil {
		t.Fatalf("clamped decision must be compliant: %v", err)
	}
	if res.Marking.Node("x") != state.Skipped {
		t.Fatalf("x should be skipped under clamping, is %s", res.Marking.Node("x"))
	}
}

// TestComplianceErrorStrings covers the error rendering.
func TestComplianceErrorStrings(t *testing.T) {
	e := &compliance.Error{Reason: "boom"}
	if e.Error() != "compliance: boom" {
		t.Fatalf("plain error = %q", e.Error())
	}
	ev := &history.Event{Seq: 3, Kind: history.Started, Node: "a"}
	e2 := &compliance.Error{Event: ev, Reason: "boom"}
	if e2.Error() == "" || e2.Error() == e.Error() {
		t.Fatal("event error should differ")
	}
	ce := &change.ComplianceError{Op: "op", Reason: "r"}
	if ce.Error() == "" {
		t.Fatal("compliance error string")
	}
	se := &change.StructuralError{Reason: "r"}
	if se.Error() == "" {
		t.Fatal("structural error string")
	}
}
