module adept2

go 1.22
