package state

import (
	"testing"

	"adept2/internal/graph"
	"adept2/internal/model"
)

// parSchema: start -> AND[ a1->a2 | b1 ] -> end with sync a1 ~> b1.
func parSchema(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("par")
	p := b.Parallel(
		b.Seq(b.Activity("a1", "A1", model.WithRole("r")), b.Activity("a2", "A2", model.WithRole("r"))),
		b.Activity("b1", "B1", model.WithRole("r")),
	)
	b.Sync("a1", "b1")
	s, err := b.Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// xorSchema: start -> split(code0->x | code1->y) -> join -> end.
func xorSchema(t *testing.T) *model.Schema {
	t.Helper()
	b := model.NewBuilder("xor")
	ch := b.Choice("",
		b.Activity("x", "X", model.WithRole("r")),
		b.Activity("y", "Y", model.WithRole("r")),
	)
	s, err := b.Build(ch)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func findNode(t *testing.T, s *model.Schema, tp model.NodeType) string {
	t.Helper()
	for _, n := range s.Nodes() {
		if n.Type == tp {
			return n.ID
		}
	}
	t.Fatalf("no node of type %s", tp)
	return ""
}

func run(t *testing.T, v model.SchemaView, m *Marking, id string, decision int) {
	t.Helper()
	if err := m.Start(id); err != nil {
		t.Fatalf("start %s: %v", id, err)
	}
	if err := m.Complete(v, id, decision); err != nil {
		t.Fatalf("complete %s: %v", id, err)
	}
	Evaluate(v, m, 1)
}

func TestMarkingLifecycleBasics(t *testing.T) {
	s := parSchema(t)
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)

	split := findNode(t, s, model.NodeANDSplit)
	if m.Node(split) != Activated {
		t.Fatalf("AND split should be activated, is %s", m.Node(split))
	}
	run(t, s, m, split, -1)
	if m.Node("a1") != Activated {
		t.Fatalf("a1 should be activated, is %s", m.Node("a1"))
	}
	// b1 waits for the sync edge from a1.
	if m.Node("b1") != NotActivated {
		t.Fatalf("b1 must wait for sync edge, is %s", m.Node("b1"))
	}
	run(t, s, m, "a1", -1)
	if m.Node("b1") != Activated {
		t.Fatalf("b1 should be activated after sync signal, is %s", m.Node("b1"))
	}
	run(t, s, m, "a2", -1)
	join := findNode(t, s, model.NodeANDJoin)
	if m.Node(join) != NotActivated {
		t.Fatalf("join must wait for b1, is %s", m.Node(join))
	}
	run(t, s, m, "b1", -1)
	if m.Node(join) != Activated {
		t.Fatalf("join should be activated, is %s", m.Node(join))
	}
	run(t, s, m, join, -1)
	if m.Node(s.EndID()) != Activated {
		t.Fatalf("end should be activated, is %s", m.Node(s.EndID()))
	}
}

func TestMarkingTransitionErrors(t *testing.T) {
	s := parSchema(t)
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	if err := m.Start("a1"); err == nil {
		t.Fatal("starting a non-activated node must fail")
	}
	if err := m.Complete(s, "a1", -1); err == nil {
		t.Fatal("completing a non-running node must fail")
	}
	split := findNode(t, s, model.NodeANDSplit)
	if err := m.Start(split); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(split); err == nil {
		t.Fatal("double start must fail")
	}
	if err := m.Complete(s, "ghost", -1); err == nil {
		t.Fatal("completing unknown node must fail")
	}
}

func TestXORSkipPropagation(t *testing.T) {
	s := xorSchema(t)
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	split := findNode(t, s, model.NodeXORSplit)

	// Choose branch to x (code 0): y's path dies.
	if err := m.Start(split); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(s, split, 0); err != nil {
		t.Fatal(err)
	}
	Evaluate(s, m, 7)
	if m.Node("x") != Activated {
		t.Fatalf("x should be activated, is %s", m.Node("x"))
	}
	if m.Node("y") != Skipped {
		t.Fatalf("y should be skipped, is %s", m.Node("y"))
	}
	if m.SkipSeq("y") != 7 {
		t.Fatalf("skip seq of y = %d, want 7", m.SkipSeq("y"))
	}
	// Join waits for x, then fires with one true edge.
	join := findNode(t, s, model.NodeXORJoin)
	if m.Node(join) != NotActivated {
		t.Fatalf("join premature: %s", m.Node(join))
	}
	run(t, s, m, "x", -1)
	if m.Node(join) != Activated {
		t.Fatalf("join should be activated, is %s", m.Node(join))
	}
	if got := m.NodesInState(Skipped); len(got) != 1 || got[0] != "y" {
		t.Fatalf("NodesInState(Skipped) = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := xorSchema(t)
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	c := m.Clone()
	split := findNode(t, s, model.NodeXORSplit)
	if err := c.Start(split); err != nil {
		t.Fatal(err)
	}
	if m.Node(split) != Activated {
		t.Fatal("clone mutation leaked into original")
	}
	if c.CountNodes() == 0 || c.ApproxBytes() == 0 {
		t.Fatal("accounting broken")
	}
}

func TestResetLoop(t *testing.T) {
	b := model.NewBuilder("loop")
	loop := b.Loop(b.Activity("w", "W", model.WithRole("r")), "", 0)
	s, err := b.Build(loop)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	info, err := graph.Analyze(s)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	ls := findNode(t, s, model.NodeLoopStart)
	le := findNode(t, s, model.NodeLoopEnd)

	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	run(t, s, m, ls, -1)
	run(t, s, m, "w", -1)
	if m.Node(le) != Activated {
		t.Fatalf("loop end should be activated, is %s", m.Node(le))
	}
	// Simulate "again": start the loop end, then reset the region without
	// completing it.
	if err := m.Start(le); err != nil {
		t.Fatal(err)
	}
	blk, _ := info.ByJoin(le)
	ResetLoop(s, m, blk.Region())
	if m.Node("w") != NotActivated || m.Node(le) != NotActivated {
		t.Fatal("region not reset")
	}
	Evaluate(s, m, 9)
	if m.Node(ls) != Activated {
		t.Fatalf("loop start should re-activate, is %s", m.Node(ls))
	}
}

func TestAdaptPreservesStartedWorkAndRederivesSkips(t *testing.T) {
	s := xorSchema(t)
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	split := findNode(t, s, model.NodeXORSplit)
	if err := m.Start(split); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(s, split, 0); err != nil {
		t.Fatal(err)
	}
	Evaluate(s, m, 3)
	run(t, s, m, "x", -1)

	decisions := map[string]int{split: 0}
	before := m.Node("x")
	activated := Adapt(s, m, decisions, 10)
	if m.Node("x") != before {
		t.Fatalf("adapt changed completed node state to %s", m.Node("x"))
	}
	if m.Node("y") != Skipped {
		t.Fatalf("adapt lost the skip of y: %s", m.Node("y"))
	}
	if m.SkipSeq("y") != 3 {
		t.Fatalf("adapt must preserve original skip stamp, got %d", m.SkipSeq("y"))
	}
	join := findNode(t, s, model.NodeXORJoin)
	found := false
	for _, id := range activated {
		if id == join {
			found = true
		}
	}
	if !found {
		t.Fatalf("join should be (re)activated by adapt, got %v", activated)
	}
}

func TestAdaptAfterSerialInsertionDemotesActivatedSuccessor(t *testing.T) {
	// start -> a -> c -> end; a completed, c activated. Insert n between a
	// and c: c must fall back to NotActivated, n becomes activated.
	b := model.NewBuilder("ins")
	s, err := b.Build(b.Seq(b.Activity("a", "A", model.WithRole("r")), b.Activity("c", "C", model.WithRole("r"))))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	run(t, s, m, "a", -1)
	if m.Node("c") != Activated {
		t.Fatalf("c should be activated, is %s", m.Node("c"))
	}

	if err := s.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode(&model.Node{ID: "n", Type: model.NodeActivity, Role: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(&model.Edge{From: "a", To: "n", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(&model.Edge{From: "n", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	Adapt(s, m, nil, 5)
	if m.Node("n") != Activated {
		t.Fatalf("inserted node should be activated, is %s", m.Node("n"))
	}
	if m.Node("c") != NotActivated {
		t.Fatalf("c should be demoted to not-activated, is %s", m.Node("c"))
	}
	if m.Node("a") != Completed {
		t.Fatalf("a must stay completed, is %s", m.Node("a"))
	}
}

func TestAdaptDropsDeletedNodes(t *testing.T) {
	b := model.NewBuilder("del")
	s, err := b.Build(b.Seq(b.Activity("a", "A", model.WithRole("r")), b.Activity("c", "C", model.WithRole("r"))))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := NewMarking(s)
	m.Init(s)
	Evaluate(s, m, 1)
	run(t, s, m, "a", -1)

	// Delete c (not started): rewire a -> end.
	if err := s.RemoveEdge(model.EdgeKey{From: "a", To: "c", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveEdge(model.EdgeKey{From: "c", To: "end", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("c"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(&model.Edge{From: "a", To: "end", Type: model.EdgeControl}); err != nil {
		t.Fatal(err)
	}
	Adapt(s, m, nil, 5)
	if m.Node(s.EndID()) != Activated {
		t.Fatalf("end should be activated after delete, is %s", m.Node(s.EndID()))
	}
}

func TestStateStrings(t *testing.T) {
	if NotActivated.String() != "not-activated" || Running.String() != "running" || Skipped.String() != "skipped" {
		t.Fatal("NodeState strings")
	}
	if NotSignaled.String() != "not-signaled" || TrueSignaled.String() != "true-signaled" {
		t.Fatal("EdgeState strings")
	}
	if NodeState(99).String() == "" || EdgeState(99).String() == "" {
		t.Fatal("out-of-range strings")
	}
	if !Running.Started() || !Completed.Started() || Activated.Started() {
		t.Fatal("Started predicate")
	}
}
