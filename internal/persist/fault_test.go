package persist

import (
	"errors"
	"syscall"
	"testing"

	"adept2/internal/vfs"
)

// TestAppendMultiENOSPCRollsBackAndRetries: a torn write mid-batch
// (ENOSPC after a few bytes landed) must roll the physical tail back to
// the pre-batch offset, leave the sequence counter untouched, and let
// the identical batch succeed on retry once space returns — no gap, no
// duplicate, no interleaved fragment.
func TestAppendMultiENOSPCRollsBackAndRetries(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, nil)
	j, err := OpenJournalFS(ffs, "j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendSeq("seed", map[string]any{"n": 1}); err != nil {
		t.Fatal(err)
	}

	batch := []Pending{
		{Op: "a", Args: map[string]any{"n": 2}},
		{Op: "b", Args: map[string]any{"n": 3}},
		{Op: "c", Args: map[string]any{"n": 4}},
	}
	ffs.SetScript(func(n int64, op vfs.OpRef) vfs.Decision {
		if op.Kind == vfs.OpWrite {
			return vfs.Decision{Err: syscall.ENOSPC, TornPrefix: 7}
		}
		return vfs.Decision{}
	})
	if _, err := j.AppendMulti(batch); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn batch append: %v, want ENOSPC", err)
	}
	if got := j.Seq(); got != 1 {
		t.Fatalf("seq after failed batch: %d, want 1", got)
	}

	// Space returns; the same batch must append cleanly.
	ffs.SetScript(nil)
	last, err := j.AppendMulti(batch)
	if err != nil {
		t.Fatalf("retried batch: %v", err)
	}
	if last != 4 {
		t.Fatalf("retried batch last seq: %d, want 4", last)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournalFS(mem, "j")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("journal holds %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != i+1 {
			t.Fatalf("record %d has seq %d — the torn fragment leaked", i, rec.Seq)
		}
	}
}

// TestAppendMultiRollbackFailureWedgesUntilHeal: when the rollback
// truncate itself fails too, the journal must refuse further appends
// (the tail is in an unknown state) until Heal re-verifies it — after
// which the batch is retryable.
func TestAppendMultiRollbackFailureWedgesUntilHeal(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, nil)
	j, err := OpenJournalFS(ffs, "j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendSeq("seed", map[string]any{"n": 1}); err != nil {
		t.Fatal(err)
	}

	ffs.SetScript(func(n int64, op vfs.OpRef) vfs.Decision {
		switch op.Kind {
		case vfs.OpWrite:
			return vfs.Decision{Err: syscall.ENOSPC, TornPrefix: 3}
		case vfs.OpTruncate:
			return vfs.Decision{Err: syscall.ENOSPC}
		}
		return vfs.Decision{}
	})
	batch := []Pending{{Op: "a", Args: nil}, {Op: "b", Args: nil}}
	if _, err := j.AppendMulti(batch); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn batch append: %v, want ENOSPC", err)
	}
	// The journal is sticky-failed: appends refuse instead of
	// concatenating onto the unrepaired fragment.
	if _, err := j.AppendMulti(batch); err == nil {
		t.Fatal("append succeeded on a failed journal")
	}

	ffs.SetScript(nil)
	if err := j.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	last, err := j.AppendMulti(batch)
	if err != nil {
		t.Fatalf("batch after heal: %v", err)
	}
	if last != 3 {
		t.Fatalf("last seq after heal: %d, want 3", last)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadJournalFS(mem, "j")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal holds %d records, want 3", len(recs))
	}
}
