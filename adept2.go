// Package documentation lives in doc.go (command API, receipts,
// batch/epoch invariants, error taxonomy).
package adept2

import (
	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/model"
	"adept2/internal/monitor"
	"adept2/internal/org"
	"adept2/internal/storage"
	"adept2/internal/worklist"
)

// Model layer.
type (
	// Schema is a buildtime process schema (a WSM net).
	Schema = model.Schema
	// SchemaView is the read-only schema interface shared by plain schemas
	// and biased-instance overlays.
	SchemaView = model.SchemaView
	// Builder assembles block-structured schemas from fragments.
	Builder = model.Builder
	// Fragment is a single-entry single-exit region under construction.
	Fragment = model.Fragment
	// Node is a schema node.
	Node = model.Node
	// NodeType enumerates node kinds.
	NodeType = model.NodeType
	// Edge connects schema nodes.
	Edge = model.Edge
	// DataElement is a typed process variable.
	DataElement = model.DataElement
	// DataEdge connects activity parameters to data elements.
	DataEdge = model.DataEdge
	// NodeOption customizes nodes created through the builder.
	NodeOption = model.NodeOption
)

// Node and data constants re-exported for builder call sites.
const (
	NodeActivity  = model.NodeActivity
	NodeStart     = model.NodeStart
	NodeEnd       = model.NodeEnd
	NodeANDSplit  = model.NodeANDSplit
	NodeANDJoin   = model.NodeANDJoin
	NodeXORSplit  = model.NodeXORSplit
	NodeXORJoin   = model.NodeXORJoin
	NodeLoopStart = model.NodeLoopStart
	NodeLoopEnd   = model.NodeLoopEnd

	TypeString = model.TypeString
	TypeInt    = model.TypeInt
	TypeBool   = model.TypeBool
	TypeFloat  = model.TypeFloat
)

// Builder entry points.
var (
	// NewBuilder creates a builder for version 1 of a process type.
	NewBuilder = model.NewBuilder
	// NewVersionBuilder creates a builder for an explicit version.
	NewVersionBuilder = model.NewVersionBuilder
	// WithRole assigns a staff role to an activity.
	WithRole = model.WithRole
	// WithTemplate names the reusable activity template.
	WithTemplate = model.WithTemplate
	// WithAuto marks a node as automatically executed.
	WithAuto = model.WithAuto
	// WithDuration attaches a nominal duration hint.
	WithDuration = model.WithDuration
	// WithDeadline arms a relative completion deadline when the activity
	// starts.
	WithDeadline = model.WithDeadline
	// WithEscalation names the role a timed-out activity escalates to.
	WithEscalation = model.WithEscalation
	// WithDecisionElement wires an automatic decision gateway to a data
	// element.
	WithDecisionElement = model.WithDecisionElement
	// WithMaxIterations bounds a loop.
	WithMaxIterations = model.WithMaxIterations
)

// Runtime layer.
type (
	// Engine is the process runtime.
	Engine = engine.Engine
	// Instance is one running process instance.
	Instance = engine.Instance
	// CompleteOption customizes activity completion.
	CompleteOption = engine.CompleteOption
	// WorkItem is one unit of offered work.
	WorkItem = worklist.Item
	// OrgModel registers users and roles.
	OrgModel = org.Model
	// User is an organizational agent.
	User = org.User
	// StorageStrategy selects the biased-instance representation.
	StorageStrategy = storage.Strategy
)

// Completion options and storage strategies.
var (
	// WithDecision supplies an XOR routing decision.
	WithDecision = engine.WithDecision
	// WithLoopAgain supplies a loop iteration decision.
	WithLoopAgain = engine.WithLoopAgain
)

// Storage strategies for biased instances (paper Fig. 2).
const (
	StorageHybrid   = storage.Hybrid
	StorageFullCopy = storage.FullCopy
	StorageOnTheFly = storage.OnTheFly
)

// Change framework.
type (
	// Operation is one ADEPT2 change operation.
	Operation = change.Operation
	// SerialInsert inserts an activity between two neighbors.
	SerialInsert = change.SerialInsert
	// ParallelInsert inserts an activity parallel to a region.
	ParallelInsert = change.ParallelInsert
	// ConditionalInsert inserts an activity guarded by a condition.
	ConditionalInsert = change.ConditionalInsert
	// DeleteActivity removes an activity.
	DeleteActivity = change.DeleteActivity
	// MoveActivity shifts an activity to a new position.
	MoveActivity = change.MoveActivity
	// InsertSyncEdge adds a cross-branch ordering constraint.
	InsertSyncEdge = change.InsertSyncEdge
	// DeleteSyncEdge removes a sync edge.
	DeleteSyncEdge = change.DeleteSyncEdge
	// UpdateStaffAssignment changes the role of an activity.
	UpdateStaffAssignment = change.UpdateStaffAssignment
	// AddDataElement declares a new data element.
	AddDataElement = change.AddDataElement
	// AddDataEdge connects a parameter to a data element.
	AddDataEdge = change.AddDataEdge
	// DeleteDataEdge removes a data edge.
	DeleteDataEdge = change.DeleteDataEdge
)

// Evolution layer.
type (
	// MigrationReport summarizes one schema evolution (paper Fig. 3).
	MigrationReport = evolution.Report
	// InstanceResult is one row of a migration report.
	InstanceResult = evolution.InstanceResult
	// Outcome classifies a migration result.
	Outcome = evolution.Outcome
	// EvolveOptions tunes a migration run.
	EvolveOptions = evolution.Options
	// CheckMode selects fast conditions vs. history replay.
	CheckMode = evolution.CheckMode
	// AdaptMode selects the state adaptation procedure.
	AdaptMode = evolution.AdaptMode
)

// Migration outcome and mode constants.
const (
	Migrated           = evolution.Migrated
	AlreadyFinished    = evolution.AlreadyFinished
	StateConflict      = evolution.StateConflict
	StructuralConflict = evolution.StructuralConflict
	SemanticConflict   = evolution.SemanticConflict
	MigrationFailed    = evolution.Failed

	FastCheck   = evolution.FastCheck
	ReplayCheck = evolution.ReplayCheck

	AdaptIncremental = evolution.AdaptIncremental
	AdaptReplay      = evolution.AdaptReplay
)

// Monitoring helpers.
var (
	// RenderSchema renders a schema as text.
	RenderSchema = monitor.RenderSchema
	// RenderInstance renders an instance marking as text.
	RenderInstance = monitor.RenderInstance
	// FormatReport renders a migration report (Fig. 3 style).
	FormatReport = monitor.FormatReport
	// SummarizeWorklists renders all user worklists.
	SummarizeWorklists = monitor.SummarizeWorklists
)
