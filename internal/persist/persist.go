// Package persist implements durable command journaling for the ADEPT2
// runtime: every state-changing command (deploy, instance creation,
// activity completion, ad-hoc change, schema evolution) is appended to a
// newline-delimited JSON write-ahead journal. Recovery replays the journal
// through the public API, reconstructing the exact engine state — the
// substitution for the paper prototype's RDBMS-backed storage layer (see
// DESIGN.md).
//
// Durability modes. A file-backed journal opened with OpenJournal fsyncs
// after every Append (one record = one write + one fsync). The group-commit
// path in internal/durable instead opens the journal with
// OpenJournalBuffered — appends land in an in-memory pending buffer and
// callers coordinate a shared Flush (one write + one fsync per *batch* of
// concurrent appends). In both modes a record is only considered durable
// after the fsync covering it returned.
//
// Failure handling. The pending buffer makes a failed flush retryable: the
// encoded records stay in memory, the journal remembers the last byte
// offset a successful fsync covered, and the next Flush first repairs the
// physical tail (truncating whatever a torn write or an unfsynced write
// left behind, re-verifying the size) before re-appending the pending
// bytes and fsyncing again. This sidesteps the fsync-gate problem — the
// retry never relies on the kernel still holding pages a failed fsync may
// have dropped, because it rewrites them from user space.
//
// All file access goes through internal/vfs, so fault-injection and
// crash-simulation backends can stand in for the OS in tests.
//
// Compaction. A journal normally starts at sequence number 1. After
// checkpointing (internal/durable), the prefix already covered by a
// snapshot may be dropped: a compacted journal starts at an arbitrary
// sequence number and must stay contiguous from its first record. Readers
// accept such journals; recovery is then only possible through a snapshot
// whose sequence number reaches the record before the journal's first (the
// facade enforces this — see adept2.Open).
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"adept2/internal/vfs"
)

// Record is one journaled command. The record format is versioned by
// field presence, not an explicit tag: v1 records (through PR 3) carry
// seq/op/args; v2 records add the optional epoch reference for sharded
// journals. Decoders accept both — a missing epoch is zero — and Seq
// stays the first encoded field so the fast sequence probe (quickSeq)
// works on either version.
type Record struct {
	// Seq is the journal sequence number (1-based).
	Seq int `json:"seq"`
	// Epoch references the control-log sequence number the command was
	// issued under (sharded journals only; see internal/durable/sharded).
	// Zero — and omitted on the wire — for unsharded journals and for
	// control-shard records, keeping single-journal layouts byte-
	// compatible with the pre-epoch format.
	Epoch int `json:"epoch,omitempty"`
	// Op names the command (facade-defined, e.g. "deploy", "complete").
	Op string `json:"op"`
	// Args carries the command arguments.
	Args json.RawMessage `json:"args"`
}

// Journal is an append-only command log. It is safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer // unbuffered write target (the file itself when file-backed)
	fsys   vfs.FS    // non-nil when backed by a file
	path   string
	file   vfs.File
	seq    int
	size   int64 // bytes covered by durable-intent writes (the tail-repair floor)
	sync   bool
	failed bool // an unrepairable write error; the journal refuses appends

	// Buffered (group-commit) journals accumulate encoded records here
	// until Flush; a failed flush keeps them, making the flush retryable.
	buffered bool
	pending  bytes.Buffer
	dirty    bool // the physical tail may exceed size (failed write or fsync)

	// Append serializes into per-journal buffers (guarded by mu) instead
	// of allocating fresh ones per record; the encoders are lazily bound
	// to the buffers on first use.
	lineBuf bytes.Buffer
	argsBuf bytes.Buffer
	lineEnc *json.Encoder
	argsEnc *json.Encoder
}

// NewJournal wraps an arbitrary writer (tests use a bytes.Buffer).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenJournal opens (or creates) a file-backed journal in append mode. If
// the file already holds records, new sequence numbers continue after the
// highest existing one.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(vfs.OS(), path)
}

// OpenJournalFS is OpenJournal over an explicit filesystem.
func OpenJournalFS(fsys vfs.FS, path string) (*Journal, error) {
	return openJournal(fsys, path, false)
}

// OpenJournalBuffered opens a file-backed journal whose appends land in a
// user-space buffer and are NOT individually fsynced: records become
// durable only when Flush is called. The group-commit committer
// (internal/durable) uses this mode to turn many concurrent appends into
// one write plus one fsync per batch.
func OpenJournalBuffered(path string) (*Journal, error) {
	return openJournal(vfs.OS(), path, true)
}

// OpenJournalBufferedFS is OpenJournalBuffered over an explicit
// filesystem.
func OpenJournalBufferedFS(fsys vfs.FS, path string) (*Journal, error) {
	return openJournal(fsys, path, true)
}

func openJournal(fsys vfs.FS, path string, buffered bool) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	// Only the sequence numbers are needed here; skip decoding records.
	_, tail, err := scanRecords(f, int(^uint(0)>>1))
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := repairTail(f, tail); err != nil {
		f.Close()
		return nil, err
	}
	return newFileJournal(fsys, path, f, buffered, tail.LastSeq), nil
}

// newFileJournal wires a Journal over an already-positioned append fd.
func newFileJournal(fsys vfs.FS, path string, f vfs.File, buffered bool, lastSeq int) *Journal {
	j := &Journal{w: f, fsys: fsys, path: path, file: f, sync: !buffered, buffered: buffered, seq: lastSeq}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	return j
}

// repairTail makes the physical end of the journal append-safe: torn or
// corrupt trailing bytes past the last intact record are truncated, and a
// final record that lost its newline terminator gets one, so the next
// append can never concatenate onto damaged data (which would turn a
// tolerated torn tail into unrecoverable mid-file corruption).
func repairTail(f vfs.File, tail TailInfo) error {
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("persist: repair tail: %w", err)
	}
	if st.Size() > tail.ValidSize {
		if err := f.Truncate(tail.ValidSize); err != nil {
			return fmt.Errorf("persist: truncate torn tail: %w", err)
		}
	}
	if tail.OpenTail {
		if _, err := f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("persist: terminate open tail: %w", err)
		}
	}
	return nil
}

// SetSync toggles fsync after every append (default true for file-backed
// journals opened unbuffered; benchmarks disable it).
func (j *Journal) SetSync(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sync = on
}

// Path returns the journal's file path ("" for plain-writer journals).
func (j *Journal) Path() string { return j.path }

// Append journals one command. For sync-enabled file journals the record
// is durable when Append returns; buffered journals require a Flush. A
// failed append leaves the journal's sequence counter unchanged, and for
// unbuffered file journals any partially written bytes are truncated
// away, so the caller can retry without leaving a gap or corrupting the
// file. When that self-repair is impossible (plain-writer journal with
// partial bytes emitted, or the truncate itself failed) the journal
// refuses all further appends instead of concatenating onto damaged
// data. Buffered appends touch only memory and cannot fail past
// encoding.
func (j *Journal) Append(op string, args any) error {
	_, err := j.AppendSeq(op, args)
	return err
}

// AppendSeq is Append returning the sequence number the record received.
func (j *Journal) AppendSeq(op string, args any) (int, error) {
	return j.AppendRecord(op, 0, args)
}

// encodeLocked serializes one record into lineBuf (caller holds mu).
func (j *Journal) encodeLocked(seq, epoch int, op string, args any) error {
	if j.lineEnc == nil {
		j.lineEnc = json.NewEncoder(&j.lineBuf)
		j.argsEnc = json.NewEncoder(&j.argsBuf)
	}
	j.argsBuf.Reset()
	if err := j.argsEnc.Encode(args); err != nil {
		return fmt.Errorf("persist: marshal %s args: %w", op, err)
	}
	blob := j.argsBuf.Bytes()
	blob = blob[:len(blob)-1] // drop the encoder's trailing newline
	rec := Record{Seq: seq, Epoch: epoch, Op: op, Args: blob}
	// Encode appends the newline record terminator itself.
	if err := j.lineEnc.Encode(rec); err != nil {
		return fmt.Errorf("persist: marshal record: %w", err)
	}
	return nil
}

// AppendRecord is AppendSeq with an explicit epoch reference (sharded
// journals tag data records with the control-log sequence number they
// were issued under; epoch 0 is omitted from the encoding).
func (j *Journal) AppendRecord(op string, epoch int, args any) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return 0, fmt.Errorf("persist: journal failed: a previous append left it in an unknown state")
	}
	j.lineBuf.Reset()
	if err := j.encodeLocked(j.seq+1, epoch, op, args); err != nil {
		return 0, err
	}
	if err := j.writeLocked(); err != nil {
		return 0, fmt.Errorf("persist: append: %w", err)
	}
	j.seq++
	if j.file != nil && j.sync && !j.buffered {
		if err := j.file.Sync(); err != nil {
			return 0, fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return j.seq, nil
}

// writeLocked lands lineBuf's records: into the pending buffer for
// buffered journals (no I/O, no failure), through to the backing writer
// otherwise, with the rollback semantics Append documents. The sequence
// counter is NOT advanced here.
func (j *Journal) writeLocked() error {
	if j.buffered {
		j.pending.Write(j.lineBuf.Bytes())
		return nil
	}
	n, err := j.w.Write(j.lineBuf.Bytes())
	if err != nil {
		// A failed write must not leave partial bytes for the next append
		// to concatenate onto. Roll back the fragment where possible.
		switch {
		case j.file != nil:
			if terr := j.file.Truncate(j.size); terr != nil {
				j.failed = true
			}
		case n > 0:
			// Plain writer with partial bytes emitted: unrepairable.
			j.failed = true
		}
		return err
	}
	j.size += int64(j.lineBuf.Len())
	return nil
}

// Pending is one not-yet-appended record for AppendMulti.
type Pending struct {
	// Op names the command.
	Op string
	// Epoch is the control-log reference (0 omitted on the wire).
	Epoch int
	// Args carries the command arguments (encoded at append time).
	Args any
}

// AppendMulti journals a batch of records under one lock acquisition and
// one write (plus, for sync-enabled journals, one fsync for the whole
// batch) — the throughput primitive behind SubmitBatch. Sequence numbers
// are assigned contiguously in slice order; the last one is returned. The
// append is all-or-nothing: an encoding failure before any byte is
// written leaves the journal untouched, and a failed write rolls back
// exactly like Append.
func (j *Journal) AppendMulti(recs []Pending) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return 0, fmt.Errorf("persist: journal failed: a previous append left it in an unknown state")
	}
	if len(recs) == 0 {
		return j.seq, nil
	}
	j.lineBuf.Reset()
	for i, p := range recs {
		if err := j.encodeLocked(j.seq+1+i, p.Epoch, p.Op, p.Args); err != nil {
			return 0, err
		}
	}
	if err := j.writeLocked(); err != nil {
		return 0, fmt.Errorf("persist: append batch: %w", err)
	}
	j.seq += len(recs)
	if j.file != nil && j.sync && !j.buffered {
		if err := j.file.Sync(); err != nil {
			return 0, fmt.Errorf("persist: fsync: %w", err)
		}
	}
	return j.seq, nil
}

// Flush makes every previously appended record durable: for buffered
// journals it repairs the physical tail if a previous flush failed
// (truncate to the last fsync-covered offset, re-verify), writes the
// pending records, and fsyncs; on a sync-enabled journal it degenerates
// to a plain fsync. A failed Flush keeps the pending records — the next
// Flush (or Heal) retries from a verified tail, so transient I/O errors
// do not poison the journal.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if j.file == nil {
		return nil
	}
	if j.buffered {
		if j.dirty {
			// A previous flush failed after (possibly) emitting bytes: the
			// physical tail is unknown. Truncate back to the last offset a
			// successful fsync covered and verify before re-appending.
			if err := j.file.Truncate(j.size); err != nil {
				return fmt.Errorf("persist: flush: repair tail: %w", err)
			}
			if st, err := j.file.Stat(); err != nil {
				return fmt.Errorf("persist: flush: verify tail: %w", err)
			} else if st.Size() != j.size {
				return fmt.Errorf("persist: flush: tail repair left %d bytes, want %d", st.Size(), j.size)
			}
			j.dirty = false
		}
		if j.pending.Len() > 0 {
			if _, err := j.file.Write(j.pending.Bytes()); err != nil {
				j.dirty = true
				return fmt.Errorf("persist: flush: %w", err)
			}
		}
		if err := j.file.Sync(); err != nil {
			// The kernel may have dropped the just-written pages (fsync
			// gate): mark the tail dirty so the retry rewrites them from
			// the pending buffer instead of trusting the page cache.
			j.dirty = true
			return fmt.Errorf("persist: fsync: %w", err)
		}
		j.size += int64(j.pending.Len())
		j.pending.Reset()
		return nil
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("persist: fsync: %w", err)
	}
	return nil
}

// Heal re-establishes a writable journal after flush failures: it
// re-opens the backing file, verifies the physical size against the
// durable offset (refusing when synced bytes vanished — that is data
// loss, not a transient fault), truncates any unfsynced tail, swaps the
// file handle, and flushes the retained pending records. On success the
// journal is fully durable again.
func (j *Journal) Heal() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fsys == nil {
		return j.flushLocked()
	}
	f, err := j.fsys.OpenFile(j.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: heal: reopen: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: heal: %w", err)
	}
	if st.Size() < j.size {
		f.Close()
		return fmt.Errorf("persist: heal: journal shrank to %d bytes below the durable offset %d: refusing", st.Size(), j.size)
	}
	if st.Size() > j.size {
		if err := f.Truncate(j.size); err != nil {
			f.Close()
			return fmt.Errorf("persist: heal: repair tail: %w", err)
		}
	}
	old := j.file
	if j.w == j.file {
		// Unbuffered file journals write through j.w; keep it pointed at
		// the live handle (tests may have swapped in another writer —
		// those keep theirs).
		j.w = f
	}
	j.file = f
	j.dirty = false
	j.failed = false
	if old != nil {
		_ = old.Close()
	}
	return j.flushLocked()
}

// Seq returns the sequence number of the last appended record (buffered
// records count — durability is Flush's business).
func (j *Journal) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close writes out pending records (without forcing an fsync, matching
// the pre-vfs buffered close) and closes a file-backed journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.buffered && (j.pending.Len() > 0 || j.dirty) && j.file != nil {
		if j.dirty {
			if err := j.file.Truncate(j.size); err != nil {
				j.file.Close()
				return fmt.Errorf("persist: flush on close: repair tail: %w", err)
			}
			j.dirty = false
		}
		if _, err := j.file.Write(j.pending.Bytes()); err != nil {
			j.file.Close()
			return fmt.Errorf("persist: flush on close: %w", err)
		}
		j.size += int64(j.pending.Len())
		j.pending.Reset()
	}
	if j.file != nil {
		return j.file.Close()
	}
	return nil
}

// ReadJournal parses all records from a reader. A trailing partial line
// (torn write after a crash) is tolerated and discarded; corruption in the
// middle of the journal is an error. A compacted journal (first record's
// sequence number > 1) is accepted as long as it stays contiguous.
func ReadJournal(r io.Reader) ([]Record, error) {
	return readAll(r)
}

// LoadJournal reads all records of a journal file. A missing file yields
// an empty journal.
func LoadJournal(path string) ([]Record, error) {
	return LoadJournalFS(vfs.OS(), path)
}

// LoadJournalFS is LoadJournal over an explicit filesystem.
func LoadJournalFS(fsys vfs.FS, path string) ([]Record, error) {
	f, err := vfs.Open(fsys, path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: load journal: %w", err)
	}
	defer f.Close()
	return readAll(f)
}

// TailInfo describes the boundaries and physical integrity of a scanned
// journal: the first and last intact sequence numbers (0, 0 when empty or
// missing), how many leading bytes hold intact records (a torn or corrupt
// tail lies beyond ValidSize), and whether the final intact record lost
// its newline terminator.
type TailInfo struct {
	FirstSeq  int
	LastSeq   int
	ValidSize int64
	OpenTail  bool
}

// ResumeJournal opens a file journal whose scan result the caller already
// holds (from LoadJournalSuffix), skipping the re-read OpenJournal would
// perform and repairing the physical tail exactly like OpenJournal does.
// buffered selects the group-commit mode of OpenJournalBuffered.
func ResumeJournal(path string, tail TailInfo, buffered bool) (*Journal, error) {
	return ResumeJournalFS(vfs.OS(), path, tail, buffered)
}

// ResumeJournalFS is ResumeJournal over an explicit filesystem.
func ResumeJournalFS(fsys vfs.FS, path string, tail TailInfo, buffered bool) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	if err := repairTail(f, tail); err != nil {
		f.Close()
		return nil, err
	}
	return newFileJournal(fsys, path, f, buffered, tail.LastSeq), nil
}

// LoadJournalSuffix scans the journal once and fully decodes only the
// records with Seq > afterSeq — the suffix a snapshot recovery replays.
// Records at or before afterSeq are verified for contiguity via a fast
// sequence-number probe but never materialized, so recovering a long
// journal from a recent snapshot does not pay for decoding its history.
// Torn trailing lines are tolerated exactly like ReadJournal; the
// returned TailInfo feeds ResumeJournal's tail repair.
func LoadJournalSuffix(path string, afterSeq int) ([]Record, TailInfo, error) {
	return LoadJournalSuffixFS(vfs.OS(), path, afterSeq)
}

// LoadJournalSuffixFS is LoadJournalSuffix over an explicit filesystem.
func LoadJournalSuffixFS(fsys vfs.FS, path string, afterSeq int) ([]Record, TailInfo, error) {
	f, err := vfs.Open(fsys, path)
	if os.IsNotExist(err) {
		return nil, TailInfo{}, nil
	}
	if err != nil {
		return nil, TailInfo{}, fmt.Errorf("persist: load journal: %w", err)
	}
	defer f.Close()
	return scanRecords(f, afterSeq)
}

// quickSeq extracts the sequence number from a journal line without a
// full decode. The encoder always emits {"seq":N,... first (fixed struct
// field order), so a miss only happens on hand-edited or torn lines —
// those fall back to the full decoder.
func quickSeq(line []byte) (int, bool) {
	const prefix = `{"seq":`
	if !bytes.HasPrefix(line, []byte(prefix)) {
		return 0, false
	}
	n, i, digits := 0, len(prefix), false
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		n = n*10 + int(line[i]-'0')
		digits = true
		i++
	}
	if !digits || i >= len(line) || (line[i] != ',' && line[i] != '}') {
		return 0, false
	}
	return n, true
}

func readAll(r io.Reader) ([]Record, error) {
	recs, _, err := scanRecords(r, 0)
	return recs, err
}

// scanRecords is the shared journal scanner: it validates sequence
// contiguity for every line, materializes only records with Seq >
// afterSeq (the fast quickSeq probe skips decoding the rest), tolerates a
// torn or corrupt final line, and tracks the physical extent of the
// intact prefix for tail repair.
func scanRecords(r io.Reader, afterSeq int) ([]Record, TailInfo, error) {
	var (
		recs    []Record
		tail    TailInfo
		lineErr error // candidate torn-tail error, fatal if more data follows
		offset  int64 // bytes consumed including the current line
		advance int   // bytes the splitter consumed for the current token
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		adv, tok, err := bufio.ScanLines(data, atEOF)
		advance = adv
		return adv, tok, err
	})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		terminated := advance > len(raw) // newline (or \r\n) was consumed
		offset += int64(advance)
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			// A blank line extends the intact prefix only while no corrupt
			// line is pending: past a torn record, everything belongs to
			// the damage and must fall to the tail repair's truncation.
			if terminated && lineErr == nil {
				tail.ValidSize = offset
			}
			continue
		}
		if lineErr != nil {
			// A malformed line followed by more data is real corruption.
			return nil, TailInfo{}, lineErr
		}
		seq, quick := quickSeq(line)
		// An unterminated line is a torn-tail candidate: the sequence
		// probe alone cannot tell a complete record from a truncated one,
		// so it always takes the full decode.
		if !quick || !terminated || seq > afterSeq {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				// Possibly a torn final write; decide when we see whether
				// more lines follow.
				lineErr = fmt.Errorf("persist: corrupt record at line %d: %w", lineNo, err)
				continue
			}
			seq = rec.Seq
			if err := checkSeq(seq, tail.LastSeq, lineNo); err != nil {
				return nil, TailInfo{}, err
			}
			if seq > afterSeq {
				recs = append(recs, rec)
			}
		} else if err := checkSeq(seq, tail.LastSeq, lineNo); err != nil {
			return nil, TailInfo{}, err
		}
		if tail.FirstSeq == 0 {
			tail.FirstSeq = seq
		}
		tail.LastSeq = seq
		tail.ValidSize = offset
		tail.OpenTail = !terminated
	}
	if err := sc.Err(); err != nil {
		return nil, TailInfo{}, fmt.Errorf("persist: read journal: %w", err)
	}
	return recs, tail, nil
}

// checkSeq enforces contiguity relative to the previous record: a
// compacted journal starts past 1 but must not skip within itself.
func checkSeq(seq, last, lineNo int) error {
	if last > 0 {
		if want := last + 1; seq != want {
			return fmt.Errorf("persist: journal gap at line %d: seq %d, want %d", lineNo, seq, want)
		}
	} else if seq < 1 {
		return fmt.Errorf("persist: invalid seq %d at line %d", seq, lineNo)
	}
	return nil
}

// Applier replays one journaled command; the facade implements it.
type Applier func(op string, args json.RawMessage) error

// Replay feeds every record to the applier in order.
func Replay(recs []Record, apply Applier) error {
	for _, rec := range recs {
		if err := apply(rec.Op, rec.Args); err != nil {
			return fmt.Errorf("persist: replay record %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	return nil
}
