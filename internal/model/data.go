package model

import "fmt"

// DataType enumerates the primitive types of data elements.
type DataType uint8

const (
	TypeString DataType = iota
	TypeInt
	TypeBool
	TypeFloat
)

var dataTypeNames = [...]string{
	TypeString: "string",
	TypeInt:    "int",
	TypeBool:   "bool",
	TypeFloat:  "float",
}

func (t DataType) String() string {
	if int(t) < len(dataTypeNames) {
		return dataTypeNames[t]
	}
	return fmt.Sprintf("data-type(%d)", uint8(t))
}

// ZeroValue returns the zero value of the data type, used when optional
// parameters are read before any activity has written the element.
func (t DataType) ZeroValue() any {
	switch t {
	case TypeInt:
		return int64(0)
	case TypeBool:
		return false
	case TypeFloat:
		return float64(0)
	default:
		return ""
	}
}

// DataElement is a typed process variable. Activities exchange information
// exclusively through data elements connected by data edges, which is what
// makes data flow analyzable at buildtime.
type DataElement struct {
	ID   string
	Name string
	Type DataType
}

// Clone returns a copy of the data element.
func (d *DataElement) Clone() *DataElement {
	c := *d
	return &c
}

// DataAccess distinguishes read and write data edges.
type DataAccess uint8

const (
	Read DataAccess = iota
	Write
)

func (a DataAccess) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// DataEdge connects an activity parameter to a data element.
type DataEdge struct {
	Activity string
	Element  string
	Access   DataAccess

	// Parameter is the name of the activity parameter mapped to the
	// element.
	Parameter string

	// Mandatory marks read edges whose parameter must be supplied: the
	// activity cannot start unless some completed activity has written the
	// element. The buildtime data flow check guarantees a writer exists on
	// every path; the runtime enforces it again defensively.
	Mandatory bool
}

// Key identifies a data edge within a schema.
func (d *DataEdge) Key() DataEdgeKey {
	return DataEdgeKey{Activity: d.Activity, Element: d.Element, Access: d.Access, Parameter: d.Parameter}
}

// Clone returns a copy of the data edge.
func (d *DataEdge) Clone() *DataEdge {
	c := *d
	return &c
}

func (d *DataEdge) String() string {
	if d.Access == Write {
		return fmt.Sprintf("%s --%s--> %s", d.Activity, d.Parameter, d.Element)
	}
	return fmt.Sprintf("%s <--%s-- %s", d.Activity, d.Parameter, d.Element)
}

// DataEdgeKey identifies a data edge.
type DataEdgeKey struct {
	Activity  string
	Element   string
	Access    DataAccess
	Parameter string
}
