package model

import "fmt"

// EdgeType enumerates the edge kinds of the ADEPT2 meta model.
type EdgeType uint8

const (
	// EdgeControl is a regular control flow edge.
	EdgeControl EdgeType = iota
	// EdgeSync is a synchronization edge: its target may not start before
	// its source has completed or has been definitely skipped. Sync edges
	// order activities of different branches of a parallel block; they are
	// the ET=Sync edges of Fig. 1 of the ADEPT2 paper.
	EdgeSync
	// EdgeLoop is the back edge from a NodeLoopEnd to its NodeLoopStart.
	EdgeLoop
)

var edgeTypeNames = [...]string{
	EdgeControl: "control",
	EdgeSync:    "sync",
	EdgeLoop:    "loop",
}

func (t EdgeType) String() string {
	if int(t) < len(edgeTypeNames) {
		return edgeTypeNames[t]
	}
	return fmt.Sprintf("edge-type(%d)", uint8(t))
}

// Edge connects two schema nodes.
type Edge struct {
	From string
	To   string
	Type EdgeType

	// Code is the selection code of a control edge leaving an XOR split:
	// the split's decision selects the outgoing edge whose code matches.
	// It is 0 (and irrelevant) for all other edges.
	Code int
}

// Key returns the identity of the edge. A schema holds at most one edge
// per key; parallel edges of different types (e.g. a control and a sync
// edge between the same nodes) are distinct.
func (e *Edge) Key() EdgeKey {
	return EdgeKey{From: e.From, To: e.To, Type: e.Type}
}

// Clone returns a copy of the edge.
func (e *Edge) Clone() *Edge {
	c := *e
	return &c
}

func (e *Edge) String() string {
	switch e.Type {
	case EdgeControl:
		return fmt.Sprintf("%s->%s", e.From, e.To)
	case EdgeSync:
		return fmt.Sprintf("%s~>%s", e.From, e.To)
	default:
		return fmt.Sprintf("%s=>%s", e.From, e.To)
	}
}

// EdgeKey identifies an edge within a schema.
type EdgeKey struct {
	From string
	To   string
	Type EdgeType
}

func (k EdgeKey) String() string {
	return (&Edge{From: k.From, To: k.To, Type: k.Type}).String()
}
