package rpc

import (
	"encoding/json"
	"errors"
	"fmt"

	"adept2"
)

// Envelope is one command in wire form: the registry op name and its
// JSON args, exactly as adept2.EncodeCommand produces them and as the
// journal records them. The registry is the single codec — a command
// that round-trips through an Envelope is byte-identical to its journal
// record.
type Envelope struct {
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args"`
}

// commandRequest is the POST /v1/commands body: an Envelope plus the
// submission mode ("sync" — the default — blocks until the record is
// fsync-covered; "async" returns as soon as the mutation is applied and
// the record staged, handing back a receipt token).
type commandRequest struct {
	Envelope
	Mode string `json:"mode,omitempty"`
}

// batchRequest is the POST /v1/batch body. The run lands as one
// multi-record append and is durable when the response arrives.
type batchRequest struct {
	Commands []Envelope `json:"commands"`
}

// SubmitResult answers a command submission. Shard and Seq are the
// receipt token: the journal position the command's record received.
// Durable reports whether that position was already fsync-covered when
// the response was written — true for sync mode, usually false for
// async, where the client resolves the token against the watermark
// stream (a receipt (shard, seq) is durable exactly when the shard's
// streamed watermark reaches seq).
type SubmitResult struct {
	Op      string         `json:"op"`
	Shard   int            `json:"shard"`
	Seq     int            `json:"seq"`
	Durable bool           `json:"durable"`
	Result  *ResultSummary `json:"result,omitempty"`
}

// ResultSummary is a command's typed result projected onto the wire
// (nil for commands without one).
type ResultSummary struct {
	Instance *InstanceSummary `json:"instance,omitempty"`
	Report   *ReportSummary   `json:"report,omitempty"`
}

// BatchResponse answers POST /v1/batch: one ResultSummary per applied
// command (the applied prefix on error — its journal records are
// durable even when a later command failed) and the in-band error
// envelope of the first failure, if any. The HTTP status is 200
// whenever the batch was dispatched, because partial results matter.
type BatchResponse struct {
	Results []*ResultSummary `json:"results"`
	Error   *WireError       `json:"error,omitempty"`
}

// WireError is the error envelope every non-2xx response carries under
// an "error" key: the taxonomy code, the op/instance context, whether
// the mutation was applied despite the error, and the flattened
// message. Clients rehydrate it into an *adept2.Error so errors.Is
// works across the network hop.
type WireError struct {
	Code     string `json:"code"`
	Op       string `json:"op,omitempty"`
	Instance string `json:"instance,omitempty"`
	Applied  bool   `json:"applied,omitempty"`
	Message  string `json:"message"`
}

// errorBody is the envelope wrapper of every error response.
type errorBody struct {
	Error *WireError `json:"error"`
}

// toWireError projects an error onto the envelope and its HTTP status.
func toWireError(err error) (*WireError, int) {
	var ae *adept2.Error
	if errors.As(err, &ae) {
		return &WireError{
			Code:     string(ae.Code),
			Op:       ae.Op,
			Instance: ae.Instance,
			Applied:  ae.Applied,
			Message:  err.Error(),
		}, ae.Code.HTTPStatus()
	}
	return &WireError{Code: string(adept2.CodeInternal), Message: err.Error()},
		adept2.CodeInternal.HTTPStatus()
}

// Err rehydrates the envelope into the taxonomy error the in-process
// API would have returned: errors.Is(err, adept2.ErrNotFound) (and
// every other sentinel) holds on the client exactly when it held on
// the server.
func (we *WireError) Err() error {
	return &adept2.Error{
		Code:     adept2.Code(we.Code),
		Op:       we.Op,
		Instance: we.Instance,
		Applied:  we.Applied,
		Err:      errors.New(we.Message),
	}
}

// WatermarkEvent is one line of the GET /v1/watermarks NDJSON stream:
// shard's durable watermark advanced to Durable. Err/Code report a
// wedged durability pipeline (the stream ends after an error event).
// Final marks the post-drain emission: the server synced every staged
// record and this is the shard's closing watermark.
type WatermarkEvent struct {
	Shard   int    `json:"shard"`
	Durable int    `json:"durable,omitempty"`
	Err     string `json:"err,omitempty"`
	Code    string `json:"code,omitempty"`
	Final   bool   `json:"final,omitempty"`
}

// WatermarksSnapshot answers GET /v1/watermarks?once=1: every shard's
// durable watermark, indexed by shard.
type WatermarksSnapshot struct {
	Durable []int `json:"durable"`
}

// ControlLogEvent is one line of the GET /v1/control-log?follow=1
// NDJSON stream: a durable control-log record, an error, or the Final
// watermark emitted on drain.
type ControlLogEvent struct {
	Record    *adept2.WireRecord `json:"record,omitempty"`
	Watermark int                `json:"watermark,omitempty"`
	Err       string             `json:"err,omitempty"`
	Code      string             `json:"code,omitempty"`
	Final     bool               `json:"final,omitempty"`
}

// ControlLogPage answers the non-follow GET /v1/control-log read: the
// durable suffix after the requested sequence number and the watermark
// the read was gated on (resume from it).
type ControlLogPage struct {
	Records   []adept2.WireRecord `json:"records"`
	Watermark int                 `json:"watermark"`
}

// InstanceSummary is one instance's wire projection.
type InstanceSummary struct {
	ID         string `json:"id"`
	Type       string `json:"type"`
	Version    int    `json:"version"`
	Done       bool   `json:"done,omitempty"`
	Suspended  bool   `json:"suspended,omitempty"`
	Biased     bool   `json:"biased,omitempty"`
	Migrations int    `json:"migrations,omitempty"`
}

func instanceSummary(inst *adept2.Instance) *InstanceSummary {
	return &InstanceSummary{
		ID:         inst.ID(),
		Type:       inst.TypeName(),
		Version:    inst.Version(),
		Done:       inst.Done(),
		Suspended:  inst.Suspended(),
		Biased:     inst.Biased(),
		Migrations: inst.Migrations(),
	}
}

// InstanceDetail answers GET /v1/instances/{id}.
type InstanceDetail struct {
	InstanceSummary
	HistoryLen int              `json:"historyLen"`
	Deadlines  map[string]int64 `json:"deadlines,omitempty"`
}

// InstancePage is one cursor page of instances.
type InstancePage struct {
	Instances []*InstanceSummary `json:"instances"`
	Next      string             `json:"next,omitempty"`
}

// WorkItemSummary is one worklist item's wire projection.
type WorkItemSummary struct {
	ID        string   `json:"id"`
	Instance  string   `json:"instance"`
	Node      string   `json:"node"`
	Role      string   `json:"role,omitempty"`
	Offered   []string `json:"offered,omitempty"`
	ClaimedBy string   `json:"claimedBy,omitempty"`
	State     string   `json:"state"`
}

func workItemSummary(it *adept2.WorkItem) *WorkItemSummary {
	return &WorkItemSummary{
		ID:        it.ID,
		Instance:  it.Instance,
		Node:      it.Node,
		Role:      it.Role,
		Offered:   it.Offered,
		ClaimedBy: it.ClaimedBy,
		State:     it.State.String(),
	}
}

// WorkItemPage is one cursor page of a user's worklist.
type WorkItemPage struct {
	Items []*WorkItemSummary `json:"items"`
	Next  string             `json:"next,omitempty"`
}

// ExceptionSummary is one open exception's wire projection.
type ExceptionSummary struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	Kind     string `json:"kind"`
	Reason   string `json:"reason,omitempty"`
	Failures int    `json:"failures"`
	Err      string `json:"err,omitempty"`
}

// ExceptionList answers GET /v1/exceptions.
type ExceptionList struct {
	Exceptions []ExceptionSummary `json:"exceptions"`
}

// HealthSummary answers GET /v1/healthz (status 200 healthy, 503
// wedged or draining). Shards sizes a client's watermark tracking.
type HealthSummary struct {
	Healthy      bool   `json:"healthy"`
	Shards       int    `json:"shards"`
	Instances    int    `json:"instances"`
	WedgedShards []int  `json:"wedgedShards,omitempty"`
	Err          string `json:"err,omitempty"`
	Draining     bool   `json:"draining,omitempty"`
}

// ReportSummary is a migration report's wire projection.
type ReportSummary struct {
	Type         string         `json:"type"`
	From         int            `json:"from"`
	To           int            `json:"to"`
	Total        int            `json:"total"`
	Outcomes     map[string]int `json:"outcomes,omitempty"`
	ElapsedNanos int64          `json:"elapsedNanos"`
}

func reportSummary(rep *adept2.MigrationReport) *ReportSummary {
	rs := &ReportSummary{
		Type:         rep.TypeName,
		From:         rep.FromVersion,
		To:           rep.ToVersion,
		Total:        len(rep.Results),
		ElapsedNanos: rep.Elapsed.Nanoseconds(),
	}
	for _, res := range rep.Results {
		if rs.Outcomes == nil {
			rs.Outcomes = map[string]int{}
		}
		rs.Outcomes[res.Outcome.String()]++
	}
	return rs
}

// resultSummary projects a command's in-process result onto the wire.
func resultSummary(res any) *ResultSummary {
	switch t := res.(type) {
	case *adept2.Instance:
		return &ResultSummary{Instance: instanceSummary(t)}
	case *adept2.MigrationReport:
		return &ResultSummary{Report: reportSummary(t)}
	case nil:
		return nil
	default:
		return nil
	}
}

// codeOf extracts the taxonomy code of an error (CodeInternal for
// foreign errors), mirroring the facade's classification.
func codeOf(err error) adept2.Code {
	var ae *adept2.Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return adept2.CodeInternal
}

// decodeErr wraps a wire decode failure as ErrInvalid.
func decodeErr(what string, err error) error {
	return &adept2.Error{Code: adept2.CodeInvalid, Op: "rpc",
		Err: fmt.Errorf("rpc: malformed %s: %w", what, err)}
}
