package change

import (
	"fmt"

	"adept2/internal/engine"
	"adept2/internal/fault"
	"adept2/internal/verify"
)

// StructuralError describes a structural conflict: the changed schema
// would violate the buildtime guarantees (e.g. a deadlock-causing cycle).
type StructuralError struct {
	Reason string
}

func (e *StructuralError) Error() string {
	return "change: structural conflict: " + e.Reason
}

// ApplyAdHoc performs an ad-hoc change of a single running instance — the
// paper's first change dimension. The change is atomic: operations are
// applied to a trial materialization first, the full buildtime verifier
// runs on the result, and the per-operation state conditions are checked
// against the instance; only if everything holds is the bias committed to
// the instance's storage representation and the marking adapted. On any
// failure the instance is untouched.
func ApplyAdHoc(inst *engine.Instance, ops ...Operation) error {
	if len(ops) == 0 {
		return fault.Tagf(fault.Invalid, "change: ad-hoc change without operations")
	}
	return inst.Mutate(func(mx *engine.Mutable) error {
		if mx.Done() {
			return fault.Tagf(fault.Completed, "change: instance %s already completed", inst.ID())
		}
		// 1. Trial application on a scratch copy.
		trial, err := mx.TrialSchema()
		if err != nil {
			return err
		}
		for _, op := range ops {
			if err := op.ApplyTo(trial); err != nil {
				return fault.Tag(fault.Invalid, err)
			}
		}
		// 2. The changed schema must satisfy every buildtime guarantee.
		if res := verify.Check(trial); !res.OK() {
			return fault.Tag(fault.NotCompliant, &StructuralError{Reason: res.Err().Error()})
		}
		// 3. State conditions against the live instance.
		view, err := mx.View()
		if err != nil {
			return err
		}
		ctx := &Context{View: view, Marking: mx.Marking(), Stats: mx.Stats(), Store: mx.Store()}
		for _, op := range ops {
			if err := op.FastCompliance(ctx); err != nil {
				return fault.Tag(fault.NotCompliant, err)
			}
		}
		// 4. Commit to the persistent representation.
		if target := mx.PersistentTarget(); target != nil {
			for _, op := range ops {
				if err := op.ApplyTo(target); err != nil {
					// The trial succeeded, so this indicates corruption.
					return fmt.Errorf("change: commit failed after successful trial: %w", err)
				}
			}
		}
		biasOps := make([]engine.BiasOp, len(ops))
		for i, op := range ops {
			biasOps[i] = op
		}
		if err := mx.CommitBias(biasOps...); err != nil {
			return err
		}
		// 5. Automatic state adaptation.
		_, err = mx.AdaptState()
		return err
	})
}

// AsOperations converts recorded engine bias ops back to change
// operations. It fails if a foreign BiasOp implementation sneaked in.
func AsOperations(biasOps []engine.BiasOp) ([]Operation, error) {
	ops := make([]Operation, len(biasOps))
	for i, b := range biasOps {
		op, ok := b.(Operation)
		if !ok {
			return nil, fmt.Errorf("change: bias op %T is not a change operation", b)
		}
		ops[i] = op
	}
	return ops, nil
}
