package obs

import (
	"fmt"
	"sync"
	"testing"
)

// selfSpan builds a span whose every field is derived from one counter,
// so a reader can detect a torn read (fields from two different
// publishes mixed in one span) by cross-checking.
func selfSpan(i uint64) Span {
	return Span{
		Op:          fmt.Sprintf("op-%d", i),
		Instance:    fmt.Sprintf("inst-%d", i),
		Seq:         int(i),
		SubmitNanos: int64(i) * 1_000,
	}
}

func checkSelfSpan(t *testing.T, sp Span) uint64 {
	t.Helper()
	i := uint64(sp.Seq)
	if want := selfSpan(i); sp != want {
		t.Fatalf("torn span: %+v, want %+v", sp, want)
	}
	return i
}

// TestExportIncrementalDrain: Export delivers published spans
// oldest-first exactly once across a cursor chain, reports loss (spans
// lapped while the reader was away) by omission, and makes cursor
// progress on an idle ring.
func TestExportIncrementalDrain(t *testing.T) {
	r := NewTraceRing(4, 1)
	if sp, next := r.Export(0); sp != nil || next != 0 {
		t.Fatalf("empty ring: %v %d", sp, next)
	}

	for i := uint64(1); i <= 3; i++ {
		r.Publish(selfSpan(i))
	}
	spans, next := r.Export(0)
	if len(spans) != 3 || next != 3 {
		t.Fatalf("first drain: %d spans, cursor %d", len(spans), next)
	}
	for k, sp := range spans {
		if got := checkSelfSpan(t, sp); got != uint64(k+1) {
			t.Fatalf("out of order: %d at %d", got, k)
		}
	}

	// Nothing new: same cursor back, no duplicates.
	if spans, next = r.Export(next); len(spans) != 0 || next != 3 {
		t.Fatalf("idle drain: %d spans, cursor %d", len(spans), next)
	}

	// Publish 6 more into a 4-slot ring: seqs 4..9, of which only 6..9
	// survive. The drain from cursor 3 must deliver exactly those,
	// silently skipping the lapped 4 and 5.
	for i := uint64(4); i <= 9; i++ {
		r.Publish(selfSpan(i))
	}
	spans, next = r.Export(next)
	if len(spans) != 4 || next != 9 {
		t.Fatalf("lapped drain: %d spans, cursor %d", len(spans), next)
	}
	for k, sp := range spans {
		if got := checkSelfSpan(t, sp); got != uint64(k+6) {
			t.Fatalf("lapped drain delivered seq %d at %d", got, k)
		}
	}

	// A nil ring exports nothing and returns the cursor unchanged.
	var nilRing *TraceRing
	if sp, next := nilRing.Export(7); sp != nil || next != 7 {
		t.Fatalf("nil ring: %v %d", sp, next)
	}
}

// TestExportTearFreeUnderWriters is the satellite acceptance test: many
// goroutines publish self-consistent spans while a reader drains with a
// cursor chain. Every exported span must be internally consistent (no
// torn reads mixing two publishes) and no publish sequence may be
// delivered twice across the whole chain. Run under -race in CI.
func TestExportTearFreeUnderWriters(t *testing.T) {
	r := NewTraceRing(8, 1)
	const writers, perWriter = 4, 500

	var wg sync.WaitGroup
	var mu sync.Mutex
	ticket := uint64(0)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWriter; n++ {
				mu.Lock()
				ticket++
				i := ticket
				mu.Unlock()
				r.Publish(selfSpan(i))
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[uint64]bool)
	cursor := uint64(0)
	drain := func() {
		spans, next := r.Export(cursor)
		if next < cursor {
			t.Errorf("cursor went backward: %d -> %d", cursor, next)
		}
		cursor = next
		for _, sp := range spans {
			i := checkSelfSpan(t, sp)
			if seen[i] {
				t.Fatalf("span %d delivered twice", i)
			}
			seen[i] = true
		}
	}
	for {
		select {
		case <-done:
			drain() // final drain after all writers quiesce
			// With quiesced writers, the last ring-capacity spans are
			// exactly the highest ticket numbers — but Publish's counter
			// reservation and slot write are not one atomic step, so only
			// the final drain is guaranteed complete. It must have seen
			// the very last span.
			if total := uint64(writers * perWriter); !seen[total] {
				t.Fatalf("final drain missed the last span %d", total)
			}
			return
		default:
			drain()
		}
	}
}
