// Package org implements the ADEPT2 organizational model: users, roles,
// and org units. Staff assignments on activities reference roles; the
// worklist manager resolves them to concrete users through this model.
package org

import (
	"sort"
	"sync"

	"adept2/internal/fault"
)

// User is an organizational agent.
type User struct {
	ID    string   `json:"id"`
	Name  string   `json:"name"`
	Roles []string `json:"roles"`
	Unit  string   `json:"unit,omitempty"`
}

// Model is a thread-safe registry of users and roles.
type Model struct {
	mu    sync.RWMutex
	users map[string]*User
	roles map[string][]string // role -> user IDs (sorted)
}

// NewModel returns an empty organizational model.
func NewModel() *Model {
	return &Model{
		users: make(map[string]*User),
		roles: make(map[string][]string),
	}
}

// AddUser registers a user.
func (m *Model) AddUser(u *User) error {
	if u == nil || u.ID == "" {
		return fault.Tagf(fault.Invalid, "org: add user: empty ID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.users[u.ID]; dup {
		return fault.Tagf(fault.Conflict, "org: add user %q: duplicate ID", u.ID)
	}
	cp := *u
	cp.Roles = append([]string(nil), u.Roles...)
	m.users[u.ID] = &cp
	for _, r := range cp.Roles {
		m.roles[r] = insertSorted(m.roles[r], u.ID)
	}
	return nil
}

// User looks up a user by ID.
func (m *Model) User(id string) (*User, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	u, ok := m.users[id]
	return u, ok
}

// UsersInRole returns the IDs of all users holding the role, sorted.
func (m *Model) UsersInRole(role string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.roles[role]...)
}

// HasRole reports whether the user holds the role.
func (m *Model) HasRole(userID, role string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	u, ok := m.users[userID]
	if !ok {
		return false
	}
	for _, r := range u.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Roles returns all known roles, sorted.
func (m *Model) Roles() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rs := make([]string, 0, len(m.roles))
	for r := range m.roles {
		rs = append(rs, r)
	}
	sort.Strings(rs)
	return rs
}

// Clone returns a deep copy of the model. Recovery restores snapshots
// into a clone so a failed attempt cannot leak users into the model the
// fallback attempt starts from.
func (m *Model) Clone() *Model {
	c := NewModel()
	for _, u := range m.AllUsers() {
		_ = c.AddUser(u) // users from a valid model re-add cleanly
	}
	return c
}

// AllUsers returns deep copies of all users, sorted by ID — the stable
// serialized form snapshots record.
func (m *Model) AllUsers() []*User {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*User, 0, len(m.users))
	for _, u := range m.users {
		cp := *u
		cp.Roles = append([]string(nil), u.Roles...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Users returns all user IDs, sorted.
func (m *Model) Users() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := make([]string, 0, len(m.users))
	for id := range m.users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func insertSorted(ss []string, s string) []string {
	i := sort.SearchStrings(ss, s)
	if i < len(ss) && ss[i] == s {
		return ss
	}
	ss = append(ss, "")
	copy(ss[i+1:], ss[i:])
	ss[i] = s
	return ss
}
