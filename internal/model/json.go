package model

import (
	"encoding/json"
	"fmt"
)

// schemaJSON is the serialized form of a Schema. The element order is the
// schema's stable insertion order, so marshalling round-trips exactly.
type schemaJSON struct {
	ID        string         `json:"id"`
	TypeName  string         `json:"type"`
	Version   int            `json:"version"`
	Nodes     []*Node        `json:"nodes"`
	Edges     []*Edge        `json:"edges"`
	Data      []*DataElement `json:"data,omitempty"`
	DataEdges []*DataEdge    `json:"dataEdges,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schema) MarshalJSON() ([]byte, error) {
	return json.Marshal(schemaJSON{
		ID:        s.id,
		TypeName:  s.typeName,
		Version:   s.version,
		Nodes:     s.Nodes(),
		Edges:     s.edges,
		Data:      s.DataElements(),
		DataEdges: s.dataEdges,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schema) UnmarshalJSON(b []byte) error {
	var raw schemaJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("model: unmarshal schema: %w", err)
	}
	dec := NewSchema(raw.ID, raw.TypeName, raw.Version)
	for _, n := range raw.Nodes {
		if err := dec.AddNode(n); err != nil {
			return err
		}
	}
	for _, e := range raw.Edges {
		if err := dec.AddEdge(e); err != nil {
			return err
		}
	}
	for _, d := range raw.Data {
		if err := dec.AddDataElement(d); err != nil {
			return err
		}
	}
	for _, de := range raw.DataEdges {
		if err := dec.AddDataEdge(de); err != nil {
			return err
		}
	}
	*s = *dec
	return nil
}
