// Package obs is the engine's dependency-free telemetry core: atomic
// counters, gauges, and fixed-bucket histograms (cache-line padded, one
// branch when disabled), a sampled command-lifecycle trace ring, a typed
// Snapshot, and a Prometheus text renderer. The facade owns one Set per
// System and threads its families through every layer; internal/durable
// receives only the nil-safe CommitterMetrics slice of it.
//
// # Design rules
//
//   - Hot-path recording never allocates and never takes a lock: one
//     atomic add per counter, three per histogram observation, one
//     per-slot mutex only when a sampled span publishes.
//   - Disabled (the nil *Set) turns the plane off entirely: every
//     recording method is nil-receiver-safe and the facade skips its
//     clock reads behind the same nil check, so the off path is
//     allocation-free and costs one predictable branch.
//   - Replay and recovery NEVER record live-path metrics — the same
//     discipline as the live-only argsEncoder: the facade installs the
//     Set only after recovery completes, and replay bypasses Submit
//     entirely. The only recovery-visible family is RecoveryMetrics,
//     recorded once, after the fact.
//   - Timestamps in trace spans come from the system's injected clock
//     (the one that stamps journal records), so deterministic soaks
//     produce deterministic spans; durations (latency, fsync, sweep)
//     come from the runtime monotonic clock.
//
// # Naming conventions
//
// Prometheus families are prefixed adept2_, counters end in _total,
// histogram time is exposed in seconds (stored in nanoseconds;
// *_seconds histograms), sizes are unit-suffixed (e.g. _records,
// _commands), and instantaneous values are plain gauges. Label spaces
// are fixed at Set construction: op (command registry name), code
// (error taxonomy; "ok" for success), shard, action.
//
// # Metric catalogue
//
// Submit plane:
//
//	adept2_submit_total{op,code}         counter    commands by outcome
//	adept2_submit_latency_seconds{op}    histogram  synchronous apply+stage latency (singular ok submits)
//	adept2_batch_commands                histogram  data commands per SubmitBatch run
//	adept2_batch_append_seconds          histogram  append+durability wait per SubmitBatch run
//	adept2_shard_appends_total{shard}    counter    live-path records staged per shard
//	adept2_shard_seq{shard}              gauge      journal head sequence
//	adept2_shard_append_depth{shard}     gauge      staged-but-unflushed backlog
//	adept2_shard_wedged{shard}           gauge      1 while the shard committer is wedged
//
// Durability plane:
//
//	adept2_committer_fsync_seconds       histogram  flush attempt duration
//	adept2_committer_batch_records       histogram  records per successful flush
//	adept2_committer_flush_retries_total counter    retry attempts absorbed
//	adept2_committer_wedges_total        counter    wedge transitions
//	adept2_committer_heals_total         counter    successful heals
//	adept2_checkpoint_total              counter    checkpoint attempts
//	adept2_checkpoint_failures_total     counter    failed attempts
//	adept2_checkpoint_seconds            histogram  checkpoint duration
//	adept2_snapshot_bytes_written_total  counter    snapshot bytes written
//	adept2_snapshot_bytes_read_total     counter    snapshot bytes read (recovery)
//	adept2_recovery_seconds_total        counter    Open-time recovery duration
//	adept2_recovery_replayed_total       counter    records replayed
//	adept2_recovery_fallbacks_total      counter    rejected snapshots/generations
//	adept2_recovery_full_replays_total   counter    full-replay recoveries
//
// Exception plane:
//
//	adept2_exception_failures_total        counter  fail commands applied
//	adept2_exception_timeouts_total        counter  timeout commands applied
//	adept2_exception_retries_total         counter  retry commands applied
//	adept2_exception_escalations_total     counter  deadline expiries fired
//	adept2_exception_policy_actions_total{action} counter policy decisions
//	adept2_exception_compensated_total     counter  sweep compensations
//	adept2_sweep_total                     counter  sweeps run
//	adept2_sweep_errors_total              counter  non-moot sweep errors
//	adept2_sweep_seconds                   histogram sweep duration
//	adept2_sweep_lag_seconds               gauge    timer sweep due-to-done lag
//
// Engine and health gauges:
//
//	adept2_instances, adept2_worklist_depth, adept2_open_exceptions
//	adept2_wedged, adept2_checkpoint_failing,
//	adept2_cleanup_errors_total, adept2_flush_retries_total
//
// The same data is exposed as JSON (Snapshot's struct tags) at
// /metrics.json and through System.Metrics(); the trace ring rides the
// snapshot as Traces.
package obs
