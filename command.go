package adept2

import (
	"encoding/json"
	"fmt"

	"adept2/internal/change"
	"adept2/internal/engine"
	"adept2/internal/evolution"
	"adept2/internal/fault"
	"adept2/internal/rollback"
)

// Command is one typed, journal-able state mutation of a System. Every
// mutation — instance execution, ad-hoc change, schema evolution, org and
// deployment changes — is a value implementing Command, submitted through
// Submit, SubmitAsync, or SubmitBatch (the legacy façade methods are thin
// wrappers over Submit). One registry owns each command's journal name,
// JSON codec, control/data classification, and engine application, and
// the SAME table drives both the live path and crash-recovery replay, so
// a command type cannot drift between execution and recovery.
//
// Commands are defined by this package; foreign implementations are
// rejected with ErrInvalid.
type Command interface {
	// CommandName returns the command's registry name. It doubles as the
	// journal op for every command except Resume (journaled as "suspend"
	// with a resume flag, for wire compatibility with earlier releases).
	CommandName() string
}

// command is the internal contract behind Command: classification and the
// single apply routine shared by the live path and recovery replay.
type command interface {
	Command
	// control reports whether the command journals to the control log
	// (shard 0 in a sharded layout) and needs the exclusive barrier
	// there: it mutates state every instance may depend on.
	control() bool
	// target returns the instance ID the command addresses, for error
	// reporting ("" for control commands and unrouted creates).
	target() string
	// opIndex returns the command's position in the per-op metric
	// arrays (see metrics.go) — a compile-time constant per type, so
	// the hot path indexes without a map lookup. Resume has its own
	// index even though it journals as "suspend".
	opIndex() int
	// run validates the command and applies it to the engine. It returns
	// the effect: the caller-visible result, the instance the journal
	// record routes on, and the wire op/args to journal. run never
	// journals — Submit and replay decide that.
	run(s *System) (effect, error)
}

// argsEncoder is implemented by commands whose wire form takes encoding
// work beyond the command struct itself (change-op serialization). It
// runs on the live path only — run leaves effect.args nil and replay
// never re-encodes what it just decoded.
type argsEncoder interface {
	encodeArgs() (any, error)
}

// finishEffect fills a nil effect.args from the command's encoder (the
// live path's pre-journal step).
func finishEffect(c command, eff *effect) error {
	if eff.args != nil || eff.op == "" {
		return nil
	}
	enc, ok := c.(argsEncoder)
	if !ok {
		return fmt.Errorf("adept2: command %s produced no journal args", c.CommandName())
	}
	args, err := enc.encodeArgs()
	if err != nil {
		return err
	}
	eff.args = args
	return nil
}

// effect is what applying a command produced and what must be journaled.
type effect struct {
	result any    // returned to the submitter (nil for most commands)
	inst   string // routing instance ("" = control record)
	op     string // journal op
	args   any    // journal args (wire form)
}

// cmdSpec is one registry row.
type cmdSpec struct {
	op      string
	control bool
	decode  func(json.RawMessage) (command, error)
}

// registry maps journal op names to their spec. It is the single source
// of truth consumed by System.apply (replay), Submit (classification),
// and the sharded WAL's control/data routing.
var registry = map[string]*cmdSpec{}

func register(op string, control bool, decode func(json.RawMessage) (command, error)) {
	registry[op] = &cmdSpec{op: op, control: control, decode: decode}
}

// decodeJSON builds the standard decoder for commands whose wire form is
// the command struct itself.
func decodeJSON[T any, P interface {
	*T
	command
}]() func(json.RawMessage) (command, error) {
	return func(raw json.RawMessage) (command, error) {
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return P(&v), nil
	}
}

func init() {
	register("user", true, decodeJSON[AddUser]())
	register("deploy", true, decodeJSON[Deploy]())
	register("evolve", true, decodeEvolve)
	register("create", false, decodeJSON[CreateInstance]())
	register("start", false, decodeJSON[StartActivity]())
	register("fail", false, decodeJSON[FailActivity]())
	register("timeout", false, decodeJSON[TimeoutActivity]())
	register("retry", false, decodeJSON[RetryActivity]())
	register("complete", false, decodeJSON[CompleteActivity]())
	register("adhoc", false, decodeAdHoc)
	register("suspend", false, decodeSuspend)
	register("undo", false, decodeJSON[Undo]())
}

// isControlOp classifies journal ops that belong to the shard-0 control
// log: commands that change shared state every instance may depend on
// (schemas, users) or mutate instances across shards (evolutions).
func isControlOp(op string) bool {
	spec, ok := registry[op]
	return ok && spec.control
}

// decodeCommand resolves a journal record to its typed command.
func decodeCommand(op string, args json.RawMessage) (command, error) {
	spec, ok := registry[op]
	if !ok {
		return nil, fmt.Errorf("adept2: unknown journal op %q", op)
	}
	return spec.decode(args)
}

// apply replays one journaled command (crash recovery): the same decode +
// run the live path uses, minus the journaling.
func (s *System) apply(op string, args json.RawMessage) error {
	cmd, err := decodeCommand(op, args)
	if err != nil {
		return err
	}
	_, err = cmd.run(s)
	return err
}

// --- typed commands ---

// AddUser registers a user in the organizational model (journaled, unlike
// direct Org() mutation).
type AddUser struct {
	User *User `json:"user"`
}

func (*AddUser) CommandName() string { return "user" }
func (*AddUser) control() bool       { return true }
func (*AddUser) opIndex() int        { return opUser }
func (*AddUser) target() string      { return "" }

func (c *AddUser) run(s *System) (effect, error) {
	if err := s.eng.Org().AddUser(c.User); err != nil {
		return effect{}, err
	}
	return effect{op: "user", args: c}, nil
}

// Deploy verifies and registers a schema version.
type Deploy struct {
	Schema *Schema `json:"schema"`
}

func (*Deploy) CommandName() string { return "deploy" }
func (*Deploy) control() bool       { return true }
func (*Deploy) opIndex() int        { return opDeploy }
func (*Deploy) target() string      { return "" }

func (c *Deploy) run(s *System) (effect, error) {
	if c.Schema == nil {
		return effect{}, fault.Tagf(fault.Invalid, "adept2: deploy: nil schema")
	}
	if err := s.eng.Deploy(c.Schema); err != nil {
		return effect{}, err
	}
	return effect{op: "deploy", args: c}, nil
}

// CreateInstance instantiates a process type. Version 0 selects the
// latest deployed version. ID is normally left empty — the engine assigns
// one, and Submit returns the *Instance — but an explicit ID is honored
// (recovery replay uses this to reproduce the original assignment).
type CreateInstance struct {
	TypeName string `json:"type"`
	Version  int    `json:"version"`
	ID       string `json:"id,omitempty"`
}

func (*CreateInstance) CommandName() string { return "create" }
func (*CreateInstance) control() bool       { return false }
func (*CreateInstance) opIndex() int        { return opCreate }
func (c *CreateInstance) target() string    { return c.ID }

func (c *CreateInstance) run(s *System) (effect, error) {
	var (
		inst *engine.Instance
		err  error
	)
	if c.ID != "" {
		inst, err = s.eng.CreateInstanceID(c.ID, c.TypeName, c.Version)
	} else {
		inst, err = s.eng.CreateInstance(c.TypeName, c.Version)
	}
	if err != nil {
		return effect{}, err
	}
	// The record always carries the assigned ID so sharded replay
	// reproduces it under any shard interleaving (pre-PR4 records without
	// one rely on the total journal order instead).
	rec := *c
	rec.ID = inst.ID()
	return effect{result: inst, inst: inst.ID(), op: "create", args: &rec}, nil
}

// StartActivity starts an activated activity on behalf of a user. At is
// the start time in unix nanos: it arms the node's relative deadline (if
// one is modeled) and is normally left zero — the live path stamps the
// system clock onto the journal record, so recovery re-arms the
// identical absolute deadline instead of re-reading a wall clock.
type StartActivity struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	User     string `json:"user,omitempty"`
	At       int64  `json:"at,omitempty"`
}

func (*StartActivity) CommandName() string { return "start" }
func (*StartActivity) control() bool       { return false }
func (*StartActivity) opIndex() int        { return opStart }
func (c *StartActivity) target() string    { return c.Instance }

func (c *StartActivity) run(s *System) (effect, error) {
	at := c.At
	if at == 0 {
		at = s.now()
	}
	if err := s.eng.StartActivityAt(c.Instance, c.Node, c.User, at); err != nil {
		return effect{}, err
	}
	// The record always carries the stamped time so replay re-arms
	// deadlines deterministically (pre-deadline records with At 0 are
	// harmless: their schemas model no deadlines).
	rec := *c
	rec.At = at
	return effect{inst: c.Instance, op: "start", args: &rec}, nil
}

// FailActivity records a process-level failure of a running activity:
// the attempt is undone (the node reverts to activated) and purged from
// the logical history, so compliance judges the instance as if the
// attempt never ran. RetryAt > 0 suppresses the work-item re-offer until
// that time (retry backoff); Pending suppresses it until a policy
// compensation lands. System.Fail fills both from the exception policy's
// reaction; direct submitters may leave them zero for an immediate
// re-offer.
type FailActivity struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	User     string `json:"user,omitempty"`
	Reason   string `json:"reason,omitempty"`
	RetryAt  int64  `json:"retryAt,omitempty"`
	Pending  bool   `json:"pending,omitempty"`
}

func (*FailActivity) CommandName() string { return "fail" }
func (*FailActivity) control() bool       { return false }
func (*FailActivity) opIndex() int        { return opFail }
func (c *FailActivity) target() string    { return c.Instance }

func (c *FailActivity) run(s *System) (effect, error) {
	if err := s.eng.FailActivity(c.Instance, c.Node, c.User, c.Reason, c.RetryAt, c.Pending); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "fail", args: c}, nil
}

// TimeoutActivity fires the armed deadline of a running activity: a
// Timeout event is appended to the history and the work item escalates
// to the node's escalation role. The deadline sweep submits these; At
// records the sweep time for the journal's audit trail.
type TimeoutActivity struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	At       int64  `json:"at,omitempty"`
}

func (*TimeoutActivity) CommandName() string { return "timeout" }
func (*TimeoutActivity) control() bool       { return false }
func (*TimeoutActivity) opIndex() int        { return opTimeout }
func (c *TimeoutActivity) target() string    { return c.Instance }

func (c *TimeoutActivity) run(s *System) (effect, error) {
	if err := s.eng.TimeoutActivity(c.Instance, c.Node); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "timeout", args: c}, nil
}

// RetryActivity re-offers the suppressed work item of a failed activity
// (the compensating command of a Retry reaction, submitted by the sweep
// once the backoff elapses).
type RetryActivity struct {
	Instance string `json:"instance"`
	Node     string `json:"node"`
	At       int64  `json:"at,omitempty"`
}

func (*RetryActivity) CommandName() string { return "retry" }
func (*RetryActivity) control() bool       { return false }
func (*RetryActivity) opIndex() int        { return opRetry }
func (c *RetryActivity) target() string    { return c.Instance }

func (c *RetryActivity) run(s *System) (effect, error) {
	if err := s.eng.RetryActivity(c.Instance, c.Node); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "retry", args: c}, nil
}

// CompleteActivity completes a node (starting it first when merely
// activated), writes its outputs, and advances the instance. Decision
// supplies an explicit XOR routing decision; Again an explicit loop
// iteration decision. At is the completion time in unix nanos, normally
// left zero: the live path stamps the system clock onto the journal
// record (the same pattern as StartActivity.At), so the Completed
// history event's timestamp — the activity-duration substrate the
// mining layer consumes — replays bit-exactly.
type CompleteActivity struct {
	Instance string         `json:"instance"`
	Node     string         `json:"node"`
	User     string         `json:"user,omitempty"`
	Outputs  map[string]any `json:"outputs,omitempty"`
	Decision *int           `json:"decision,omitempty"`
	Again    *bool          `json:"again,omitempty"`
	At       int64          `json:"at,omitempty"`
}

func (*CompleteActivity) CommandName() string { return "complete" }
func (*CompleteActivity) control() bool       { return false }
func (*CompleteActivity) opIndex() int        { return opComplete }
func (c *CompleteActivity) target() string    { return c.Instance }

func (c *CompleteActivity) run(s *System) (effect, error) {
	at := c.At
	if at == 0 {
		at = s.now()
	}
	opts := []engine.CompleteOption{engine.WithCompletedAt(at)}
	if c.Decision != nil {
		opts = append(opts, engine.WithDecision(*c.Decision))
	}
	if c.Again != nil {
		opts = append(opts, engine.WithLoopAgain(*c.Again))
	}
	if err := s.eng.CompleteActivity(c.Instance, c.Node, c.User, c.Outputs, opts...); err != nil {
		return effect{}, err
	}
	// The record carries the stamped time so replay reproduces event
	// timestamps (pre-timestamp records decode At 0 and stay unstamped).
	rec := *c
	rec.At = at
	return effect{inst: c.Instance, op: "complete", args: &rec}, nil
}

// adHocArgs is the wire form of an ad-hoc change (ops serialized through
// the change codec).
type adHocArgs struct {
	Instance string          `json:"instance"`
	Ops      json.RawMessage `json:"ops"`
}

// AdHoc applies an ad-hoc change to a single running instance (the
// paper's instance-level change dimension).
type AdHoc struct {
	Instance string
	Ops      []Operation
}

func (*AdHoc) CommandName() string { return "adhoc" }
func (*AdHoc) control() bool       { return false }
func (*AdHoc) opIndex() int        { return opAdHoc }
func (c *AdHoc) target() string    { return c.Instance }

func (c *AdHoc) run(s *System) (effect, error) {
	inst, ok := s.eng.Instance(c.Instance)
	if !ok {
		return effect{}, fault.Tagf(fault.NotFound, "adept2: unknown instance %q", c.Instance)
	}
	if err := change.ApplyAdHoc(inst, c.Ops...); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "adhoc"}, nil
}

func (c *AdHoc) encodeArgs() (any, error) {
	blob, err := change.MarshalOps(c.Ops)
	if err != nil {
		return nil, err
	}
	return adHocArgs{Instance: c.Instance, Ops: blob}, nil
}

func decodeAdHoc(raw json.RawMessage) (command, error) {
	var a adHocArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	ops, err := change.UnmarshalOps(a.Ops)
	if err != nil {
		return nil, err
	}
	return &AdHoc{Instance: a.Instance, Ops: ops}, nil
}

// suspendArgs is the shared wire form of Suspend and Resume (one journal
// op, byte-compatible with earlier releases).
type suspendArgs struct {
	Instance string `json:"instance"`
	Resume   bool   `json:"resume,omitempty"`
}

// Suspend blocks user operations on an instance; ad-hoc changes and
// migration stay possible.
type Suspend struct {
	Instance string `json:"instance"`
}

func (*Suspend) CommandName() string { return "suspend" }
func (*Suspend) control() bool       { return false }
func (*Suspend) opIndex() int        { return opSuspend }
func (c *Suspend) target() string    { return c.Instance }

func (c *Suspend) run(s *System) (effect, error) {
	if err := s.eng.Suspend(c.Instance); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "suspend", args: suspendArgs{Instance: c.Instance}}, nil
}

// Resume re-enables user operations on a suspended instance.
type Resume struct {
	Instance string `json:"instance"`
}

func (*Resume) CommandName() string { return "resume" }
func (*Resume) control() bool       { return false }
func (*Resume) opIndex() int        { return opResume }
func (c *Resume) target() string    { return c.Instance }

func (c *Resume) run(s *System) (effect, error) {
	if err := s.eng.Resume(c.Instance); err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "suspend", args: suspendArgs{Instance: c.Instance, Resume: true}}, nil
}

func decodeSuspend(raw json.RawMessage) (command, error) {
	var a suspendArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	if a.Resume {
		return &Resume{Instance: a.Instance}, nil
	}
	return &Suspend{Instance: a.Instance}, nil
}

// Undo removes the most recent ad-hoc change of an instance (or, with
// All, its entire bias), provided it has not progressed into the changed
// region.
type Undo struct {
	Instance string `json:"instance"`
	All      bool   `json:"all,omitempty"`
}

func (*Undo) CommandName() string { return "undo" }
func (*Undo) control() bool       { return false }
func (*Undo) opIndex() int        { return opUndo }
func (c *Undo) target() string    { return c.Instance }

func (c *Undo) run(s *System) (effect, error) {
	inst, ok := s.eng.Instance(c.Instance)
	if !ok {
		return effect{}, fault.Tagf(fault.NotFound, "adept2: unknown instance %q", c.Instance)
	}
	var err error
	if c.All {
		err = rollback.UndoAll(inst)
	} else {
		err = rollback.UndoLast(inst)
	}
	if err != nil {
		return effect{}, err
	}
	return effect{inst: c.Instance, op: "undo", args: c}, nil
}

// evolveArgs is the wire form of a schema evolution.
type evolveArgs struct {
	TypeName string          `json:"type"`
	Ops      json.RawMessage `json:"ops"`
	Workers  int             `json:"workers,omitempty"`
	Mode     uint8           `json:"mode,omitempty"`
	Adapt    uint8           `json:"adapt,omitempty"`
}

// Evolve performs a schema evolution of the process type and migrates all
// compliant instances on the fly (the paper's type-level change
// dimension). Submit returns the *MigrationReport classifying every
// instance.
type Evolve struct {
	TypeName string
	Ops      []Operation
	Options  EvolveOptions
}

func (*Evolve) CommandName() string { return "evolve" }
func (*Evolve) control() bool       { return true }
func (*Evolve) opIndex() int        { return opEvolve }
func (*Evolve) target() string      { return "" }

func (c *Evolve) run(s *System) (effect, error) {
	report, err := s.mgr.Evolve(c.TypeName, c.Ops, c.Options)
	if err != nil {
		return effect{}, err
	}
	return effect{result: report, op: "evolve"}, nil
}

func (c *Evolve) encodeArgs() (any, error) {
	blob, err := change.MarshalOps(c.Ops)
	if err != nil {
		return nil, err
	}
	return evolveArgs{
		TypeName: c.TypeName,
		Ops:      blob,
		Workers:  c.Options.Workers,
		Mode:     uint8(c.Options.Mode),
		Adapt:    uint8(c.Options.Adapt),
	}, nil
}

func decodeEvolve(raw json.RawMessage) (command, error) {
	var a evolveArgs
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, err
	}
	ops, err := change.UnmarshalOps(a.Ops)
	if err != nil {
		return nil, err
	}
	return &Evolve{TypeName: a.TypeName, Ops: ops, Options: evolution.Options{
		Workers: a.Workers,
		Mode:    evolution.CheckMode(a.Mode),
		Adapt:   evolution.AdaptMode(a.Adapt),
	}}, nil
}
