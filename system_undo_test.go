package adept2_test

import (
	"path/filepath"
	"testing"

	"adept2"
	"adept2/internal/sim"
)

func TestSystemUndoAndSuspendJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.ndjson")
	sys, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sim.OnlineOrder()); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	// Two ad-hoc changes, then undo one.
	if err := sys.AdHocChange(inst.ID(), sim.OnlineOrderBiasI2()...); err != nil {
		t.Fatal(err)
	}
	if err := sys.UndoAdHocChange(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if len(inst.BiasOps()) != 1 {
		t.Fatalf("bias ops = %d", len(inst.BiasOps()))
	}
	// Suspend, verify user ops blocked, resume.
	if err := sys.Suspend(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err == nil {
		t.Fatal("suspended instance must reject completion")
	}
	if err := sys.Resume(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Complete(inst.ID(), "get_order", "ann", map[string]any{"out": "o"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.UndoAllAdHocChanges(inst.ID()); err != nil {
		t.Fatal(err)
	}
	if inst.Biased() {
		t.Fatal("instance should be unbiased")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays undo and suspend/resume to the identical state.
	sys2, err := adept2.Open(path, adept2.WithOrg(sim.Org()))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys2.Close()
	r, ok := sys2.Instance(inst.ID())
	if !ok {
		t.Fatal("instance missing")
	}
	if r.Biased() {
		t.Fatal("recovered instance should be unbiased")
	}
	if r.Suspended() {
		t.Fatal("recovered instance should not be suspended")
	}
	if len(r.HistoryEvents()) != len(inst.HistoryEvents()) {
		t.Fatal("history mismatch after recovery")
	}
	// Error paths through the facade.
	if err := sys2.UndoAdHocChange("nope"); err == nil {
		t.Fatal("unknown instance undo must fail")
	}
	if err := sys2.Suspend("nope"); err == nil {
		t.Fatal("unknown instance suspend must fail")
	}
}

func TestSystemVersionPinning(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.Evolve("online_order", sim.OnlineOrderTypeChange(), adept2.EvolveOptions{}); err != nil {
		t.Fatal(err)
	}
	// New instances default to V2; explicit V1 creation still works (the
	// old version remains deployed for its running instances).
	latest, err := sys.CreateInstance("online_order")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version() != 2 {
		t.Fatalf("latest version = %d", latest.Version())
	}
	pinned, err := sys.CreateInstanceVersion("online_order", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Version() != 1 {
		t.Fatalf("pinned version = %d", pinned.Version())
	}
	if sys.Engine().LatestVersion("online_order") != 2 {
		t.Fatal("latest version bookkeeping")
	}
	if got := len(sys.Engine().InstancesOf("online_order", 1)); got != 1 {
		t.Fatalf("v1 instances = %d", got)
	}
}
