package obs

import (
	"sync"
	"sync/atomic"
)

// Span is one sampled command lifecycle: which command, where it
// journaled, and the three timestamps of its life — submit (entering
// SubmitAsync), applied (engine mutation done, record staged), durable
// (fsync coverage confirmed). Timestamps come from the system's injected
// clock (unix nanos), the same source that stamps journal records, so
// spans from a deterministic soak are deterministic too. DurableNanos is
// zero for spans whose receipt was never awaited and for failed
// submissions; Err carries the taxonomy code of a failed submission.
type Span struct {
	Op           string `json:"op"`
	Instance     string `json:"instance,omitempty"`
	Shard        int    `json:"shard"`
	Seq          int    `json:"seq"`
	SubmitNanos  int64  `json:"submit"`
	AppliedNanos int64  `json:"applied,omitempty"`
	DurableNanos int64  `json:"durable,omitempty"`
	Err          string `json:"err,omitempty"`
}

// TraceRing keeps the most recent sampled spans in a fixed ring: every
// Nth submission is traced (one atomic add decides), the span is built
// privately on the submitter's stack, and Publish installs it whole
// under a per-slot mutex — so a reader never observes a half-written
// span and two concurrent publishes to the same slot serialize without a
// global lock. The ring is the substrate the process-mining loop will
// consume: op, instance, shard, seq, and the submit→applied→durable
// timeline are exactly the event shape miners need.
//
// A nil *TraceRing samples nothing and snapshots empty.
type TraceRing struct {
	slots  []traceSlot
	every  uint64
	tick   atomic.Uint64
	next   atomic.Uint64
	filled atomic.Int64 // publishes so far, caps Snapshot's result
}

type traceSlot struct {
	mu   sync.Mutex
	seq  uint64 // 1-based publish sequence; 0 = never written
	span Span
}

// NewTraceRing creates a ring of n slots sampling one of every `every`
// submissions (every <= 1 samples all).
func NewTraceRing(n int, every int) *TraceRing {
	if n < 1 {
		n = 1
	}
	if every < 1 {
		every = 1
	}
	return &TraceRing{slots: make([]traceSlot, n), every: uint64(every)}
}

// Sample reports whether the current submission should be traced. One
// atomic add; call once per submission.
func (r *TraceRing) Sample() bool {
	if r == nil {
		return false
	}
	return r.tick.Add(1)%r.every == 0
}

// Publish installs a completed span into the next slot, stamping it
// with a monotone publish sequence so incremental readers (Export) can
// drain only what they have not yet seen.
func (r *TraceRing) Publish(sp Span) {
	if r == nil {
		return
	}
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	s.mu.Lock()
	s.seq = seq
	s.span = sp
	s.mu.Unlock()
	r.filled.Add(1)
}

// Snapshot copies the occupied slots (unordered beyond ring position —
// consumers sort by SubmitNanos if they care).
func (r *TraceRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	n := r.filled.Load()
	if n > int64(len(r.slots)) {
		n = int64(len(r.slots))
	}
	out := make([]Span, 0, n)
	for i := int64(0); i < n; i++ {
		s := &r.slots[i]
		s.mu.Lock()
		sp := s.span
		s.mu.Unlock()
		out = append(out, sp)
	}
	return out
}

// TraceExport is the wire form of one Export drain: the spans and the
// cursor to pass as ?after= on the next poll. /trace.json serves it and
// `adeptctl trace -fetch` decodes it strictly.
type TraceExport struct {
	Next  uint64 `json:"next"`
	Spans []Span `json:"spans"`
}

// Export drains the spans published after cursor (0 = from the
// beginning), oldest-first, and returns the cursor to pass next time —
// the subscription primitive behind /trace.json?after=N and `adeptctl
// trace -fetch -follow`. Each span is read whole under its slot mutex,
// so a drain concurrent with writers never observes a torn span; spans
// overwritten before the reader returned (a cursor lagging more than one
// ring capacity behind) are lost, which is the ring's sampling contract,
// not an error. The returned cursor is the highest publish sequence
// observed (at least the input cursor), so pollers make progress even
// across an idle ring.
func (r *TraceRing) Export(cursor uint64) ([]Span, uint64) {
	if r == nil {
		return nil, cursor
	}
	head := r.next.Load()
	if head <= cursor {
		return nil, cursor
	}
	// Everything at or below `cursor` is already delivered; everything
	// above head-len(slots) still survives in the ring. Walk the window
	// oldest-first, re-checking each slot's stamp under its lock (a
	// concurrent publish may lap a slot between computing the window and
	// reading it — the stamp says which publish the slot now holds).
	lo := cursor + 1
	if min := head - uint64(len(r.slots)) + 1; head >= uint64(len(r.slots)) && lo < min {
		lo = min
	}
	out := make([]Span, 0, head-lo+1)
	for seq := lo; seq <= head; seq++ {
		s := &r.slots[(seq-1)%uint64(len(r.slots))]
		s.mu.Lock()
		got, sp := s.seq, s.span
		s.mu.Unlock()
		// Exact-stamp match only: a slot lapped past `seq` surfaces at its
		// own sequence (this drain if <= head, the next one otherwise), so
		// no span is ever delivered twice; a slot whose publish stamped
		// the counter but not yet the slot is skipped (sampling loss, not
		// an error).
		if got == seq {
			out = append(out, sp)
		}
	}
	return out, head
}
